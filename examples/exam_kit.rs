//! Instructor kit: generate a midterm and final (paper + key), a homework
//! study-group assignment, and a make-up variant — everything seeded, all
//! answer keys computed by the simulators.
//!
//! ```text
//! cargo run --example exam_kit [seed]
//! ```

use cs31::exam::{generate, ExamKind};
use cs31::groups::assign_groups;
use cs31_repro::*;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let seed: u64 = std::env::args()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .unwrap_or(2022);

    println!("==================== MIDTERM (seed {seed}) ====================\n");
    let midterm = generate(ExamKind::Midterm, seed);
    println!("{}", midterm.paper());

    println!("==================== MIDTERM KEY ====================\n");
    println!("{}", midterm.key());

    println!("==================== FINAL (first page only) ====================\n");
    let fin = generate(ExamKind::Final, seed);
    for line in fin.paper().lines().take(20) {
        println!("{line}");
    }
    println!(
        "... ({} problems, {} MC questions total)\n",
        fin.problems.len(),
        fin.multiple_choice.len()
    );

    // The make-up exam: same blueprint, different numbers.
    let makeup = generate(ExamKind::Final, seed + 1);
    assert_ne!(fin.paper(), makeup.paper());
    println!(
        "make-up final generated (seed {}): different numbers, same blueprint\n",
        seed + 1
    );

    // Study groups for the homework cycle (the COVID-semester practice
    // the paper reports keeping).
    println!("==================== STUDY GROUPS (60 students) ====================\n");
    let assignment = assign_groups(60, 3, 4, seed)?;
    for (i, g) in assignment.groups.iter().enumerate().take(6) {
        println!("group {:>2}: students {:?}", i + 1, g);
    }
    println!(
        "... {} groups total, every student in exactly one",
        assignment.groups.len()
    );
    Ok(())
}
