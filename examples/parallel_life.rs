//! Labs 6 + 10: Game of Life from a grid file, serial then parallel,
//! with the ParaVis-style thread-region view and the speedup study.
//!
//! ```text
//! cargo run --example parallel_life
//! ```

use cs31_repro::*;
use life::{Boundary, Grid, Partition};

const GRID_FILE: &str = "\
16 32 40
................................
..##............................
..##.....................##.....
.........................##.....
.....#..........................
......#.........................
....###.........................
................................
................................
.............#..................
..............#.................
............###.................
................................
....................###.........
................................
................................
";

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let (grid, rounds) = Grid::from_file_format(GRID_FILE, Boundary::Toroidal)?;
    println!(
        "loaded {}x{} grid, {} live cells, {rounds} rounds\n",
        grid.rows(),
        grid.cols(),
        grid.population()
    );

    // Lab 6: serial run.
    let (serial_final, history) = life::serial::run(grid.clone(), rounds);
    println!("== serial (Lab 6) final state ==");
    print!("{}", life::vis::ascii(&serial_final));
    let last = history.last().expect("rounds > 0");
    println!(
        "round {rounds}: births {} deaths {} population {}\n",
        last.births, last.deaths, last.population
    );

    // Lab 10: parallel runs, both partitions.
    for partition in [Partition::Rows, Partition::Columns] {
        let par = life::parallel::run(grid.clone(), rounds, 4, partition);
        println!(
            "parallel 4 threads {partition:?}: matches serial = {}",
            par.grid == serial_final
        );
        assert_eq!(par.grid, serial_final);
    }

    // The ParaVis view: who owns which region (live cells labeled by
    // owning thread).
    println!("\n== thread-region view (4 threads, row bands) ==");
    print!(
        "{}",
        life::vis::ascii_threads(&serial_final, 4, Partition::Rows)
    );

    // Write a PPM frame like the lab's visualizer window.
    let ppm = life::vis::ppm(&serial_final, 4, Partition::Rows);
    let path = std::env::temp_dir().join("life_threads.ppm");
    std::fs::write(&path, ppm)?;
    println!("\nwrote colour frame to {}", path.display());

    // The speedup study on the modeled 16-core machine.
    println!("\n== modeled speedup, 512x512 x 100 rounds, 16 cores ==");
    let machine = parallel::machine::MachineConfig {
        cores: 16,
        barrier_cost: 50,
        lock_overhead: 10,
        contention: 0.0,
    };
    for (t, s) in life::machsim::speedup_table(512, 512, 100, &[1, 2, 4, 8, 16, 32], machine) {
        let class = parallel::laws::classify(s, t);
        println!("  {t:>2} threads: {s:>5.2}x  ({class:?})");
    }
    Ok(())
}
