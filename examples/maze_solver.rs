//! Lab 5: the binary maze, played like a student at the GDB prompt.
//!
//! Generates a seeded maze, reads its disassembly, recovers the floor-0
//! secret from the `cmpl` immediate (the technique the lab teaches),
//! demonstrates an explosion on wrong input, then escapes with the full
//! solution.
//!
//! ```text
//! cargo run --example maze_solver [seed]
//! ```

use asm::debugger::Debugger;
use asm::maze::{attempt, generate, EXPLODED};
use cs31_repro::*;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let seed: u64 = std::env::args()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .unwrap_or(31);
    let maze = generate(seed, 6);
    println!("maze seed {seed}, {} floors\n", maze.solution.len());

    // The student's first move: disassemble around the entry.
    let mut dbg = Debugger::new(maze.program.clone())?;
    println!("== disas (top of floor 0) ==");
    print!("{}", dbg.command("disas 8"));

    // Floor 0 is always a constant-compare floor for seed-stable demos:
    // single-step until the cmpl and read its immediate out of the
    // instruction — "deciphering assembly" in miniature.
    let mut secret0 = None;
    for _ in 0..64 {
        if let Some(i) = dbg.current_instr() {
            if i.op == asm::Op::Cmp {
                if let Some(asm::Operand::Imm(k)) = i.src {
                    secret0 = Some(k);
                    break;
                }
            }
        }
        dbg.stepi();
    }
    let secret0 = secret0.ok_or("no cmpl found on floor 0")?;
    println!("\nrecovered floor-0 secret from the cmpl immediate: {secret0}");
    assert_eq!(
        secret0, maze.solution[0],
        "debugger read the right constant"
    );

    // Wrong input: watch it explode.
    let mut wrong = maze.solution.clone();
    wrong[2] = wrong[2].wrapping_add(7);
    let escaped = attempt(&maze, &wrong)?;
    println!("\nattempt with a wrong floor-2 input: escaped = {escaped} (eax=0x{EXPLODED:X} path)");
    assert!(!escaped);

    // The full solution: out of the maze.
    let escaped = attempt(&maze, &maze.solution)?;
    println!("attempt with the recovered solution: escaped = {escaped}");
    assert!(escaped);
    println!("\nsolution inputs: {:?}", maze.solution);
    Ok(())
}
