//! The course itself: schedule, themes, all eleven labs demonstrated,
//! a generated homework set with solutions, and a clicker question.
//!
//! ```text
//! cargo run --example course_tour [seed]
//! ```

use cs31_repro::*;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let seed: u64 = std::env::args()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .unwrap_or(31);

    println!("== CS 31: the three themes ==");
    for (theme, desc) in cs31::themes() {
        println!("- {theme:?}: {desc}");
    }

    println!("\n== 14-week schedule ==");
    for w in cs31::week_schedule() {
        let lab = w.lab.map(|l| format!("Lab {l}")).unwrap_or_default();
        println!(
            "  wk {:>2}: {:<50} [{}] {}",
            w.number, w.module, w.crate_name, lab
        );
    }

    println!("\n== running all eleven labs ==");
    for lab in cs31::all_labs() {
        let transcript = (lab.demonstrate)()?;
        println!("--- {:?}: {} ---", lab.id, lab.title);
        for line in transcript.lines().take(6) {
            println!("  {line}");
        }
        if transcript.lines().count() > 6 {
            println!("  ...");
        }
    }

    println!("\n== a generated homework (seed {seed}) ==");
    for (name, generate) in cs31::homework::generators().into_iter().take(3) {
        let p = generate(seed);
        println!("--- {name} ({}) ---", p.set);
        println!("{}", p.prompt);
        println!("solution:\n{}\n", p.solution);
    }

    println!("== a clicker question ==");
    let bank = cs31::clicker::question_bank();
    let q = &bank[seed as usize % bank.len()];
    println!("[{}] {}", q.module, q.prompt);
    for (i, choice) in q.choices.iter().enumerate() {
        println!("  ({}) {choice}", (b'a' + i as u8) as char);
    }
    println!(
        "answer: ({})  — {}",
        (b'a' + q.correct as u8) as char,
        q.explanation
    );
    Ok(())
}
