//! The course's first theme end to end: **how a computer runs a program**.
//!
//! Takes a small C program, compiles it with `tinyc`, assembles the
//! emitted IA-32-subset text to bytes, disassembles it back, executes it
//! under the GDB-style debugger with a breakpoint, and finally compares
//! the execution on the multi-cycle vs pipelined CPU models.
//!
//! ```text
//! cargo run --example vertical_slice
//! ```

use cs31_repro::*;

const C_SOURCE: &str = r#"
int square(int x) {
    return x * x;
}

int main() {
    int total = 0;
    int i = 1;
    while (i <= 5) {
        total = total + square(i);
        print(total);
        i = i + 1;
    }
    return total;
}
"#;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    println!("== C source ==\n{C_SOURCE}");

    // C → assembly.
    let asm_text = asm::tinyc::compile(C_SOURCE)?;
    println!("== tinyc output (first 25 lines) ==");
    for line in asm_text.lines().take(25) {
        println!("  {line}");
    }
    println!("  ...");

    // Assembly → bytes → disassembly.
    let prog = asm::assemble(&asm_text)?;
    println!(
        "\n== assembled: {} bytes of machine code ==",
        prog.bytes.len()
    );
    println!("== disassembly (first 12 instructions) ==");
    for line in prog.disassemble().lines().take(12) {
        println!("  {line}");
    }

    // Run under the debugger with a breakpoint on the function.
    let mut dbg = asm::debugger::Debugger::new(prog)?;
    dbg.command("break fn_square");
    let mut calls = 0;
    loop {
        let stop = dbg.cont();
        match stop {
            asm::debugger::StopReason::Breakpoint(_) => {
                calls += 1;
                if calls == 3 {
                    println!("\n== third call to square: registers at entry ==");
                    print!("{}", dbg.command("info registers"));
                    // The argument is at 8(%ebp) after the prologue... we
                    // stopped at fn_square's first instruction, so it's at
                    // 4(%esp): read the stack directly.
                    let esp = dbg.machine.reg(asm::Reg::Esp);
                    let arg = dbg.machine.read_u32(esp + 4)?;
                    println!("argument on the stack: {arg}");
                }
            }
            asm::debugger::StopReason::Halted => break,
            other => return Err(format!("unexpected stop: {other:?}").into()),
        }
    }
    println!("\nprogram output (via outl): {:?}", dbg.machine.output);
    println!(
        "main returned (in %eax): {}",
        dbg.machine.reg(asm::Reg::Eax)
    );
    assert_eq!(dbg.machine.reg(asm::Reg::Eax), 55, "1+4+9+16+25");

    // Separate compilation: the same program as two "C files" through the
    // compiler → assembler → LINKER → loader chain.
    let lib_unit = asm::linker::assemble_unit(
        "square.o",
        &asm::tinyc::compile_unit("int square(int x) { return x * x; }")?,
    )?;
    let main_unit = asm::linker::assemble_unit(
        "prog.o",
        &asm::tinyc::compile_unit(
            "int prog() { int t = 0; int i = 1; while (i <= 5) { t = t + square(i); i = i + 1; } return t; }",
        )?,
    )?;
    let crt0 = asm::linker::assemble_unit("crt0.o", "main:\ncall fn_prog\nhlt\n")?;
    let linked = asm::linker::link(&[crt0, main_unit, lib_unit])?;
    let mut lm = asm::Machine::new();
    lm.load(&linked)?;
    lm.run(100_000)?;
    println!(
        "\n== separate compilation: 3 units linked, result = {} ==",
        lm.reg(asm::Reg::Eax)
    );
    assert_eq!(lm.reg(asm::Reg::Eax), 55);

    // The same program's instruction stream through the CPU models.
    let mut cpu = circuits::cpu::Cpu::new();
    cpu.load_program(&circuits::cpu::sum_1_to_n_program(25))?;
    cpu.run(100_000)?;
    let (base, pipe, speedup) = circuits::pipeline::compare(&cpu.trace);
    println!("\n== execution models (a SWAT-16 loop of similar shape) ==");
    println!(
        "multi-cycle: {} cycles; pipelined: {} cycles; speedup {speedup:.2}x",
        base.cycles, pipe.cycles
    );
    Ok(())
}
