//! The Valgrind lecture, as a program: run three buggy "C" snippets on
//! the simulated heap and read their memcheck reports — the leak, the
//! off-by-one strcpy, and the use-after-free.
//!
//! ```text
//! cargo run --example memcheck
//! ```

use cheap::SimHeap;
use cs31_repro::*;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // Bug 1: the leak — malloc without free.
    println!("== program 1: forgets to free ==");
    let mut h = SimHeap::new(4096);
    let _names = h.malloc(64, "names")?;
    let scratch = h.malloc(16, "scratch")?;
    h.free(scratch)?;
    print!("{}", h.report().summary());

    // Bug 2: strcpy into a buffer without room for the NUL.
    println!("\n== program 2: off-by-one strcpy ==");
    let mut h = SimHeap::new(4096);
    let p = cstring::heap::buggy_strdup_no_nul_room(&mut h, b"metadata\0", "title")?;
    println!("(wrote 9 bytes into an 8-byte block at {p:#x})");
    print!("{}", h.report().summary());

    // Bug 3: use-after-free.
    println!("\n== program 3: use after free ==");
    let mut h = SimHeap::new(4096);
    let p = cstring::heap::strdup(&mut h, b"config\0", "config")?;
    h.free(p)?;
    let stale = cstring::heap::read_cstr(&mut h, p, 16); // reads freed memory
    println!(
        "(stale read returned {:?})",
        String::from_utf8_lossy(&stale)
    );
    print!("{}", h.report().summary());

    // The clean version, for contrast.
    println!("\n== the fixed program ==");
    let mut h = SimHeap::new(4096);
    let a = cstring::heap::strdup(&mut h, b"hello \0", "a")?;
    let b = cstring::heap::strdup(&mut h, b"world\0", "b")?;
    let joined = cstring::heap::h_concat(&mut h, a, b, "joined")?;
    println!(
        "joined: {:?}",
        String::from_utf8_lossy(&cstring::heap::read_cstr(&mut h, joined, 64))
    );
    for p in [a, b, joined] {
        h.free(p)?;
    }
    print!("{}", h.report().summary());
    assert!(h.report().errors.is_empty());
    Ok(())
}
