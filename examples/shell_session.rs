//! Labs 8 + 9: a scripted session against the simulated kernel's shell —
//! foreground and background jobs, job control, history expansion, and
//! the process-hierarchy view the homework asks students to draw.
//!
//! ```text
//! cargo run --example shell_session
//! ```

use cs31_repro::*;
use os::proc::{program, Handler, Op, Sig};
use os::shell::{Shell, ShellEvent};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let mut k = os::Kernel::new(2);
    k.register_program(
        "ls",
        program(vec![
            Op::Print("Makefile  life.c  maze.s".into()),
            Op::Exit(0),
        ]),
    );
    k.register_program(
        "compile",
        program(vec![
            Op::Print("compiling...".into()),
            Op::Compute(30),
            Op::Print("build finished".into()),
            Op::Exit(0),
        ]),
    );
    k.register_program(
        "daemon",
        program(vec![
            Op::OnSignal(Sig::Term, Handler::Print("shutting down".into())),
            Op::Compute(10),
            Op::Exit(0),
        ]),
    );
    k.register_program("false", program(vec![Op::Exit(1)]));

    let mut sh = Shell::new(k);
    let script = [
        "ls",
        "compile &",
        "jobs",
        "false",
        "ls",
        "!1", // history expansion: rerun ls
        "history",
    ];

    for line in script {
        println!("$ {line}");
        match sh.run_line(line) {
            ShellEvent::Finished(pid, code) => {
                // Print anything the job emitted.
                for (p, msg) in sh.kernel.output().iter().filter(|(p, _)| *p == pid) {
                    println!("{msg}  [pid {p}]");
                }
                println!("(exit {code})");
            }
            ShellEvent::Launched(pid) => println!("[bg] pid {pid}"),
            ShellEvent::Builtin(text) => println!("{text}"),
            ShellEvent::Error(e) => println!("sh: {e}"),
        }
        println!();
    }

    // Drain the background build at the prompt, Lab 9 style.
    while !sh.jobs().is_empty() {
        for (pid, cmd, code) in sh.reap_background() {
            println!("[done] pid {pid} ({cmd}) exit {code}");
        }
        if !sh.jobs().is_empty() {
            sh.kernel.step();
        }
    }

    println!("\n== full kernel output (pid-tagged) ==");
    for (pid, line) in sh.kernel.output() {
        println!("  [{pid}] {line}");
    }

    println!("\n== process hierarchy at exit ==");
    print!("{}", sh.kernel.process_tree());
    println!(
        "\ncontext switches: {}, kernel time: {} ticks",
        sh.kernel.context_switches(),
        sh.kernel.time
    );
    Ok(())
}
