//! Quickstart: a tour up the CS 31 vertical slice in one sitting —
//! bits → gates → ALU → assembly → cache → virtual memory → processes →
//! threads. Each stop prints a small artifact from the corresponding
//! crate.
//!
//! ```text
//! cargo run --example quickstart
//! ```

use cs31_repro::*;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    println!("== 1. bits: two's complement ==");
    let t = bits::Twos::new(8)?;
    println!(
        "  -42 at 8 bits = {} ({})",
        bits::format_radix(8, t.encode_signed(-42)?, bits::Radix::Binary)?,
        bits::format_radix(8, t.encode_signed(-42)?, bits::Radix::Hex)?
    );

    println!("== 2. circuits: the Lab 3 ALU, gate by gate ==");
    let mut c = circuits::Circuit::new();
    let pins = circuits::alu::build_alu(&mut c, 8);
    let (v, f) = circuits::alu::run_alu(&mut c, &pins, circuits::AluOp::Add, 0x7F, 0x01);
    println!(
        "  {} gates; ADD 0x7f,0x01 = {v:#04x} (signed overflow: {})",
        c.gate_count(),
        f.of
    );

    println!("== 3. asm: assemble, run, inspect ==");
    let prog = asm::assemble("movl $6, %eax\nimull $7, %eax\nhlt\n")?;
    let mut m = asm::Machine::new();
    m.load(&prog)?;
    m.run(100)?;
    println!(
        "  6 * 7 = {} in {} model cycles",
        m.reg(asm::Reg::Eax),
        m.cycles
    );

    println!("== 4. memsim: loop order vs the cache ==");
    use memsim::patterns::{matrix_sum_trace, LoopOrder};
    for (name, order) in [
        ("row-major", LoopOrder::RowMajor),
        ("col-major", LoopOrder::ColumnMajor),
    ] {
        let mut cache = memsim::Cache::new(memsim::CacheConfig::direct_mapped(64, 64))?;
        cache.run_trace(&matrix_sum_trace(0, 64, 64, 4, order));
        println!("  {name}: {:.0}% hits", cache.stats().hit_rate() * 100.0);
    }

    println!("== 5. vmem: a page fault and the TLB ==");
    let mut vm = vmem::sim::VmSystem::new(vmem::sim::VmConfig::default());
    let pid = vm.spawn();
    let tr = vm.access(pid, 0x1234, vmem::AccessKind::Load)?;
    println!(
        "  first touch of page {}: fault={} -> paddr {:#x}",
        tr.vpn, tr.fault, tr.paddr
    );
    let eat = vmem::eat::analytic_eat(vmem::eat::EatParams::default(), 0.98, 0.0);
    println!("  EAT with a 98% TLB: {eat:.0} ns (vs 200 ns without)");

    println!("== 6. os: fork, wait, and a shell ==");
    let mut k = os::Kernel::new(2);
    k.register_program(
        "hello",
        os::proc::program(vec![
            os::Op::Print("hello from a child process".into()),
            os::Op::Exit(0),
        ]),
    );
    let mut sh = os::shell::Shell::new(k);
    sh.run_line("hello");
    for (pid, line) in sh.kernel.output() {
        println!("  [pid {pid}] {line}");
    }

    println!("== 7. parallel: Lab 10's Game of Life ==");
    let mut g = life::Grid::new(32, 32, life::Boundary::Toroidal)?;
    g.stamp(4, 4, life::grid::GLIDER);
    let (serial, _) = life::serial::run(g.clone(), 12);
    let par = life::parallel::run(g, 12, 4, life::Partition::Rows);
    println!("  4-thread run matches serial: {}", par.grid == serial);
    let table = life::machsim::speedup_table(
        512,
        512,
        100,
        &[1, 4, 16],
        parallel::machine::MachineConfig {
            cores: 16,
            barrier_cost: 50,
            lock_overhead: 10,
            contention: 0.0,
        },
    );
    for (t, s) in table {
        println!("  modeled speedup @ {t:>2} threads: {s:.2}x");
    }

    println!("\nDone. Deeper dives: the other examples and `cargo run -p bench --bin reproduce`.");
    Ok(())
}
