//! End-to-end tests over real sockets: out-of-order pipelining,
//! wire-level backpressure, connection-cap shedding, and the
//! no-lost-requests shutdown invariant under injected wire faults.

use net::loadgen::{self, ClassLoad, LoadConfig, Mode, OpTemplate};
use net::server::{Io, NetConfig, NetServer};
use net::wire::{
    decode_payload, encode_request, read_frame, write_frame, Frame, RequestFrame, RespStatus,
    ResponseFrame,
};
use serve::fault::{FaultPlan, FaultPoint};
use serve::pool::JobClass;
use serve::server::{CourseServer, ExperimentFn, Request, ServerConfig};
use serve::Scheduler;
use std::io::{BufReader, BufWriter};
use std::net::TcpStream;
use std::time::Duration;

fn sleep_ms_20() -> String {
    std::thread::sleep(Duration::from_millis(20));
    "slow done".to_string()
}

fn sleep_ms_1() -> String {
    std::thread::sleep(Duration::from_millis(1));
    "fast done".to_string()
}

/// A server whose experiment registry maps `slow/0..n` and `fast/0..n`
/// to sleeping handlers — distinct cache keys, identical cost.
fn sleepy_server(config: ServerConfig, variants: u64) -> CourseServer {
    let mut experiments: Vec<(String, ExperimentFn)> = Vec::new();
    for k in 0..variants {
        experiments.push((format!("slow/{k}"), sleep_ms_20 as ExperimentFn));
        experiments.push((format!("fast/{k}"), sleep_ms_1 as ExperimentFn));
    }
    CourseServer::with_experiments(config, experiments)
}

fn request(id: u64, class: JobClass, priority: u8, exp: &str) -> Vec<u8> {
    encode_request(&RequestFrame {
        id,
        class,
        priority,
        deadline_budget_ms: None,
        req: Request::Reproduce {
            id: exp.to_string(),
        },
    })
}

fn next_response(reader: &mut BufReader<&TcpStream>) -> ResponseFrame {
    let payload = read_frame(reader).expect("read").expect("frame before EOF");
    match decode_payload(&payload).expect("decode") {
        Frame::Response(f) => f,
        other => panic!("server sent a non-response frame: {other:?}"),
    }
}

fn pipelined_requests_complete_out_of_order_by_id_under(io: Io) {
    let course = sleepy_server(
        ServerConfig {
            workers: 2,
            queue_capacity: 8,
            scheduler: Scheduler::PriorityLanes,
            ..ServerConfig::default()
        },
        1,
    );
    let srv = NetServer::bind(
        "127.0.0.1:0",
        course,
        NetConfig {
            io,
            ..NetConfig::default()
        },
    )
    .unwrap();
    let stream = TcpStream::connect(srv.local_addr()).unwrap();
    let mut writer = BufWriter::new(&stream);
    let mut reader = BufReader::new(&stream);

    // Slow bulk first, fast interactive second, down the same pipe.
    write_frame(&mut writer, &request(1, JobClass::Bulk, 64, "slow/0")).unwrap();
    write_frame(
        &mut writer,
        &request(2, JobClass::Interactive, 160, "fast/0"),
    )
    .unwrap();

    let first = next_response(&mut reader);
    let second = next_response(&mut reader);
    assert_eq!(
        first.id, 2,
        "the fast request's response must not wait behind the slow one"
    );
    assert_eq!(first.status, RespStatus::Ok);
    assert_eq!(second.id, 1);
    assert_eq!(second.status, RespStatus::Ok);
    assert!(second.body.contains("slow done"));
    srv.shutdown();
}

#[test]
fn pipelined_requests_complete_out_of_order_by_id() {
    pipelined_requests_complete_out_of_order_by_id_under(Io::Blocking);
}

#[test]
fn pipelined_requests_complete_out_of_order_by_id_readiness() {
    pipelined_requests_complete_out_of_order_by_id_under(Io::Readiness { shards: 2 });
}

#[test]
fn repeat_requests_come_back_marked_cached() {
    let course = sleepy_server(ServerConfig::default(), 1);
    let srv = NetServer::bind("127.0.0.1:0", course, NetConfig::default()).unwrap();
    let stream = TcpStream::connect(srv.local_addr()).unwrap();
    let mut writer = BufWriter::new(&stream);
    let mut reader = BufReader::new(&stream);

    write_frame(&mut writer, &request(1, JobClass::Bulk, 64, "fast/0")).unwrap();
    assert_eq!(next_response(&mut reader).status, RespStatus::Ok);
    write_frame(&mut writer, &request(2, JobClass::Bulk, 64, "fast/0")).unwrap();
    assert_eq!(next_response(&mut reader).status, RespStatus::OkCached);
    srv.shutdown();
}

#[test]
fn overload_earns_retry_frames_with_usable_hints() {
    // One worker, a queue of 2, and a stack of slow requests: most of
    // the pipeline must bounce with RETRY at admission.
    let course = sleepy_server(
        ServerConfig {
            workers: 1,
            queue_capacity: 2,
            ..ServerConfig::default()
        },
        16,
    );
    let srv = NetServer::bind("127.0.0.1:0", course, NetConfig::default()).unwrap();
    let stream = TcpStream::connect(srv.local_addr()).unwrap();
    let mut writer = BufWriter::new(&stream);
    let mut reader = BufReader::new(&stream);

    for id in 0..8u64 {
        write_frame(
            &mut writer,
            &request(id + 1, JobClass::Bulk, 64, &format!("slow/{id}")),
        )
        .unwrap();
    }
    let mut ok = 0u32;
    let mut retries = 0u32;
    for _ in 0..8 {
        let resp = next_response(&mut reader);
        match resp.status {
            RespStatus::Ok => ok += 1,
            RespStatus::Retry => {
                retries += 1;
                assert!(
                    resp.retry_after_ms > 0,
                    "no deadline on these requests, so the hint must be a real backoff"
                );
            }
            other => panic!("unexpected status {other:?}"),
        }
    }
    assert!(ok >= 1, "the admitted head of the pipeline completes");
    assert!(
        retries >= 5,
        "a queue of 2 cannot admit 8 slow requests (got {retries} retries)"
    );
    srv.shutdown();
}

fn connections_past_the_cap_are_shed_with_goaway_under(io: Io) {
    let course = sleepy_server(ServerConfig::default(), 1);
    let srv = NetServer::bind(
        "127.0.0.1:0",
        course,
        NetConfig {
            max_connections: 1,
            goaway_retry_ms: 7,
            io,
            ..NetConfig::default()
        },
    )
    .unwrap();

    let keeper = TcpStream::connect(srv.local_addr()).unwrap();
    // Make sure the first connection is fully registered before the
    // second one races the accept loop.
    let mut kw = BufWriter::new(&keeper);
    let mut kr = BufReader::new(&keeper);
    write_frame(&mut kw, &request(1, JobClass::Bulk, 64, "fast/0")).unwrap();
    assert_eq!(next_response(&mut kr).status, RespStatus::Ok);

    let refused = TcpStream::connect(srv.local_addr()).unwrap();
    let mut rr = BufReader::new(&refused);
    let frame = next_response(&mut rr);
    assert_eq!(frame.status, RespStatus::GoAway);
    assert_eq!(
        frame.id, 0,
        "accept-time shedding is connection-level, not per-request"
    );
    assert_eq!(frame.retry_after_ms, 7);
    assert!(
        read_frame(&mut rr).unwrap().is_none(),
        "GoAway is followed by close"
    );
    assert_eq!(srv.net_stats().refused_conns, 1);
    srv.shutdown();
}

#[test]
fn connections_past_the_cap_are_shed_with_goaway() {
    connections_past_the_cap_are_shed_with_goaway_under(Io::Blocking);
}

#[test]
fn connections_past_the_cap_are_shed_with_goaway_readiness() {
    connections_past_the_cap_are_shed_with_goaway_under(Io::Readiness { shards: 1 });
}

fn malformed_frames_get_a_typed_error_then_close_under(io: Io) {
    let course = sleepy_server(ServerConfig::default(), 1);
    let srv = NetServer::bind(
        "127.0.0.1:0",
        course,
        NetConfig {
            io,
            ..NetConfig::default()
        },
    )
    .unwrap();
    let stream = TcpStream::connect(srv.local_addr()).unwrap();
    let mut writer = BufWriter::new(&stream);
    let mut reader = BufReader::new(&stream);

    // A frame whose payload is garbage (bad tag).
    write_frame(&mut writer, &[0, 0, 0, 3, 0xDE, 0xAD, 0xBF]).unwrap();
    let frame = next_response(&mut reader);
    assert_eq!(frame.status, RespStatus::Error);
    assert!(
        frame.body.contains("malformed"),
        "body explains: {}",
        frame.body
    );
    assert!(
        read_frame(&mut reader).unwrap().is_none(),
        "desync closes the connection"
    );
    assert_eq!(srv.net_stats().malformed, 1);
    srv.shutdown();
}

#[test]
fn malformed_frames_get_a_typed_error_then_close() {
    malformed_frames_get_a_typed_error_then_close_under(Io::Blocking);
}

#[test]
fn malformed_frames_get_a_typed_error_then_close_readiness() {
    malformed_frames_get_a_typed_error_then_close_under(Io::Readiness { shards: 1 });
}

fn graceful_shutdown_under_wire_faults_loses_no_admitted_request_under(io: Io) {
    // Drop a quarter of read-side frames' connections mid-request,
    // stall some writer frames: admitted work must still drain and the
    // per-class ledgers must still balance after shutdown.
    let plan = FaultPlan::new(0xF4417)
        .drop_at(FaultPoint::NetReadFrame, 1, 4)
        .stall_at(FaultPoint::NetWriteFrame, Duration::from_millis(2), 1, 8);
    let course = sleepy_server(
        ServerConfig {
            workers: 2,
            queue_capacity: 16,
            scheduler: Scheduler::PriorityLanes,
            ..ServerConfig::default()
        },
        1024,
    );
    let srv = NetServer::bind(
        "127.0.0.1:0",
        course,
        NetConfig {
            fault_plan: Some(plan.clone()),
            io,
            ..NetConfig::default()
        },
    )
    .unwrap();
    let report = loadgen::run(
        srv.local_addr(),
        &LoadConfig {
            connections: 4,
            requests_per_connection: 24,
            mode: Mode::Closed { pipeline: 4 },
            mix: vec![
                ClassLoad {
                    class: JobClass::Interactive,
                    weight: 1,
                    priority: 160,
                    deadline_budget_ms: Some(2_000),
                    op: OpTemplate::Reproduce {
                        prefix: "fast".to_string(),
                        variants: 1024,
                    },
                },
                ClassLoad {
                    class: JobClass::Bulk,
                    weight: 1,
                    priority: 64,
                    deadline_budget_ms: None,
                    op: OpTemplate::Reproduce {
                        prefix: "slow".to_string(),
                        variants: 1024,
                    },
                },
            ],
            max_retries: 2,
            seed: 7,
            drain_timeout: Duration::from_secs(5),
        },
    );
    srv.shutdown();

    let stats = srv.course().stats();
    assert!(
        plan.stats().drops > 0,
        "the plan must actually sever connections"
    );
    assert!(srv.net_stats().dropped_conns > 0);
    for row in &stats.per_class {
        assert_eq!(
            row.admitted,
            row.completed + row.shed,
            "{} ledger must balance after shutdown: {row:?}",
            row.class
        );
        assert_eq!(
            row.in_flight, 0,
            "{}: nothing may remain in flight",
            row.class
        );
    }
    // The loadgen survived severed connections without panicking and
    // accounted every minted request somewhere.
    let minted: u64 = report.per_class.iter().map(|r| r.sent).sum();
    assert!(minted > 0);
}

#[test]
fn graceful_shutdown_under_wire_faults_loses_no_admitted_request() {
    graceful_shutdown_under_wire_faults_loses_no_admitted_request_under(Io::Blocking);
}

#[test]
fn graceful_shutdown_under_wire_faults_loses_no_admitted_request_readiness() {
    graceful_shutdown_under_wire_faults_loses_no_admitted_request_under(Io::Readiness {
        shards: 2,
    });
}

fn loadgen_default_mix_round_trips_end_to_end_under(io: Io) {
    let course = CourseServer::new(ServerConfig {
        workers: 4,
        queue_capacity: 32,
        scheduler: Scheduler::PriorityLanes,
        ..ServerConfig::default()
    });
    let srv = NetServer::bind(
        "127.0.0.1:0",
        course,
        NetConfig {
            io,
            ..NetConfig::default()
        },
    )
    .unwrap();
    let report = loadgen::run(
        srv.local_addr(),
        &LoadConfig {
            connections: 3,
            requests_per_connection: 20,
            mode: Mode::Closed { pipeline: 3 },
            ..LoadConfig::default()
        },
    );
    srv.shutdown();
    let completed: u64 = report
        .per_class
        .iter()
        .map(|r| r.ok + r.cached + r.errors)
        .sum();
    let minted: u64 = report.per_class.iter().map(|r| r.sent).sum();
    assert_eq!(minted, 60);
    let lost: u64 = report
        .per_class
        .iter()
        .map(|r| r.lost_to_backpressure + r.unanswered)
        .sum();
    assert_eq!(
        completed + lost,
        minted,
        "every minted request is accounted for"
    );
    assert!(
        completed > 0,
        "an unloaded server completes most of a small burst"
    );
    // Every default-mix op must be servable: unknown generators or
    // experiment ids would surface here as ERROR frames.
    for row in &report.per_class {
        assert_eq!(row.errors, 0, "{} requests must not error", row.class);
    }
    let net = srv.net_stats();
    assert_eq!(net.accepted_conns, 3);
    assert_eq!(net.malformed, 0);
}

#[test]
fn loadgen_default_mix_round_trips_end_to_end() {
    loadgen_default_mix_round_trips_end_to_end_under(Io::Blocking);
}

#[test]
fn loadgen_default_mix_round_trips_end_to_end_readiness() {
    loadgen_default_mix_round_trips_end_to_end_under(Io::Readiness { shards: 2 });
}

/// Pulls `counter NAME V` out of a rendered snapshot.
fn counter_value(snapshot: &str, name: &str) -> u64 {
    let prefix = format!("counter {name} ");
    snapshot
        .lines()
        .find_map(|line| line.strip_prefix(&prefix))
        .unwrap_or_else(|| panic!("snapshot has no counter {name}:\n{snapshot}"))
        .trim()
        .parse()
        .unwrap_or_else(|e| panic!("counter {name} unparsable: {e}"))
}

#[test]
fn stats_op_returns_a_snapshot_whose_counters_balance_the_ledgers() {
    let course = CourseServer::new(ServerConfig {
        workers: 4,
        queue_capacity: 32,
        scheduler: Scheduler::PriorityLanes,
        ..ServerConfig::default()
    });
    let srv = NetServer::bind("127.0.0.1:0", course, NetConfig::default()).unwrap();
    let addr = srv.local_addr();
    let report = loadgen::run(
        addr,
        &LoadConfig {
            connections: 3,
            requests_per_connection: 16,
            mode: Mode::Closed { pipeline: 3 },
            ..LoadConfig::default()
        },
    );
    let unanswered: u64 = report.per_class.iter().map(|r| r.unanswered).sum();
    assert_eq!(unanswered, 0, "friendly load must fully drain");

    // Snapshot over the wire, against the *live* server: stats bypass
    // admission, so this works regardless of queue state.
    let snapshot = loadgen::fetch_stats(addr).expect("stats over TCP");
    let stats = srv.course().stats();
    for row in &stats.per_class {
        let admitted = counter_value(&snapshot, &format!("serve.admitted.{}", row.class));
        let completed = counter_value(&snapshot, &format!("serve.completed.{}", row.class));
        let shed = counter_value(&snapshot, &format!("serve.shed.{}", row.class));
        assert_eq!(
            admitted, row.admitted,
            "{}: registry mirror must match the ledger",
            row.class
        );
        assert_eq!(completed, row.completed, "{}", row.class);
        assert_eq!(shed, row.shed, "{}", row.class);
        assert_eq!(
            admitted,
            completed + shed,
            "{}: drained snapshot must balance",
            row.class
        );
    }
    let claims = counter_value(&snapshot, "pool.claims");
    assert_eq!(
        claims, stats.accepted,
        "every accepted job was claimed exactly once"
    );
    let requests = counter_value(&snapshot, "net.requests");
    assert_eq!(requests, srv.net_stats().requests);
    assert_eq!(counter_value(&snapshot, "net.stats_requests"), 1);
    assert!(
        snapshot.contains("hist serve.stage.queue_us.interactive "),
        "stage histograms render: \n{snapshot}"
    );
    srv.shutdown();
}

fn requests_racing_shutdown_get_goaway_not_silence_under(io: Io) {
    let course = sleepy_server(
        ServerConfig {
            workers: 1,
            queue_capacity: 4,
            ..ServerConfig::default()
        },
        8,
    );
    let srv = NetServer::bind(
        "127.0.0.1:0",
        course,
        NetConfig {
            io,
            ..NetConfig::default()
        },
    )
    .unwrap();
    let addr = srv.local_addr();
    let stream = TcpStream::connect(addr).unwrap();
    let mut writer = BufWriter::new(&stream);
    let mut reader = BufReader::new(&stream);
    write_frame(&mut writer, &request(1, JobClass::Bulk, 64, "slow/0")).unwrap();

    let shutter = std::thread::spawn(move || srv.shutdown());
    // Whatever the interleaving, the connection ends with our admitted
    // request answered, then EOF; frames sent after shutdown either
    // never arrive (read half closed) or earn GoAway — never silence
    // with an open socket.
    let mut got_first = false;
    loop {
        match read_frame(&mut reader) {
            Ok(Some(payload)) => match decode_payload(&payload).expect("decode") {
                Frame::Response(f) if f.id == 1 => {
                    assert_eq!(f.status, RespStatus::Ok);
                    got_first = true;
                }
                Frame::Response(f) => assert_eq!(f.status, RespStatus::GoAway),
                other => panic!("server sent a non-response frame: {other:?}"),
            },
            Ok(None) => break,
            Err(e) => panic!("socket error instead of clean FIN: {e}"),
        }
    }
    assert!(
        got_first,
        "the admitted request's response must be written before the FIN"
    );
    shutter.join().unwrap();
}

#[test]
fn requests_racing_shutdown_get_goaway_not_silence() {
    requests_racing_shutdown_get_goaway_not_silence_under(Io::Blocking);
}

#[test]
fn requests_racing_shutdown_get_goaway_not_silence_readiness() {
    requests_racing_shutdown_get_goaway_not_silence_under(Io::Readiness { shards: 1 });
}
