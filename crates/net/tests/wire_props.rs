//! Codec properties: every representable frame survives an
//! encode→decode round trip unchanged, and no input — truncated,
//! corrupted, or pure noise — makes the decoder panic. Malformed
//! bytes always come back as a typed [`WireError`].
//!
//! The second half targets the incremental [`FrameAssembler`] behind
//! the readiness reactor's read path: however a valid stream is
//! sliced — byte at a time, random chunks, truncated mid-frame — the
//! assembler must never panic, must yield exactly the frames the
//! one-shot [`read_frame`] reader yields, each exactly when its last
//! byte arrives, and must poison itself (typed error, no allocation)
//! on an oversized length prefix.

use net::wire::{
    decode_payload, encode_request, encode_response, encode_stats_request, read_frame, Frame,
    FrameAssembler, RequestFrame, RespStatus, ResponseFrame, WireError, MAX_FRAME_LEN,
};
use proptest::prelude::*;
use proptest::strategy::BoxedStrategy;
use serve::pool::JobClass;
use serve::server::Request;

/// Arbitrary strings including non-ASCII (sampled as lossy UTF-8 over
/// random bytes, so multi-byte sequences occur).
fn arb_string() -> impl Strategy<Value = String> {
    proptest::collection::vec(any::<u8>(), 0..48)
        .prop_map(|bytes| String::from_utf8_lossy(&bytes).into_owned())
}

fn arb_class() -> BoxedStrategy<JobClass> {
    (0usize..JobClass::COUNT)
        .prop_map(JobClass::from_band)
        .boxed()
}

fn arb_request_op() -> BoxedStrategy<Request> {
    prop_oneof![
        arb_string().prop_map(|submission| Request::Grade { submission }),
        (arb_string(), any::<u64>())
            .prop_map(|(generator, seed)| Request::Homework { generator, seed }),
        arb_string().prop_map(|id| Request::Reproduce { id }),
        (any::<u32>(), any::<u32>(), any::<u32>(), any::<u64>())
            .prop_map(|(w, h, steps, seed)| Request::Life { w, h, steps, seed }),
    ]
    .boxed()
}

fn arb_request_frame() -> BoxedStrategy<RequestFrame> {
    (
        any::<u64>(),
        arb_class(),
        any::<u8>(),
        proptest::option::of(any::<u64>()),
        arb_request_op(),
    )
        .prop_map(
            |(id, class, priority, deadline_budget_ms, req)| RequestFrame {
                id,
                class,
                priority,
                deadline_budget_ms,
                req,
            },
        )
        .boxed()
}

fn arb_status() -> BoxedStrategy<RespStatus> {
    (0u8..6)
        .prop_map(|code| RespStatus::from_code(code).expect("codes 0..6 are valid"))
        .boxed()
}

fn arb_response_frame() -> BoxedStrategy<ResponseFrame> {
    (
        any::<u64>(),
        arb_status(),
        any::<u64>(),
        any::<u32>(),
        arb_string(),
    )
        .prop_map(
            |(id, status, retry_after_ms, backend, body)| ResponseFrame {
                id,
                status,
                retry_after_ms,
                backend,
                body,
            },
        )
        .boxed()
}

/// Strips the 4-byte length prefix off complete frame bytes.
fn payload(bytes: &[u8]) -> &[u8] {
    &bytes[4..]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(192))]

    #[test]
    fn prop_request_frames_round_trip(frame in arb_request_frame()) {
        let bytes = encode_request(&frame);
        let len = u32::from_be_bytes(bytes[..4].try_into().unwrap()) as usize;
        prop_assert_eq!(len, bytes.len() - 4);
        let decoded = decode_payload(payload(&bytes));
        prop_assert_eq!(decoded, Ok(Frame::Request(frame)));
    }

    #[test]
    fn prop_response_frames_round_trip(frame in arb_response_frame()) {
        let bytes = encode_response(&frame);
        let decoded = decode_payload(payload(&bytes));
        prop_assert_eq!(decoded, Ok(Frame::Response(frame)));
    }

    #[test]
    fn prop_every_truncation_is_a_typed_error_never_a_panic(
        frame in arb_request_frame(),
        cut_seed in any::<u64>(),
    ) {
        let bytes = encode_request(&frame);
        let full = payload(&bytes);
        // Check every prefix of short frames; sample prefixes of
        // longer ones.
        let cuts: Vec<usize> = if full.len() <= 64 {
            (0..full.len()).collect()
        } else {
            (0..64).map(|i| (cut_seed.wrapping_add(i).wrapping_mul(0x9E37_79B9)) as usize
                % full.len()).collect()
        };
        for cut in cuts {
            let result = decode_payload(&full[..cut]);
            prop_assert!(result.is_err(), "prefix of length {} decoded: {:?}", cut, result);
        }
    }

    #[test]
    fn prop_single_byte_corruption_never_panics_and_never_half_decodes(
        frame in arb_request_frame(),
        pos_seed in any::<u64>(),
        xor in 1u8..=255,
    ) {
        let bytes = encode_request(&frame);
        let mut corrupt = payload(&bytes).to_vec();
        let pos = (pos_seed as usize) % corrupt.len();
        corrupt[pos] ^= xor;
        // Must not panic. If it still decodes (the flipped byte was in
        // a don't-care position like the id, or flipped the op byte to
        // a field-less stats op), it must still be request-family —
        // corruption can't turn a request into a *response* because
        // the tag byte distinguishes them.
        if let Ok(decoded) = decode_payload(&corrupt) {
            prop_assert!(
                matches!(
                    decoded,
                    Frame::Request(_) | Frame::Stats { .. } | Frame::StatsFull { .. }
                ) || pos == 0,
                "corruption at {} produced {:?}", pos, decoded
            );
        }
    }

    #[test]
    fn prop_stats_requests_round_trip(id in any::<u64>()) {
        let bytes = encode_stats_request(id);
        let decoded = decode_payload(payload(&bytes));
        prop_assert_eq!(decoded, Ok(Frame::Stats { id }));
        let bytes = net::wire::encode_stats_full_request(id);
        let decoded = decode_payload(payload(&bytes));
        prop_assert_eq!(decoded, Ok(Frame::StatsFull { id }));
    }

    #[test]
    fn prop_random_noise_never_panics(noise in proptest::collection::vec(any::<u8>(), 0..256)) {
        // Ok or typed Err both fine; what is being tested is totality.
        let _ = decode_payload(&noise);
    }

    #[test]
    fn prop_status_codes_round_trip(status in arb_status()) {
        prop_assert_eq!(RespStatus::from_code(status.code()), Ok(status));
    }
}

/// A stream of complete frames: interleaved requests and responses,
/// concatenated with their length prefixes — what a socket carries.
fn arb_stream() -> BoxedStrategy<Vec<u8>> {
    proptest::collection::vec(
        prop_oneof![
            arb_request_frame().prop_map(|f| encode_request(&f)),
            arb_response_frame().prop_map(|f| encode_response(&f)),
            any::<u64>().prop_map(encode_stats_request),
        ],
        0..6,
    )
    .prop_map(|frames| frames.concat())
    .boxed()
}

/// Reference decomposition of a (possibly truncated) byte stream into
/// the payloads of its wholly-contained frames — the oracle every
/// assembler schedule must agree with.
fn whole_frames(stream: &[u8]) -> Vec<Vec<u8>> {
    let mut out = Vec::new();
    let mut pos = 0;
    while stream.len() - pos >= 4 {
        let len = u32::from_be_bytes(stream[pos..pos + 4].try_into().unwrap()) as usize;
        if len > MAX_FRAME_LEN || stream.len() - pos < 4 + len {
            break;
        }
        out.push(stream[pos + 4..pos + 4 + len].to_vec());
        pos += 4 + len;
    }
    out
}

/// Drains every currently-complete frame out of the assembler.
fn drain(asm: &mut FrameAssembler) -> Vec<Vec<u8>> {
    let mut out = Vec::new();
    while let Some(payload) = asm.next_frame().expect("valid stream never errors") {
        out.push(payload);
    }
    out
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(192))]

    #[test]
    fn prop_assembler_agrees_with_the_one_shot_reader_under_random_splits(
        stream in arb_stream(),
        chunk_seed in any::<u64>(),
    ) {
        let mut asm = FrameAssembler::new();
        let mut got = Vec::new();
        let mut pos = 0;
        let mut rng = chunk_seed | 1;
        while pos < stream.len() {
            rng = rng.wrapping_mul(0x9E37_79B9_7F4A_7C15).rotate_left(17) | 1;
            let take = 1 + (rng as usize) % 9;
            let end = (pos + take).min(stream.len());
            asm.feed(&stream[pos..end]);
            pos = end;
            got.extend(drain(&mut asm));
        }
        // A complete stream leaves the assembler clean at a boundary…
        prop_assert!(asm.at_boundary());
        prop_assert_eq!(asm.buffered(), 0);
        // …having produced exactly what the blocking one-shot reader
        // produces from the same bytes.
        let mut cursor = std::io::Cursor::new(&stream[..]);
        let mut want = Vec::new();
        while let Some(payload) = read_frame(&mut cursor).expect("valid stream") {
            want.push(payload);
        }
        prop_assert_eq!(&got, &want);
        prop_assert_eq!(&got, &whole_frames(&stream));
        // And every payload decodes totally: Ok here (the stream was
        // built from real frames), never a panic.
        for payload in &got {
            prop_assert!(decode_payload(payload).is_ok());
        }
    }

    #[test]
    fn prop_byte_at_a_time_yields_each_frame_exactly_at_its_last_byte(
        stream in arb_stream(),
    ) {
        // Frame-end offsets within the stream: the only feed positions
        // allowed to produce a frame.
        let mut boundaries = Vec::new();
        {
            let mut pos = 0;
            while pos < stream.len() {
                let len = u32::from_be_bytes(stream[pos..pos + 4].try_into().unwrap()) as usize;
                pos += 4 + len;
                boundaries.push(pos);
            }
        }
        let want = whole_frames(&stream);
        let mut asm = FrameAssembler::new();
        let mut got = Vec::new();
        for (i, byte) in stream.iter().enumerate() {
            asm.feed(std::slice::from_ref(byte));
            let ready = drain(&mut asm);
            if boundaries.contains(&(i + 1)) {
                prop_assert_eq!(ready.len(), 1, "frame must complete at byte {}", i + 1);
            } else {
                prop_assert!(ready.is_empty(), "no frame may appear mid-frame at byte {}", i + 1);
            }
            got.extend(ready);
        }
        prop_assert_eq!(got, want);
    }

    #[test]
    fn prop_a_truncated_stream_yields_only_whole_frames_and_keeps_waiting(
        stream in arb_stream(),
        cut_seed in any::<u64>(),
    ) {
        let cut = (cut_seed as usize) % (stream.len() + 1);
        let prefix = &stream[..cut];
        let mut asm = FrameAssembler::new();
        asm.feed(prefix);
        let got = drain(&mut asm);
        let want = whole_frames(prefix);
        let consumed: usize = want.iter().map(|p| 4 + p.len()).sum();
        prop_assert_eq!(got, want);
        // Truncation is not an error — the assembler just waits, with
        // exactly the unconsumed tail buffered.
        prop_assert_eq!(asm.buffered(), cut - consumed);
        prop_assert_eq!(asm.at_boundary(), cut == consumed);
        prop_assert!(matches!(asm.next_frame(), Ok(None)));
        // Feeding the remainder completes the stream losslessly.
        asm.feed(&stream[cut..]);
        let rest = drain(&mut asm);
        let all = whole_frames(&stream);
        prop_assert_eq!(rest, all[whole_frames(prefix).len()..].to_vec());
        prop_assert!(asm.at_boundary());
    }

    #[test]
    fn prop_an_oversized_length_prefix_poisons_the_assembler(
        stream in arb_stream(),
        oversize in (MAX_FRAME_LEN as u32 + 1)..=u32::MAX,
        junk in proptest::collection::vec(any::<u8>(), 0..64),
        split_seed in any::<u64>(),
    ) {
        let mut poisoned_stream = stream.clone();
        poisoned_stream.extend_from_slice(&oversize.to_be_bytes());
        poisoned_stream.extend_from_slice(&junk);
        let split = (split_seed as usize) % (poisoned_stream.len() + 1);
        let mut asm = FrameAssembler::new();
        asm.feed(&poisoned_stream[..split]);
        let mut got = Vec::new();
        let err = loop {
            match asm.next_frame() {
                Ok(Some(p)) => got.push(p),
                Ok(None) => {
                    // The bad prefix hasn't fully arrived yet.
                    asm.feed(&poisoned_stream[split..]);
                    match asm.next_frame() {
                        Ok(Some(p)) => {
                            got.push(p);
                            continue;
                        }
                        Ok(None) => unreachable!("bad prefix is fully fed"),
                        Err(e) => break e,
                    }
                }
                Err(e) => break e,
            }
        };
        // The good frames all arrived before the poison…
        prop_assert_eq!(got, whole_frames(&stream));
        prop_assert_eq!(err, WireError::TooLarge { len: oversize as usize });
        // …and the assembler stays poisoned: more bytes, same error,
        // never a panic, never a frame conjured from junk.
        asm.feed(&junk);
        prop_assert_eq!(asm.next_frame(), Err(WireError::TooLarge { len: oversize as usize }));
        prop_assert!(!asm.at_boundary());
    }

    #[test]
    fn prop_payload_corruption_cannot_derail_framing(
        stream in arb_stream(),
        pos_seed in any::<u64>(),
        xor in 1u8..=255,
    ) {
        // Flip one byte anywhere *outside* the length prefixes: the
        // assembler frames by length alone, so it must still produce
        // the same frame boundaries, and decoding each payload must
        // stay total (Ok or typed Err, never a panic).
        let mut payload_positions = Vec::new();
        let mut pos = 0;
        while pos < stream.len() {
            let len = u32::from_be_bytes(stream[pos..pos + 4].try_into().unwrap()) as usize;
            payload_positions.extend(pos + 4..pos + 4 + len);
            pos += 4 + len;
        }
        if payload_positions.is_empty() {
            // An empty stream has nothing to corrupt.
            return Ok(());
        }
        let flip = payload_positions[(pos_seed as usize) % payload_positions.len()];
        let mut corrupt = stream.clone();
        corrupt[flip] ^= xor;
        let mut asm = FrameAssembler::new();
        asm.feed(&corrupt);
        let got = drain(&mut asm);
        let want = whole_frames(&corrupt);
        prop_assert_eq!(got.len(), whole_frames(&stream).len());
        prop_assert_eq!(&got, &want);
        prop_assert!(asm.at_boundary());
        for payload in &got {
            let _ = decode_payload(payload);
        }
    }
}
