//! Codec properties: every representable frame survives an
//! encode→decode round trip unchanged, and no input — truncated,
//! corrupted, or pure noise — makes the decoder panic. Malformed
//! bytes always come back as a typed [`WireError`].

use net::wire::{
    decode_payload, encode_request, encode_response, encode_stats_request, Frame, RequestFrame,
    RespStatus, ResponseFrame,
};
use proptest::prelude::*;
use proptest::strategy::BoxedStrategy;
use serve::pool::JobClass;
use serve::server::Request;

/// Arbitrary strings including non-ASCII (sampled as lossy UTF-8 over
/// random bytes, so multi-byte sequences occur).
fn arb_string() -> impl Strategy<Value = String> {
    proptest::collection::vec(any::<u8>(), 0..48)
        .prop_map(|bytes| String::from_utf8_lossy(&bytes).into_owned())
}

fn arb_class() -> BoxedStrategy<JobClass> {
    (0usize..JobClass::COUNT)
        .prop_map(JobClass::from_band)
        .boxed()
}

fn arb_request_op() -> BoxedStrategy<Request> {
    prop_oneof![
        arb_string().prop_map(|submission| Request::Grade { submission }),
        (arb_string(), any::<u64>())
            .prop_map(|(generator, seed)| Request::Homework { generator, seed }),
        arb_string().prop_map(|id| Request::Reproduce { id }),
    ]
    .boxed()
}

fn arb_request_frame() -> BoxedStrategy<RequestFrame> {
    (
        any::<u64>(),
        arb_class(),
        any::<u8>(),
        proptest::option::of(any::<u64>()),
        arb_request_op(),
    )
        .prop_map(
            |(id, class, priority, deadline_budget_ms, req)| RequestFrame {
                id,
                class,
                priority,
                deadline_budget_ms,
                req,
            },
        )
        .boxed()
}

fn arb_status() -> BoxedStrategy<RespStatus> {
    (0u8..6)
        .prop_map(|code| RespStatus::from_code(code).expect("codes 0..6 are valid"))
        .boxed()
}

fn arb_response_frame() -> BoxedStrategy<ResponseFrame> {
    (
        any::<u64>(),
        arb_status(),
        any::<u64>(),
        any::<u32>(),
        arb_string(),
    )
        .prop_map(
            |(id, status, retry_after_ms, backend, body)| ResponseFrame {
                id,
                status,
                retry_after_ms,
                backend,
                body,
            },
        )
        .boxed()
}

/// Strips the 4-byte length prefix off complete frame bytes.
fn payload(bytes: &[u8]) -> &[u8] {
    &bytes[4..]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(192))]

    #[test]
    fn prop_request_frames_round_trip(frame in arb_request_frame()) {
        let bytes = encode_request(&frame);
        let len = u32::from_be_bytes(bytes[..4].try_into().unwrap()) as usize;
        prop_assert_eq!(len, bytes.len() - 4);
        let decoded = decode_payload(payload(&bytes));
        prop_assert_eq!(decoded, Ok(Frame::Request(frame)));
    }

    #[test]
    fn prop_response_frames_round_trip(frame in arb_response_frame()) {
        let bytes = encode_response(&frame);
        let decoded = decode_payload(payload(&bytes));
        prop_assert_eq!(decoded, Ok(Frame::Response(frame)));
    }

    #[test]
    fn prop_every_truncation_is_a_typed_error_never_a_panic(
        frame in arb_request_frame(),
        cut_seed in any::<u64>(),
    ) {
        let bytes = encode_request(&frame);
        let full = payload(&bytes);
        // Check every prefix of short frames; sample prefixes of
        // longer ones.
        let cuts: Vec<usize> = if full.len() <= 64 {
            (0..full.len()).collect()
        } else {
            (0..64).map(|i| (cut_seed.wrapping_add(i).wrapping_mul(0x9E37_79B9)) as usize
                % full.len()).collect()
        };
        for cut in cuts {
            let result = decode_payload(&full[..cut]);
            prop_assert!(result.is_err(), "prefix of length {} decoded: {:?}", cut, result);
        }
    }

    #[test]
    fn prop_single_byte_corruption_never_panics_and_never_half_decodes(
        frame in arb_request_frame(),
        pos_seed in any::<u64>(),
        xor in 1u8..=255,
    ) {
        let bytes = encode_request(&frame);
        let mut corrupt = payload(&bytes).to_vec();
        let pos = (pos_seed as usize) % corrupt.len();
        corrupt[pos] ^= xor;
        // Must not panic. If it still decodes (the flipped byte was in
        // a don't-care position like the id, or flipped the op byte to
        // a field-less stats op), it must still be request-family —
        // corruption can't turn a request into a *response* because
        // the tag byte distinguishes them.
        if let Ok(decoded) = decode_payload(&corrupt) {
            prop_assert!(
                matches!(
                    decoded,
                    Frame::Request(_) | Frame::Stats { .. } | Frame::StatsFull { .. }
                ) || pos == 0,
                "corruption at {} produced {:?}", pos, decoded
            );
        }
    }

    #[test]
    fn prop_stats_requests_round_trip(id in any::<u64>()) {
        let bytes = encode_stats_request(id);
        let decoded = decode_payload(payload(&bytes));
        prop_assert_eq!(decoded, Ok(Frame::Stats { id }));
        let bytes = net::wire::encode_stats_full_request(id);
        let decoded = decode_payload(payload(&bytes));
        prop_assert_eq!(decoded, Ok(Frame::StatsFull { id }));
    }

    #[test]
    fn prop_random_noise_never_panics(noise in proptest::collection::vec(any::<u8>(), 0..256)) {
        // Ok or typed Err both fine; what is being tested is totality.
        let _ = decode_payload(&noise);
    }

    #[test]
    fn prop_status_codes_round_trip(status in arb_status()) {
        prop_assert_eq!(RespStatus::from_code(status.code()), Ok(status));
    }
}
