//! Raw Linux syscall shims for the readiness engine: `epoll` and
//! `eventfd`, invoked through inline-assembly `syscall`/`svc`
//! instructions — no `libc` crate, in the same spirit as the repo's
//! in-tree `rand`/`proptest`/`criterion` shims (the container builds
//! with no network, so external crates are not an option, and `std`
//! exposes neither `epoll` nor `eventfd`).
//!
//! Scope is deliberately tiny: the reactor does all socket I/O through
//! safe `std::net` nonblocking streams; raw syscalls are used only for
//! the readiness *notification* plumbing std cannot express —
//! `epoll_create1` / `epoll_ctl` / `epoll_pwait`, `eventfd2` for the
//! cross-thread waker, and `read`/`write`/`close` on the eventfd
//! itself. Every wrapper checks the return value and maps failures to
//! [`io::Error`], and `EINTR` is retried (or surfaced as an empty
//! poll) so callers never see it.
//!
//! This module is the `net` crate's one `#[allow(unsafe_code)]` island
//! (mirroring `serve::deque`, PR 7): each `unsafe` block is a single
//! syscall whose argument validity is argued at the call site, and the
//! owned-fd wrappers close on drop so descriptors cannot leak.

#![allow(unsafe_code)]

use std::io;
use std::os::unix::io::RawFd;

/// `EPOLLIN`: the fd is readable (or EOF is pending).
pub const EPOLLIN: u32 = 0x001;
/// `EPOLLOUT`: the fd is writable.
pub const EPOLLOUT: u32 = 0x004;
/// `EPOLLERR`: error condition (always reported, never armed).
pub const EPOLLERR: u32 = 0x008;
/// `EPOLLHUP`: hangup (always reported, never armed).
pub const EPOLLHUP: u32 = 0x010;
/// `EPOLLRDHUP`: the peer half-closed its write side.
pub const EPOLLRDHUP: u32 = 0x2000;

const EPOLL_CTL_ADD: usize = 1;
const EPOLL_CTL_DEL: usize = 2;
const EPOLL_CTL_MOD: usize = 3;
const EPOLL_CLOEXEC: usize = 0x80000;
const EFD_CLOEXEC: usize = 0x80000;
const EFD_NONBLOCK: usize = 0x800;

const EINTR: i32 = 4;
const EAGAIN: i32 = 11;

#[cfg(target_arch = "x86_64")]
mod nr {
    pub const READ: usize = 0;
    pub const WRITE: usize = 1;
    pub const CLOSE: usize = 3;
    pub const EPOLL_PWAIT: usize = 281;
    pub const EPOLL_CTL: usize = 233;
    pub const EPOLL_CREATE1: usize = 291;
    pub const EVENTFD2: usize = 290;
}

#[cfg(target_arch = "aarch64")]
mod nr {
    pub const READ: usize = 63;
    pub const WRITE: usize = 64;
    pub const CLOSE: usize = 57;
    pub const EPOLL_PWAIT: usize = 22;
    pub const EPOLL_CTL: usize = 21;
    pub const EPOLL_CREATE1: usize = 20;
    pub const EVENTFD2: usize = 19;
}

#[cfg(not(any(target_arch = "x86_64", target_arch = "aarch64")))]
compile_error!("net::sys implements raw syscalls for x86_64 and aarch64 Linux only");

/// One raw syscall with up to six arguments. Returns the kernel's
/// value verbatim: `>= 0` success, `-errno` failure.
///
/// # Safety
/// The caller must uphold the kernel contract of syscall `n`: pointer
/// arguments must be valid for the access the kernel performs for the
/// lengths passed alongside them.
#[cfg(target_arch = "x86_64")]
unsafe fn syscall6(n: usize, a: usize, b: usize, c: usize, d: usize, e: usize, f: usize) -> isize {
    let ret: isize;
    // SAFETY: the `syscall` instruction clobbers rcx/r11 (declared) and
    // returns in rax; argument registers follow the x86_64 Linux ABI.
    unsafe {
        core::arch::asm!(
            "syscall",
            inlateout("rax") n as isize => ret,
            in("rdi") a,
            in("rsi") b,
            in("rdx") c,
            in("r10") d,
            in("r8") e,
            in("r9") f,
            lateout("rcx") _,
            lateout("r11") _,
            options(nostack),
        );
    }
    ret
}

/// One raw syscall with up to six arguments (aarch64 `svc #0` ABI:
/// number in `x8`, arguments in `x0..x5`, result in `x0`).
///
/// # Safety
/// Same contract as the x86_64 variant.
#[cfg(target_arch = "aarch64")]
unsafe fn syscall6(n: usize, a: usize, b: usize, c: usize, d: usize, e: usize, f: usize) -> isize {
    let ret: isize;
    // SAFETY: `svc #0` follows the aarch64 Linux syscall ABI.
    unsafe {
        core::arch::asm!(
            "svc #0",
            in("x8") n,
            inlateout("x0") a as isize => ret,
            in("x1") b,
            in("x2") c,
            in("x3") d,
            in("x4") e,
            in("x5") f,
            options(nostack),
        );
    }
    ret
}

/// Converts a raw syscall return into `io::Result`.
fn check(ret: isize) -> io::Result<usize> {
    if ret < 0 {
        Err(io::Error::from_raw_os_error(-ret as i32))
    } else {
        Ok(ret as usize)
    }
}

/// One `epoll` readiness event, in the kernel's wire layout. On x86_64
/// the kernel declares the struct packed; elsewhere it is naturally
/// aligned — the `cfg_attr` mirrors the UAPI header exactly.
#[cfg_attr(target_arch = "x86_64", repr(C, packed))]
#[cfg_attr(not(target_arch = "x86_64"), repr(C))]
#[derive(Clone, Copy, Default)]
pub struct EpollEvent {
    /// Bitmask of `EPOLL*` readiness flags.
    pub events: u32,
    /// Caller-chosen token identifying the registered fd.
    pub data: u64,
}

/// An owned `epoll` instance; closed on drop.
pub struct Epoll {
    fd: RawFd,
}

impl Epoll {
    /// `epoll_create1(EPOLL_CLOEXEC)`.
    pub fn new() -> io::Result<Epoll> {
        // SAFETY: epoll_create1 takes no pointers.
        let fd = check(unsafe { syscall6(nr::EPOLL_CREATE1, EPOLL_CLOEXEC, 0, 0, 0, 0, 0) })?;
        Ok(Epoll { fd: fd as RawFd })
    }

    fn ctl(&self, op: usize, fd: RawFd, events: u32, token: u64) -> io::Result<()> {
        let ev = EpollEvent {
            events,
            data: token,
        };
        // SAFETY: `ev` lives across the call; DEL ignores the pointer
        // but passing a valid one is always allowed.
        check(unsafe {
            syscall6(
                nr::EPOLL_CTL,
                self.fd as usize,
                op,
                fd as usize,
                std::ptr::addr_of!(ev) as usize,
                0,
                0,
            )
        })?;
        Ok(())
    }

    /// Registers `fd` with the given interest mask and token.
    pub fn add(&self, fd: RawFd, events: u32, token: u64) -> io::Result<()> {
        self.ctl(EPOLL_CTL_ADD, fd, events, token)
    }

    /// Re-arms `fd` with a new interest mask.
    pub fn modify(&self, fd: RawFd, events: u32, token: u64) -> io::Result<()> {
        self.ctl(EPOLL_CTL_MOD, fd, events, token)
    }

    /// Deregisters `fd`.
    pub fn del(&self, fd: RawFd) -> io::Result<()> {
        self.ctl(EPOLL_CTL_DEL, fd, 0, 0)
    }

    /// `epoll_pwait` into `events` with a millisecond timeout (`-1`
    /// blocks). Returns the number of events filled in; an `EINTR`
    /// reads as zero events, which callers already treat as a tick.
    pub fn wait(&self, events: &mut [EpollEvent], timeout_ms: i32) -> io::Result<usize> {
        // SAFETY: `events` is a valid writable buffer of the declared
        // length; the null sigmask (arg 5) makes sigsetsize ignored.
        let ret = unsafe {
            syscall6(
                nr::EPOLL_PWAIT,
                self.fd as usize,
                events.as_mut_ptr() as usize,
                events.len(),
                timeout_ms as usize,
                0,
                0,
            )
        };
        match check(ret) {
            Ok(n) => Ok(n),
            Err(e) if e.raw_os_error() == Some(EINTR) => Ok(0),
            Err(e) => Err(e),
        }
    }
}

impl Drop for Epoll {
    fn drop(&mut self) {
        // SAFETY: we own the fd and close it exactly once.
        let _ = unsafe { syscall6(nr::CLOSE, self.fd as usize, 0, 0, 0, 0, 0) };
    }
}

/// An owned nonblocking `eventfd`, the reactor's cross-thread waker:
/// any thread [`signal`](EventFd::signal)s it, the shard's `epoll`
/// reports it readable, and the shard [`drain`](EventFd::drain)s it
/// back to zero. Closed on drop.
pub struct EventFd {
    fd: RawFd,
}

impl EventFd {
    /// `eventfd2(0, EFD_CLOEXEC | EFD_NONBLOCK)`.
    pub fn new() -> io::Result<EventFd> {
        // SAFETY: eventfd2 takes no pointers.
        let fd =
            check(unsafe { syscall6(nr::EVENTFD2, 0, EFD_CLOEXEC | EFD_NONBLOCK, 0, 0, 0, 0) })?;
        Ok(EventFd { fd: fd as RawFd })
    }

    /// The raw fd, for epoll registration.
    pub fn raw_fd(&self) -> RawFd {
        self.fd
    }

    /// Adds 1 to the eventfd counter, waking any `epoll_pwait` watching
    /// it. Best-effort: a full counter (`EAGAIN`) already guarantees a
    /// pending wakeup, and no other failure is actionable here.
    pub fn signal(&self) {
        let one: u64 = 1;
        // SAFETY: writes exactly 8 bytes from a live u64.
        let _ = unsafe {
            syscall6(
                nr::WRITE,
                self.fd as usize,
                std::ptr::addr_of!(one) as usize,
                8,
                0,
                0,
                0,
            )
        };
    }

    /// Reads the counter back to zero so the next `signal` re-arms the
    /// readable edge. Nonblocking: an already-drained fd is a no-op.
    pub fn drain(&self) {
        let mut sink: u64 = 0;
        loop {
            // SAFETY: reads exactly 8 bytes into a live u64.
            let ret = unsafe {
                syscall6(
                    nr::READ,
                    self.fd as usize,
                    std::ptr::addr_of_mut!(sink) as usize,
                    8,
                    0,
                    0,
                    0,
                )
            };
            match check(ret) {
                Ok(_) => return, // one 8-byte read empties an eventfd
                Err(e) if e.raw_os_error() == Some(EINTR) => continue,
                Err(e) if e.raw_os_error() == Some(EAGAIN) => return,
                Err(_) => return,
            }
        }
    }
}

impl Drop for EventFd {
    fn drop(&mut self) {
        // SAFETY: we own the fd and close it exactly once.
        let _ = unsafe { syscall6(nr::CLOSE, self.fd as usize, 0, 0, 0, 0, 0) };
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::{Read, Write};
    use std::net::{TcpListener, TcpStream};
    use std::os::unix::io::AsRawFd;

    #[test]
    fn eventfd_signal_wakes_epoll_and_drain_rearms() {
        let ep = Epoll::new().unwrap();
        let ev = EventFd::new().unwrap();
        ep.add(ev.raw_fd(), EPOLLIN, 7).unwrap();
        let mut events = [EpollEvent::default(); 4];

        // Not signalled: a zero-timeout wait reports nothing.
        assert_eq!(ep.wait(&mut events, 0).unwrap(), 0);

        ev.signal();
        ev.signal(); // coalesces: still one readable edge
        let n = ep.wait(&mut events, 1000).unwrap();
        assert_eq!(n, 1);
        let token = events[0].data;
        assert_eq!(token, 7);

        ev.drain();
        assert_eq!(ep.wait(&mut events, 0).unwrap(), 0, "drained fd is quiet");
        ev.signal();
        assert_eq!(ep.wait(&mut events, 1000).unwrap(), 1, "drain re-arms");
    }

    #[test]
    fn epoll_reports_socket_readability_and_writability() {
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let client = TcpStream::connect(listener.local_addr().unwrap()).unwrap();
        let (server, _) = listener.accept().unwrap();
        server.set_nonblocking(true).unwrap();

        let ep = Epoll::new().unwrap();
        ep.add(server.as_raw_fd(), EPOLLIN | EPOLLRDHUP, 42)
            .unwrap();
        let mut events = [EpollEvent::default(); 4];
        assert_eq!(ep.wait(&mut events, 0).unwrap(), 0, "idle socket is quiet");

        (&client).write_all(b"ping").unwrap();
        let n = ep.wait(&mut events, 1000).unwrap();
        assert_eq!(n, 1);
        let flags = events[0].events;
        let token = events[0].data;
        assert_eq!(token, 42);
        assert_ne!(flags & EPOLLIN, 0);

        // MOD to write interest: an empty socket buffer is writable.
        ep.modify(server.as_raw_fd(), EPOLLOUT, 42).unwrap();
        let n = ep.wait(&mut events, 1000).unwrap();
        assert_eq!(n, 1);
        let flags = events[0].events;
        assert_ne!(flags & EPOLLOUT, 0);

        // Peer close shows up as RDHUP/HUP alongside read interest.
        ep.modify(server.as_raw_fd(), EPOLLIN | EPOLLRDHUP, 42)
            .unwrap();
        drop(client);
        let n = ep.wait(&mut events, 1000).unwrap();
        assert_eq!(n, 1);
        let flags = events[0].events;
        assert_ne!(flags & (EPOLLRDHUP | EPOLLHUP | EPOLLIN), 0);
        let mut buf = [0u8; 16];
        assert_eq!(
            (&server).read(&mut buf).unwrap(),
            4,
            "payload still readable"
        );
        assert_eq!((&server).read(&mut buf).unwrap(), 0, "then clean EOF");

        ep.del(server.as_raw_fd()).unwrap();
    }
}
