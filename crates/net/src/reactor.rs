//! The readiness engine: N shard threads, each running an epoll loop
//! over nonblocking sockets, replacing the two-blocking-threads-per-
//! connection anatomy that caps realistic connection counts.
//!
//! One shard owns each connection for its whole life, so all handler
//! callbacks for a connection run on one thread and need no locking of
//! their own. The pieces:
//!
//! * **[`Conn`] state machine** (shard-local, private): a nonblocking
//!   `TcpStream`, a streaming [`FrameAssembler`] for incremental frame
//!   reassembly (a 1-byte trickle is fine), a partially-written
//!   outbound frame with resume offset, and the epoll interest mask
//!   currently armed.
//! * **Outbound queue with backpressure**: completions enqueue
//!   pre-encoded frames from any thread via [`ConnHandle::send`]; the
//!   shard drains them to the socket, re-arming `EPOLLOUT` only on a
//!   partial write. When a client stops draining and the queue grows
//!   past the high-water mark, the shard *pauses reads* (drops
//!   `EPOLLIN`) until the queue falls below half the mark — per-client
//!   backpressure instead of unbounded buffering.
//! * **Waker protocol**: each shard has an `eventfd`; cross-thread
//!   sends (a `Ticket::on_ready` completion on a pool worker) push a
//!   mailbox entry and signal it. A per-connection `notified` flag
//!   coalesces storms; sends *from the shard thread itself* skip the
//!   signal entirely, because the loop re-checks its mailbox before
//!   sleeping.
//! * **Drain ordering** (same GoAway/drain/FIN contract as the
//!   blocking front end): `in_flight` opens before a completion
//!   callback registers, so "reads done ∧ in_flight == 0 ∧ queue and
//!   write buffer empty" is only observable when every admitted
//!   request's response has hit the socket — then the shard half-closes
//!   with FIN. [`Reactor::sever_reads`] is the readiness analogue of
//!   `shutdown(Read)`-ing every connection; [`Reactor::wait_drained`]
//!   blocks until the last FIN.
//!
//! The epoll/eventfd syscalls live in [`crate::sys`]; this module is
//! safe code. DESIGN.md §13 carries the full state-machine argument.
//!
//! This module also hosts [`Outbound`], the blocking reader→writer
//! handoff that `net::server` and `router` previously each owned a
//! copy of — the blocking baseline and the reactor share one
//! drain-condition definition, so the shutdown proofs transfer.

use crate::sys::{Epoll, EpollEvent, EventFd, EPOLLERR, EPOLLHUP, EPOLLIN, EPOLLOUT, EPOLLRDHUP};
use crate::wire::{FrameAssembler, WireError};
use std::collections::{HashMap, VecDeque};
use std::io::{self, Read, Write};
use std::net::{Shutdown, TcpStream};
use std::os::unix::io::AsRawFd;
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};
use std::sync::{Arc, Condvar, Mutex, OnceLock};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

/// Token reserved for each shard's eventfd waker in its epoll set.
const WAKER_TOKEN: u64 = u64::MAX;

/// Per-`read` chunk size. 64 KiB covers many coalesced frames per
/// syscall without a per-connection standing buffer.
const READ_CHUNK: usize = 64 * 1024;

/// Sizing knobs for [`Reactor::new`].
#[derive(Debug, Clone)]
pub struct ReactorConfig {
    /// Shard (event-loop thread) count. Connections are assigned
    /// round-robin at registration and never migrate.
    pub shards: usize,
    /// Outbound high-water mark in bytes. A connection whose unsent
    /// responses exceed this stops being read (its `EPOLLIN` is
    /// dropped) until the backlog drains below half the mark.
    pub high_water: usize,
    /// Period of the `on_tick` sweep (idle/stall detection lives in
    /// handlers, not the reactor) and the upper bound on how long a
    /// shard sleeps in `epoll_pwait`.
    pub tick: Duration,
}

impl Default for ReactorConfig {
    fn default() -> Self {
        ReactorConfig {
            shards: 1,
            high_water: 1 << 20,
            tick: Duration::from_millis(200),
        }
    }
}

/// What a connection's owner does with its traffic. All methods run on
/// the connection's shard thread; `&mut self` needs no further locking.
pub trait ConnHandler: Send + 'static {
    /// A complete frame payload arrived (`Ok`), or the inbound stream
    /// desynchronized with a framing error (`Err`, reported once; no
    /// further frames follow). Respond via [`ConnHandle::send`].
    fn on_frame(&mut self, payload: Result<Vec<u8>, WireError>, conn: &ConnHandle);

    /// Called just before a frame's first byte hits the socket. Return
    /// `false` to sever the connection instead (fault injection); the
    /// frame is discarded and teardown is non-graceful.
    fn before_write(&mut self, conn: &ConnHandle) -> bool {
        let _ = conn;
        true
    }

    /// A complete frame finished writing to the socket.
    fn on_written(&mut self, conn: &ConnHandle) {
        let _ = conn;
    }

    /// Periodic callback, roughly every [`ReactorConfig::tick`]: the
    /// place for idle timeouts and stall detection.
    fn on_tick(&mut self, conn: &ConnHandle) {
        let _ = conn;
    }

    /// The connection is gone: `graceful` when every queued response
    /// was flushed and the socket got a clean FIN, `false` when it was
    /// severed (peer reset, write error, injected drop, [`ConnHandle::kill`]).
    fn on_close(&mut self, graceful: bool);
}

/// Cross-thread state of one reactor connection, shared between its
/// [`ConnHandle`]s and its shard.
struct ConnShared {
    token: u64,
    shard: Arc<ShardHandle>,
    state: Mutex<ConnQueue>,
    /// Bytes sitting in `state.queue` (backpressure bookkeeping,
    /// readable without the lock).
    queued_bytes: AtomicUsize,
    /// Coalesces notify mails: set by the first sender, cleared by the
    /// shard right before it processes the connection.
    notified: AtomicBool,
}

struct ConnQueue {
    /// Pre-encoded response frames awaiting the socket.
    queue: VecDeque<Vec<u8>>,
    /// Completions registered but not yet enqueued/discarded — the
    /// same drain guard as the blocking [`Outbound`].
    in_flight: usize,
    /// No further frames will be dispatched from this connection
    /// (EOF, framing error, handler-requested close, or sever_reads).
    read_done: bool,
    /// Severed; sends discard.
    dead: bool,
}

/// What the shard should do next for a connection, decided under the
/// queue lock (nonblocking sibling of [`WriterStep`]).
enum NextOut {
    Frame(Vec<u8>),
    Drained,
    Idle,
    Dead,
}

impl ConnShared {
    fn poll_step(&self) -> NextOut {
        let mut st = self.state.lock().expect("conn queue poisoned");
        if st.dead {
            return NextOut::Dead;
        }
        if let Some(bytes) = st.queue.pop_front() {
            self.queued_bytes.fetch_sub(bytes.len(), Ordering::Relaxed);
            return NextOut::Frame(bytes);
        }
        if st.read_done && st.in_flight == 0 {
            return NextOut::Drained;
        }
        NextOut::Idle
    }

    fn mark_read_done(&self) {
        self.state.lock().expect("conn queue poisoned").read_done = true;
    }

    fn is_read_done(&self) -> bool {
        self.state.lock().expect("conn queue poisoned").read_done
    }

    fn mark_dead(&self) {
        let mut st = self.state.lock().expect("conn queue poisoned");
        st.dead = true;
        st.queue.clear();
        self.queued_bytes.store(0, Ordering::Relaxed);
    }
}

/// A clonable, thread-safe handle to one reactor connection: the only
/// way code off the shard thread (completion callbacks, shutdown paths)
/// touches it.
#[derive(Clone)]
pub struct ConnHandle {
    shared: Arc<ConnShared>,
}

impl ConnHandle {
    /// Enqueues a pre-encoded frame for the socket and wakes the shard.
    /// With `completes_in_flight`, also closes an
    /// [`open_in_flight`](ConnHandle::open_in_flight) slot — pass
    /// `true` from completion callbacks so the drain condition stays
    /// honest. Returns `false` if the connection is already dead (the
    /// frame is discarded, exactly like the blocking writer would).
    pub fn send(&self, bytes: Vec<u8>, completes_in_flight: bool) -> bool {
        let alive = {
            let mut st = self.shared.state.lock().expect("conn queue poisoned");
            if completes_in_flight {
                st.in_flight -= 1;
            }
            if st.dead {
                false
            } else {
                self.shared
                    .queued_bytes
                    .fetch_add(bytes.len(), Ordering::Relaxed);
                st.queue.push_back(bytes);
                true
            }
        };
        // Wake even on a discard: in_flight hitting zero can complete
        // a drain the shard is waiting on.
        self.notify();
        alive
    }

    /// Declares a completion that will later [`send`](ConnHandle::send)
    /// (or discard) a response. Call *before* registering the callback,
    /// so the shard can never observe "reads done, nothing in flight"
    /// in the registration gap.
    pub fn open_in_flight(&self) {
        self.shared
            .state
            .lock()
            .expect("conn queue poisoned")
            .in_flight += 1;
    }

    /// Stops reading and closes the connection once every in-flight
    /// completion has resolved and every queued frame is flushed —
    /// the graceful "GoAway then FIN" path.
    pub fn close_after_flush(&self) {
        self.shared.mark_read_done();
        self.notify();
    }

    /// Severs the connection now: queued frames are discarded and
    /// teardown is non-graceful.
    pub fn kill(&self) {
        self.shared.mark_dead();
        self.notify();
    }

    /// Whether the connection has been severed.
    pub fn is_dead(&self) -> bool {
        self.shared.state.lock().expect("conn queue poisoned").dead
    }

    /// Bytes currently queued behind this connection's socket.
    pub fn queued_bytes(&self) -> usize {
        self.shared.queued_bytes.load(Ordering::Relaxed)
    }

    /// The connection's reactor-wide token (stable, never reused).
    pub fn token(&self) -> u64 {
        self.shared.token
    }

    fn notify(&self) {
        if self.shared.notified.swap(true, Ordering::AcqRel) {
            return; // a mail is already pending
        }
        let shard = &self.shared.shard;
        shard
            .mailbox
            .lock()
            .expect("shard mailbox poisoned")
            .push(Mail::Notify(self.shared.token));
        // The shard re-checks its mailbox before sleeping, so a send
        // from the shard thread itself needs no eventfd round-trip.
        if shard.thread_id.get().copied() != Some(std::thread::current().id()) {
            shard.waker.signal();
        }
    }
}

enum Mail {
    Register {
        stream: TcpStream,
        shared: Arc<ConnShared>,
        handler: Box<dyn ConnHandler>,
    },
    Notify(u64),
    SeverReads,
    Stop,
}

/// The cross-thread face of one shard: its mailbox and waker.
struct ShardHandle {
    mailbox: Mutex<Vec<Mail>>,
    waker: EventFd,
    /// The shard thread's id, set once at spawn — lets same-thread
    /// sends skip the eventfd signal.
    thread_id: OnceLock<std::thread::ThreadId>,
    /// Copy of [`ReactorConfig::high_water`], read on the hot path.
    high_water: usize,
    /// `reactor.conns_live.shard<k>` gauge.
    conns_gauge: obs::Gauge,
}

struct ReactorShared {
    config: ReactorConfig,
    shards: Vec<Arc<ShardHandle>>,
    next_shard: AtomicUsize,
    next_token: AtomicU64,
    /// Registered connections not yet torn down (either direction).
    live: Mutex<usize>,
    drained: Condvar,
}

/// Registry mirrors of the reactor's own health: how often shards wake,
/// how often they wake for nothing, and how often the kernel split a
/// frame write.
#[derive(Clone)]
struct ReactorObs {
    /// Eventfd wakeups observed (`reactor.wakeups`).
    wakeups: obs::Counter,
    /// Notify wakeups that found no work — the frame was already
    /// flushed by the time the shard looked (`reactor.spurious_polls`).
    spurious_polls: obs::Counter,
    /// Frame writes the kernel cut short, resumed on the next
    /// `EPOLLOUT` (`reactor.partial_writes`).
    partial_writes: obs::Counter,
}

impl ReactorObs {
    fn new(registry: &obs::Registry) -> ReactorObs {
        ReactorObs {
            wakeups: registry.counter("reactor.wakeups"),
            spurious_polls: registry.counter("reactor.spurious_polls"),
            partial_writes: registry.counter("reactor.partial_writes"),
        }
    }
}

/// An N-shard epoll event loop multiplexing framed connections. See
/// the module docs for the state machine and the waker protocol.
pub struct Reactor {
    shared: Arc<ReactorShared>,
    threads: Mutex<Vec<JoinHandle<()>>>,
    stopped: AtomicBool,
}

impl Reactor {
    /// Spawns the shard threads. Gauges and counters land in
    /// `registry` under `reactor.*`.
    pub fn new(config: ReactorConfig, registry: &obs::Registry) -> io::Result<Reactor> {
        assert!(config.shards > 0, "reactor needs at least one shard");
        let obs = ReactorObs::new(registry);
        let mut handles = Vec::with_capacity(config.shards);
        for k in 0..config.shards {
            handles.push(Arc::new(ShardHandle {
                mailbox: Mutex::new(Vec::new()),
                waker: EventFd::new()?,
                thread_id: OnceLock::new(),
                high_water: config.high_water,
                conns_gauge: registry.gauge(&format!("reactor.conns_live.shard{k}")),
            }));
        }
        let shared = Arc::new(ReactorShared {
            config: config.clone(),
            shards: handles,
            next_shard: AtomicUsize::new(0),
            next_token: AtomicU64::new(0),
            live: Mutex::new(0),
            drained: Condvar::new(),
        });
        let mut threads = Vec::with_capacity(config.shards);
        for k in 0..config.shards {
            let epoll = Epoll::new()?;
            epoll.add(shared.shards[k].waker.raw_fd(), EPOLLIN, WAKER_TOKEN)?;
            let shard_shared = Arc::clone(&shared);
            let shard_obs = obs.clone();
            threads.push(
                std::thread::Builder::new()
                    .name(format!("reactor-shard-{k}"))
                    .spawn(move || {
                        let mut shard = Shard {
                            epoll,
                            handle: Arc::clone(&shard_shared.shards[k]),
                            reactor: shard_shared,
                            obs: shard_obs,
                            conns: HashMap::new(),
                        };
                        shard
                            .handle
                            .thread_id
                            .set(std::thread::current().id())
                            .expect("shard thread id set once");
                        shard.run();
                    })
                    .expect("spawn reactor shard"),
            );
        }
        Ok(Reactor {
            shared,
            threads: Mutex::new(threads),
            stopped: AtomicBool::new(false),
        })
    }

    /// Hands a connection to the least-recently-used shard. The stream
    /// is switched to nonblocking here; `handler` owns its traffic from
    /// the first readable byte.
    pub fn register(
        &self,
        stream: TcpStream,
        handler: Box<dyn ConnHandler>,
    ) -> io::Result<ConnHandle> {
        stream.set_nonblocking(true)?;
        let token = self.shared.next_token.fetch_add(1, Ordering::Relaxed);
        let idx = self.shared.next_shard.fetch_add(1, Ordering::Relaxed) % self.shared.shards.len();
        let shard = Arc::clone(&self.shared.shards[idx]);
        let shared = Arc::new(ConnShared {
            token,
            shard: Arc::clone(&shard),
            state: Mutex::new(ConnQueue {
                queue: VecDeque::new(),
                in_flight: 0,
                read_done: false,
                dead: false,
            }),
            queued_bytes: AtomicUsize::new(0),
            notified: AtomicBool::new(false),
        });
        *self.shared.live.lock().expect("reactor live poisoned") += 1;
        shard
            .mailbox
            .lock()
            .expect("shard mailbox poisoned")
            .push(Mail::Register {
                stream,
                shared: Arc::clone(&shared),
                handler,
            });
        shard.waker.signal();
        Ok(ConnHandle { shared })
    }

    /// Connections currently registered and not yet torn down.
    pub fn conns_live(&self) -> usize {
        *self.shared.live.lock().expect("reactor live poisoned")
    }

    /// Readiness analogue of `shutdown(Read)` on every connection:
    /// every shard marks all its connections read-done, so no further
    /// requests are dispatched and each connection FINs as soon as its
    /// in-flight responses flush.
    pub fn sever_reads(&self) {
        for shard in &self.shared.shards {
            shard
                .mailbox
                .lock()
                .expect("shard mailbox poisoned")
                .push(Mail::SeverReads);
            shard.waker.signal();
        }
    }

    /// Blocks until every registered connection has been torn down —
    /// the "wait for the last writer to flush and FIN" step.
    pub fn wait_drained(&self) {
        let mut live = self.shared.live.lock().expect("reactor live poisoned");
        while *live > 0 {
            live = self
                .shared
                .drained
                .wait(live)
                .expect("reactor live poisoned");
        }
    }

    /// Stops and joins the shard threads. Connections still registered
    /// are severed (non-graceful) — call [`Reactor::wait_drained`]
    /// first for a clean drain. Idempotent; also runs on drop.
    pub fn shutdown(&self) {
        if self.stopped.swap(true, Ordering::SeqCst) {
            return;
        }
        for shard in &self.shared.shards {
            shard
                .mailbox
                .lock()
                .expect("shard mailbox poisoned")
                .push(Mail::Stop);
            shard.waker.signal();
        }
        let mut threads = self.threads.lock().expect("reactor threads poisoned");
        for handle in threads.drain(..) {
            let _ = handle.join();
        }
    }
}

impl Drop for Reactor {
    fn drop(&mut self) {
        self.shutdown();
    }
}

/// One connection's shard-local state machine.
struct Conn {
    stream: TcpStream,
    shared: Arc<ConnShared>,
    handler: Box<dyn ConnHandler>,
    assembler: FrameAssembler,
    /// The frame currently being written, with resume offset `woff` —
    /// a partial write parks here until the next `EPOLLOUT`.
    wbuf: Vec<u8>,
    woff: usize,
    /// Still dispatching inbound frames (no EOF/error/close yet).
    read_open: bool,
    /// Reads paused by the outbound high-water mark.
    paused: bool,
    /// `EPOLLOUT` armed: the last flush ended in a partial write.
    want_write: bool,
    /// Interest mask currently armed in the epoll set.
    interest: u32,
}

impl Conn {
    fn handle(&self) -> ConnHandle {
        ConnHandle {
            shared: Arc::clone(&self.shared),
        }
    }
}

struct Shard {
    epoll: Epoll,
    handle: Arc<ShardHandle>,
    reactor: Arc<ReactorShared>,
    obs: ReactorObs,
    conns: HashMap<u64, Conn>,
}

/// Outcome of one `process_conn` pass.
enum Verdict {
    /// Keep the connection.
    Keep,
    /// Tear it down; `true` = drained cleanly, FIN.
    Close(bool),
}

impl Shard {
    fn run(&mut self) {
        let tick = self.reactor.config.tick;
        let mut last_tick = Instant::now();
        let mut events = [EpollEvent::default(); 256];
        let mut stopping = false;
        loop {
            // A shard-local send leaves mail without signalling the
            // eventfd; never sleep on a non-empty mailbox.
            let mailbox_empty = self
                .handle
                .mailbox
                .lock()
                .expect("shard mailbox poisoned")
                .is_empty();
            let timeout_ms = if !mailbox_empty {
                0
            } else {
                tick.saturating_sub(last_tick.elapsed()).as_millis() as i32
            };
            let n = self
                .epoll
                .wait(&mut events, timeout_ms.max(0))
                .unwrap_or_default();

            // Token → (readable-ish, notified) work list for this pass.
            let mut work: HashMap<u64, (bool, bool)> = HashMap::new();
            for ev in &events[..n] {
                let token = ev.data;
                let flags = ev.events;
                if token == WAKER_TOKEN {
                    self.handle.waker.drain();
                    self.obs.wakeups.inc();
                    continue;
                }
                let entry = work.entry(token).or_insert((false, false));
                if flags & (EPOLLIN | EPOLLRDHUP | EPOLLERR | EPOLLHUP) != 0 {
                    entry.0 = true;
                }
                // EPOLLOUT needs no flag of its own: every processed
                // connection attempts a flush.
            }

            // Drain the mailbox (registrations, notifies, control).
            let mail =
                std::mem::take(&mut *self.handle.mailbox.lock().expect("shard mailbox poisoned"));
            for m in mail {
                match m {
                    Mail::Register {
                        stream,
                        shared,
                        handler,
                    } => self.add_conn(stream, shared, handler),
                    Mail::Notify(token) => {
                        work.entry(token).or_insert((false, false)).1 = true;
                    }
                    Mail::SeverReads => {
                        for (token, conn) in self.conns.iter_mut() {
                            conn.shared.mark_read_done();
                            conn.read_open = false;
                            work.entry(*token).or_insert((false, false));
                        }
                    }
                    Mail::Stop => stopping = true,
                }
            }

            // Tick pass: idle/stall detection lives in the handlers.
            if last_tick.elapsed() >= tick {
                last_tick = Instant::now();
                let tokens: Vec<u64> = self.conns.keys().copied().collect();
                for token in tokens {
                    if let Some(conn) = self.conns.get_mut(&token) {
                        let handle = conn.handle();
                        conn.handler.on_tick(&handle);
                        work.entry(token).or_insert((false, false));
                    }
                }
            }

            for (token, (readable, notified)) in work {
                self.process_conn(token, readable, notified);
            }

            if stopping {
                let tokens: Vec<u64> = self.conns.keys().copied().collect();
                for token in tokens {
                    self.teardown(token, false);
                }
                return;
            }
        }
    }

    fn add_conn(
        &mut self,
        stream: TcpStream,
        shared: Arc<ConnShared>,
        mut handler: Box<dyn ConnHandler>,
    ) {
        let token = shared.token;
        let interest = EPOLLIN | EPOLLRDHUP;
        if self.epoll.add(stream.as_raw_fd(), interest, token).is_err() {
            shared.mark_dead();
            handler.on_close(false);
            self.drop_live();
            return;
        }
        self.handle.conns_gauge.add(1);
        self.conns.insert(
            token,
            Conn {
                stream,
                shared,
                handler,
                assembler: FrameAssembler::new(),
                wbuf: Vec::new(),
                woff: 0,
                read_open: true,
                paused: false,
                want_write: false,
                interest,
            },
        );
        // Bytes may already be waiting (level-triggered epoll would
        // tell us, but not until the next wait) — process eagerly.
        self.process_conn(token, true, false);
    }

    fn process_conn(&mut self, token: u64, readable: bool, notified: bool) {
        let verdict = match self.conns.get_mut(&token) {
            Some(conn) => {
                // Clear before looking so a send racing this pass
                // re-notifies rather than being swallowed.
                conn.shared.notified.store(false, Ordering::Release);
                drive_conn(conn, &self.epoll, &self.obs, readable, notified)
            }
            None => return, // torn down earlier in this pass
        };
        if let Verdict::Close(graceful) = verdict {
            self.teardown(token, graceful);
        }
    }

    fn teardown(&mut self, token: u64, graceful: bool) {
        let Some(mut conn) = self.conns.remove(&token) else {
            return;
        };
        conn.shared.mark_dead();
        let _ = self.epoll.del(conn.stream.as_raw_fd());
        if graceful {
            // Everything flushed: half-close so the client reads a
            // clean EOF after the last frame.
            let _ = conn.stream.shutdown(Shutdown::Write);
        } else {
            let _ = conn.stream.shutdown(Shutdown::Both);
        }
        conn.handler.on_close(graceful);
        self.handle.conns_gauge.add(-1);
        self.drop_live();
    }

    fn drop_live(&self) {
        let mut live = self.reactor.live.lock().expect("reactor live poisoned");
        *live -= 1;
        drop(live);
        self.reactor.drained.notify_all();
    }
}

/// Runs one connection through read → dispatch → flush → interest
/// update. Free function so the shard's map borrow stays out of the way.
fn drive_conn(
    conn: &mut Conn,
    epoll: &Epoll,
    obs: &ReactorObs,
    readable: bool,
    notified: bool,
) -> Verdict {
    let high_water = conn.shared.shard.high_water;
    let mut progress = false;

    if readable && conn.read_open {
        match read_and_dispatch(conn, high_water) {
            ReadOutcome::Ok(any) => progress |= any,
            ReadOutcome::Sever => return Verdict::Close(false),
        }
    }

    // A handler-requested close (GoAway sent, idle timeout) reaches the
    // shard as read_done; stop dispatching further inbound frames.
    if conn.read_open && conn.shared.is_read_done() {
        conn.read_open = false;
        progress = true;
    }

    // Flush: drain queued frames through the resume buffer.
    loop {
        if conn.woff == conn.wbuf.len() {
            if !conn.wbuf.is_empty() {
                let handle = conn.handle();
                conn.handler.on_written(&handle);
                conn.wbuf.clear();
                conn.woff = 0;
            }
            match conn.shared.poll_step() {
                NextOut::Dead => return Verdict::Close(false),
                NextOut::Drained => return Verdict::Close(true),
                NextOut::Idle => {
                    conn.want_write = false;
                    break;
                }
                NextOut::Frame(bytes) => {
                    let handle = conn.handle();
                    if !conn.handler.before_write(&handle) {
                        return Verdict::Close(false);
                    }
                    conn.wbuf = bytes;
                    conn.woff = 0;
                }
            }
        }
        match (&conn.stream).write(&conn.wbuf[conn.woff..]) {
            Ok(0) => return Verdict::Close(false),
            Ok(written) => {
                conn.woff += written;
                progress = true;
            }
            Err(e) if e.kind() == io::ErrorKind::WouldBlock => {
                obs.partial_writes.inc();
                conn.want_write = true;
                break;
            }
            Err(e) if e.kind() == io::ErrorKind::Interrupted => {}
            Err(_) => return Verdict::Close(false),
        }
    }

    if notified && !readable && !progress {
        obs.spurious_polls.inc();
    }

    // Backpressure: pause reads past the high-water mark, resume below
    // half of it.
    let backlog = conn.shared.queued_bytes.load(Ordering::Relaxed) + (conn.wbuf.len() - conn.woff);
    if !conn.paused && backlog > high_water {
        conn.paused = true;
    } else if conn.paused && backlog <= high_water / 2 {
        conn.paused = false;
    }

    let mut interest = 0;
    if conn.read_open && !conn.paused {
        interest |= EPOLLIN | EPOLLRDHUP;
    }
    if conn.want_write {
        interest |= EPOLLOUT;
    }
    if interest != conn.interest {
        let _ = epoll.modify(conn.stream.as_raw_fd(), interest, conn.shared.token);
        conn.interest = interest;
    }
    Verdict::Keep
}

/// The blocking reader→writer handoff for one connection — the
/// baseline (`Io::Blocking`) counterpart of a reactor connection's
/// queue, shared by `net::server` and `router` (which used to carry
/// duplicate copies). Same drain contract as the reactor:
/// `reader_done ∧ in_flight == 0 ∧ queue empty` ⇒ flush and FIN.
pub struct Outbound {
    state: Mutex<OutState>,
    wake: Condvar,
}

struct OutState {
    /// Pre-encoded response frames awaiting the socket.
    queue: VecDeque<Vec<u8>>,
    /// Tickets submitted whose callbacks have not yet enqueued (or
    /// discarded) a response.
    in_flight: usize,
    /// The reader will submit no further requests.
    reader_done: bool,
    /// The connection was severed; discard instead of enqueue.
    dead: bool,
}

/// What a blocking writer thread should do next, as decided by
/// [`Outbound::next_step`].
pub enum WriterStep {
    /// Write this frame to the socket.
    Write(Vec<u8>),
    /// Reader done, nothing in flight, queue empty: flush and FIN.
    Drained,
    /// Connection severed elsewhere.
    Dead,
}

impl Outbound {
    /// A fresh handoff with nothing queued or in flight.
    pub fn new() -> Arc<Outbound> {
        Arc::new(Outbound {
            state: Mutex::new(OutState {
                queue: VecDeque::new(),
                in_flight: 0,
                reader_done: false,
                dead: false,
            }),
            wake: Condvar::new(),
        })
    }

    /// Enqueues a frame for the writer (dropped silently if the
    /// connection is dead — the course-side ledgers already counted
    /// the request; the response simply has nowhere to go). With
    /// `completes_in_flight`, also closes an
    /// [`open_in_flight`](Outbound::open_in_flight) slot.
    pub fn push(&self, bytes: Vec<u8>, completes_in_flight: bool) {
        let mut st = self.state.lock().expect("outbound mutex poisoned");
        if completes_in_flight {
            st.in_flight -= 1;
        }
        if !st.dead {
            st.queue.push_back(bytes);
        }
        drop(st);
        self.wake.notify_all();
    }

    /// Declares a completion that will later [`push`](Outbound::push)
    /// (or discard) a response. Call *before* registering the
    /// callback, so the writer can never observe "reader done, nothing
    /// in flight" in the registration gap.
    pub fn open_in_flight(&self) {
        self.state
            .lock()
            .expect("outbound mutex poisoned")
            .in_flight += 1;
    }

    /// The reader will submit no further requests; the writer may FIN
    /// once in-flight completions resolve and the queue drains.
    pub fn reader_done(&self) {
        self.state
            .lock()
            .expect("outbound mutex poisoned")
            .reader_done = true;
        self.wake.notify_all();
    }

    /// Severs the connection: queued and future frames are discarded.
    pub fn mark_dead(&self) {
        self.state.lock().expect("outbound mutex poisoned").dead = true;
        self.wake.notify_all();
    }

    /// Whether the connection has been severed.
    pub fn is_dead(&self) -> bool {
        self.state.lock().expect("outbound mutex poisoned").dead
    }

    /// Blocks until there is a frame to write, the connection has
    /// drained, or it has died — the writer thread's whole wait loop.
    pub fn next_step(&self) -> WriterStep {
        let mut st = self.state.lock().expect("outbound mutex poisoned");
        loop {
            if st.dead {
                return WriterStep::Dead;
            }
            if let Some(bytes) = st.queue.pop_front() {
                return WriterStep::Write(bytes);
            }
            if st.reader_done && st.in_flight == 0 {
                return WriterStep::Drained;
            }
            st = self.wake.wait(st).expect("outbound mutex poisoned");
        }
    }
}

enum ReadOutcome {
    /// Read side survived; `bool` = any bytes or frames moved.
    Ok(bool),
    /// I/O error: sever now.
    Sever,
}

fn read_and_dispatch(conn: &mut Conn, high_water: usize) -> ReadOutcome {
    let mut buf = vec![0u8; READ_CHUNK];
    let mut progress = false;
    loop {
        match (&conn.stream).read(&mut buf) {
            Ok(0) => {
                // EOF. At a frame boundary this is the client's clean
                // "no more requests"; mid-frame it is a truncation —
                // either way reads are done and the drain condition
                // takes over (matching the blocking reader, which
                // breaks without an error frame on both).
                conn.read_open = false;
                conn.shared.mark_read_done();
                return ReadOutcome::Ok(true);
            }
            Ok(n) => {
                progress = true;
                conn.assembler.feed(&buf[..n]);
                loop {
                    // Handlers may kill or close mid-burst (injected
                    // drop, GoAway); stop dispatching the moment the
                    // read side is logically closed.
                    if conn.shared.state.lock().expect("conn queue poisoned").dead {
                        return ReadOutcome::Ok(progress);
                    }
                    if conn.shared.is_read_done() {
                        conn.read_open = false;
                        return ReadOutcome::Ok(progress);
                    }
                    match conn.assembler.next_frame() {
                        Ok(Some(payload)) => {
                            let handle = conn.handle();
                            conn.handler.on_frame(Ok(payload), &handle);
                        }
                        Ok(None) => break,
                        Err(e) => {
                            // Framing error: the stream offset is
                            // unknowable. Report once; reads are done.
                            let handle = conn.handle();
                            conn.handler.on_frame(Err(e), &handle);
                            conn.read_open = false;
                            conn.shared.mark_read_done();
                            return ReadOutcome::Ok(true);
                        }
                    }
                }
                // Don't keep inhaling requests for a client that is
                // not draining its responses.
                if conn.shared.queued_bytes.load(Ordering::Relaxed) > high_water {
                    return ReadOutcome::Ok(progress);
                }
            }
            Err(e) if e.kind() == io::ErrorKind::WouldBlock => return ReadOutcome::Ok(progress),
            Err(e) if e.kind() == io::ErrorKind::Interrupted => {}
            Err(_) => return ReadOutcome::Sever,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::wire::{
        decode_payload, encode_response, encode_stats_request, read_frame, Frame, RespStatus,
        ResponseFrame,
    };
    use std::net::TcpListener;

    /// Echoes every inbound frame back as a response frame carrying the
    /// payload length, and records lifecycle events.
    struct Echo {
        closed: Arc<Mutex<Option<bool>>>,
        frames: Arc<AtomicUsize>,
        written: Arc<AtomicUsize>,
    }

    impl ConnHandler for Echo {
        fn on_frame(&mut self, payload: Result<Vec<u8>, WireError>, conn: &ConnHandle) {
            match payload {
                Ok(p) => {
                    self.frames.fetch_add(1, Ordering::SeqCst);
                    let id = match decode_payload(&p) {
                        Ok(Frame::Stats { id }) => id,
                        other => panic!("unexpected frame: {other:?}"),
                    };
                    conn.send(
                        encode_response(&ResponseFrame {
                            id,
                            status: RespStatus::Ok,
                            retry_after_ms: 0,
                            backend: 0,
                            body: format!("len={}", p.len()),
                        }),
                        false,
                    );
                }
                Err(_) => conn.close_after_flush(),
            }
        }

        fn on_written(&mut self, _conn: &ConnHandle) {
            self.written.fetch_add(1, Ordering::SeqCst);
        }

        fn on_close(&mut self, graceful: bool) {
            *self.closed.lock().unwrap() = Some(graceful);
        }
    }

    fn pair() -> (TcpStream, TcpStream) {
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let client = TcpStream::connect(listener.local_addr().unwrap()).unwrap();
        let (server, _) = listener.accept().unwrap();
        (client, server)
    }

    #[test]
    fn trickled_frames_echo_and_eof_drains_to_fin() {
        let registry = obs::Registry::new();
        let reactor = Reactor::new(ReactorConfig::default(), &registry).unwrap();
        let (mut client, server) = pair();
        let closed = Arc::new(Mutex::new(None));
        let frames = Arc::new(AtomicUsize::new(0));
        let written = Arc::new(AtomicUsize::new(0));
        reactor
            .register(
                server,
                Box::new(Echo {
                    closed: Arc::clone(&closed),
                    frames: Arc::clone(&frames),
                    written: Arc::clone(&written),
                }),
            )
            .unwrap();
        assert_eq!(reactor.conns_live(), 1);

        // Two frames, dripped one byte at a time.
        let mut bytes = encode_stats_request(1);
        bytes.extend_from_slice(&encode_stats_request(2));
        for b in &bytes {
            client.write_all(std::slice::from_ref(b)).unwrap();
        }
        client.shutdown(Shutdown::Write).unwrap();

        let mut ids = Vec::new();
        while let Some(payload) = read_frame(&mut client).unwrap() {
            match decode_payload(&payload).unwrap() {
                Frame::Response(r) => {
                    assert_eq!(r.status, RespStatus::Ok);
                    ids.push(r.id);
                }
                other => panic!("unexpected frame: {other:?}"),
            }
        }
        ids.sort_unstable();
        assert_eq!(ids, vec![1, 2]);
        assert_eq!(frames.load(Ordering::SeqCst), 2);
        assert_eq!(written.load(Ordering::SeqCst), 2);

        reactor.wait_drained();
        assert_eq!(*closed.lock().unwrap(), Some(true), "clean drain FINs");
        assert_eq!(reactor.conns_live(), 0);
        reactor.shutdown();
    }

    #[test]
    fn in_flight_holds_the_fin_until_the_async_completion_lands() {
        let registry = obs::Registry::new();
        let reactor = Reactor::new(ReactorConfig::default(), &registry).unwrap();
        let (mut client, server) = pair();
        let closed = Arc::new(Mutex::new(None));
        let handle = reactor
            .register(
                server,
                Box::new(Echo {
                    closed: Arc::clone(&closed),
                    frames: Arc::new(AtomicUsize::new(0)),
                    written: Arc::new(AtomicUsize::new(0)),
                }),
            )
            .unwrap();

        // Simulate a submitted ticket: open before the callback exists.
        handle.open_in_flight();
        client.shutdown(Shutdown::Write).unwrap(); // reads finish now

        std::thread::sleep(Duration::from_millis(100));
        assert_eq!(
            reactor.conns_live(),
            1,
            "in-flight completion must hold the drain"
        );

        // The "pool worker" completes from another thread.
        let worker_handle = handle.clone();
        std::thread::spawn(move || {
            worker_handle.send(
                encode_response(&ResponseFrame {
                    id: 9,
                    status: RespStatus::Ok,
                    retry_after_ms: 0,
                    backend: 0,
                    body: "late".to_string(),
                }),
                true,
            );
        });

        let payload = read_frame(&mut client).unwrap().expect("late response");
        match decode_payload(&payload).unwrap() {
            Frame::Response(r) => assert_eq!(r.id, 9),
            other => panic!("unexpected frame: {other:?}"),
        }
        assert!(read_frame(&mut client).unwrap().is_none(), "then FIN");
        reactor.wait_drained();
        assert_eq!(*closed.lock().unwrap(), Some(true));
    }

    #[test]
    fn kill_severs_and_reports_non_graceful() {
        let registry = obs::Registry::new();
        let reactor = Reactor::new(ReactorConfig::default(), &registry).unwrap();
        let (client, server) = pair();
        let closed = Arc::new(Mutex::new(None));
        let handle = reactor
            .register(
                server,
                Box::new(Echo {
                    closed: Arc::clone(&closed),
                    frames: Arc::new(AtomicUsize::new(0)),
                    written: Arc::new(AtomicUsize::new(0)),
                }),
            )
            .unwrap();
        handle.kill();
        reactor.wait_drained();
        assert_eq!(
            *closed.lock().unwrap(),
            Some(false),
            "sever is not graceful"
        );
        assert!(handle.is_dead());
        assert!(
            !handle.send(vec![1, 2, 3], false),
            "sends to a dead conn are discarded"
        );
        drop(client);
    }

    #[test]
    fn sever_reads_stops_dispatch_and_flushes_like_shutdown_read() {
        let registry = obs::Registry::new();
        let reactor = Reactor::new(ReactorConfig::default(), &registry).unwrap();
        let (mut client, server) = pair();
        let closed = Arc::new(Mutex::new(None));
        let frames = Arc::new(AtomicUsize::new(0));
        reactor
            .register(
                server,
                Box::new(Echo {
                    closed: Arc::clone(&closed),
                    frames: Arc::clone(&frames),
                    written: Arc::new(AtomicUsize::new(0)),
                }),
            )
            .unwrap();
        // One request in, echoed out.
        client.write_all(&encode_stats_request(5)).unwrap();
        let payload = read_frame(&mut client).unwrap().expect("echo");
        assert!(matches!(
            decode_payload(&payload).unwrap(),
            Frame::Response(_)
        ));
        // Sever reads: the connection drains (nothing pending) and FINs
        // even though the client never closed its write half.
        reactor.sever_reads();
        assert!(read_frame(&mut client).unwrap().is_none(), "clean FIN");
        reactor.wait_drained();
        assert_eq!(*closed.lock().unwrap(), Some(true));
        assert_eq!(frames.load(Ordering::SeqCst), 1);
    }

    #[test]
    fn framing_error_reaches_the_handler_once() {
        let registry = obs::Registry::new();
        let reactor = Reactor::new(ReactorConfig::default(), &registry).unwrap();
        let (mut client, server) = pair();
        let closed = Arc::new(Mutex::new(None));
        let frames = Arc::new(AtomicUsize::new(0));
        reactor
            .register(
                server,
                Box::new(Echo {
                    closed: Arc::clone(&closed),
                    frames: Arc::clone(&frames),
                    written: Arc::new(AtomicUsize::new(0)),
                }),
            )
            .unwrap();
        // 4 GiB length prefix: assembler rejects before allocating;
        // Echo answers by closing after flush.
        client.write_all(&[0xFF, 0xFF, 0xFF, 0xFF, 0x00]).unwrap();
        assert!(read_frame(&mut client).unwrap().is_none(), "closed");
        reactor.wait_drained();
        assert_eq!(*closed.lock().unwrap(), Some(true));
        assert_eq!(frames.load(Ordering::SeqCst), 0, "no valid frame seen");
    }

    #[test]
    fn many_conns_on_few_shards_all_echo() {
        let registry = obs::Registry::new();
        let reactor = Reactor::new(
            ReactorConfig {
                shards: 2,
                ..ReactorConfig::default()
            },
            &registry,
        )
        .unwrap();
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap();
        let mut clients = Vec::new();
        for i in 0..40u64 {
            let client = TcpStream::connect(addr).unwrap();
            let (server, _) = listener.accept().unwrap();
            reactor
                .register(
                    server,
                    Box::new(Echo {
                        closed: Arc::new(Mutex::new(None)),
                        frames: Arc::new(AtomicUsize::new(0)),
                        written: Arc::new(AtomicUsize::new(0)),
                    }),
                )
                .unwrap();
            clients.push((i, client));
        }
        assert_eq!(reactor.conns_live(), 40);
        for (i, client) in &mut clients {
            client.write_all(&encode_stats_request(*i)).unwrap();
        }
        for (i, client) in &mut clients {
            let payload = read_frame(client).unwrap().expect("echo");
            match decode_payload(&payload).unwrap() {
                Frame::Response(r) => assert_eq!(r.id, *i),
                other => panic!("unexpected frame: {other:?}"),
            }
        }
        let snap = registry.snapshot();
        let per_shard: Vec<i64> = (0..2)
            .map(|k| {
                snap.gauge(&format!("reactor.conns_live.shard{k}"))
                    .unwrap_or(0)
            })
            .collect();
        assert_eq!(per_shard.iter().sum::<i64>(), 40);
        assert!(
            per_shard.iter().all(|&g| g == 20),
            "round-robin spreads conns evenly: {per_shard:?}"
        );
        drop(clients);
        reactor.wait_drained();
        reactor.shutdown();
    }
}
