//! The blocking TCP front end around a [`CourseServer`].
//!
//! Three kinds of thread, all plain `std::net` blocking I/O:
//!
//! * **one acceptor** — accepts sockets, enforces the connection cap
//!   at accept time (over cap → a single `GoAway` frame with a retry
//!   hint, then close: shedding at the socket layer, mirroring what
//!   admission does at the queue layer), and spawns the per-connection
//!   pair;
//! * **a reader per connection** — parses request frames, pins each
//!   frame's deadline budget to the local clock, and submits to the
//!   course server. Admission rejections become `RETRY` frames
//!   *immediately* — backpressure travels the wire instead of blocking
//!   the socket;
//! * **a writer per connection** — drains an outbound queue fed by
//!   [`Ticket::on_ready`] callbacks, so pipelined requests complete
//!   **out of order by request id**: the reader never waits on a
//!   ticket, and a slow bulk job cannot convoy a fast grade lookup's
//!   response.
//!
//! The reader→writer contract is the `in_flight` count in
//! [`Outbound`]: the reader increments it *before* registering the
//! callback, the callback decrements it when it enqueues (or, on a
//! dead connection, discards) the response, and the writer only
//! treats the connection as drained when the reader is done **and**
//! `in_flight` is zero **and** the queue is empty. That ordering is
//! why graceful shutdown cannot lose an admitted request: responses
//! are either written before the FIN or the connection was severed by
//! a fault — and in both cases the course server's per-class ledgers
//! still balance (`admitted == completed + shed`), which the
//! integration tests assert under [`FaultPlan`] wire faults.
//!
//! Shutdown ordering (see `DESIGN.md` §9 for the full argument):
//! stop accepting → wake and join the acceptor → `shutdown(Read)`
//! every connection (readers see clean EOF and stop submitting) →
//! drain the course server (every admitted ticket resolves, every
//! callback fires) → wait for the last writer to flush and FIN.
//!
//! That is [`Io::Blocking`], the measurable baseline. Under
//! [`Io::Readiness`] the same protocol logic — decode, submit,
//! backpressure frames, out-of-order completion, the GoAway/drain/FIN
//! shutdown — runs instead as a [`crate::reactor::ConnHandler`] on an
//! N-shard epoll loop, so thread count stays fixed while connection
//! count grows (E18 measures the crossover; DESIGN.md §13 has the
//! state machine). The acceptor, the connection cap, and the course
//! server integration are shared verbatim between the two modes; the
//! E2E suite runs its ledger-balance and graceful-drain tests under
//! both.

use crate::reactor::{ConnHandle, ConnHandler, Outbound, Reactor, ReactorConfig, WriterStep};
use crate::wire::{
    decode_payload, encode_response, read_frame, write_frame, Frame, RequestFrame, RespStatus,
    ResponseFrame, WireError,
};
use serve::fault::{FaultPlan, FaultPoint};
use serve::server::{CourseServer, SubmitError, SHED_BODY_PREFIX};
use std::collections::HashMap;
use std::io::{self, BufReader, BufWriter};
use std::net::{Shutdown, SocketAddr, TcpListener, TcpStream, ToSocketAddrs};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Condvar, Mutex};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

/// How the front end does socket I/O.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Io {
    /// Two blocking threads (reader + writer) per connection — the
    /// baseline whose thread count grows linearly with connections.
    Blocking,
    /// An N-shard epoll reactor ([`crate::reactor`]): thread count is
    /// `shards` regardless of connection count.
    Readiness {
        /// Event-loop shard count (each is one thread).
        shards: usize,
    },
}

/// Sizing and policy knobs for [`NetServer::bind`].
#[derive(Debug, Clone)]
pub struct NetConfig {
    /// Connection cap. Accepts past the cap are shed at the socket:
    /// one `GoAway` frame with a retry hint, then close.
    pub max_connections: usize,
    /// Per-connection read bound. A reader blocked longer than this
    /// with no bytes arriving treats the connection as idle-dead and
    /// closes its half (responses still in flight are still written).
    pub read_timeout: Duration,
    /// Per-connection write bound. A writer blocked longer than this
    /// on one frame (a client that stopped draining) severs the
    /// connection rather than hold the thread hostage.
    pub write_timeout: Duration,
    /// Suggested client backoff on accept-time `GoAway` frames, in ms.
    pub goaway_retry_ms: u64,
    /// Identity stamped on every response frame's `backend` field so a
    /// router (and its tests) can see which process answered. A
    /// single-process deployment keeps the default 0.
    pub backend_id: u32,
    /// Optional seeded wire faults ([`FaultPoint::NetReadFrame`],
    /// [`FaultPoint::NetWriteFrame`]): stalls slow a connection's
    /// reader/writer, drops sever the socket mid-traffic.
    pub fault_plan: Option<FaultPlan>,
    /// Socket I/O engine: blocking thread pairs (default) or the
    /// N-shard epoll reactor.
    pub io: Io,
    /// Shared admin token for the control-plane ops (7–10). `None`
    /// disables them entirely. A plain backend never acts on ctl ops
    /// regardless — membership is a router concept and the backend
    /// answers them with an `Error` pointing there — but the router
    /// reads this field from *its* config to authenticate operators.
    pub ctl_token: Option<String>,
}

impl Default for NetConfig {
    fn default() -> Self {
        NetConfig {
            max_connections: 64,
            read_timeout: Duration::from_secs(5),
            write_timeout: Duration::from_secs(5),
            goaway_retry_ms: 100,
            backend_id: 0,
            fault_plan: None,
            io: Io::Blocking,
            ctl_token: None,
        }
    }
}

/// Socket-layer counters, complementing the course server's request
/// ledgers.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct NetStats {
    /// Connections accepted and served.
    pub accepted_conns: u64,
    /// Connections shed at accept time with a `GoAway` frame.
    pub refused_conns: u64,
    /// Request frames decoded and handed to admission.
    pub requests: u64,
    /// Response frames written to sockets.
    pub responses: u64,
    /// Payloads that failed to decode (connection closed after an
    /// `Error` frame — a framing error desynchronizes the stream).
    pub malformed: u64,
    /// Connections severed mid-traffic: injected drops, I/O errors,
    /// write timeouts.
    pub dropped_conns: u64,
}

/// Registry mirrors of the socket-layer counters plus the wire-time
/// histograms (PR 5), resolved once from the course server's
/// [`obs::Registry`] at bind time. With a disabled registry every call
/// is a never-taken branch.
struct NetObs {
    /// Live connections right now (`net.conns.live`).
    conns_live: obs::Gauge,
    /// Mirror of [`NetStats::accepted_conns`] (`net.conns.accepted`).
    conns_accepted: obs::Counter,
    /// Mirror of [`NetStats::refused_conns`] (`net.conns.refused`).
    conns_refused: obs::Counter,
    /// Mirror of [`NetStats::dropped_conns`] (`net.conns.dropped`).
    conns_dropped: obs::Counter,
    /// Mirror of [`NetStats::requests`] (`net.requests`).
    requests: obs::Counter,
    /// Mirror of [`NetStats::responses`] (`net.responses`).
    responses: obs::Counter,
    /// Mirror of [`NetStats::malformed`] (`net.malformed`).
    malformed: obs::Counter,
    /// Stats (op 3) frames answered synchronously
    /// (`net.stats_requests`); they bypass admission, so they are *not*
    /// counted in `net.requests`.
    stats_requests: obs::Counter,
    /// Per-frame payload decode time (`net.frame.decode_us`) — the
    /// read-side share of wire time.
    decode_us: obs::HistogramHandle,
    /// Per-frame response encode time (`net.frame.encode_us`) — the
    /// write-side share of wire time.
    encode_us: obs::HistogramHandle,
}

impl NetObs {
    fn new(registry: &obs::Registry) -> NetObs {
        NetObs {
            conns_live: registry.gauge("net.conns.live"),
            conns_accepted: registry.counter("net.conns.accepted"),
            conns_refused: registry.counter("net.conns.refused"),
            conns_dropped: registry.counter("net.conns.dropped"),
            requests: registry.counter("net.requests"),
            responses: registry.counter("net.responses"),
            malformed: registry.counter("net.malformed"),
            stats_requests: registry.counter("net.stats_requests"),
            decode_us: registry.histogram("net.frame.decode_us"),
            encode_us: registry.histogram("net.frame.encode_us"),
        }
    }
}

/// Where a connection's response frames go — the one seam between the
/// shared protocol logic ([`submit_frame`], [`answer_stats`]) and the
/// two I/O engines: the blocking writer's [`Outbound`] queue, or a
/// reactor [`ConnHandle`]. Both already implement the in-flight drain
/// guard; this trait just erases which one is behind the callback.
trait RespSink: Clone + Send + 'static {
    fn push(&self, bytes: Vec<u8>, completes_in_flight: bool);
    fn open_in_flight(&self);
}

impl RespSink for Arc<Outbound> {
    fn push(&self, bytes: Vec<u8>, completes_in_flight: bool) {
        Outbound::push(self, bytes, completes_in_flight);
    }

    fn open_in_flight(&self) {
        Outbound::open_in_flight(self);
    }
}

impl RespSink for ConnHandle {
    fn push(&self, bytes: Vec<u8>, completes_in_flight: bool) {
        // A dead connection discards, same as the blocking queue.
        let _ = self.send(bytes, completes_in_flight);
    }

    fn open_in_flight(&self) {
        ConnHandle::open_in_flight(self);
    }
}

struct Shared {
    course: CourseServer,
    config: NetConfig,
    accepting: AtomicBool,
    /// Connections whose writer has not yet exited.
    live: Mutex<usize>,
    all_closed: Condvar,
    /// Read-half clones of live sockets, for shutdown(Read) at drain
    /// time. Writers remove their entry on exit.
    conns: Mutex<HashMap<u64, TcpStream>>,
    next_conn_id: AtomicU64,
    accepted_conns: AtomicU64,
    refused_conns: AtomicU64,
    requests: AtomicU64,
    responses: AtomicU64,
    malformed: AtomicU64,
    dropped_conns: AtomicU64,
    /// Registry mirrors + wire-time histograms.
    obs: NetObs,
}

/// A course server listening on a TCP socket. See the module docs for
/// the thread anatomy and the shutdown ordering.
pub struct NetServer {
    shared: Arc<Shared>,
    local_addr: SocketAddr,
    acceptor: Mutex<Option<JoinHandle<()>>>,
    /// Present under [`Io::Readiness`]; owns the shard threads.
    reactor: Option<Arc<Reactor>>,
    shut: AtomicBool,
}

impl NetServer {
    /// Binds `addr` (use port 0 for an ephemeral port) and starts the
    /// acceptor. The server owns `course` from here on; reach it via
    /// [`NetServer::course`] for stats or local submissions.
    pub fn bind(
        addr: impl ToSocketAddrs,
        course: CourseServer,
        config: NetConfig,
    ) -> io::Result<NetServer> {
        assert!(
            config.max_connections > 0,
            "net server needs at least one connection slot"
        );
        let listener = TcpListener::bind(addr)?;
        let local_addr = listener.local_addr()?;
        let obs = NetObs::new(course.registry());
        let reactor = match config.io {
            Io::Blocking => None,
            Io::Readiness { shards } => Some(Arc::new(Reactor::new(
                ReactorConfig {
                    shards: shards.max(1),
                    ..ReactorConfig::default()
                },
                course.registry(),
            )?)),
        };
        let shared = Arc::new(Shared {
            course,
            config,
            accepting: AtomicBool::new(true),
            live: Mutex::new(0),
            all_closed: Condvar::new(),
            conns: Mutex::new(HashMap::new()),
            next_conn_id: AtomicU64::new(0),
            accepted_conns: AtomicU64::new(0),
            refused_conns: AtomicU64::new(0),
            requests: AtomicU64::new(0),
            responses: AtomicU64::new(0),
            malformed: AtomicU64::new(0),
            dropped_conns: AtomicU64::new(0),
            obs,
        });
        let accept_shared = Arc::clone(&shared);
        let accept_reactor = reactor.clone();
        let acceptor = std::thread::Builder::new()
            .name("net-acceptor".to_string())
            .spawn(move || accept_loop(&listener, &accept_shared, accept_reactor.as_deref()))
            .expect("spawn acceptor");
        Ok(NetServer {
            shared,
            local_addr,
            acceptor: Mutex::new(Some(acceptor)),
            reactor,
            shut: AtomicBool::new(false),
        })
    }

    /// The bound address clients should connect to.
    pub fn local_addr(&self) -> SocketAddr {
        self.local_addr
    }

    /// The wrapped course server (for stats, or local submissions that
    /// bypass the socket).
    pub fn course(&self) -> &CourseServer {
        &self.shared.course
    }

    /// Socket-layer counters.
    pub fn net_stats(&self) -> NetStats {
        NetStats {
            accepted_conns: self.shared.accepted_conns.load(Ordering::Relaxed),
            refused_conns: self.shared.refused_conns.load(Ordering::Relaxed),
            requests: self.shared.requests.load(Ordering::Relaxed),
            responses: self.shared.responses.load(Ordering::Relaxed),
            malformed: self.shared.malformed.load(Ordering::Relaxed),
            dropped_conns: self.shared.dropped_conns.load(Ordering::Relaxed),
        }
    }

    /// Graceful shutdown: stop accept → drain → FIN.
    ///
    /// 1. stop accepting and join the acceptor (woken by a loopback
    ///    connect, since blocking `accept` has no timeout);
    /// 2. `shutdown(Read)` every live connection — readers see a clean
    ///    EOF at a frame boundary and stop submitting;
    /// 3. drain the course server: every admitted ticket resolves,
    ///    every `on_ready` callback delivers its response frame;
    /// 4. wait for every writer to flush its queue and send FIN.
    ///
    /// Idempotent; also runs on drop.
    pub fn shutdown(&self) {
        if self.shut.swap(true, Ordering::SeqCst) {
            return;
        }
        self.shared.accepting.store(false, Ordering::SeqCst);
        // Wake the blocking accept. The acceptor re-checks `accepting`
        // before serving, so this connection is never spoken to.
        drop(TcpStream::connect(self.local_addr));
        if let Some(handle) = self
            .acceptor
            .lock()
            .expect("acceptor handle poisoned")
            .take()
        {
            let _ = handle.join();
        }
        match &self.reactor {
            None => {
                let conns = self.shared.conns.lock().expect("conn table poisoned");
                for stream in conns.values() {
                    let _ = stream.shutdown(Shutdown::Read);
                }
            }
            Some(reactor) => reactor.sever_reads(),
        }
        self.shared.course.shutdown();
        let mut live = self.shared.live.lock().expect("live counter poisoned");
        while *live > 0 {
            live = self
                .shared
                .all_closed
                .wait(live)
                .expect("live counter poisoned");
        }
        drop(live);
        if let Some(reactor) = &self.reactor {
            // Every connection is gone (live == 0), so this only stops
            // and joins the shard threads.
            reactor.shutdown();
        }
    }
}

impl Drop for NetServer {
    fn drop(&mut self) {
        self.shutdown();
    }
}

fn accept_loop(listener: &TcpListener, shared: &Arc<Shared>, reactor: Option<&Reactor>) {
    loop {
        let stream = match listener.accept() {
            Ok((stream, _)) => stream,
            Err(_) => {
                if !shared.accepting.load(Ordering::SeqCst) {
                    return;
                }
                continue;
            }
        };
        if !shared.accepting.load(Ordering::SeqCst) {
            return;
        }
        let _ = stream.set_nodelay(true);
        if reactor.is_none() {
            // Socket timeouts only make sense for blocking I/O; the
            // reactor enforces idle/write bounds in its tick handler.
            let _ = stream.set_read_timeout(Some(shared.config.read_timeout));
            let _ = stream.set_write_timeout(Some(shared.config.write_timeout));
        }

        // Connection cap: shed at the socket with an honest GoAway
        // instead of letting the backlog grow unbounded.
        {
            let mut live = shared.live.lock().expect("live counter poisoned");
            if *live >= shared.config.max_connections {
                drop(live);
                shared.refused_conns.fetch_add(1, Ordering::Relaxed);
                shared.obs.conns_refused.inc();
                let mut w = BufWriter::new(&stream);
                let frame = ResponseFrame {
                    id: 0,
                    status: RespStatus::GoAway,
                    retry_after_ms: shared.config.goaway_retry_ms,
                    backend: shared.config.backend_id,
                    body: format!(
                        "connection cap ({}) reached; reconnect later",
                        shared.config.max_connections
                    ),
                };
                let _ = write_frame(&mut w, &encode_response(&frame));
                let _ = stream.shutdown(Shutdown::Both);
                continue;
            }
            *live += 1;
        }
        shared.accepted_conns.fetch_add(1, Ordering::Relaxed);
        shared.obs.conns_accepted.inc();
        shared.obs.conns_live.add(1);
        match reactor {
            None => spawn_connection(stream, shared),
            Some(reactor) => register_connection(stream, shared, reactor),
        }
    }
}

/// Readiness-mode accept path: hand the socket to the reactor with a
/// [`ServerConnHandler`] owning its protocol logic. The blocking-mode
/// `conns` table is not used — shutdown severs reads through the
/// reactor instead.
fn register_connection(stream: TcpStream, shared: &Arc<Shared>, reactor: &Reactor) {
    let handler = ServerConnHandler {
        shared: Arc::clone(shared),
        last_activity: Instant::now(),
        closing_since: None,
    };
    if reactor.register(stream, Box::new(handler)).is_err() {
        // Could not switch the socket nonblocking; undo the accept
        // accounting exactly like the blocking clone-failure path.
        // (An epoll registration failure on the shard side reports
        // through on_close(false) instead and needs no undo here.)
        let mut live = shared.live.lock().expect("live counter poisoned");
        *live -= 1;
        drop(live);
        shared.all_closed.notify_all();
        shared.accepted_conns.fetch_sub(1, Ordering::Relaxed);
        shared.dropped_conns.fetch_add(1, Ordering::Relaxed);
        shared.obs.conns_live.add(-1);
        shared.obs.conns_dropped.inc();
    }
}

fn spawn_connection(stream: TcpStream, shared: &Arc<Shared>) {
    let conn_id = shared.next_conn_id.fetch_add(1, Ordering::Relaxed);
    let outbound = Outbound::new();

    let read_half = match stream.try_clone() {
        Ok(clone) => clone,
        Err(_) => {
            // Cannot serve a connection we cannot clone; undo the
            // accept accounting.
            let mut live = shared.live.lock().expect("live counter poisoned");
            *live -= 1;
            drop(live);
            shared.all_closed.notify_all();
            shared.accepted_conns.fetch_sub(1, Ordering::Relaxed);
            shared.dropped_conns.fetch_add(1, Ordering::Relaxed);
            shared.obs.conns_live.add(-1);
            shared.obs.conns_dropped.inc();
            return;
        }
    };
    if let Ok(register) = stream.try_clone() {
        shared
            .conns
            .lock()
            .expect("conn table poisoned")
            .insert(conn_id, register);
    }

    let reader_shared = Arc::clone(shared);
    let reader_out = Arc::clone(&outbound);
    let _ = std::thread::Builder::new()
        .name(format!("net-read-{conn_id}"))
        .spawn(move || {
            reader_loop(read_half, &reader_shared, &reader_out);
        });

    let writer_shared = Arc::clone(shared);
    let _ = std::thread::Builder::new()
        .name(format!("net-write-{conn_id}"))
        .spawn(move || {
            writer_loop(stream, conn_id, &writer_shared, &outbound);
        });
}

/// Parses frames off the socket and submits them; never blocks on a
/// ticket. Exits on clean EOF, idle timeout, malformed input, an
/// injected drop, or server shutdown — always marking `reader_done`
/// so the writer's drain condition can complete.
fn reader_loop(read_half: TcpStream, shared: &Arc<Shared>, out: &Arc<Outbound>) {
    let mut reader = BufReader::new(&read_half);
    loop {
        let payload = match read_frame(&mut reader) {
            Ok(Some(payload)) => payload,
            Ok(None) => break,
            Err(_) => break,
        };
        if out.is_dead() {
            break;
        }
        if let Some(plan) = &shared.config.fault_plan {
            plan.fire(FaultPoint::NetReadFrame);
            if plan.should_drop(FaultPoint::NetReadFrame) {
                shared.dropped_conns.fetch_add(1, Ordering::Relaxed);
                out.mark_dead();
                let _ = read_half.shutdown(Shutdown::Both);
                break;
            }
        }
        let decode_start = Instant::now();
        let decoded = decode_payload(&payload);
        shared.obs.decode_us.record_micros(decode_start.elapsed());
        let frame = match decoded {
            Ok(Frame::Request(frame)) => frame,
            Ok(Frame::Stats { id }) => {
                answer_stats(id, false, shared, out);
                continue;
            }
            Ok(Frame::StatsFull { id }) => {
                answer_stats(id, true, shared, out);
                continue;
            }
            Ok(
                Frame::CtlJoin { id, .. }
                | Frame::CtlDrain { id, .. }
                | Frame::CtlRemove { id, .. }
                | Frame::CtlView { id, .. },
            ) => {
                answer_ctl_misdirected(id, shared, out);
                continue;
            }
            Ok(Frame::Response(_)) | Err(_) => {
                // A framing error desynchronizes the byte stream; an
                // Error frame explains, then the connection closes.
                shared.malformed.fetch_add(1, Ordering::Relaxed);
                shared.obs.malformed.inc();
                let reason = match decode_payload(&payload) {
                    Err(e) => format!("malformed frame: {e}"),
                    _ => "protocol error: response frame sent to server".to_string(),
                };
                out.push(
                    encode_response(&ResponseFrame {
                        id: 0,
                        status: RespStatus::Error,
                        retry_after_ms: 0,
                        backend: shared.config.backend_id,
                        body: reason,
                    }),
                    false,
                );
                break;
            }
        };
        shared.requests.fetch_add(1, Ordering::Relaxed);
        shared.obs.requests.inc();
        if !submit_frame(frame, shared, out) {
            break;
        }
    }
    out.reader_done();
}

/// Answers an op-3 (`Stats`) or op-4 (`StatsFull`) frame synchronously
/// from the registry: no admission, no cache, no ticket — readable even
/// while the job server is saturated. The snapshot carries the trace
/// ring's worst spans, so op 3 renders the forensics section and op 4
/// ships them (with full histogram buckets) to a merging router.
fn answer_stats<S: RespSink>(id: u64, full: bool, shared: &Arc<Shared>, out: &S) {
    shared.obs.stats_requests.inc();
    let snap = shared
        .course
        .registry()
        .snapshot()
        .with_spans(shared.course.tracer().worst(obs::WORST_SPANS));
    let body = if full {
        snap.encode_text()
    } else {
        snap.render()
    };
    out.push(
        encode_response(&ResponseFrame {
            id,
            status: RespStatus::Ok,
            retry_after_ms: 0,
            backend: shared.config.backend_id,
            body,
        }),
        false,
    );
}

/// Answers a control-plane op (7–10) sent to a plain backend: an
/// `Error` frame pointing at the router. Membership lives in the proxy
/// tier; acting on a misdirected drain here would desynchronize the
/// fleets. The connection stays open — this is a usage error, not a
/// framing error.
fn answer_ctl_misdirected<S: RespSink>(id: u64, shared: &Arc<Shared>, out: &S) {
    out.push(
        encode_response(&ResponseFrame {
            id,
            status: RespStatus::Error,
            retry_after_ms: 0,
            backend: shared.config.backend_id,
            body: "ctl ops are handled by the router, not a backend".to_string(),
        }),
        false,
    );
}

/// Hands one decoded request to admission and wires its completion to
/// the outbound queue. Returns `false` when the connection should
/// close (server shutting down).
fn submit_frame<S: RespSink>(frame: RequestFrame, shared: &Arc<Shared>, out: &S) -> bool {
    let meta = frame.meta();
    let id = frame.id;
    match shared.course.submit_with_meta(meta, frame.req) {
        Ok(ticket) => {
            // Open before registering: the writer must not observe
            // "reader done, nothing in flight" between callback
            // registration and resolution.
            out.open_in_flight();
            let cb_out = out.clone();
            let cb_shared = Arc::clone(shared);
            ticket.on_ready(move |resp| {
                let status = if resp.cached {
                    RespStatus::OkCached
                } else if resp.ok {
                    RespStatus::Ok
                } else if resp.body.starts_with(SHED_BODY_PREFIX) {
                    RespStatus::Shed
                } else {
                    RespStatus::Error
                };
                let retry_after_ms = if status == RespStatus::Shed {
                    // Shed happened while queued; the hint is computed
                    // now, against the server's current backlog and
                    // the request's (local-clock) deadline.
                    cb_shared.course.retry_hint(&meta)
                } else {
                    0
                };
                let encode_start = Instant::now();
                let bytes = encode_response(&ResponseFrame {
                    id,
                    status,
                    retry_after_ms,
                    backend: cb_shared.config.backend_id,
                    body: resp.body.clone(),
                });
                cb_shared
                    .obs
                    .encode_us
                    .record_micros(encode_start.elapsed());
                cb_out.push(bytes, true);
            });
            true
        }
        Err(SubmitError::Busy(rej)) => {
            out.push(
                encode_response(&ResponseFrame {
                    id,
                    status: RespStatus::Retry,
                    retry_after_ms: rej.retry_after_ms,
                    backend: shared.config.backend_id,
                    body: format!(
                        "admission rejected {} request ({} in flight); retry later",
                        rej.class, rej.in_flight
                    ),
                }),
                false,
            );
            true
        }
        Err(SubmitError::ShuttingDown(_)) => {
            out.push(
                encode_response(&ResponseFrame {
                    id,
                    status: RespStatus::GoAway,
                    retry_after_ms: shared.config.goaway_retry_ms,
                    backend: shared.config.backend_id,
                    body: "server shutting down".to_string(),
                }),
                false,
            );
            false
        }
    }
}

/// Drains the outbound queue onto the socket; the only thread that
/// writes to it, so frames are never interleaved. Owns the connection's
/// teardown: on exit (drained or severed) it closes the socket,
/// unregisters it, and decrements the live count.
fn writer_loop(stream: TcpStream, conn_id: u64, shared: &Arc<Shared>, out: &Arc<Outbound>) {
    let mut graceful = true;
    {
        let mut writer = BufWriter::new(&stream);
        loop {
            match out.next_step() {
                WriterStep::Dead => {
                    graceful = false;
                    break;
                }
                WriterStep::Drained => break,
                WriterStep::Write(bytes) => {
                    if let Some(plan) = &shared.config.fault_plan {
                        plan.fire(FaultPoint::NetWriteFrame);
                        if plan.should_drop(FaultPoint::NetWriteFrame) {
                            shared.dropped_conns.fetch_add(1, Ordering::Relaxed);
                            shared.obs.conns_dropped.inc();
                            out.mark_dead();
                            graceful = false;
                            break;
                        }
                    }
                    if write_frame(&mut writer, &bytes).is_err() {
                        // Write timeout or peer reset: sever rather
                        // than block the thread on a stuck client.
                        shared.dropped_conns.fetch_add(1, Ordering::Relaxed);
                        shared.obs.conns_dropped.inc();
                        out.mark_dead();
                        graceful = false;
                        break;
                    }
                    shared.responses.fetch_add(1, Ordering::Relaxed);
                    shared.obs.responses.inc();
                }
            }
        }
    }
    if graceful {
        // All responses written: half-close with FIN so the client
        // reads a clean EOF after the last frame.
        let _ = stream.shutdown(Shutdown::Write);
    } else {
        // Severed: also unblock our reader, which shares the socket.
        let _ = stream.shutdown(Shutdown::Both);
    }
    shared
        .conns
        .lock()
        .expect("conn table poisoned")
        .remove(&conn_id);
    let mut live = shared.live.lock().expect("live counter poisoned");
    *live -= 1;
    drop(live);
    shared.obs.conns_live.add(-1);
    shared.all_closed.notify_all();
}

/// Readiness-mode protocol logic for one client connection: the same
/// decode → submit → backpressure-frame pipeline as [`reader_loop`],
/// run as reactor callbacks on the connection's shard thread, with
/// responses flowing back through the [`ConnHandle`] sink instead of a
/// writer thread.
struct ServerConnHandler {
    shared: Arc<Shared>,
    /// Last time a frame arrived; drives the idle close that the
    /// blocking reader gets from its socket read timeout.
    last_activity: Instant,
    /// When a graceful close was requested (idle, GoAway, malformed):
    /// if the flush has not completed within the write timeout, the
    /// client is not draining and the connection is severed — the
    /// reactor analogue of the blocking writer's write timeout.
    closing_since: Option<Instant>,
}

impl ServerConnHandler {
    fn begin_close(&mut self, conn: &ConnHandle) {
        if self.closing_since.is_none() {
            self.closing_since = Some(Instant::now());
        }
        conn.close_after_flush();
    }
}

impl ConnHandler for ServerConnHandler {
    fn on_frame(&mut self, payload: Result<Vec<u8>, WireError>, conn: &ConnHandle) {
        self.last_activity = Instant::now();
        let payload = match payload {
            Ok(payload) => payload,
            Err(e) => {
                // Stream desynchronized before a payload formed (an
                // oversized length prefix): typed error, then close.
                self.shared.malformed.fetch_add(1, Ordering::Relaxed);
                self.shared.obs.malformed.inc();
                conn.send(
                    encode_response(&ResponseFrame {
                        id: 0,
                        status: RespStatus::Error,
                        retry_after_ms: 0,
                        backend: self.shared.config.backend_id,
                        body: format!("malformed frame: {e}"),
                    }),
                    false,
                );
                self.begin_close(conn);
                return;
            }
        };
        if let Some(plan) = &self.shared.config.fault_plan {
            plan.fire(FaultPoint::NetReadFrame);
            if plan.should_drop(FaultPoint::NetReadFrame) {
                // Injected drop: sever mid-traffic. on_close(false)
                // does the dropped-connection accounting.
                conn.kill();
                return;
            }
        }
        let decode_start = Instant::now();
        let decoded = decode_payload(&payload);
        self.shared
            .obs
            .decode_us
            .record_micros(decode_start.elapsed());
        let frame = match decoded {
            Ok(Frame::Request(frame)) => frame,
            Ok(Frame::Stats { id }) => {
                answer_stats(id, false, &self.shared, conn);
                return;
            }
            Ok(Frame::StatsFull { id }) => {
                answer_stats(id, true, &self.shared, conn);
                return;
            }
            Ok(
                Frame::CtlJoin { id, .. }
                | Frame::CtlDrain { id, .. }
                | Frame::CtlRemove { id, .. }
                | Frame::CtlView { id, .. },
            ) => {
                answer_ctl_misdirected(id, &self.shared, conn);
                return;
            }
            Ok(Frame::Response(_)) | Err(_) => {
                self.shared.malformed.fetch_add(1, Ordering::Relaxed);
                self.shared.obs.malformed.inc();
                let reason = match decode_payload(&payload) {
                    Err(e) => format!("malformed frame: {e}"),
                    _ => "protocol error: response frame sent to server".to_string(),
                };
                conn.send(
                    encode_response(&ResponseFrame {
                        id: 0,
                        status: RespStatus::Error,
                        retry_after_ms: 0,
                        backend: self.shared.config.backend_id,
                        body: reason,
                    }),
                    false,
                );
                self.begin_close(conn);
                return;
            }
        };
        self.shared.requests.fetch_add(1, Ordering::Relaxed);
        self.shared.obs.requests.inc();
        if !submit_frame(frame, &self.shared, conn) {
            // Server shutting down: GoAway already queued; FIN after
            // the flush, exactly like the blocking reader breaking.
            self.begin_close(conn);
        }
    }

    fn before_write(&mut self, _conn: &ConnHandle) -> bool {
        if let Some(plan) = &self.shared.config.fault_plan {
            plan.fire(FaultPoint::NetWriteFrame);
            if plan.should_drop(FaultPoint::NetWriteFrame) {
                return false; // reactor severs; on_close(false) counts
            }
        }
        true
    }

    fn on_written(&mut self, _conn: &ConnHandle) {
        self.shared.responses.fetch_add(1, Ordering::Relaxed);
        self.shared.obs.responses.inc();
    }

    fn on_tick(&mut self, conn: &ConnHandle) {
        if let Some(since) = self.closing_since {
            // Closing but not yet closed: the flush is pending. A
            // client that stopped draining past the write bound gets
            // severed rather than parked forever.
            if since.elapsed() > self.shared.config.write_timeout {
                conn.kill();
            }
        } else if self.last_activity.elapsed() > self.shared.config.read_timeout {
            // Idle past the read bound: stop reading; in-flight
            // responses still flush before the FIN (the blocking
            // reader's timeout semantics).
            self.begin_close(conn);
        }
    }

    fn on_close(&mut self, graceful: bool) {
        if !graceful {
            self.shared.dropped_conns.fetch_add(1, Ordering::Relaxed);
            self.shared.obs.conns_dropped.inc();
        }
        let mut live = self.shared.live.lock().expect("live counter poisoned");
        *live -= 1;
        drop(live);
        self.shared.obs.conns_live.add(-1);
        self.shared.all_closed.notify_all();
    }
}
