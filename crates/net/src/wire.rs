//! The length-prefixed wire protocol between loadgen/raw clients and
//! the TCP front end.
//!
//! A connection is a byte stream of **frames**: a 4-byte big-endian
//! payload length followed by exactly that many payload bytes. The
//! first payload byte is a tag — [`REQ_TAG`] for client→server request
//! frames, [`RESP_TAG`] for server→client responses — so either side
//! can reject a frame sent in the wrong direction instead of
//! misparsing it. All integers are big-endian; strings are a u32
//! length followed by UTF-8 bytes.
//!
//! ```text
//! request payload:   'Q' id:u64 class:u8 priority:u8
//!                    deadline?:u8 [deadline_budget_ms:u64]
//!                    op:u8 fields…
//!     op 0 Grade     submission:str
//!     op 1 Homework  generator:str seed:u64
//!     op 2 Reproduce id:str
//!     op 3 Stats     (no fields)
//!     op 4 StatsFull (no fields)
//!     op 5 Life      w:u32 h:u32 steps:u32 seed:u64
//!     op 6 MemTrace  pattern:str accesses:u32 seed:u64
//!     op 7 CtlJoin   token:str addr:str
//!     op 8 CtlDrain  token:str backend:u32
//!     op 9 CtlRemove token:str backend:u32
//!     op 10 CtlView  token:str
//! response payload:  'R' id:u64 status:u8 retry_after_ms:u64
//!                    backend:u32 body:str
//! ```
//!
//! Op 3 (`Stats`) is the observability peephole: it shares the request
//! header (the class/priority/deadline bytes are carried but ignored)
//! and asks the server for its rendered metrics snapshot. The front
//! end answers it synchronously from the registry — it never enters
//! admission, never touches the result cache, and works even while the
//! job server itself is saturated, which is exactly when you want to
//! read the queue-depth gauge.
//!
//! Op 4 (`StatsFull`) is the machine-readable sibling: the body is
//! `obs::Snapshot::encode_text()` instead of the human rendering, so a
//! router can `Snapshot::parse_text` each backend's reply and merge the
//! histograms bucket-for-bucket. Percentiles of a rendered snapshot
//! don't add across processes; sparse bucket counts do.
//!
//! Ops 7–10 are the **control plane**: fleet-membership commands a
//! router accepts from an operator (`crates/ctl` holds the state
//! machine). Each carries a shared admin token — compared against
//! [`crate::server::NetConfig::ctl_token`] — so a loadgen typo cannot
//! drain a backend; a missing or wrong token gets an `Error` response,
//! never a state change. `CtlView` returns the encoded
//! `ctl::MembershipEpoch` so polling clients can watch a join be
//! admitted or a drain complete. Plain backends (`net::server`) answer
//! all four with an `Error` body pointing at the router: membership is
//! a proxy-tier concept.
//!
//! Every response carries a `backend` id — the serving process's
//! [`crate::server::NetConfig::backend_id`] (0 for a single-process
//! deployment). Frames a router synthesizes itself (sheds, re-route
//! fallbacks) use [`ROUTER_BACKEND_ID`] so tests and loadgen can tell
//! "a backend answered" from "the router answered for it".
//!
//! The request carries the whole [`JobMeta`] story on the wire: class
//! selects the admission budget and the priority lane, priority can
//! jump the lane, and the deadline travels as a *budget* ("useful for
//! another N ms") rather than an instant, because clocks on two ends
//! of a socket don't agree. [`RequestFrame::meta`] pins the budget to
//! the server's clock at decode time.
//!
//! Responses are matched to requests **by id, not by order**: the
//! server completes pipelined requests out of order, so clients must
//! treat the id as the correlation key. Status distinguishes a
//! computed result ([`RespStatus::Ok`]/[`RespStatus::OkCached`]) from
//! the three backpressure shapes — [`RespStatus::Retry`] (rejected at
//! admission, hint in `retry_after_ms`), [`RespStatus::Shed`]
//! (admitted, then displaced by higher-class work; also hinted) and
//! [`RespStatus::GoAway`] (the server is full of connections or
//! shutting down; this connection is done).
//!
//! Decoding is a single pass over the payload slice — strings are
//! validated in place and copied exactly once into the frame — and
//! **total**: any truncated, oversized, or corrupt input returns a
//! typed [`WireError`]; nothing panics (the round-trip and
//! never-panic properties are proptested in `tests/wire_props.rs`).

use serve::pool::{JobClass, JobMeta};
use serve::server::Request;
use std::io::{self, Read, Write};
use std::time::{Duration, Instant};

/// Hard cap on a frame's payload length. Oversized length prefixes are
/// rejected before any allocation, so a hostile client cannot make the
/// server reserve gigabytes with 4 bytes.
pub const MAX_FRAME_LEN: usize = 1 << 20;

/// Payload tag of a client→server request frame (`b'Q'`).
pub const REQ_TAG: u8 = b'Q';

/// Payload tag of a server→client response frame (`b'R'`).
pub const RESP_TAG: u8 = b'R';

/// `backend` id stamped on responses the router synthesizes itself
/// (sheds when no backend is live, accept-time GoAway) rather than
/// forwarding from a backend. Real backends use small ids from 0.
pub const ROUTER_BACKEND_ID: u32 = u32::MAX;

/// Why a payload failed to decode. Every malformed input maps to one
/// of these — decoding never panics.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum WireError {
    /// The payload ended before a field did.
    Truncated {
        /// Bytes the field needed.
        needed: usize,
        /// Bytes the payload had left.
        have: usize,
    },
    /// A length prefix exceeded [`MAX_FRAME_LEN`].
    TooLarge {
        /// The claimed length.
        len: usize,
    },
    /// The payload's first byte is neither [`REQ_TAG`] nor [`RESP_TAG`].
    BadTag(u8),
    /// An unknown [`JobClass`] code.
    BadClass(u8),
    /// An unknown request-op code.
    BadOp(u8),
    /// An unknown response-status code.
    BadStatus(u8),
    /// A string field was not valid UTF-8.
    BadUtf8,
    /// Bytes remained after the frame's last field — a framing bug on
    /// the sender, not silently ignored.
    TrailingBytes {
        /// How many bytes were left over.
        extra: usize,
    },
}

impl std::fmt::Display for WireError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            WireError::Truncated { needed, have } => {
                write!(
                    f,
                    "truncated frame: field needs {needed} bytes, {have} left"
                )
            }
            WireError::TooLarge { len } => {
                write!(f, "frame length {len} exceeds the {MAX_FRAME_LEN}-byte cap")
            }
            WireError::BadTag(t) => write!(f, "unknown frame tag {t:#04x}"),
            WireError::BadClass(c) => write!(f, "unknown job class code {c}"),
            WireError::BadOp(o) => write!(f, "unknown request op code {o}"),
            WireError::BadStatus(s) => write!(f, "unknown response status code {s}"),
            WireError::BadUtf8 => f.write_str("string field is not valid UTF-8"),
            WireError::TrailingBytes { extra } => {
                write!(f, "{extra} trailing bytes after the last field")
            }
        }
    }
}

impl std::error::Error for WireError {}

/// A decoded client→server request frame.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RequestFrame {
    /// Client-chosen correlation id; the response echoes it. Ids need
    /// only be unique among a connection's in-flight requests.
    pub id: u64,
    /// Scheduling class for admission budgets and priority lanes.
    pub class: JobClass,
    /// Fine-grained urgency within the class.
    pub priority: u8,
    /// Deadline budget: "this response is useful for another N ms".
    /// `None` = no deadline. Sent as a duration, not an instant —
    /// client and server clocks don't agree.
    pub deadline_budget_ms: Option<u64>,
    /// The course workload to run.
    pub req: Request,
}

impl RequestFrame {
    /// The [`JobMeta`] this frame asks for, with the deadline budget
    /// pinned to *this* machine's clock at call time.
    pub fn meta(&self) -> JobMeta {
        let mut meta = JobMeta::for_class(self.class).with_priority(self.priority);
        if let Some(ms) = self.deadline_budget_ms {
            meta = meta.with_deadline(Instant::now() + Duration::from_millis(ms));
        }
        meta
    }
}

/// What a response frame means. See the module docs for the protocol
/// contract of each variant.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RespStatus {
    /// The request ran (or failed honestly inside its handler with an
    /// explanatory body — mirroring `Response::ok = false`).
    Ok,
    /// Like `Ok`, but answered from the result cache.
    OkCached,
    /// The handler failed (unknown generator/experiment, panic). The
    /// body says why; retrying the identical request will fail again.
    Error,
    /// Rejected at admission (queue or class budget full). Not run.
    /// `retry_after_ms` carries the deadline-aware backoff hint; 0
    /// means the deadline already passed and retrying is pointless.
    Retry,
    /// Admitted, then displaced while queued by higher-class
    /// admission. Not run. `retry_after_ms` hints when to retry.
    Shed,
    /// The server will not serve this connection (further): connection
    /// cap at accept time, or shutdown. `retry_after_ms` hints when a
    /// fresh connection might fare better.
    GoAway,
}

impl RespStatus {
    /// Wire code of this status.
    pub fn code(self) -> u8 {
        match self {
            RespStatus::Ok => 0,
            RespStatus::OkCached => 1,
            RespStatus::Error => 2,
            RespStatus::Retry => 3,
            RespStatus::Shed => 4,
            RespStatus::GoAway => 5,
        }
    }

    /// Inverse of [`RespStatus::code`].
    pub fn from_code(code: u8) -> Result<RespStatus, WireError> {
        Ok(match code {
            0 => RespStatus::Ok,
            1 => RespStatus::OkCached,
            2 => RespStatus::Error,
            3 => RespStatus::Retry,
            4 => RespStatus::Shed,
            5 => RespStatus::GoAway,
            other => return Err(WireError::BadStatus(other)),
        })
    }
}

/// A decoded server→client response frame.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ResponseFrame {
    /// Echo of the request's correlation id (0 for connection-level
    /// frames like accept-time [`RespStatus::GoAway`]).
    pub id: u64,
    /// What happened to the request.
    pub status: RespStatus,
    /// Backoff hint for `Retry`/`Shed`/`GoAway`; 0 otherwise (or when
    /// retrying is already pointless).
    pub retry_after_ms: u64,
    /// Which process answered: the serving backend's id, or
    /// [`ROUTER_BACKEND_ID`] for router-synthesized frames. Lets
    /// clients and tests observe routing spread without parsing bodies.
    pub backend: u32,
    /// Rendered result or error/backpressure explanation.
    pub body: String,
}

/// Either frame direction, as [`decode_payload`] returns it.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Frame {
    /// A client→server request.
    Request(RequestFrame),
    /// A server→client response.
    Response(ResponseFrame),
    /// A client→server metrics-snapshot request (op 3), answered
    /// synchronously by the front end without entering admission.
    Stats {
        /// Correlation id, echoed on the snapshot response.
        id: u64,
    },
    /// A client→server machine-readable snapshot request (op 4): the
    /// response body is `Snapshot::encode_text()`, mergeable by a
    /// router. Answered synchronously like op 3.
    StatsFull {
        /// Correlation id, echoed on the snapshot response.
        id: u64,
    },
    /// Admin op 7: announce a new backend to the router's fleet.
    CtlJoin {
        /// Correlation id, echoed on the response.
        id: u64,
        /// Shared admin token; must match the server's `ctl_token`.
        token: String,
        /// Address the new backend listens on, e.g. `127.0.0.1:7411`.
        addr: String,
    },
    /// Admin op 8: stop assigning new keys to a backend; in-flight
    /// work keeps draining.
    CtlDrain {
        /// Correlation id, echoed on the response.
        id: u64,
        /// Shared admin token; must match the server's `ctl_token`.
        token: String,
        /// The backend id to drain.
        backend: u32,
    },
    /// Admin op 9: remove a backend from the fleet (normally after a
    /// drain; legal anytime — remaining in-flight entries fail over).
    CtlRemove {
        /// Correlation id, echoed on the response.
        id: u64,
        /// Shared admin token; must match the server's `ctl_token`.
        token: String,
        /// The backend id to remove.
        backend: u32,
    },
    /// Admin op 10: fetch the current membership view. The response
    /// body is `ctl::MembershipEpoch::encode_text()` plus per-backend
    /// health/outstanding diagnostics.
    CtlView {
        /// Correlation id, echoed on the response.
        id: u64,
        /// Shared admin token; must match the server's `ctl_token`.
        token: String,
    },
}

fn class_code(class: JobClass) -> u8 {
    class.band() as u8
}

fn class_from_code(code: u8) -> Result<JobClass, WireError> {
    if (code as usize) < JobClass::COUNT {
        Ok(JobClass::from_band(code as usize))
    } else {
        Err(WireError::BadClass(code))
    }
}

fn put_str(buf: &mut Vec<u8>, s: &str) {
    buf.extend_from_slice(&(s.len() as u32).to_be_bytes());
    buf.extend_from_slice(s.as_bytes());
}

/// Encodes a request frame into complete on-wire bytes (length prefix
/// included).
pub fn encode_request(frame: &RequestFrame) -> Vec<u8> {
    let mut payload = Vec::with_capacity(64);
    payload.push(REQ_TAG);
    payload.extend_from_slice(&frame.id.to_be_bytes());
    payload.push(class_code(frame.class));
    payload.push(frame.priority);
    match frame.deadline_budget_ms {
        None => payload.push(0),
        Some(ms) => {
            payload.push(1);
            payload.extend_from_slice(&ms.to_be_bytes());
        }
    }
    match &frame.req {
        Request::Grade { submission } => {
            payload.push(0);
            put_str(&mut payload, submission);
        }
        Request::Homework { generator, seed } => {
            payload.push(1);
            put_str(&mut payload, generator);
            payload.extend_from_slice(&seed.to_be_bytes());
        }
        Request::Reproduce { id } => {
            payload.push(2);
            put_str(&mut payload, id);
        }
        Request::Life { w, h, steps, seed } => {
            payload.push(5);
            payload.extend_from_slice(&w.to_be_bytes());
            payload.extend_from_slice(&h.to_be_bytes());
            payload.extend_from_slice(&steps.to_be_bytes());
            payload.extend_from_slice(&seed.to_be_bytes());
        }
        Request::MemTrace {
            pattern,
            accesses,
            seed,
        } => {
            payload.push(6);
            put_str(&mut payload, pattern);
            payload.extend_from_slice(&accesses.to_be_bytes());
            payload.extend_from_slice(&seed.to_be_bytes());
        }
    }
    finish_frame(payload)
}

/// Encodes an admin op (7–10) into complete on-wire bytes. Like the
/// stats ops, the header's class/priority/deadline bytes are zeros —
/// control frames never enter admission.
fn encode_ctl_op(id: u64, op: u8, token: &str, rest: impl FnOnce(&mut Vec<u8>)) -> Vec<u8> {
    let mut payload = Vec::with_capacity(32 + token.len());
    payload.push(REQ_TAG);
    payload.extend_from_slice(&id.to_be_bytes());
    payload.push(0); // class (ignored)
    payload.push(0); // priority (ignored)
    payload.push(0); // no deadline
    payload.push(op);
    put_str(&mut payload, token);
    rest(&mut payload);
    finish_frame(payload)
}

/// Encodes a `CtlJoin` (op 7) request into complete on-wire bytes.
pub fn encode_ctl_join(id: u64, token: &str, addr: &str) -> Vec<u8> {
    encode_ctl_op(id, 7, token, |p| put_str(p, addr))
}

/// Encodes a `CtlDrain` (op 8) request into complete on-wire bytes.
pub fn encode_ctl_drain(id: u64, token: &str, backend: u32) -> Vec<u8> {
    encode_ctl_op(id, 8, token, |p| {
        p.extend_from_slice(&backend.to_be_bytes())
    })
}

/// Encodes a `CtlRemove` (op 9) request into complete on-wire bytes.
pub fn encode_ctl_remove(id: u64, token: &str, backend: u32) -> Vec<u8> {
    encode_ctl_op(id, 9, token, |p| {
        p.extend_from_slice(&backend.to_be_bytes())
    })
}

/// Encodes a `CtlView` (op 10) request into complete on-wire bytes.
pub fn encode_ctl_view(id: u64, token: &str) -> Vec<u8> {
    encode_ctl_op(id, 10, token, |_| {})
}

/// Encodes a stats (op 3) request into complete on-wire bytes. The
/// header's class/priority/deadline bytes are sent as zeros; the
/// server ignores them for this op.
pub fn encode_stats_request(id: u64) -> Vec<u8> {
    encode_stats_op(id, 3)
}

/// Encodes a machine-readable stats (op 4, `StatsFull`) request into
/// complete on-wire bytes. Same header shape as op 3.
pub fn encode_stats_full_request(id: u64) -> Vec<u8> {
    encode_stats_op(id, 4)
}

fn encode_stats_op(id: u64, op: u8) -> Vec<u8> {
    let mut payload = Vec::with_capacity(16);
    payload.push(REQ_TAG);
    payload.extend_from_slice(&id.to_be_bytes());
    payload.push(0); // class (ignored)
    payload.push(0); // priority (ignored)
    payload.push(0); // no deadline
    payload.push(op);
    finish_frame(payload)
}

/// Encodes a response frame into complete on-wire bytes (length prefix
/// included).
pub fn encode_response(frame: &ResponseFrame) -> Vec<u8> {
    let mut payload = Vec::with_capacity(32 + frame.body.len());
    payload.push(RESP_TAG);
    payload.extend_from_slice(&frame.id.to_be_bytes());
    payload.push(frame.status.code());
    payload.extend_from_slice(&frame.retry_after_ms.to_be_bytes());
    payload.extend_from_slice(&frame.backend.to_be_bytes());
    put_str(&mut payload, &frame.body);
    finish_frame(payload)
}

fn finish_frame(payload: Vec<u8>) -> Vec<u8> {
    let mut out = Vec::with_capacity(4 + payload.len());
    out.extend_from_slice(&(payload.len() as u32).to_be_bytes());
    out.extend_from_slice(&payload);
    out
}

/// One-pass reader over a payload slice: every accessor checks bounds
/// and returns [`WireError::Truncated`] instead of slicing past the
/// end, and strings borrow straight from the input until the single
/// final copy into the frame.
struct Cursor<'a> {
    buf: &'a [u8],
    pos: usize,
}

impl<'a> Cursor<'a> {
    fn take(&mut self, n: usize) -> Result<&'a [u8], WireError> {
        let have = self.buf.len() - self.pos;
        if have < n {
            return Err(WireError::Truncated { needed: n, have });
        }
        let s = &self.buf[self.pos..self.pos + n];
        self.pos += n;
        Ok(s)
    }

    fn u8(&mut self) -> Result<u8, WireError> {
        Ok(self.take(1)?[0])
    }

    fn u32(&mut self) -> Result<u32, WireError> {
        Ok(u32::from_be_bytes(
            self.take(4)?.try_into().expect("4 bytes"),
        ))
    }

    fn u64(&mut self) -> Result<u64, WireError> {
        Ok(u64::from_be_bytes(
            self.take(8)?.try_into().expect("8 bytes"),
        ))
    }

    fn str(&mut self) -> Result<&'a str, WireError> {
        let len = self.u32()? as usize;
        if len > MAX_FRAME_LEN {
            return Err(WireError::TooLarge { len });
        }
        std::str::from_utf8(self.take(len)?).map_err(|_| WireError::BadUtf8)
    }

    fn finish(self) -> Result<(), WireError> {
        match self.buf.len() - self.pos {
            0 => Ok(()),
            extra => Err(WireError::TrailingBytes { extra }),
        }
    }
}

/// Decodes one payload (the bytes after the length prefix) into a
/// [`Frame`]. Total: malformed input of any shape returns a typed
/// error, never panics, never over-reads.
pub fn decode_payload(payload: &[u8]) -> Result<Frame, WireError> {
    let mut cur = Cursor {
        buf: payload,
        pos: 0,
    };
    match cur.u8()? {
        REQ_TAG => {
            let id = cur.u64()?;
            let class = class_from_code(cur.u8()?)?;
            let priority = cur.u8()?;
            let deadline_budget_ms = match cur.u8()? {
                0 => None,
                _ => Some(cur.u64()?),
            };
            let req = match cur.u8()? {
                0 => Request::Grade {
                    submission: cur.str()?.to_owned(),
                },
                1 => {
                    let generator = cur.str()?.to_owned();
                    let seed = cur.u64()?;
                    Request::Homework { generator, seed }
                }
                2 => Request::Reproduce {
                    id: cur.str()?.to_owned(),
                },
                3 => {
                    // Stats carries no fields; class/priority/deadline
                    // were parsed (and are ignored) above.
                    cur.finish()?;
                    return Ok(Frame::Stats { id });
                }
                4 => {
                    cur.finish()?;
                    return Ok(Frame::StatsFull { id });
                }
                5 => {
                    let w = cur.u32()?;
                    let h = cur.u32()?;
                    let steps = cur.u32()?;
                    let seed = cur.u64()?;
                    Request::Life { w, h, steps, seed }
                }
                6 => {
                    let pattern = cur.str()?.to_owned();
                    let accesses = cur.u32()?;
                    let seed = cur.u64()?;
                    Request::MemTrace {
                        pattern,
                        accesses,
                        seed,
                    }
                }
                7 => {
                    let token = cur.str()?.to_owned();
                    let addr = cur.str()?.to_owned();
                    cur.finish()?;
                    return Ok(Frame::CtlJoin { id, token, addr });
                }
                8 => {
                    let token = cur.str()?.to_owned();
                    let backend = cur.u32()?;
                    cur.finish()?;
                    return Ok(Frame::CtlDrain { id, token, backend });
                }
                9 => {
                    let token = cur.str()?.to_owned();
                    let backend = cur.u32()?;
                    cur.finish()?;
                    return Ok(Frame::CtlRemove { id, token, backend });
                }
                10 => {
                    let token = cur.str()?.to_owned();
                    cur.finish()?;
                    return Ok(Frame::CtlView { id, token });
                }
                other => return Err(WireError::BadOp(other)),
            };
            cur.finish()?;
            Ok(Frame::Request(RequestFrame {
                id,
                class,
                priority,
                deadline_budget_ms,
                req,
            }))
        }
        RESP_TAG => {
            let id = cur.u64()?;
            let status = RespStatus::from_code(cur.u8()?)?;
            let retry_after_ms = cur.u64()?;
            let backend = cur.u32()?;
            let body = cur.str()?.to_owned();
            cur.finish()?;
            Ok(Frame::Response(ResponseFrame {
                id,
                status,
                retry_after_ms,
                backend,
                body,
            }))
        }
        other => Err(WireError::BadTag(other)),
    }
}

/// Reads one frame's payload from `r`. Returns `Ok(None)` on a clean
/// EOF at a frame boundary; EOF mid-frame is an
/// [`io::ErrorKind::UnexpectedEof`] error, and a length prefix above
/// [`MAX_FRAME_LEN`] is [`io::ErrorKind::InvalidData`] — rejected
/// before any buffer is allocated.
pub fn read_frame(r: &mut impl Read) -> io::Result<Option<Vec<u8>>> {
    let mut len_buf = [0u8; 4];
    match r.read(&mut len_buf[..1])? {
        0 => return Ok(None),
        _ => r.read_exact(&mut len_buf[1..])?,
    }
    let len = u32::from_be_bytes(len_buf) as usize;
    if len > MAX_FRAME_LEN {
        return Err(io::Error::new(
            io::ErrorKind::InvalidData,
            WireError::TooLarge { len },
        ));
    }
    let mut payload = vec![0u8; len];
    r.read_exact(&mut payload)?;
    Ok(Some(payload))
}

/// Writes pre-encoded frame bytes to `w` and flushes.
pub fn write_frame(w: &mut impl Write, bytes: &[u8]) -> io::Result<()> {
    w.write_all(bytes)?;
    w.flush()
}

/// Incremental frame reassembly for nonblocking readers: the reactor
/// feeds whatever bytes `read` returned — a 1-byte trickle or a dozen
/// coalesced frames — and pulls out complete payloads as they form.
/// The streaming sibling of [`read_frame`], with the same contract:
/// an oversized length prefix is rejected *before* any payload
/// allocation, and decoding is total (proptested against the one-shot
/// path in `tests/wire_props.rs`).
///
/// ```
/// use net::wire::{encode_stats_request, FrameAssembler};
///
/// let bytes = encode_stats_request(7);
/// let mut asm = FrameAssembler::new();
/// for b in &bytes {
///     asm.feed(std::slice::from_ref(b)); // 1-byte trickle
/// }
/// assert_eq!(asm.next_frame().unwrap(), Some(bytes[4..].to_vec()));
/// assert_eq!(asm.next_frame().unwrap(), None);
/// assert!(asm.at_boundary(), "no partial frame buffered");
/// ```
#[derive(Debug, Default)]
pub struct FrameAssembler {
    /// Unconsumed stream bytes: a possibly-incomplete run of frames.
    buf: Vec<u8>,
    /// Start of the first unconsumed byte within `buf`; consumed bytes
    /// are compacted away in [`FrameAssembler::next_frame`] so `buf`
    /// never grows past one frame plus one read's worth of trailing
    /// bytes.
    pos: usize,
    /// Set once a feed-side error (an oversized length prefix) has been
    /// reported; the stream is desynchronized beyond repair, so every
    /// later call re-reports rather than misparsing from a wrong offset.
    poisoned: Option<WireError>,
}

impl FrameAssembler {
    /// An empty assembler at a frame boundary.
    pub fn new() -> FrameAssembler {
        FrameAssembler::default()
    }

    /// Appends freshly read stream bytes. Cheap; parsing happens in
    /// [`FrameAssembler::next_frame`].
    pub fn feed(&mut self, bytes: &[u8]) {
        self.buf.extend_from_slice(bytes);
    }

    /// Extracts the next complete frame payload, if one has fully
    /// arrived. `Ok(None)` means "need more bytes". An oversized
    /// length prefix returns [`WireError::TooLarge`] before any
    /// payload allocation — and poisons the assembler, because after a
    /// framing error the byte offset of the next real frame is
    /// unknowable.
    pub fn next_frame(&mut self) -> Result<Option<Vec<u8>>, WireError> {
        if let Some(err) = &self.poisoned {
            return Err(err.clone());
        }
        let avail = self.buf.len() - self.pos;
        if avail < 4 {
            self.compact();
            return Ok(None);
        }
        let len_bytes: [u8; 4] = self.buf[self.pos..self.pos + 4]
            .try_into()
            .expect("4 bytes");
        let len = u32::from_be_bytes(len_bytes) as usize;
        if len > MAX_FRAME_LEN {
            let err = WireError::TooLarge { len };
            self.poisoned = Some(err.clone());
            return Err(err);
        }
        if avail < 4 + len {
            self.compact();
            return Ok(None);
        }
        let payload = self.buf[self.pos + 4..self.pos + 4 + len].to_vec();
        self.pos += 4 + len;
        self.compact();
        Ok(Some(payload))
    }

    /// True when no partial frame is buffered — the state in which a
    /// peer's EOF is a *clean* close rather than a truncation. The
    /// reactor uses this to tell "client finished and hung up" from
    /// "connection died mid-frame".
    pub fn at_boundary(&self) -> bool {
        self.poisoned.is_none() && self.pos == self.buf.len()
    }

    /// Bytes currently buffered awaiting a complete frame.
    pub fn buffered(&self) -> usize {
        self.buf.len() - self.pos
    }

    /// Drops consumed bytes once they dominate the buffer, keeping
    /// memory proportional to the unconsumed tail instead of the
    /// connection's lifetime byte count.
    fn compact(&mut self) {
        if self.pos == self.buf.len() {
            self.buf.clear();
            self.pos = 0;
        } else if self.pos >= 4096 && self.pos * 2 >= self.buf.len() {
            self.buf.drain(..self.pos);
            self.pos = 0;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_request() -> RequestFrame {
        RequestFrame {
            id: 7,
            class: JobClass::Interactive,
            priority: 160,
            deadline_budget_ms: Some(500),
            req: Request::Grade {
                submission: "main:\n  hlt\n".to_string(),
            },
        }
    }

    #[test]
    fn request_round_trips_through_the_codec() {
        let frame = sample_request();
        let bytes = encode_request(&frame);
        let (len_prefix, payload) = bytes.split_at(4);
        assert_eq!(
            u32::from_be_bytes(len_prefix.try_into().unwrap()) as usize,
            payload.len()
        );
        assert_eq!(decode_payload(payload), Ok(Frame::Request(frame)));
    }

    #[test]
    fn response_round_trips_through_the_codec() {
        let frame = ResponseFrame {
            id: 9,
            status: RespStatus::Shed,
            retry_after_ms: 12,
            backend: 2,
            body: "shed under load: retry later".to_string(),
        };
        let bytes = encode_response(&frame);
        assert_eq!(decode_payload(&bytes[4..]), Ok(Frame::Response(frame)));
    }

    #[test]
    fn stats_full_request_round_trips_through_the_codec() {
        let bytes = encode_stats_full_request(77);
        assert_eq!(decode_payload(&bytes[4..]), Ok(Frame::StatsFull { id: 77 }));
        // Op 4 shares the op-3 header; only the op byte differs.
        let op3 = encode_stats_request(77);
        assert_eq!(bytes.len(), op3.len());
        assert_eq!(&bytes[..bytes.len() - 1], &op3[..op3.len() - 1]);
    }

    #[test]
    fn memtrace_request_round_trips_through_the_codec() {
        let frame = RequestFrame {
            id: 12,
            class: JobClass::Batch,
            priority: 120,
            deadline_budget_ms: None,
            req: Request::MemTrace {
                pattern: "stride".to_string(),
                accesses: 4096,
                seed: 99,
            },
        };
        let bytes = encode_request(&frame);
        assert_eq!(decode_payload(&bytes[4..]), Ok(Frame::Request(frame)));
    }

    #[test]
    fn ctl_ops_round_trip_through_the_codec() {
        let cases: Vec<(Vec<u8>, Frame)> = vec![
            (
                encode_ctl_join(3, "hunter2", "127.0.0.1:7411"),
                Frame::CtlJoin {
                    id: 3,
                    token: "hunter2".to_string(),
                    addr: "127.0.0.1:7411".to_string(),
                },
            ),
            (
                encode_ctl_drain(4, "hunter2", 2),
                Frame::CtlDrain {
                    id: 4,
                    token: "hunter2".to_string(),
                    backend: 2,
                },
            ),
            (
                encode_ctl_remove(5, "", 7),
                Frame::CtlRemove {
                    id: 5,
                    token: String::new(),
                    backend: 7,
                },
            ),
            (
                encode_ctl_view(6, "hunter2"),
                Frame::CtlView {
                    id: 6,
                    token: "hunter2".to_string(),
                },
            ),
        ];
        for (bytes, want) in cases {
            assert_eq!(decode_payload(&bytes[4..]), Ok(want));
        }
        // Truncations of a ctl frame are typed errors, never panics.
        let bytes = encode_ctl_join(3, "tok", "127.0.0.1:1");
        for cut in 0..bytes.len() - 4 {
            assert!(decode_payload(&bytes[4..4 + cut]).is_err());
        }
    }

    #[test]
    fn stats_request_round_trips_through_the_codec() {
        let bytes = encode_stats_request(41);
        let (len_prefix, payload) = bytes.split_at(4);
        assert_eq!(
            u32::from_be_bytes(len_prefix.try_into().unwrap()) as usize,
            payload.len()
        );
        assert_eq!(decode_payload(payload), Ok(Frame::Stats { id: 41 }));
    }

    #[test]
    fn every_truncation_of_a_stats_frame_is_a_typed_error() {
        let bytes = encode_stats_request(41);
        let payload = &bytes[4..];
        for cut in 0..payload.len() {
            let err = decode_payload(&payload[..cut]).expect_err("truncation must not decode");
            assert!(
                matches!(err, WireError::Truncated { .. }),
                "cut at {cut}: unexpected error {err:?}"
            );
        }
        // Fields after the op byte are a framing bug, not silently eaten.
        let mut extra = bytes.clone();
        extra.push(0x00);
        let payload_len = (extra.len() - 4) as u32;
        extra[..4].copy_from_slice(&payload_len.to_be_bytes());
        assert_eq!(
            decode_payload(&extra[4..]),
            Err(WireError::TrailingBytes { extra: 1 })
        );
    }

    #[test]
    fn every_truncation_of_a_valid_frame_is_a_typed_error() {
        let bytes = encode_request(&sample_request());
        let payload = &bytes[4..];
        for cut in 0..payload.len() {
            let err = decode_payload(&payload[..cut]).expect_err("truncation must not decode");
            assert!(
                matches!(
                    err,
                    WireError::Truncated { .. } | WireError::TooLarge { .. }
                ),
                "cut at {cut}: unexpected error {err:?}"
            );
        }
    }

    #[test]
    fn trailing_bytes_are_rejected() {
        let mut bytes = encode_response(&ResponseFrame {
            id: 1,
            status: RespStatus::Ok,
            retry_after_ms: 0,
            backend: 0,
            body: "done".to_string(),
        });
        bytes.push(0xFF);
        assert_eq!(
            decode_payload(&bytes[4..]),
            Err(WireError::TrailingBytes { extra: 1 })
        );
    }

    #[test]
    fn bad_tag_class_op_and_status_are_typed() {
        assert_eq!(decode_payload(&[0x00]), Err(WireError::BadTag(0x00)));
        // Request with class code 9.
        let mut bytes = encode_request(&sample_request());
        bytes[4 + 1 + 8] = 9;
        assert_eq!(decode_payload(&bytes[4..]), Err(WireError::BadClass(9)));
        // Response with status code 200.
        let mut bytes = encode_response(&ResponseFrame {
            id: 0,
            status: RespStatus::Ok,
            retry_after_ms: 0,
            backend: 0,
            body: String::new(),
        });
        bytes[4 + 1 + 8] = 200;
        assert_eq!(decode_payload(&bytes[4..]), Err(WireError::BadStatus(200)));
    }

    #[test]
    fn read_frame_distinguishes_clean_eof_from_midframe_eof() {
        let bytes = encode_request(&sample_request());
        let mut two = bytes.clone();
        two.extend_from_slice(&bytes);
        let mut r = &two[..];
        assert!(read_frame(&mut r).unwrap().is_some());
        assert!(read_frame(&mut r).unwrap().is_some());
        assert!(
            read_frame(&mut r).unwrap().is_none(),
            "clean EOF is Ok(None)"
        );
        let mut cut = &bytes[..bytes.len() - 3];
        let first = read_frame(&mut cut).expect_err("mid-frame EOF must error");
        assert_eq!(first.kind(), io::ErrorKind::UnexpectedEof);
    }

    #[test]
    fn oversized_length_prefix_is_rejected_before_allocating() {
        let mut bytes = vec![0xFF, 0xFF, 0xFF, 0xFF];
        bytes.extend_from_slice(b"junk");
        let mut r = &bytes[..];
        let err = read_frame(&mut r).expect_err("4 GiB claim must be rejected");
        assert_eq!(err.kind(), io::ErrorKind::InvalidData);
    }

    #[test]
    fn assembler_reassembles_coalesced_and_trickled_frames() {
        let a = encode_request(&sample_request());
        let b = encode_stats_request(41);
        // Both frames in one feed: two pulls, then boundary.
        let mut asm = FrameAssembler::new();
        let mut joined = a.clone();
        joined.extend_from_slice(&b);
        asm.feed(&joined);
        assert_eq!(asm.next_frame().unwrap().as_deref(), Some(&a[4..]));
        assert_eq!(asm.next_frame().unwrap().as_deref(), Some(&b[4..]));
        assert_eq!(asm.next_frame().unwrap(), None);
        assert!(asm.at_boundary());
        // Byte at a time: exactly one frame appears, at the last byte.
        let mut asm = FrameAssembler::new();
        let mut seen = 0;
        for byte in &a {
            asm.feed(std::slice::from_ref(byte));
            while asm.next_frame().unwrap().is_some() {
                seen += 1;
            }
        }
        assert_eq!(seen, 1);
        assert!(asm.at_boundary());
    }

    #[test]
    fn assembler_mid_frame_stop_is_not_a_boundary() {
        let a = encode_request(&sample_request());
        let mut asm = FrameAssembler::new();
        asm.feed(&a[..a.len() - 1]);
        assert_eq!(asm.next_frame().unwrap(), None);
        assert!(!asm.at_boundary(), "partial frame buffered");
        assert_eq!(asm.buffered(), a.len() - 1);
    }

    #[test]
    fn assembler_rejects_oversized_prefix_and_stays_poisoned() {
        let mut asm = FrameAssembler::new();
        asm.feed(&[0xFF, 0xFF, 0xFF, 0xFF, 0x00]);
        assert!(matches!(asm.next_frame(), Err(WireError::TooLarge { .. })));
        // The stream offset is unknowable now; later pulls re-report
        // instead of misparsing, and EOF here is not a clean boundary.
        asm.feed(&encode_stats_request(1));
        assert!(matches!(asm.next_frame(), Err(WireError::TooLarge { .. })));
        assert!(!asm.at_boundary());
    }

    #[test]
    fn meta_pins_the_budget_to_the_local_clock() {
        let frame = sample_request();
        let before = Instant::now();
        let meta = frame.meta();
        let deadline = meta.deadline.expect("budget present");
        let budget = deadline.duration_since(before);
        assert!(budget <= Duration::from_millis(501));
        assert!(budget >= Duration::from_millis(400));
        assert_eq!(meta.class, JobClass::Interactive);
        assert_eq!(meta.priority, 160);
    }
}
