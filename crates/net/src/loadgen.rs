//! A multi-connection load generator for the TCP front end.
//!
//! Drives `connections` sockets from one thread pair each (sender +
//! response reader), in either loop discipline:
//!
//! * **closed-loop** ([`Mode::Closed`]) — each connection keeps at
//!   most `pipeline` requests outstanding; a response (or terminal
//!   rejection) frees a slot. Throughput self-limits to what the
//!   server sustains, the classic closed-system model.
//! * **open-loop** ([`Mode::Open`]) — each connection sends on a fixed
//!   interval regardless of outstanding work, the arrival-process
//!   model that actually produces overload: if the server falls
//!   behind, requests pile up instead of the client politely waiting.
//!
//! The class mix is weight-sampled per request from [`ClassLoad`]
//! entries, each minting *distinct* operations (unique grade
//! submissions, unique homework seeds, rotating experiment variants)
//! so the server's result cache cannot quietly turn a load test into
//! a cache-hit test. Latency is recorded per class from send to
//! final response into fixed-memory [`obs::Histogram`]s (an open-loop
//! overload run records millions of samples without growing) and
//! reported as p50/p99/max, percentiles at most
//! [`obs::hist::RELATIVE_ERROR`] above exact.
//!
//! Backpressure is honored, not retried blindly: a `RETRY`/`SHED`
//! frame re-queues the same operation after the server's hinted
//! backoff, up to [`LoadConfig::max_retries`] attempts; a hint of 0
//! ("retrying is pointless") or exhausted attempts counts the request
//! as lost to backpressure. `GoAway` ends the connection.

use crate::wire::{
    decode_payload, encode_request, encode_stats_full_request, encode_stats_request, read_frame,
    write_frame, Frame, RequestFrame, RespStatus, ResponseFrame,
};
use serve::pool::JobClass;
use serve::server::Request;
use std::collections::HashMap;
use std::io::{BufReader, BufWriter};
use std::net::{Shutdown, SocketAddr, TcpStream};
use std::sync::{Arc, Condvar, Mutex};
use std::time::{Duration, Instant};

/// Loop discipline for each connection.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Mode {
    /// Keep at most `pipeline` requests outstanding per connection.
    Closed {
        /// Outstanding-request window (≥ 1); 1 is ping-pong.
        pipeline: usize,
    },
    /// Send every `interval` regardless of outstanding responses.
    Open {
        /// Fixed inter-send gap.
        interval: Duration,
    },
}

/// How to mint the operation payload for a class's requests. Every
/// template produces *distinct* cache keys across a run.
#[derive(Debug, Clone)]
pub enum OpTemplate {
    /// `Request::Grade` with a unique generated submission per call.
    GradeUnique,
    /// `Request::Homework` on this generator with a unique seed.
    Homework {
        /// Generator name (`cs31::homework::generators()`).
        generator: String,
    },
    /// `Request::Reproduce` on ids `"{prefix}/{k}"`, `k` cycling
    /// through `variants` — register that many experiment ids on the
    /// server (all may map to the same function) to defeat the cache.
    Reproduce {
        /// Experiment id prefix.
        prefix: String,
        /// Number of registered variants to cycle through.
        variants: u64,
    },
    /// `Request::Life` over a small deterministic parameter space:
    /// `dim x dim` grids, seeds cycling through `variants`, and a
    /// three-tier step count (1×/4×/12× `base_steps`) — genuinely
    /// heavy-tailed service times that are *cache-friendly*: with
    /// `variants * 3` distinct keys, most samples repeat a tuple
    /// already computed, exercising the result cache's hit path.
    Life {
        /// Grid dimension (width == height).
        dim: u32,
        /// Step count of the cheapest tier; the tiers are
        /// `base_steps`, `4 * base_steps`, `12 * base_steps`.
        base_steps: u32,
        /// Number of distinct seeds to cycle through.
        variants: u64,
    },
    /// `Request::MemTrace` cycling the access pattern through
    /// `serve::server::MEMTRACE_PATTERNS` with seeds drawn from
    /// `variants` — a CPU-bound cache-simulation op whose
    /// `(pattern, accesses, seed)` tuple is the cache key, so a small
    /// `variants` keeps the template cache-friendly like `Life`.
    MemTrace {
        /// Simulated memory accesses per request.
        accesses: u32,
        /// Number of distinct seeds to cycle through.
        variants: u64,
    },
}

/// One class's slice of the generated load.
#[derive(Debug, Clone)]
pub struct ClassLoad {
    /// Class stamped on the wire (admission budget + priority lane).
    pub class: JobClass,
    /// Sampling weight relative to the other entries.
    pub weight: u32,
    /// Wire priority.
    pub priority: u8,
    /// Wire deadline budget, if any.
    pub deadline_budget_ms: Option<u64>,
    /// Operation generator.
    pub op: OpTemplate,
}

impl ClassLoad {
    /// A heavy-tail course mix over the built-in workloads — many
    /// cheap interactive grade lookups, some homework generation, a
    /// trickle of expensive bulk regeneration — usable against any
    /// `CourseServer` without registered experiments.
    pub fn default_mix() -> Vec<ClassLoad> {
        vec![
            ClassLoad {
                class: JobClass::Interactive,
                weight: 6,
                priority: 160,
                deadline_budget_ms: Some(500),
                op: OpTemplate::GradeUnique,
            },
            ClassLoad {
                class: JobClass::Batch,
                weight: 3,
                priority: 128,
                deadline_budget_ms: Some(5_000),
                op: OpTemplate::Homework {
                    generator: "binary_arithmetic".to_string(),
                },
            },
            ClassLoad {
                class: JobClass::Batch,
                weight: 2,
                priority: 112,
                deadline_budget_ms: Some(5_000),
                op: OpTemplate::Life {
                    dim: 32,
                    base_steps: 8,
                    variants: 8,
                },
            },
            ClassLoad {
                class: JobClass::Batch,
                weight: 2,
                priority: 120,
                deadline_budget_ms: Some(5_000),
                op: OpTemplate::MemTrace {
                    accesses: 2048,
                    variants: 8,
                },
            },
            ClassLoad {
                class: JobClass::Bulk,
                weight: 1,
                priority: 64,
                deadline_budget_ms: None,
                op: OpTemplate::Homework {
                    generator: "vm_trace".to_string(),
                },
            },
        ]
    }
}

/// Knobs for [`run`].
#[derive(Debug, Clone)]
pub struct LoadConfig {
    /// Concurrent client connections.
    pub connections: usize,
    /// Fresh requests minted per connection (retries don't count).
    pub requests_per_connection: usize,
    /// Loop discipline.
    pub mode: Mode,
    /// Weighted class mix; must be non-empty with weight sum > 0.
    pub mix: Vec<ClassLoad>,
    /// Resend budget per request on `RETRY`/`SHED` (0 = never resend).
    pub max_retries: u32,
    /// Deterministic seed for the class sampler and op minting.
    pub seed: u64,
    /// How long each connection waits for stragglers after its last
    /// send before giving up on the remaining outstanding requests.
    pub drain_timeout: Duration,
}

impl Default for LoadConfig {
    fn default() -> Self {
        LoadConfig {
            connections: 4,
            requests_per_connection: 32,
            mode: Mode::Closed { pipeline: 4 },
            mix: ClassLoad::default_mix(),
            max_retries: 4,
            seed: 31,
            drain_timeout: Duration::from_secs(10),
        }
    }
}

/// Per-class outcome counters and latency percentiles (microseconds,
/// send → final response, retries included in the request's latency).
#[derive(Debug, Clone)]
pub struct ClassReport {
    /// The class this row describes.
    pub class: JobClass,
    /// Fresh requests sent.
    pub sent: u64,
    /// Completed with a computed `OK` response.
    pub ok: u64,
    /// Completed from the server cache (`OK_CACHED`).
    pub cached: u64,
    /// Completed with an `ERROR` response.
    pub errors: u64,
    /// `RETRY`/`SHED` frames received (each resend may earn another).
    pub backpressure_frames: u64,
    /// Requests abandoned after the retry budget or a 0 hint.
    pub lost_to_backpressure: u64,
    /// Requests with no response when the connection ended (severed
    /// or drain timeout).
    pub unanswered: u64,
    /// Median latency in µs over completed requests (0 if none).
    /// Log-bucketed: at most [`obs::hist::RELATIVE_ERROR`] above the
    /// exact nearest-rank value.
    pub p50_us: u64,
    /// 99th-percentile latency in µs (0 if none), same error bound.
    pub p99_us: u64,
    /// Worst latency in µs (0 if none); exact, not bucketed.
    pub max_us: u64,
}

/// Aggregate run outcome across all connections.
#[derive(Debug, Clone)]
pub struct LoadReport {
    /// Per-class rows in [`JobClass::ALL`] order.
    pub per_class: Vec<ClassReport>,
    /// `GoAway` frames received (accept-time or shutdown).
    pub goaway: u64,
    /// Connections that ended with an I/O error or unexpected close.
    pub broken_conns: u64,
    /// Completed responses (`OK`/`OK_CACHED`/`ERROR`) per answering
    /// backend id, sorted by id. A direct single-server run has one
    /// row; through a router this is the observed routing spread, with
    /// [`crate::wire::ROUTER_BACKEND_ID`] marking router-synthesized
    /// answers.
    pub by_backend: Vec<(u32, u64)>,
    /// Wall-clock of the whole run.
    pub elapsed: Duration,
}

impl LoadReport {
    /// The row for `class` (always present).
    pub fn class(&self, class: JobClass) -> &ClassReport {
        self.per_class
            .iter()
            .find(|r| r.class == class)
            .expect("all classes reported")
    }

    /// A fixed-width table of the per-class rows.
    pub fn render(&self) -> String {
        let mut out = String::new();
        out.push_str(&format!(
            "{:<12} {:>6} {:>6} {:>7} {:>7} {:>8} {:>6} {:>6} {:>9} {:>9} {:>9}\n",
            "class",
            "sent",
            "ok",
            "cached",
            "errors",
            "bkpres",
            "lost",
            "unans",
            "p50(us)",
            "p99(us)",
            "max(us)"
        ));
        for row in &self.per_class {
            out.push_str(&format!(
                "{:<12} {:>6} {:>6} {:>7} {:>7} {:>8} {:>6} {:>6} {:>9} {:>9} {:>9}\n",
                row.class.to_string(),
                row.sent,
                row.ok,
                row.cached,
                row.errors,
                row.backpressure_frames,
                row.lost_to_backpressure,
                row.unanswered,
                row.p50_us,
                row.p99_us,
                row.max_us
            ));
        }
        out.push_str(&format!(
            "goaway {}  broken conns {}  elapsed {:?}\n",
            self.goaway, self.broken_conns, self.elapsed
        ));
        if !self.by_backend.is_empty() {
            out.push_str("responses by backend:");
            for (backend, n) in &self.by_backend {
                if *backend == crate::wire::ROUTER_BACKEND_ID {
                    out.push_str(&format!(" router:{n}"));
                } else {
                    out.push_str(&format!(" {backend}:{n}"));
                }
            }
            out.push('\n');
        }
        out
    }
}

/// xorshift64* — deterministic, dependency-free.
struct Rng(u64);

impl Rng {
    fn new(seed: u64) -> Rng {
        Rng(seed.max(1))
    }

    fn next(&mut self) -> u64 {
        let mut x = self.0;
        x ^= x << 13;
        x ^= x >> 7;
        x ^= x << 17;
        self.0 = x;
        x.wrapping_mul(0x2545_F491_4F6C_DD1D)
    }
}

/// A minted-but-unanswered request: everything needed to resend it
/// and to account for it when the connection ends.
struct Pending {
    class: JobClass,
    sent_at: Instant,
    frame: RequestFrame,
    retries_left: u32,
}

/// What the reader tells the sender to do with a backpressure'd
/// request.
struct Resend {
    frame: RequestFrame,
    retries_left: u32,
    class: JobClass,
    sent_at: Instant,
    not_before: Instant,
}

#[derive(Default)]
struct ConnState {
    pending: HashMap<u64, Pending>,
    resends: Vec<Resend>,
    /// Latency samples (µs) per band, in fixed-memory log-bucketed
    /// histograms: an open-loop overload run records millions of
    /// samples without the per-sample `Vec` growth the old
    /// implementation paid.
    latencies: [obs::Histogram; JobClass::COUNT],
    ok: [u64; JobClass::COUNT],
    cached: [u64; JobClass::COUNT],
    errors: [u64; JobClass::COUNT],
    backpressure_frames: [u64; JobClass::COUNT],
    lost: [u64; JobClass::COUNT],
    /// Completed responses per answering backend id.
    by_backend: HashMap<u32, u64>,
    goaway: u64,
    /// Reader saw EOF/GoAway/error: sender must stop.
    closed: bool,
    broken: bool,
}

struct ConnShared {
    state: Mutex<ConnState>,
    changed: Condvar,
}

/// Runs the configured load against `addr` and blocks until every
/// connection finishes (or drains out). Deterministic given the seed,
/// up to scheduling and server timing.
pub fn run(addr: SocketAddr, config: &LoadConfig) -> LoadReport {
    assert!(
        config.connections > 0,
        "loadgen needs at least one connection"
    );
    assert!(!config.mix.is_empty(), "loadgen needs a class mix");
    assert!(
        config.mix.iter().map(|c| c.weight as u64).sum::<u64>() > 0,
        "mix weight sum is 0"
    );
    let start = Instant::now();
    let handles: Vec<_> = (0..config.connections)
        .map(|conn_idx| {
            let config = config.clone();
            std::thread::spawn(move || drive_connection(addr, conn_idx as u64, &config))
        })
        .collect();
    let mut per_band_lat: [obs::HistSnapshot; JobClass::COUNT] = Default::default();
    let mut sent = [0u64; JobClass::COUNT];
    let mut ok = [0u64; JobClass::COUNT];
    let mut cached = [0u64; JobClass::COUNT];
    let mut errors = [0u64; JobClass::COUNT];
    let mut bkpres = [0u64; JobClass::COUNT];
    let mut lost = [0u64; JobClass::COUNT];
    let mut unanswered = [0u64; JobClass::COUNT];
    let mut goaway = 0u64;
    let mut broken = 0u64;
    let mut by_backend: HashMap<u32, u64> = HashMap::new();
    for handle in handles {
        let (state, conn_sent) = handle.join().expect("loadgen connection thread panicked");
        for (backend, n) in &state.by_backend {
            *by_backend.entry(*backend).or_insert(0) += n;
        }
        for band in 0..JobClass::COUNT {
            per_band_lat[band].merge(&state.latencies[band].snapshot());
            sent[band] += conn_sent[band];
            ok[band] += state.ok[band];
            cached[band] += state.cached[band];
            errors[band] += state.errors[band];
            bkpres[band] += state.backpressure_frames[band];
            lost[band] += state.lost[band];
        }
        for pending in state.pending.values() {
            unanswered[pending.class.band()] += 1;
        }
        goaway += state.goaway;
        broken += u64::from(state.broken);
    }
    let per_class = JobClass::ALL
        .iter()
        .map(|&class| {
            let band = class.band();
            let lat = &per_band_lat[band];
            ClassReport {
                class,
                sent: sent[band],
                ok: ok[band],
                cached: cached[band],
                errors: errors[band],
                backpressure_frames: bkpres[band],
                lost_to_backpressure: lost[band],
                unanswered: unanswered[band],
                p50_us: lat.percentile(50),
                p99_us: lat.percentile(99),
                max_us: lat.max(),
            }
        })
        .collect();
    let mut by_backend: Vec<(u32, u64)> = by_backend.into_iter().collect();
    by_backend.sort_unstable();
    LoadReport {
        per_class,
        goaway,
        broken_conns: broken,
        by_backend,
        elapsed: start.elapsed(),
    }
}

/// Runs the same load at each connection count in `conns` and returns
/// one `(connections, report)` row per count — the connection-sweep
/// mode behind `loadgen --conns a,b,c` and experiment E18.
///
/// The total fresh-request volume of `base` (`connections ×
/// requests_per_connection`) is held constant across points: each
/// sweep point divides it over its connection count (at least one
/// request per connection), so rows compare server behavior under
/// the same offered work at different concurrency, not more work.
pub fn sweep(addr: SocketAddr, base: &LoadConfig, conns: &[usize]) -> Vec<(usize, LoadReport)> {
    assert!(!conns.is_empty(), "sweep needs at least one point");
    let total = base.connections * base.requests_per_connection;
    conns
        .iter()
        .map(|&n| {
            let n = n.max(1);
            let config = LoadConfig {
                connections: n,
                requests_per_connection: (total / n).max(1),
                ..base.clone()
            };
            (n, run(addr, &config))
        })
        .collect()
}

/// Parses a `--conns`-style sweep list (`"8,64,512"`): comma-separated
/// positive connection counts, strictly increasing so the sweep reads
/// as a curve. Returns a human-readable error for the CLI to print.
pub fn parse_conns_arg(arg: &str) -> Result<Vec<usize>, String> {
    let mut out = Vec::new();
    for piece in arg.split(',') {
        let n: usize = piece
            .trim()
            .parse()
            .map_err(|_| format!("invalid connection count {piece:?} in {arg:?}"))?;
        if n == 0 {
            return Err(format!("connection count must be >= 1 in {arg:?}"));
        }
        if let Some(&last) = out.last() {
            if n <= last {
                return Err(format!(
                    "connection counts must be strictly increasing, got {n} after {last} in {arg:?}"
                ));
            }
        }
        out.push(n);
    }
    if out.is_empty() {
        return Err("empty connection list".to_string());
    }
    Ok(out)
}

/// Exact nearest-rank percentile over an already-sorted slice (0 if
/// empty). The rank `ceil(len * pct / 100)` is clamped to at least 1,
/// so `pct = 0` returns the minimum element — the natural reading of
/// "0th percentile" — rather than indexing before the slice. A
/// single-element slice returns that element for every `pct`.
///
/// The load generator itself now aggregates latencies through
/// [`obs::HistSnapshot::percentile`] (bounded memory, ≤ 3.125% high);
/// this exact version stays public as the reference implementation
/// benchmarks and tests compare against.
pub fn percentile(sorted: &[u64], pct: usize) -> u64 {
    if sorted.is_empty() {
        return 0;
    }
    let rank = (sorted.len() * pct).div_ceil(100).max(1);
    sorted[rank - 1]
}

/// Opens a fresh connection to `addr`, sends one `Op::Stats` request,
/// and returns the rendered metrics snapshot from the response body.
///
/// Stats requests are answered synchronously by the server's reader
/// thread — no admission, no job queue — so this works even while the
/// job server is saturated, which is exactly when you want to look at
/// its counters.
pub fn fetch_stats(addr: SocketAddr) -> std::io::Result<String> {
    fetch_stats_body(addr, encode_stats_request(1))
}

/// Like [`fetch_stats`] but sends op 4 (`StatsFull`): the returned body
/// is `obs::Snapshot::encode_text()` — full sparse histogram buckets —
/// ready for `Snapshot::parse_text` and bucket-exact merging.
pub fn fetch_stats_full(addr: SocketAddr) -> std::io::Result<String> {
    fetch_stats_body(addr, encode_stats_full_request(1))
}

/// Opens a fresh connection to `addr`, writes one pre-encoded request
/// frame, and returns the single decoded [`ResponseFrame`] — whatever
/// its status. The one-shot primitive the admin (`ctl`) client and the
/// control-plane tests are built on: unlike [`fetch_stats`] it does
/// not insist on `Ok`, because an `Error` response (bad token, bad
/// transition) is a meaningful answer there, not a transport failure.
pub fn call_once(addr: SocketAddr, request: &[u8]) -> std::io::Result<ResponseFrame> {
    let bad = |msg: &str| std::io::Error::new(std::io::ErrorKind::InvalidData, msg.to_string());
    let stream = TcpStream::connect(addr)?;
    let _ = stream.set_nodelay(true);
    {
        let mut writer = BufWriter::new(&stream);
        write_frame(&mut writer, request)?;
    }
    let _ = stream.shutdown(Shutdown::Write);
    let mut reader = BufReader::new(&stream);
    let payload =
        read_frame(&mut reader)?.ok_or_else(|| bad("connection closed before response"))?;
    match decode_payload(&payload) {
        Ok(Frame::Response(resp)) => Ok(resp),
        Ok(_) => Err(bad("answered with a non-response frame")),
        Err(e) => Err(bad(&format!("malformed response: {e}"))),
    }
}

fn fetch_stats_body(addr: SocketAddr, request: Vec<u8>) -> std::io::Result<String> {
    let bad = |msg: &str| std::io::Error::new(std::io::ErrorKind::InvalidData, msg.to_string());
    let stream = TcpStream::connect(addr)?;
    let _ = stream.set_nodelay(true);
    {
        let mut writer = BufWriter::new(&stream);
        write_frame(&mut writer, &request)?;
    }
    let _ = stream.shutdown(Shutdown::Write);
    let mut reader = BufReader::new(&stream);
    let payload = read_frame(&mut reader)?.ok_or_else(|| bad("connection closed before stats"))?;
    match decode_payload(&payload) {
        Ok(Frame::Response(resp)) if resp.status == RespStatus::Ok => Ok(resp.body),
        Ok(Frame::Response(resp)) => Err(bad(&format!(
            "stats request answered {:?}: {}",
            resp.status, resp.body
        ))),
        Ok(_) => Err(bad("stats request answered with a non-response frame")),
        Err(e) => Err(bad(&format!("malformed stats response: {e}"))),
    }
}

/// One connection: a sender (this thread) and a response reader.
/// Returns the final state and the fresh-sends per band.
fn drive_connection(
    addr: SocketAddr,
    conn_idx: u64,
    config: &LoadConfig,
) -> (ConnState, [u64; JobClass::COUNT]) {
    let mut sent = [0u64; JobClass::COUNT];
    let stream = match TcpStream::connect(addr) {
        Ok(s) => s,
        Err(_) => {
            let state = ConnState {
                broken: true,
                ..ConnState::default()
            };
            return (state, sent);
        }
    };
    let _ = stream.set_nodelay(true);
    let shared = Arc::new(ConnShared {
        state: Mutex::new(ConnState::default()),
        changed: Condvar::new(),
    });

    let reader_shared = Arc::clone(&shared);
    let read_half = stream.try_clone().expect("clone loadgen socket");
    let reader = std::thread::spawn(move || {
        response_reader(read_half, &reader_shared);
    });

    let mut rng = Rng::new(config.seed ^ (conn_idx.wrapping_mul(0x9E37_79B9_7F4A_7C15)));
    let weight_sum: u64 = config.mix.iter().map(|c| c.weight as u64).sum();
    let mut writer = BufWriter::new(&stream);
    let mut next_id: u64 = 1;
    let mut fresh_sent = 0usize;
    let mut open_next = Instant::now();

    'send: while fresh_sent < config.requests_per_connection {
        // Resends first — an admitted-class retry is older than any
        // fresh request and honoring its backoff keeps hints honest.
        let resend = {
            let mut st = shared.state.lock().expect("loadgen conn mutex poisoned");
            if st.closed {
                break 'send;
            }
            pick_due_resend(&mut st.resends)
        };
        if let Some(r) = resend {
            std::thread::sleep(r.not_before.saturating_duration_since(Instant::now()));
            let mut frame = r.frame;
            frame.id = next_id;
            next_id += 1;
            let bytes = encode_request(&frame);
            {
                let mut st = shared.state.lock().expect("loadgen conn mutex poisoned");
                st.pending.insert(
                    frame.id,
                    Pending {
                        class: r.class,
                        sent_at: r.sent_at,
                        frame,
                        retries_left: r.retries_left,
                    },
                );
            }
            if write_frame(&mut writer, &bytes).is_err() {
                mark_broken(&shared);
                break 'send;
            }
            continue;
        }

        // Pace: window (closed) or interval (open).
        match config.mode {
            Mode::Closed { pipeline } => {
                let mut st = shared.state.lock().expect("loadgen conn mutex poisoned");
                while !st.closed && st.pending.len() >= pipeline.max(1) && st.resends.is_empty() {
                    st = shared
                        .changed
                        .wait(st)
                        .expect("loadgen conn mutex poisoned");
                }
                if st.closed {
                    break 'send;
                }
                if !st.resends.is_empty() {
                    continue;
                }
            }
            Mode::Open { interval } => {
                std::thread::sleep(open_next.saturating_duration_since(Instant::now()));
                open_next += interval;
            }
        }

        let load = pick_class(&config.mix, weight_sum, &mut rng);
        let frame = mint_frame(load, next_id, conn_idx, fresh_sent as u64, &mut rng);
        next_id += 1;
        fresh_sent += 1;
        sent[load.class.band()] += 1;
        let bytes = encode_request(&frame);
        {
            let mut st = shared.state.lock().expect("loadgen conn mutex poisoned");
            st.pending.insert(
                frame.id,
                Pending {
                    class: load.class,
                    sent_at: Instant::now(),
                    frame,
                    retries_left: config.max_retries,
                },
            );
        }
        if write_frame(&mut writer, &bytes).is_err() {
            mark_broken(&shared);
            break 'send;
        }
    }

    // Drain: keep servicing resends until everything is answered, the
    // connection closes, or the drain timeout passes.
    let deadline = Instant::now() + config.drain_timeout;
    loop {
        let resend = {
            let mut st = shared.state.lock().expect("loadgen conn mutex poisoned");
            if st.closed || (st.pending.is_empty() && st.resends.is_empty()) {
                break;
            }
            if Instant::now() >= deadline {
                break;
            }
            match pick_due_resend(&mut st.resends) {
                Some(r) => Some(r),
                None => {
                    let (next, _) = shared
                        .changed
                        .wait_timeout(st, Duration::from_millis(20))
                        .expect("loadgen conn mutex poisoned");
                    drop(next);
                    None
                }
            }
        };
        if let Some(r) = resend {
            std::thread::sleep(r.not_before.saturating_duration_since(Instant::now()));
            let mut frame = r.frame;
            frame.id = next_id;
            next_id += 1;
            let bytes = encode_request(&frame);
            {
                let mut st = shared.state.lock().expect("loadgen conn mutex poisoned");
                st.pending.insert(
                    frame.id,
                    Pending {
                        class: r.class,
                        sent_at: r.sent_at,
                        frame,
                        retries_left: r.retries_left,
                    },
                );
            }
            if write_frame(&mut writer, &bytes).is_err() {
                mark_broken(&shared);
                break;
            }
        }
    }
    drop(writer);
    // FIN our side; the server drains outstanding responses, then FINs
    // back, which ends the reader with a clean EOF.
    let _ = stream.shutdown(Shutdown::Write);
    let _ = reader.join();
    let state = std::mem::take(&mut *shared.state.lock().expect("loadgen conn mutex poisoned"));
    (state, sent)
}

fn mark_broken(shared: &ConnShared) {
    let mut st = shared.state.lock().expect("loadgen conn mutex poisoned");
    st.broken = true;
    st.closed = true;
    drop(st);
    shared.changed.notify_all();
}

fn pick_due_resend(resends: &mut Vec<Resend>) -> Option<Resend> {
    let now = Instant::now();
    let idx = resends.iter().position(|r| r.not_before <= now)?;
    Some(resends.swap_remove(idx))
}

fn pick_class<'a>(mix: &'a [ClassLoad], weight_sum: u64, rng: &mut Rng) -> &'a ClassLoad {
    let mut roll = rng.next() % weight_sum;
    for load in mix {
        let w = load.weight as u64;
        if roll < w {
            return load;
        }
        roll -= w;
    }
    &mix[mix.len() - 1]
}

fn mint_frame(
    load: &ClassLoad,
    id: u64,
    conn_idx: u64,
    req_idx: u64,
    rng: &mut Rng,
) -> RequestFrame {
    let req = match &load.op {
        OpTemplate::GradeUnique => Request::Grade {
            // A syntactically valid submission the autograder will
            // chew on; the variant comment makes each one a distinct
            // cache key.
            submission: format!(
                "# variant {conn_idx}/{req_idx}\nmain:\n    movl $0, %eax\n    ret\n"
            ),
        },
        OpTemplate::Homework { generator } => Request::Homework {
            generator: generator.clone(),
            seed: rng.next(),
        },
        OpTemplate::Reproduce { prefix, variants } => Request::Reproduce {
            id: format!("{prefix}/{}", rng.next() % (*variants).max(1)),
        },
        OpTemplate::Life {
            dim,
            base_steps,
            variants,
        } => {
            let seed = rng.next() % (*variants).max(1);
            // Heavy tail: most requests take the cheap tier, a few the
            // 12× one. The (seed, steps) tuple is the cache key, so
            // the small key space keeps the mix cache-friendly.
            let steps = match rng.next() % 8 {
                0 => base_steps * 12,
                1 | 2 => base_steps * 4,
                _ => *base_steps,
            };
            Request::Life {
                w: *dim,
                h: *dim,
                steps: steps.max(1),
                seed,
            }
        }
        OpTemplate::MemTrace { accesses, variants } => {
            let patterns = serve::server::MEMTRACE_PATTERNS;
            let roll = rng.next();
            Request::MemTrace {
                pattern: patterns[(roll % patterns.len() as u64) as usize].to_string(),
                accesses: (*accesses).max(1),
                seed: roll % (*variants).max(1),
            }
        }
    };
    RequestFrame {
        id,
        class: load.class,
        priority: load.priority,
        deadline_budget_ms: load.deadline_budget_ms,
        req,
    }
}

/// The per-connection response reader: matches frames to pending
/// requests by id and turns backpressure into scheduled resends.
fn response_reader(read_half: TcpStream, shared: &ConnShared) {
    let mut reader = BufReader::new(&read_half);
    loop {
        let payload = match read_frame(&mut reader) {
            Ok(Some(p)) => p,
            Ok(None) => break,
            Err(_) => {
                mark_broken(shared);
                return;
            }
        };
        let frame = match decode_payload(&payload) {
            Ok(Frame::Response(f)) => f,
            _ => {
                mark_broken(shared);
                return;
            }
        };
        let mut st = shared.state.lock().expect("loadgen conn mutex poisoned");
        match frame.status {
            RespStatus::GoAway => {
                st.goaway += 1;
                st.closed = true;
                drop(st);
                shared.changed.notify_all();
                // The server is done with us; stop reading.
                return;
            }
            RespStatus::Ok | RespStatus::OkCached | RespStatus::Error => {
                if let Some(p) = st.pending.remove(&frame.id) {
                    let band = p.class.band();
                    let lat = p.sent_at.elapsed().as_micros() as u64;
                    *st.by_backend.entry(frame.backend).or_insert(0) += 1;
                    match frame.status {
                        RespStatus::Ok => st.ok[band] += 1,
                        RespStatus::OkCached => st.cached[band] += 1,
                        _ => st.errors[band] += 1,
                    }
                    if frame.status != RespStatus::Error {
                        st.latencies[band].record(lat);
                    }
                }
            }
            RespStatus::Retry | RespStatus::Shed => {
                if let Some(p) = st.pending.remove(&frame.id) {
                    let band = p.class.band();
                    st.backpressure_frames[band] += 1;
                    if p.retries_left == 0 || frame.retry_after_ms == 0 {
                        // Out of budget, or the server says retrying
                        // is pointless (deadline passed).
                        st.lost[band] += 1;
                    } else {
                        st.resends.push(Resend {
                            frame: p.frame,
                            retries_left: p.retries_left - 1,
                            class: p.class,
                            sent_at: p.sent_at,
                            not_before: Instant::now()
                                + Duration::from_millis(frame.retry_after_ms),
                        });
                    }
                }
            }
        }
        drop(st);
        shared.changed.notify_all();
    }
    let mut st = shared.state.lock().expect("loadgen conn mutex poisoned");
    st.closed = true;
    drop(st);
    shared.changed.notify_all();
}

#[cfg(test)]
mod tests {
    use super::{parse_conns_arg, percentile};

    #[test]
    fn conns_arg_parses_an_increasing_list() {
        assert_eq!(parse_conns_arg("8,64,512").unwrap(), vec![8, 64, 512]);
        assert_eq!(parse_conns_arg("1").unwrap(), vec![1]);
        assert_eq!(parse_conns_arg(" 2 , 4 ").unwrap(), vec![2, 4]);
    }

    #[test]
    fn conns_arg_rejects_garbage_zero_and_non_increasing() {
        assert!(parse_conns_arg("").is_err());
        assert!(parse_conns_arg("8,x").is_err());
        assert!(parse_conns_arg("0,4").is_err());
        assert!(parse_conns_arg("8,8").is_err());
        assert!(parse_conns_arg("64,8").is_err());
    }

    #[test]
    fn percentile_zero_returns_the_minimum() {
        assert_eq!(percentile(&[10, 20, 30, 40], 0), 10);
        assert_eq!(percentile(&[7], 0), 7);
    }

    #[test]
    fn percentile_on_a_single_sample_slice_returns_it_for_every_pct() {
        for pct in [0, 1, 50, 99, 100] {
            assert_eq!(percentile(&[42], pct), 42);
        }
    }

    #[test]
    fn percentile_is_nearest_rank() {
        let sorted = [1, 2, 3, 4, 5, 6, 7, 8, 9, 10];
        assert_eq!(percentile(&sorted, 50), 5);
        assert_eq!(percentile(&sorted, 99), 10);
        assert_eq!(percentile(&sorted, 100), 10);
        assert_eq!(percentile(&sorted, 10), 1);
        assert_eq!(percentile(&sorted, 11), 2);
    }

    #[test]
    fn percentile_of_empty_is_zero() {
        assert_eq!(percentile(&[], 50), 0);
        assert_eq!(percentile(&[], 0), 0);
    }
}
