//! # net — the TCP front end and load generator for the course server
//!
//! `serve` ends at a function call: `submit` hands back a ticket and
//! the caller is a thread in the same process. This crate puts the
//! course server on a socket, which is where every one of its design
//! choices gets an end-to-end test it cannot dodge:
//!
//! * [`wire`] — a length-prefixed binary protocol carrying the whole
//!   scheduling story (class, priority, deadline *budget*) per
//!   request, with explicit `RETRY`/`SHED`/`GOAWAY` response frames
//!   so admission backpressure and its retry hints travel the wire
//!   instead of dying at the process boundary. Decoding is total:
//!   corrupt or truncated frames return typed [`wire::WireError`]s,
//!   never panic (property-tested in `tests/wire_props.rs`).
//! * [`server`] — a blocking `std::net` front end: one acceptor, a
//!   reader and a writer thread per connection. The reader submits
//!   and never waits; completions flow through
//!   `serve::server::Ticket::on_ready` callbacks into the writer's
//!   outbound queue, so pipelined requests complete **out of order by
//!   id** and a slow bulk job cannot convoy an interactive response.
//!   Connection-cap shedding at accept time, read/write timeouts, and
//!   a stop-accept → drain → FIN shutdown that loses no admitted
//!   request — even under injected wire faults
//!   (`serve::fault::FaultPoint::NetReadFrame` /
//!   `NetWriteFrame` stalls and drops).
//! * [`loadgen`] — a multi-connection client driving open- or
//!   closed-loop load with a heavy-tail class mix, honoring retry
//!   hints, and reporting per-class p50/p99/max latency: the tool
//!   experiment E14 uses to show that `Scheduler::PriorityLanes`
//!   beats `Scheduler::SharedFifo` where it counts — grade-request
//!   tail latency over real sockets under overload.
//!
//! ```no_run
//! use net::loadgen::{self, LoadConfig};
//! use net::server::{NetConfig, NetServer};
//! use serve::server::{CourseServer, ServerConfig};
//!
//! let course = CourseServer::new(ServerConfig::default());
//! let srv = NetServer::bind("127.0.0.1:0", course, NetConfig::default()).unwrap();
//! let report = loadgen::run(srv.local_addr(), &LoadConfig::default());
//! println!("{}", report.render());
//! srv.shutdown();
//! ```

// `deny` (not `forbid`) so exactly one module — [`sys`], the raw
// epoll/eventfd syscall shims behind the readiness reactor — can
// `allow(unsafe_code)`, mirroring the `serve::deque` precedent.
// Everything else in the crate still refuses `unsafe`.
#![deny(unsafe_code)]
#![deny(missing_docs)]

pub mod loadgen;
pub mod reactor;
pub mod server;
pub mod sys;
pub mod wire;

pub use loadgen::{ClassLoad, LoadConfig, LoadReport, Mode, OpTemplate};
pub use server::{Io, NetConfig, NetServer, NetStats};
pub use wire::{Frame, RequestFrame, RespStatus, ResponseFrame, WireError};
