//! Property tests: the pool-backed `serve::par` entry points agree
//! with serial evaluation and with the course's scoped `parallel::par`
//! functions, for random sizes, worker counts, grains, and both queue
//! topologies. Scheduling must only reorder work, never change
//! answers.

use proptest::prelude::*;
use serve::pool::{Scheduler, ThreadPool};
use serve::{par, Cache};

fn pools(workers: usize) -> [ThreadPool; 2] {
    [
        ThreadPool::with_scheduler(workers, Scheduler::SharedFifo),
        ThreadPool::with_scheduler(workers, Scheduler::WorkStealing),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    #[test]
    fn prop_par_map_agrees_with_serial_and_parallel_par(
        data in proptest::collection::vec(any::<i32>(), 0..300),
        workers in 1usize..6,
        grain in 1usize..40,
    ) {
        let serial: Vec<i64> = data.iter().map(|&x| i64::from(x) * 7 - 3).collect();
        let scoped = parallel::par::par_map(&data, workers, |&x| i64::from(x) * 7 - 3);
        prop_assert_eq!(&scoped, &serial);
        for pool in pools(workers) {
            let defaulted = par::par_map(&pool, &data, |&x| i64::from(x) * 7 - 3);
            prop_assert_eq!(&defaulted, &serial);
            let grained = par::par_map_grain(&pool, &data, grain, |&x| i64::from(x) * 7 - 3);
            prop_assert_eq!(&grained, &serial);
        }
    }

    #[test]
    fn prop_par_reduce_agrees_with_serial_and_parallel_par(
        data in proptest::collection::vec(0u64..1_000, 0..300),
        workers in 1usize..6,
        grain in 1usize..40,
    ) {
        let serial: u64 = data.iter().sum();
        let scoped =
            parallel::par::par_reduce(&data, workers, 0u64, |a, &x| a + x, |a, b| a + b);
        prop_assert_eq!(scoped, serial);
        for pool in pools(workers) {
            let defaulted = par::par_reduce(&pool, &data, 0u64, |a, &x| a + x, |a, b| a + b);
            prop_assert_eq!(defaulted, serial);
            let grained =
                par::par_reduce_grain(&pool, &data, grain, 0u64, |a, &x| a + x, |a, b| a + b);
            prop_assert_eq!(grained, serial);
        }
    }

    #[test]
    fn prop_par_for_chunks_writes_match_serial(
        len in 0usize..300,
        workers in 1usize..6,
        grain in 1usize..40,
    ) {
        let want: Vec<u64> = (0..len as u64).map(|x| x * x + 1).collect();
        for pool in pools(workers) {
            let data: Vec<u64> = (0..len as u64).collect();
            let got = par::par_for_chunks_grain(&pool, data, grain, |_idx, chunk| {
                for x in chunk {
                    *x = *x * *x + 1;
                }
            });
            prop_assert_eq!(&got, &want);
        }
    }

    #[test]
    fn prop_cache_backed_results_are_stable_under_stealing(
        keys in proptest::collection::vec(0u32..40, 1..120),
        workers in 1usize..6,
    ) {
        // Same-keyed jobs racing through the stealing pool must all
        // observe the compute-once cache answer.
        let pool = ThreadPool::with_scheduler(workers, Scheduler::WorkStealing);
        let cache = std::sync::Arc::new(Cache::<u32, u64>::new(4, 64));
        let compute_cache = std::sync::Arc::clone(&cache);
        let results: Vec<u64> = par::par_map(&pool, &keys, move |&k| {
            compute_cache.get_or_insert_with(k, |k| u64::from(k) * 1_000 + 7)
        });
        for (&k, &v) in keys.iter().zip(&results) {
            prop_assert_eq!(v, u64::from(k) * 1_000 + 7);
        }
        let stats = cache.stats();
        prop_assert_eq!(stats.misses as usize,
                        keys.iter().collect::<std::collections::HashSet<_>>().len());
    }
}
