//! Property tests: the pool-backed `serve::par` entry points agree
//! with serial evaluation and with the course's scoped `parallel::par`
//! functions, for random sizes, worker counts, grains, and all four
//! queue topologies (shared FIFO, work stealing, priority lanes,
//! lock-free Chase–Lev). Scheduling must only reorder work, never
//! change answers — and under priority lanes the aging rule must keep
//! low-class work from starving no matter the mix.

use proptest::prelude::*;
use serve::pool::{JobClass, JobMeta, Scheduler, ThreadPool};
use serve::{par, Cache};

fn pools(workers: usize) -> [ThreadPool; 4] {
    [
        ThreadPool::with_scheduler(workers, Scheduler::SharedFifo),
        ThreadPool::with_scheduler(workers, Scheduler::WorkStealing),
        ThreadPool::with_scheduler(workers, Scheduler::PriorityLanes),
        ThreadPool::with_scheduler(workers, Scheduler::LockFree),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    #[test]
    fn prop_par_map_agrees_with_serial_and_parallel_par(
        data in proptest::collection::vec(any::<i32>(), 0..300),
        workers in 1usize..6,
        grain in 1usize..40,
    ) {
        let serial: Vec<i64> = data.iter().map(|&x| i64::from(x) * 7 - 3).collect();
        let scoped = parallel::par::par_map(&data, workers, |&x| i64::from(x) * 7 - 3);
        prop_assert_eq!(&scoped, &serial);
        for pool in pools(workers) {
            let defaulted = par::par_map(&pool, &data, |&x| i64::from(x) * 7 - 3);
            prop_assert_eq!(&defaulted, &serial);
            let grained = par::par_map_grain(&pool, &data, grain, |&x| i64::from(x) * 7 - 3);
            prop_assert_eq!(&grained, &serial);
        }
    }

    #[test]
    fn prop_par_reduce_agrees_with_serial_and_parallel_par(
        data in proptest::collection::vec(0u64..1_000, 0..300),
        workers in 1usize..6,
        grain in 1usize..40,
    ) {
        let serial: u64 = data.iter().sum();
        let scoped =
            parallel::par::par_reduce(&data, workers, 0u64, |a, &x| a + x, |a, b| a + b);
        prop_assert_eq!(scoped, serial);
        for pool in pools(workers) {
            let defaulted = par::par_reduce(&pool, &data, 0u64, |a, &x| a + x, |a, b| a + b);
            prop_assert_eq!(defaulted, serial);
            let grained =
                par::par_reduce_grain(&pool, &data, grain, 0u64, |a, &x| a + x, |a, b| a + b);
            prop_assert_eq!(grained, serial);
        }
    }

    #[test]
    fn prop_par_for_chunks_writes_match_serial(
        len in 0usize..300,
        workers in 1usize..6,
        grain in 1usize..40,
    ) {
        let want: Vec<u64> = (0..len as u64).map(|x| x * x + 1).collect();
        for pool in pools(workers) {
            let data: Vec<u64> = (0..len as u64).collect();
            let got = par::par_for_chunks_grain(&pool, data, grain, |_idx, chunk| {
                for x in chunk {
                    *x = *x * *x + 1;
                }
            });
            prop_assert_eq!(&got, &want);
        }
    }

    #[test]
    fn prop_cache_backed_results_are_stable_under_stealing(
        keys in proptest::collection::vec(0u32..40, 1..120),
        workers in 1usize..6,
    ) {
        // Same-keyed jobs racing through the stealing pool must all
        // observe the compute-once cache answer.
        let pool = ThreadPool::with_scheduler(workers, Scheduler::WorkStealing);
        let cache = std::sync::Arc::new(Cache::<u32, u64>::new(4, 64));
        let compute_cache = std::sync::Arc::clone(&cache);
        let results: Vec<u64> = par::par_map(&pool, &keys, move |&k| {
            compute_cache.get_or_insert_with(k, |k| u64::from(k) * 1_000 + 7)
        });
        for (&k, &v) in keys.iter().zip(&results) {
            prop_assert_eq!(v, u64::from(k) * 1_000 + 7);
        }
        let stats = cache.stats();
        prop_assert_eq!(stats.misses as usize,
                        keys.iter().collect::<std::collections::HashSet<_>>().len());
    }

    #[test]
    fn prop_par_under_with_meta_keeps_parity_and_inherits_the_class(
        data in proptest::collection::vec(any::<i32>(), 1..200),
        workers in 1usize..5,
        band in 0usize..3,
    ) {
        // A par_map wrapped in with_meta must (a) still agree with
        // serial and (b) submit every chunk job in the caller's class,
        // not the Batch default — the serve::par class-propagation
        // contract.
        let class = JobClass::from_band(band);
        let serial: Vec<i64> = data.iter().map(|&x| i64::from(x) * 11 + 5).collect();
        let pool = ThreadPool::with_scheduler(workers, Scheduler::PriorityLanes);
        let mapped = serve::pool::with_meta(JobMeta::for_class(class), || {
            par::par_map(&pool, &data, |&x| i64::from(x) * 11 + 5)
        });
        prop_assert_eq!(&mapped, &serial);
        pool.wait_empty();
        let stats = pool.stats();
        prop_assert!(stats.per_class[band].submitted > 0,
                     "no chunk landed in the caller's class {}", class);
        for other in 0..JobClass::COUNT {
            if other != band {
                prop_assert_eq!(stats.per_class[other].submitted, 0,
                                "a chunk was demoted out of class {}", class);
            }
        }
    }

    #[test]
    fn prop_lockfree_and_mutex_deques_claim_every_job_exactly_once(
        values in proptest::collection::vec(1u64..1_000_000, 1..200),
        workers in 1usize..6,
        nested_mask in any::<u64>(),
        spin_mask in any::<u64>(),
    ) {
        // The scheduler-parity property the Chase–Lev deque must
        // uphold: for a random mix of external submissions, nested
        // (worker-side, own-deque) submissions, and job durations —
        // i.e. random push/pop/steal interleavings — both the mutex
        // deques and the lock-free deques claim every job exactly
        // once. A double-claim would double-count its value; a lost
        // job would hang wait_empty or drop its value. The checksum
        // catches both.
        use std::sync::Arc;
        use std::sync::atomic::{AtomicU64, Ordering};

        let want: u64 = values.iter().sum();
        for scheduler in [Scheduler::WorkStealing, Scheduler::LockFree] {
            let pool = Arc::new(ThreadPool::with_scheduler(workers, scheduler));
            let sum = Arc::new(AtomicU64::new(0));
            let claims = Arc::new(AtomicU64::new(0));
            for (i, &v) in values.iter().enumerate() {
                let sum = Arc::clone(&sum);
                let claims = Arc::clone(&claims);
                let spin = spin_mask & (1 << (i % 64)) != 0;
                let body = move || {
                    if spin {
                        std::thread::sleep(std::time::Duration::from_micros(20));
                    }
                    sum.fetch_add(v, Ordering::Relaxed);
                    claims.fetch_add(1, Ordering::Relaxed);
                };
                if nested_mask & (1 << (i % 64)) != 0 {
                    // Submit from inside a job: exercises the
                    // owner-side (lock-free) push path and LIFO pop.
                    let pool2 = Arc::clone(&pool);
                    pool.execute(move || {
                        pool2.execute(body).expect("pool is open");
                    }).unwrap();
                } else {
                    pool.execute(body).unwrap();
                }
            }
            pool.wait_empty();
            prop_assert_eq!(sum.load(Ordering::Relaxed), want,
                            "{} lost or double-claimed a job", scheduler);
            prop_assert_eq!(claims.load(Ordering::Relaxed), values.len() as u64,
                            "{} claim count off", scheduler);
            let stats = pool.stats();
            prop_assert_eq!(stats.local_hits + stats.steals,
                            stats.submitted,
                            "{} claims must partition into hits and steals", scheduler);
            prop_assert_eq!(stats.queue_depth, 0);
        }
    }

    #[test]
    fn prop_aging_never_starves_bulk_under_sustained_interactive_load(
        n_bulk in 1usize..6,
        bulk_priority in 0u8..255,
    ) {
        // The no-starvation property: every admitted low-class job
        // completes while high-class work keeps arriving, within a
        // bounded number of interactive feeds (the AGING_PERIOD bound,
        // with generous slack for scheduling noise). Without aging this
        // test would spin to its feed cap and fail.
        use std::sync::Arc;
        use std::sync::atomic::{AtomicUsize, Ordering};
        use std::time::Duration;

        let pool = ThreadPool::with_scheduler(1, Scheduler::PriorityLanes);
        let gate = Arc::new(std::sync::atomic::AtomicBool::new(false));
        {
            let gate = Arc::clone(&gate);
            pool.execute(move || {
                while !gate.load(Ordering::SeqCst) {
                    std::thread::sleep(Duration::from_micros(100));
                }
            }).unwrap();
        }
        let bulk_done = Arc::new(AtomicUsize::new(0));
        for _ in 0..n_bulk {
            let bulk_done = Arc::clone(&bulk_done);
            pool.execute_with_meta(
                JobMeta::for_class(JobClass::Bulk).with_priority(bulk_priority),
                move || { bulk_done.fetch_add(1, Ordering::SeqCst); },
            ).unwrap();
        }
        // Prime the interactive lane so it is never empty early on.
        for _ in 0..32 {
            pool.execute_with_meta(JobMeta::for_class(JobClass::Interactive), || {
                std::thread::sleep(Duration::from_micros(30));
            }).unwrap();
        }
        gate.store(true, Ordering::SeqCst);
        // Feed at roughly the worker's consumption rate (the throttle
        // keeps the backlog bounded; an unthrottled feeder outruns a
        // 30us-per-job worker a thousandfold and only measures its own
        // speed). n_bulk aging grants need ~n_bulk * AGING_PERIOD
        // claims ~ a few ms; the deadline is pure slack.
        let deadline = std::time::Instant::now() + Duration::from_secs(10);
        let mut fed = 0usize;
        while bulk_done.load(Ordering::SeqCst) < n_bulk {
            pool.execute_with_meta(JobMeta::for_class(JobClass::Interactive), || {
                std::thread::sleep(Duration::from_micros(30));
            }).unwrap();
            fed += 1;
            std::thread::sleep(Duration::from_micros(20));
            prop_assert!(std::time::Instant::now() < deadline,
                         "bulk starved: {}/{} done after {} interactive feeds",
                         bulk_done.load(Ordering::SeqCst), n_bulk, fed);
        }
        pool.wait_empty();
        prop_assert_eq!(bulk_done.load(Ordering::SeqCst), n_bulk);
    }
}
