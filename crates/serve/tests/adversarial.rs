//! Server invariants under adversarial schedules (seeded fault
//! injection via `serve::fault::FaultPlan`).
//!
//! The invariants under test, per DESIGN.md:
//! 1. every accepted request resolves its ticket exactly once, even
//!    when the handler panics or stalls at injected points;
//! 2. `shutdown` returns only after every accepted request completed
//!    (drain never drops work), under both queue topologies;
//! 3. panic isolation: a fault poisons only the faulty request — other
//!    requests keep succeeding, and the pool's workers survive.

use serve::fault::{FaultPlan, FaultPoint};
use serve::pool::Scheduler;
use serve::server::{CourseServer, Request, ServerConfig, SubmitError, Ticket};
use std::time::Duration;

fn config(scheduler: Scheduler, plan: &FaultPlan) -> ServerConfig {
    ServerConfig {
        workers: 4,
        queue_capacity: 256,
        scheduler,
        fault_plan: Some(plan.clone()),
        ..ServerConfig::default()
    }
}

/// Distinct homework requests (distinct seeds) so the cache cannot
/// collapse the workload into one compute.
fn homework(seed: u64) -> Request {
    Request::Homework { generator: "binary_arithmetic".into(), seed }
}

#[test]
fn every_ticket_resolves_when_handlers_panic_before_handle() {
    for scheduler in [Scheduler::SharedFifo, Scheduler::WorkStealing] {
        let plan = FaultPlan::new(0xDEAD_BEEF).panic_at(FaultPoint::BeforeHandle, 1, 3);
        let server = CourseServer::new(config(scheduler, &plan));
        let tickets: Vec<Ticket> =
            (0..120).map(|seed| server.submit(homework(seed)).expect("admitted")).collect();
        let mut failed = 0usize;
        for t in &tickets {
            // wait() returning at all is invariant 1; a hang here times
            // the whole test out.
            let resp = t.wait();
            if !resp.ok {
                assert!(
                    resp.body.contains("panicked"),
                    "unexpected failure body: {}",
                    resp.body
                );
                failed += 1;
            }
        }
        let stats = plan.stats();
        assert!(stats.panics > 0, "plan never fired under {scheduler}");
        assert!(failed > 0, "injected panics must surface as failed responses");
        assert!(
            failed < tickets.len(),
            "a 1/3 fault rate must leave some requests healthy ({scheduler})"
        );
        assert_eq!(server.stats().completed, 120, "every accepted request completed");
    }
}

#[test]
fn panics_after_handle_discard_work_but_still_resolve_tickets() {
    let plan = FaultPlan::new(31).panic_at(FaultPoint::AfterHandle, 1, 2);
    let server = CourseServer::new(config(Scheduler::WorkStealing, &plan));
    let responses: Vec<_> =
        (0..60).map(|seed| server.submit(homework(seed)).expect("admitted").wait()).collect();
    assert!(plan.stats().panics > 0);
    assert!(responses.iter().any(|r| r.ok), "some requests must survive");
    assert!(responses.iter().any(|r| !r.ok), "some requests must fail");
    // Healthy responses are real ones, not torn by neighbors' faults.
    for r in responses.iter().filter(|r| r.ok) {
        assert!(r.body.contains("solution"), "torn response body: {}", r.body);
    }
}

#[test]
fn shutdown_drains_everything_even_with_stalls_and_panics_in_flight() {
    for scheduler in [Scheduler::SharedFifo, Scheduler::WorkStealing] {
        let plan = FaultPlan::new(7)
            .stall_at(FaultPoint::BeforeHandle, Duration::from_millis(3), 1, 2)
            .panic_at(FaultPoint::AfterHandle, 1, 4);
        let server = CourseServer::new(config(scheduler, &plan));
        let tickets: Vec<Ticket> =
            (0..80).map(|seed| server.submit(homework(seed)).expect("admitted")).collect();
        server.shutdown();
        // Drain invariant: by the time shutdown returns, every accepted
        // ticket is already resolved — try_get, not wait.
        for (i, t) in tickets.iter().enumerate() {
            assert!(
                t.try_get().is_some(),
                "ticket {i} unresolved after shutdown ({scheduler})"
            );
        }
        assert!(matches!(
            server.submit(homework(999)),
            Err(SubmitError::ShuttingDown(_))
        ));
        let stats = server.stats();
        assert_eq!(stats.completed, 80, "drain dropped work under {scheduler}");
        assert!(plan.stats().stalls > 0, "stall rule never fired under {scheduler}");
    }
}

#[test]
fn faulty_request_leaves_the_cache_retryable_and_neighbors_untouched() {
    // Fire on every firing: the first attempt at any request panics.
    let plan = FaultPlan::new(1).panic_at(FaultPoint::BeforeHandle, 1, 1);
    let observer = plan.clone();
    let server = CourseServer::new(ServerConfig {
        workers: 2,
        scheduler: Scheduler::WorkStealing,
        fault_plan: Some(plan),
        ..ServerConfig::default()
    });
    let poisoned = server.submit(homework(5)).expect("admitted").wait();
    assert!(!poisoned.ok);
    assert!(observer.stats().panics >= 1);
    // The panic poisoned only that compute: the same key is retryable
    // (the cache slot was removed, not wedged) and still faults, while
    // the pool keeps serving.
    let retry = server.submit(homework(5)).expect("admitted").wait();
    assert!(!retry.ok, "1/1 fault rate must fault the retry too");
    assert!(observer.stats().panics >= 2, "retry must recompute, not hit a wedged slot");
    assert_eq!(server.stats().pool.panicked, 0, "faults are contained before the pool");
}
