//! Server invariants under adversarial schedules (seeded fault
//! injection via `serve::fault::FaultPlan`).
//!
//! The invariants under test, per DESIGN.md:
//! 1. every accepted request resolves its ticket exactly once, even
//!    when the handler panics or stalls at injected points;
//! 2. `shutdown` returns only after every accepted request completed
//!    (drain never drops work), under every queue topology — including
//!    a submit stalled between admission and the pool (the
//!    `BeforeEnqueue` race point);
//! 3. panic isolation: a fault poisons only the faulty request — other
//!    requests keep succeeding, and the pool's workers survive;
//! 4. cache-layer faults cannot break compute-once: a stall holding a
//!    shard lock only delays callers, and a forced eviction sweep
//!    during a compute never evicts the in-flight (`Computing`) entry;
//! 5. the per-class ledger balances after a drain:
//!    admitted = completed + shed (in_flight = 0), per class and
//!    globally, even with displacement shedding and faults in play.

use serve::cache::Cache;
use serve::fault::{FaultPlan, FaultPoint};
use serve::pool::{JobClass, Scheduler};
use serve::server::{CourseServer, Request, ServerConfig, SubmitError, Ticket};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::thread;
use std::time::Duration;

fn config(scheduler: Scheduler, plan: &FaultPlan) -> ServerConfig {
    ServerConfig {
        workers: 4,
        queue_capacity: 256,
        scheduler,
        fault_plan: Some(plan.clone()),
        ..ServerConfig::default()
    }
}

/// Distinct homework requests (distinct seeds) so the cache cannot
/// collapse the workload into one compute.
fn homework(seed: u64) -> Request {
    Request::Homework {
        generator: "binary_arithmetic".into(),
        seed,
    }
}

#[test]
fn every_ticket_resolves_when_handlers_panic_before_handle() {
    for scheduler in [
        Scheduler::SharedFifo,
        Scheduler::WorkStealing,
        Scheduler::LockFree,
    ] {
        let plan = FaultPlan::new(0xDEAD_BEEF).panic_at(FaultPoint::BeforeHandle, 1, 3);
        let server = CourseServer::new(config(scheduler, &plan));
        let tickets: Vec<Ticket> = (0..120)
            .map(|seed| server.submit(homework(seed)).expect("admitted"))
            .collect();
        let mut failed = 0usize;
        for t in &tickets {
            // wait() returning at all is invariant 1; a hang here times
            // the whole test out.
            let resp = t.wait();
            if !resp.ok {
                assert!(
                    resp.body.contains("panicked"),
                    "unexpected failure body: {}",
                    resp.body
                );
                failed += 1;
            }
        }
        let stats = plan.stats();
        assert!(stats.panics > 0, "plan never fired under {scheduler}");
        assert!(
            failed > 0,
            "injected panics must surface as failed responses"
        );
        assert!(
            failed < tickets.len(),
            "a 1/3 fault rate must leave some requests healthy ({scheduler})"
        );
        assert_eq!(
            server.stats().completed,
            120,
            "every accepted request completed"
        );
    }
}

#[test]
fn panics_after_handle_discard_work_but_still_resolve_tickets() {
    let plan = FaultPlan::new(31).panic_at(FaultPoint::AfterHandle, 1, 2);
    let server = CourseServer::new(config(Scheduler::WorkStealing, &plan));
    let responses: Vec<_> = (0..60)
        .map(|seed| server.submit(homework(seed)).expect("admitted").wait())
        .collect();
    assert!(plan.stats().panics > 0);
    assert!(responses.iter().any(|r| r.ok), "some requests must survive");
    assert!(responses.iter().any(|r| !r.ok), "some requests must fail");
    // Healthy responses are real ones, not torn by neighbors' faults.
    for r in responses.iter().filter(|r| r.ok) {
        assert!(
            r.body.contains("solution"),
            "torn response body: {}",
            r.body
        );
    }
}

#[test]
fn shutdown_drains_everything_even_with_stalls_and_panics_in_flight() {
    for scheduler in [
        Scheduler::SharedFifo,
        Scheduler::WorkStealing,
        Scheduler::PriorityLanes,
        Scheduler::LockFree,
    ] {
        let plan = FaultPlan::new(7)
            .stall_at(FaultPoint::BeforeHandle, Duration::from_millis(3), 1, 2)
            .panic_at(FaultPoint::AfterHandle, 1, 4);
        let server = CourseServer::new(config(scheduler, &plan));
        let tickets: Vec<Ticket> = (0..80)
            .map(|seed| server.submit(homework(seed)).expect("admitted"))
            .collect();
        server.shutdown();
        // Drain invariant: by the time shutdown returns, every accepted
        // ticket is already resolved — try_get, not wait.
        for (i, t) in tickets.iter().enumerate() {
            assert!(
                t.try_get().is_some(),
                "ticket {i} unresolved after shutdown ({scheduler})"
            );
        }
        assert!(matches!(
            server.submit(homework(999)),
            Err(SubmitError::ShuttingDown(_))
        ));
        let stats = server.stats();
        assert_eq!(stats.completed, 80, "drain dropped work under {scheduler}");
        assert!(
            plan.stats().stalls > 0,
            "stall rule never fired under {scheduler}"
        );
    }
}

#[test]
fn faulty_request_leaves_the_cache_retryable_and_neighbors_untouched() {
    // Fire on every firing: the first attempt at any request panics.
    let plan = FaultPlan::new(1).panic_at(FaultPoint::BeforeHandle, 1, 1);
    let observer = plan.clone();
    let server = CourseServer::new(ServerConfig {
        workers: 2,
        scheduler: Scheduler::WorkStealing,
        fault_plan: Some(plan),
        ..ServerConfig::default()
    });
    let poisoned = server.submit(homework(5)).expect("admitted").wait();
    assert!(!poisoned.ok);
    assert!(observer.stats().panics >= 1);
    // The panic poisoned only that compute: the same key is retryable
    // (the cache slot was removed, not wedged) and still faults, while
    // the pool keeps serving.
    let retry = server.submit(homework(5)).expect("admitted").wait();
    assert!(!retry.ok, "1/1 fault rate must fault the retry too");
    assert!(
        observer.stats().panics >= 2,
        "retry must recompute, not hit a wedged slot"
    );
    assert_eq!(
        server.stats().pool.panicked,
        0,
        "faults are contained before the pool"
    );
}

#[test]
fn shard_lock_hold_stalls_delay_but_never_deadlock_the_pipeline() {
    // A stall at CacheLockHold executes while the victim shard's map
    // lock is held, so every other request hashing there piles up
    // behind it. The pipeline must come out the other side with every
    // ticket resolved and every request completed.
    let plan =
        FaultPlan::new(0x10c4).stall_at(FaultPoint::CacheLockHold, Duration::from_millis(3), 1, 4);
    let server = CourseServer::new(ServerConfig {
        workers: 4,
        queue_capacity: 256,
        cache_shards: 2, // few shards: lock-holds collide with real traffic
        scheduler: Scheduler::WorkStealing,
        fault_plan: Some(plan.clone()),
        ..ServerConfig::default()
    });
    let tickets: Vec<Ticket> = (0..60)
        .map(|seed| server.submit(homework(seed)).expect("admitted"))
        .collect();
    for t in &tickets {
        assert!(t.wait().ok, "a lock-hold stall corrupted a response");
    }
    assert!(plan.stats().stalls > 0, "lock-hold rule never fired");
    assert_eq!(server.stats().completed, 60);
}

#[test]
fn forced_eviction_during_compute_never_evicts_the_computing_entry() {
    // 1 shard x capacity 1, forced-sweep mode on (any fault plan turns
    // it on). Key A computes slowly; key B computes, publishes, and
    // triggers sweeps while A is still Computing. The only legal
    // victim is B itself — A's waiter must get A's value from A's one
    // and only compute.
    let plan = FaultPlan::new(0xE71C).stall_at(
        FaultPoint::CacheEvictDuringCompute,
        Duration::from_millis(1),
        1,
        1,
    );
    let cache: Arc<Cache<u32, u64>> = Arc::new(Cache::with_fault_plan(1, 1, Some(plan.clone())));
    let computes_a = Arc::new(AtomicU64::new(0));

    let owner = {
        let cache = Arc::clone(&cache);
        let computes_a = Arc::clone(&computes_a);
        thread::spawn(move || {
            cache.get_or_insert_with(1u32, |k| {
                computes_a.fetch_add(1, Ordering::SeqCst);
                thread::sleep(Duration::from_millis(60));
                u64::from(k) * 100
            })
        })
    };
    // Let A's owner claim its slot, then attach a waiter to A.
    thread::sleep(Duration::from_millis(15));
    let waiter = {
        let cache = Arc::clone(&cache);
        let computes_a = Arc::clone(&computes_a);
        thread::spawn(move || {
            cache.get_or_insert_with(1u32, |k| {
                computes_a.fetch_add(1, Ordering::SeqCst);
                u64::from(k) * 100
            })
        })
    };
    // While A computes, churn other keys through the over-capacity
    // shard: each publication runs a forced sweep with A Computing.
    for key in 2u32..8 {
        let v = cache.get_or_insert_with(key, |k| u64::from(k) * 100);
        assert_eq!(v, u64::from(key) * 100);
    }
    assert_eq!(owner.join().expect("owner thread"), 100);
    assert_eq!(waiter.join().expect("waiter thread"), 100);
    assert_eq!(
        computes_a.load(Ordering::SeqCst),
        1,
        "the Computing entry was evicted out from under its waiter"
    );
    assert!(
        plan.stats().stalls > 0,
        "evict-during-compute point never fired"
    );
    assert!(
        cache.stats().evictions > 0,
        "forced sweeps never evicted the Ready churn"
    );
}

#[test]
fn shutdown_covers_a_submit_stalled_before_enqueue() {
    // The submission-side race: a submit that passed the accepting
    // check stalls before its job reaches the pool. A concurrent
    // shutdown must wait out that window — when shutdown returns, the
    // stalled submit's ticket is resolved, not lost.
    let plan =
        FaultPlan::new(0xACE).stall_at(FaultPoint::BeforeEnqueue, Duration::from_millis(40), 1, 1);
    let server = Arc::new(CourseServer::new(ServerConfig {
        workers: 2,
        queue_capacity: 16,
        fault_plan: Some(plan.clone()),
        ..ServerConfig::default()
    }));
    let submitter = {
        let server = Arc::clone(&server);
        thread::spawn(move || server.submit(homework(1)))
    };
    // Land shutdown inside the 40ms BeforeEnqueue stall.
    thread::sleep(Duration::from_millis(10));
    server.shutdown();
    match submitter.join().expect("submitter thread") {
        Ok(ticket) => {
            assert!(
                ticket.try_get().is_some(),
                "shutdown returned while a stalled submit's ticket was unresolved"
            );
        }
        // The submitter lost the accepting-check race entirely: also a
        // correct outcome (nothing was admitted, nothing can be lost).
        Err(SubmitError::ShuttingDown(_)) => {}
        Err(other) => panic!("unexpected submit error: {other:?}"),
    }
    assert!(plan.stats().stalls >= 1, "BeforeEnqueue rule never fired");
    let st = server.stats();
    assert_eq!(
        st.accepted,
        st.completed + st.shed,
        "drain left the ledger unbalanced"
    );
}

#[test]
fn per_class_ledger_balances_after_an_adversarial_drain() {
    // Mixed-class overload with displacement shedding, faults, and
    // backpressure, then a drain: for every class
    // admitted = completed + shed (in_flight = 0), and globally
    // accepted = completed + shed. This is the counter-balance
    // acceptance criterion for the class-aware pipeline.
    fn slow_bulk() -> String {
        thread::sleep(Duration::from_millis(4));
        "bulk table".to_string()
    }
    let plan = FaultPlan::new(0xBA1A)
        .panic_at(FaultPoint::BeforeHandle, 1, 6)
        .stall_at(FaultPoint::AfterHandle, Duration::from_millis(1), 1, 5);
    let server = Arc::new(CourseServer::with_experiments(
        ServerConfig {
            workers: 2,
            queue_capacity: 6, // tight: forces sheds and rejections
            scheduler: Scheduler::PriorityLanes,
            fault_plan: Some(plan),
            ..ServerConfig::default()
        },
        vec![
            (
                "bulk-a".to_string(),
                slow_bulk as serve::server::ExperimentFn,
            ),
            (
                "bulk-b".to_string(),
                slow_bulk as serve::server::ExperimentFn,
            ),
            (
                "bulk-c".to_string(),
                slow_bulk as serve::server::ExperimentFn,
            ),
        ],
    ));
    thread::scope(|s| {
        for client in 0..3u64 {
            let server = Arc::clone(&server);
            s.spawn(move || {
                for i in 0..40u64 {
                    let req = match (client + i) % 3 {
                        0 => Request::Grade {
                            // Distinct submissions: no cache collapse.
                            submission: format!("# v{client}-{i}\nmain:\n    hlt\n"),
                        },
                        1 => Request::Homework {
                            generator: "binary_arithmetic".into(),
                            seed: client * 1000 + i,
                        },
                        _ => Request::Reproduce {
                            id: format!("bulk-{}", ["a", "b", "c"][(i % 3) as usize]),
                        },
                    };
                    match server.submit(req) {
                        // Shed tickets resolve ok=false; both outcomes
                        // count toward the ledger, so just wait.
                        Ok(ticket) => {
                            ticket.wait();
                        }
                        Err(SubmitError::Busy(r)) => {
                            thread::sleep(Duration::from_millis(r.retry_after_ms.min(2)));
                        }
                        Err(SubmitError::ShuttingDown(_)) => break,
                    }
                }
            });
        }
    });
    server.shutdown();
    let st = server.stats();
    assert!(
        st.accepted > 0,
        "nothing was admitted — the test exercised nothing"
    );
    assert_eq!(
        st.accepted,
        st.completed + st.shed,
        "global ledger unbalanced after drain: {st:?}"
    );
    for class in JobClass::ALL {
        let c = st.per_class[class.band()];
        assert_eq!(c.class, class);
        assert_eq!(
            c.admitted,
            c.completed + c.shed,
            "{class} ledger unbalanced after drain: {st:?}"
        );
        assert_eq!(c.in_flight, 0, "{class} still in flight after drain");
    }
    // The pool's per-class ledger agrees with the server's: every
    // admitted request became exactly one pool job of the same class.
    for class in JobClass::ALL {
        assert_eq!(
            st.pool.per_class[class.band()].submitted,
            st.per_class[class.band()].admitted,
            "{class}: pool and server disagree on admitted work"
        );
    }
}
