//! Adversarial stress tests for the Chase–Lev deque (`serve::deque`):
//! many thieves against one owner, hammering exactly the windows the
//! protocol exists for — the last-element pop-vs-steal race and buffer
//! growth with thieves mid-steal. Every test is a conservation
//! argument: each pushed value must be claimed exactly once, by
//! whoever, with checksums catching both loss and double-claim.
//!
//! These tests are the `scripts/tsan.sh` payload: they are written to
//! be meaningful under ThreadSanitizer (all cross-thread slot traffic
//! in the deque is per-word atomic, so TSan reports no races), and the
//! iteration counts scale down via `DEQUE_STRESS_ITERS` so the
//! instrumented build finishes quickly.

use serve::deque::{deque_with_capacity, Steal};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;
use std::thread;

/// Per-test operation count: `DEQUE_STRESS_ITERS` (set by tsan.sh) or
/// the full-fat default.
fn iters(default: u64) -> u64 {
    std::env::var("DEQUE_STRESS_ITERS")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(default)
}

/// Threads beyond the owner. More thieves than cores is the point —
/// preemption mid-steal is what exposes ordering bugs.
const THIEVES: usize = 4;

#[test]
fn many_thieves_one_owner_conserves_every_element() {
    // Owner pushes values and pops about half of them back, LIFO;
    // thieves steal the rest. Tiny initial capacity forces repeated
    // growth while thieves hold live buffer references.
    let total = iters(100_000);
    let (worker, stealer) = deque_with_capacity::<u64>(2);
    let done = Arc::new(AtomicBool::new(false));
    let stolen_sum = Arc::new(AtomicU64::new(0));
    let stolen_count = Arc::new(AtomicU64::new(0));
    let mut handles = Vec::new();
    for _ in 0..THIEVES {
        let st = stealer.clone();
        let done = Arc::clone(&done);
        let stolen_sum = Arc::clone(&stolen_sum);
        let stolen_count = Arc::clone(&stolen_count);
        handles.push(thread::spawn(move || loop {
            match st.steal() {
                Steal::Success(v) => {
                    stolen_sum.fetch_add(v, Ordering::Relaxed);
                    stolen_count.fetch_add(1, Ordering::Relaxed);
                }
                Steal::Retry => {}
                Steal::Empty => {
                    if done.load(Ordering::Acquire) && st.is_empty() {
                        break;
                    }
                    thread::yield_now();
                }
            }
        }));
    }
    let mut pushed_sum = 0u64;
    let mut owner_sum = 0u64;
    let mut owner_count = 0u64;
    for i in 1..=total {
        worker.push(i);
        pushed_sum += i;
        // Pop in bursts so the deque level keeps crossing 1 and 0 —
        // the last-element race window — rather than staying deep.
        if i % 3 == 0 {
            for _ in 0..2 {
                if let Some(v) = worker.pop() {
                    owner_sum += v;
                    owner_count += 1;
                }
            }
        }
    }
    done.store(true, Ordering::Release);
    for h in handles {
        h.join().expect("thief panicked");
    }
    // Whatever neither side took must still be in the deque.
    while let Some(v) = worker.pop() {
        owner_sum += v;
        owner_count += 1;
    }
    assert_eq!(
        owner_count + stolen_count.load(Ordering::Relaxed),
        total,
        "claims lost or duplicated"
    );
    assert_eq!(
        owner_sum + stolen_sum.load(Ordering::Relaxed),
        pushed_sum,
        "checksum broken: some element was claimed twice or never"
    );
    assert!(
        stolen_count.load(Ordering::Relaxed) > 0,
        "stress never exercised a successful steal"
    );
}

#[test]
fn last_element_race_resolves_to_exactly_one_winner() {
    // The sharpest race in the protocol: a deque holding exactly one
    // element, popped by the owner and stolen by several thieves at
    // once. For every round exactly one side may win; a protocol bug
    // shows up as a round with zero or two winners (sum mismatch).
    let rounds = iters(20_000);
    let (worker, stealer) = deque_with_capacity::<u64>(2);
    let done = Arc::new(AtomicBool::new(false));
    let stolen_sum = Arc::new(AtomicU64::new(0));
    let mut handles = Vec::new();
    for _ in 0..THIEVES {
        let st = stealer.clone();
        let done = Arc::clone(&done);
        let stolen_sum = Arc::clone(&stolen_sum);
        handles.push(thread::spawn(move || loop {
            match st.steal() {
                Steal::Success(v) => {
                    stolen_sum.fetch_add(v, Ordering::Relaxed);
                }
                Steal::Retry => {}
                Steal::Empty => {
                    if done.load(Ordering::Acquire) {
                        break;
                    }
                }
            }
        }));
    }
    let mut pushed_sum = 0u64;
    let mut owner_sum = 0u64;
    for i in 1..=rounds {
        worker.push(i);
        pushed_sum += i;
        // Immediately contest it: the deque holds exactly one element.
        if let Some(v) = worker.pop() {
            owner_sum += v;
        }
    }
    done.store(true, Ordering::Release);
    for h in handles {
        h.join().expect("thief panicked");
    }
    while let Some(v) = worker.pop() {
        owner_sum += v;
    }
    assert_eq!(
        owner_sum + stolen_sum.load(Ordering::Relaxed),
        pushed_sum,
        "a last-element round had zero or two winners"
    );
}

#[test]
fn growth_under_concurrent_steals_is_safe_and_complete() {
    // Deep bursts from capacity 2: every burst forces several buffer
    // doublings while thieves are actively pinned in old buffers. The
    // epoch scheme must keep every buffer alive exactly as long as
    // needed — under TSan/ASan a use-after-free here is loud.
    let bursts = iters(2_000) / 100;
    let (worker, stealer) = deque_with_capacity::<u64>(2);
    let done = Arc::new(AtomicBool::new(false));
    let stolen_sum = Arc::new(AtomicU64::new(0));
    let mut handles = Vec::new();
    for _ in 0..THIEVES {
        let st = stealer.clone();
        let done = Arc::clone(&done);
        let stolen_sum = Arc::clone(&stolen_sum);
        handles.push(thread::spawn(move || loop {
            match st.steal() {
                Steal::Success(v) => {
                    stolen_sum.fetch_add(v, Ordering::Relaxed);
                }
                Steal::Retry => {}
                Steal::Empty => {
                    if done.load(Ordering::Acquire) && st.is_empty() {
                        break;
                    }
                    thread::yield_now();
                }
            }
        }));
    }
    let mut pushed_sum = 0u64;
    let mut owner_sum = 0u64;
    let mut next = 1u64;
    for _ in 0..bursts.max(4) {
        // A deep burst (forces growth), then drain most of it.
        for _ in 0..600 {
            worker.push(next);
            pushed_sum += next;
            next += 1;
        }
        for _ in 0..550 {
            if let Some(v) = worker.pop() {
                owner_sum += v;
            }
        }
    }
    done.store(true, Ordering::Release);
    for h in handles {
        h.join().expect("thief panicked");
    }
    while let Some(v) = worker.pop() {
        owner_sum += v;
    }
    assert_eq!(
        owner_sum + stolen_sum.load(Ordering::Relaxed),
        pushed_sum,
        "growth dropped or duplicated an element"
    );
}

#[test]
fn lockfree_pool_survives_contended_submit_claim_steal() {
    // End-to-end: the LockFree scheduler under many external
    // submitters plus nested worker-side pushes. Every job must run
    // exactly once (pool-level conservation), and the lock-free
    // counters must partition the claims.
    use serve::pool::{Scheduler, ThreadPool};
    let per_submitter = iters(2_000);
    let submitters = 4;
    let pool = Arc::new(ThreadPool::with_scheduler(3, Scheduler::LockFree));
    let sum = Arc::new(AtomicU64::new(0));
    thread::scope(|s| {
        for t in 0..submitters {
            let pool = Arc::clone(&pool);
            let sum = Arc::clone(&sum);
            s.spawn(move || {
                for i in 0..per_submitter {
                    let v = t * per_submitter + i + 1;
                    let sum2 = Arc::clone(&sum);
                    if i % 16 == 0 {
                        // Nested resubmission from inside a worker.
                        let pool2 = Arc::clone(&pool);
                        pool.execute(move || {
                            pool2
                                .execute(move || {
                                    sum2.fetch_add(v, Ordering::Relaxed);
                                })
                                .expect("pool is open");
                        })
                        .unwrap();
                    } else {
                        pool.execute(move || {
                            sum2.fetch_add(v, Ordering::Relaxed);
                        })
                        .unwrap();
                    }
                }
            });
        }
    });
    pool.wait_empty();
    let want: u64 = (1..=submitters * per_submitter).sum();
    assert_eq!(
        sum.load(Ordering::Relaxed),
        want,
        "a job was lost or ran twice"
    );
    let stats = pool.stats();
    assert_eq!(
        stats.local_hits + stats.steals,
        stats.submitted,
        "claims must partition into local hits and steals: {stats:?}"
    );
    assert_eq!(stats.queue_depth, 0);
}
