//! Pool-backed data-parallel loops: the `parallel::par` entry points
//! re-hosted on a long-lived [`ThreadPool`] so *repeated* calls reuse
//! workers instead of paying a spawn/join per call — the difference the
//! `serve_throughput` bench measures.
//!
//! `parallel::par_*` borrow their input because `std::thread::scope`
//! proves the threads die before the borrow does. A shared pool's
//! workers outlive any one call, so jobs must be `'static`: these
//! variants take owned chunks (`T: Clone`) and hand results back
//! through per-call latches. Same answers, different lifetime deal —
//! every function here is drop-in result-compatible with its
//! `parallel::par` counterpart (including the `threads == 1`-style
//! serial equivalence: one chunk means the closure runs on one worker
//! in submission order).
//!
//! ## Ragged-chunk balancing
//!
//! [`par_map`] and [`par_reduce`] now split the input into
//! [`OVERSUBSCRIPTION`]× more chunks than the pool has workers. On the
//! work-stealing scheduler this is the pool-hosted equivalent of
//! `parallel::par_for_dynamic`: when per-element cost is ragged, a
//! worker stuck in a heavy chunk keeps it while idle workers steal the
//! chunks queued behind it, instead of everyone waiting on the slowest
//! static share. The `_grain` variants ([`par_map_grain`],
//! [`par_reduce_grain`], [`par_for_chunks_grain`]) expose the chunk
//! size directly for callers (and property tests) that want to sweep
//! it. Results are chunk-order deterministic either way, so every
//! split of the same input returns identical output for lawful
//! (associative, identity-respecting) folds.

use crate::pool::ThreadPool;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::{Arc, Condvar, Mutex};

/// A count-down latch: the per-call join point replacing
/// `thread::scope`'s implicit joins.
struct Latch {
    remaining: Mutex<usize>,
    done: Condvar,
}

impl Latch {
    fn new(count: usize) -> Latch {
        Latch {
            remaining: Mutex::new(count),
            done: Condvar::new(),
        }
    }

    fn count_down(&self) {
        let mut left = self.remaining.lock().expect("latch poisoned");
        *left -= 1;
        if *left == 0 {
            self.done.notify_all();
        }
    }

    fn wait(&self) {
        let mut left = self.remaining.lock().expect("latch poisoned");
        while *left > 0 {
            left = self.done.wait(left).expect("latch poisoned");
        }
    }
}

/// How many chunks per worker the default entry points create, so the
/// stealing scheduler has spare chunks to balance ragged work with.
pub const OVERSUBSCRIPTION: usize = 4;

/// Splits `0..len` into contiguous ranges of at most `grain` elements —
/// the same decomposition `parallel::par_for_dynamic` hands out from
/// its shared counter, here materialised as one pool job per range.
fn grain_ranges(len: usize, grain: usize) -> Vec<std::ops::Range<usize>> {
    assert!(grain > 0, "grain must be positive");
    (0..len)
        .step_by(grain)
        .map(|start| start..(start + grain).min(len))
        .collect()
}

/// The default grain: `OVERSUBSCRIPTION` chunks per worker.
fn default_grain(len: usize, workers: usize) -> usize {
    len.div_ceil(workers * OVERSUBSCRIPTION).max(1)
}

/// Runs chunked jobs on the pool and collects per-chunk outputs in
/// chunk order, propagating the first panic after all chunks finish.
fn run_chunks<U: Send + 'static>(
    pool: &ThreadPool,
    jobs: Vec<Box<dyn FnOnce() -> U + Send + 'static>>,
) -> Vec<U> {
    let n = jobs.len();
    let latch = Arc::new(Latch::new(n));
    let slots: Arc<Vec<Mutex<Option<std::thread::Result<U>>>>> =
        Arc::new((0..n).map(|_| Mutex::new(None)).collect());
    for (i, job) in jobs.into_iter().enumerate() {
        let latch = Arc::clone(&latch);
        let slots = Arc::clone(&slots);
        if let Err(rejected) = pool.execute(move || {
            let outcome = catch_unwind(AssertUnwindSafe(job));
            *slots[i].lock().expect("chunk slot poisoned") = Some(outcome);
            latch.count_down();
        }) {
            // Pool shutting down: run the whole wrapped job inline so
            // the slot is filled and the latch still opens — no chunk
            // is ever lost.
            (rejected.0)();
        }
    }
    latch.wait();
    // Read through the locks rather than unwrapping the Arc: a worker
    // may still be dropping its clone for an instant after the final
    // count_down.
    slots
        .iter()
        .map(|slot| {
            let outcome = slot
                .lock()
                .expect("chunk slot poisoned")
                .take()
                .expect("latch opened before a chunk stored its result");
            match outcome {
                Ok(v) => v,
                Err(panic) => std::panic::resume_unwind(panic),
            }
        })
        .collect()
}

/// Pool-backed `parallel::par_map`: applies `f` to every element,
/// preserving order. Splits into [`OVERSUBSCRIPTION`] chunks per
/// worker so the stealing scheduler can balance ragged per-element
/// cost. With one chunk (or `data.len() <= 1`) this is serially
/// equivalent to `data.iter().map(f).collect()` — and because results
/// are reassembled in chunk order, every grain returns the same
/// vector.
pub fn par_map<T, U, F>(pool: &ThreadPool, data: &[T], f: F) -> Vec<U>
where
    T: Clone + Send + 'static,
    U: Send + 'static,
    F: Fn(&T) -> U + Send + Sync + 'static,
{
    par_map_grain(pool, data, default_grain(data.len(), pool.workers()), f)
}

/// [`par_map`] with an explicit chunk size: at most `grain` elements
/// per pool job, the dynamic-scheduling knob of
/// `parallel::par_for_dynamic`.
///
/// # Panics
/// If `grain == 0`.
pub fn par_map_grain<T, U, F>(pool: &ThreadPool, data: &[T], grain: usize, f: F) -> Vec<U>
where
    T: Clone + Send + 'static,
    U: Send + 'static,
    F: Fn(&T) -> U + Send + Sync + 'static,
{
    let f = Arc::new(f);
    let jobs: Vec<Box<dyn FnOnce() -> Vec<U> + Send>> = grain_ranges(data.len(), grain)
        .into_iter()
        .map(|range| {
            let chunk: Vec<T> = data[range].to_vec();
            let f = Arc::clone(&f);
            Box::new(move || chunk.iter().map(|x| f(x)).collect()) as Box<_>
        })
        .collect();
    run_chunks(pool, jobs).into_iter().flatten().collect()
}

/// Pool-backed `parallel::par_for_chunks`: applies `f(chunk_index,
/// chunk)` to near-equal contiguous chunks of `data`, returning the
/// mutated vector (owned, because pool jobs cannot borrow the caller's
/// stack). Chunk boundaries match `parallel::par_for_chunks` with
/// `threads = pool.workers()`.
pub fn par_for_chunks<T, F>(pool: &ThreadPool, data: Vec<T>, f: F) -> Vec<T>
where
    T: Send + 'static,
    F: Fn(usize, &mut [T]) + Send + Sync + 'static,
{
    let workers = pool.workers();
    let chunk = data.len().div_ceil(workers.clamp(1, data.len().max(1)));
    par_for_chunks_grain(pool, data, chunk.max(1), f)
}

/// [`par_for_chunks`] with an explicit chunk size: `f(chunk_index,
/// chunk)` over contiguous chunks of at most `grain` elements. Finer
/// grains give the stealing scheduler more chunks to balance when the
/// per-chunk cost is ragged (the Game of Life lab's uneven rows).
///
/// # Panics
/// If `grain == 0`.
pub fn par_for_chunks_grain<T, F>(pool: &ThreadPool, data: Vec<T>, grain: usize, f: F) -> Vec<T>
where
    T: Send + 'static,
    F: Fn(usize, &mut [T]) + Send + Sync + 'static,
{
    assert!(grain > 0, "grain must be positive");
    if data.is_empty() {
        return data;
    }
    let f = Arc::new(f);
    let len = data.len();
    let mut rest = data;
    let mut pieces: Vec<Vec<T>> = Vec::new();
    for range in grain_ranges(len, grain).into_iter().rev() {
        pieces.push(rest.split_off(range.start));
    }
    pieces.reverse();
    let jobs: Vec<Box<dyn FnOnce() -> Vec<T> + Send>> = pieces
        .into_iter()
        .enumerate()
        .map(|(i, mut piece)| {
            let f = Arc::clone(&f);
            Box::new(move || {
                f(i, &mut piece);
                piece
            }) as Box<_>
        })
        .collect();
    run_chunks(pool, jobs).into_iter().flatten().collect()
}

/// Pool-backed `parallel::par_reduce`: per-chunk local fold, then a
/// serial combine of the partials in chunk order. Splits into
/// [`OVERSUBSCRIPTION`] chunks per worker for ragged-cost balancing.
/// Requires the same identity/associativity laws as
/// `parallel::par_reduce` for split independence; with one chunk it
/// degenerates to `combine(identity, data.iter().fold(identity, fold))`.
pub fn par_reduce<T, A, F, G>(pool: &ThreadPool, data: &[T], identity: A, fold: F, combine: G) -> A
where
    T: Clone + Send + 'static,
    A: Send + Clone + 'static,
    F: Fn(A, &T) -> A + Send + Sync + 'static,
    G: Fn(A, A) -> A,
{
    let grain = default_grain(data.len(), pool.workers());
    par_reduce_grain(pool, data, grain, identity, fold, combine)
}

/// [`par_reduce`] with an explicit chunk size: at most `grain`
/// elements fold locally per pool job before the chunk-order combine.
///
/// # Panics
/// If `grain == 0`.
pub fn par_reduce_grain<T, A, F, G>(
    pool: &ThreadPool,
    data: &[T],
    grain: usize,
    identity: A,
    fold: F,
    combine: G,
) -> A
where
    T: Clone + Send + 'static,
    A: Send + Clone + 'static,
    F: Fn(A, &T) -> A + Send + Sync + 'static,
    G: Fn(A, A) -> A,
{
    assert!(grain > 0, "grain must be positive");
    if data.is_empty() {
        return identity;
    }
    let fold = Arc::new(fold);
    let jobs: Vec<Box<dyn FnOnce() -> A + Send>> = grain_ranges(data.len(), grain)
        .into_iter()
        .map(|range| {
            let chunk: Vec<T> = data[range].to_vec();
            let fold = Arc::clone(&fold);
            let id = identity.clone();
            Box::new(move || chunk.iter().fold(id, |acc, x| fold(acc, x))) as Box<_>
        })
        .collect();
    run_chunks(pool, jobs).into_iter().fold(identity, combine)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn par_map_matches_serial_and_preserves_order() {
        let pool = ThreadPool::new(4);
        let data: Vec<i64> = (0..1000).collect();
        let got = par_map(&pool, &data, |x| x * x);
        let want: Vec<i64> = data.iter().map(|x| x * x).collect();
        assert_eq!(got, want);
        // Repeated calls reuse the same workers.
        for _ in 0..10 {
            assert_eq!(par_map(&pool, &data, |x| x + 1).len(), 1000);
        }
        assert_eq!(pool.stats().panicked, 0);
    }

    #[test]
    fn par_for_chunks_matches_scoped_version() {
        let pool = ThreadPool::new(3);
        let data: Vec<u8> = (0..=255).collect();
        let from_pool = par_for_chunks(&pool, data.clone(), |_, chunk| {
            for x in chunk {
                *x = x.wrapping_mul(7);
            }
        });
        let mut from_scope = data;
        parallel::par::par_for_chunks(&mut from_scope, 3, |_, chunk| {
            for x in chunk {
                *x = x.wrapping_mul(7);
            }
        });
        assert_eq!(from_pool, from_scope);
    }

    #[test]
    fn par_reduce_sums() {
        let pool = ThreadPool::new(4);
        let data: Vec<u64> = (1..=10_000).collect();
        let total = par_reduce(&pool, &data, 0u64, |a, &x| a + x, |a, b| a + b);
        assert_eq!(total, 10_000 * 10_001 / 2);
    }

    #[test]
    fn empty_inputs_degenerate() {
        let pool = ThreadPool::new(2);
        let empty: Vec<u32> = Vec::new();
        assert!(par_map(&pool, &empty, |x| *x).is_empty());
        assert!(par_for_chunks(&pool, empty.clone(), |_, _| panic!("no chunks")).is_empty());
        assert_eq!(
            par_reduce(&pool, &empty, 9u32, |a, &x| a + x, |a, b| a + b),
            9
        );
    }

    #[test]
    fn every_grain_returns_the_same_answers() {
        let pool = ThreadPool::new(3);
        let data: Vec<i64> = (0..500).collect();
        let want_map: Vec<i64> = data.iter().map(|x| x * 3 - 1).collect();
        let want_sum: i64 = data.iter().sum();
        for grain in [1, 2, 7, 100, 499, 500, 10_000] {
            assert_eq!(par_map_grain(&pool, &data, grain, |x| x * 3 - 1), want_map);
            assert_eq!(
                par_reduce_grain(&pool, &data, grain, 0i64, |a, &x| a + x, |a, b| a + b),
                want_sum,
                "grain {grain}"
            );
        }
    }

    #[test]
    fn grained_for_chunks_covers_every_element_once_with_distinct_indices() {
        let pool = ThreadPool::new(4);
        let data: Vec<usize> = vec![0; 103];
        let out = par_for_chunks_grain(&pool, data, 10, |i, chunk| {
            for x in chunk {
                *x = i + 1;
            }
        });
        assert_eq!(out.len(), 103);
        // 103 elements at grain 10 → chunks of 10,10,…,3 with indices 0..=10.
        for (pos, &owner) in out.iter().enumerate() {
            assert_eq!(owner, pos / 10 + 1, "element {pos} written by wrong chunk");
        }
    }

    #[test]
    fn default_chunking_oversubscribes_the_pool() {
        // 2 workers, plenty of data: the default split must hand the
        // scheduler more chunks than workers, or there is nothing for
        // an idle worker to steal when costs are ragged.
        let pool = ThreadPool::new(2);
        let data: Vec<u64> = (0..1000).collect();
        let before = pool.stats().finished;
        let _ = par_map(&pool, &data, |&x| x);
        // Results are delivered from inside the job closure, a moment
        // before the worker bumps its finished counter — quiesce first.
        pool.wait_empty();
        let after = pool.stats().finished;
        assert_eq!(
            (after - before) as usize,
            2 * OVERSUBSCRIPTION,
            "default par_map should submit OVERSUBSCRIPTION jobs per worker"
        );
    }

    #[test]
    fn panicking_closure_propagates_without_wedging_the_pool() {
        let pool = ThreadPool::new(2);
        let data: Vec<u32> = (0..100).collect();
        let result = catch_unwind(AssertUnwindSafe(|| {
            par_map(
                &pool,
                &data,
                |&x| if x == 50 { panic!("element 50") } else { x },
            )
        }));
        assert!(result.is_err(), "panic must reach the caller");
        // The pool survives and keeps working.
        assert_eq!(par_map(&pool, &data, |&x| x + 1)[0], 1);
    }
}
