//! Pool-backed data-parallel loops: the `parallel::par` entry points
//! re-hosted on a long-lived [`ThreadPool`] so *repeated* calls reuse
//! workers instead of paying a spawn/join per call — the difference the
//! `serve_throughput` bench measures.
//!
//! `parallel::par_*` borrow their input because `std::thread::scope`
//! proves the threads die before the borrow does. A shared pool's
//! workers outlive any one call, so jobs must be `'static`: these
//! variants take owned chunks (`T: Clone`) and hand results back
//! through per-call latches. Same answers, different lifetime deal —
//! every function here is drop-in result-compatible with its
//! `parallel::par` counterpart (including the `threads == 1`-style
//! serial equivalence: one chunk means the closure runs on one worker
//! in submission order).

use crate::pool::ThreadPool;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::{Arc, Condvar, Mutex};

/// A count-down latch: the per-call join point replacing
/// `thread::scope`'s implicit joins.
struct Latch {
    remaining: Mutex<usize>,
    done: Condvar,
}

impl Latch {
    fn new(count: usize) -> Latch {
        Latch { remaining: Mutex::new(count), done: Condvar::new() }
    }

    fn count_down(&self) {
        let mut left = self.remaining.lock().expect("latch poisoned");
        *left -= 1;
        if *left == 0 {
            self.done.notify_all();
        }
    }

    fn wait(&self) {
        let mut left = self.remaining.lock().expect("latch poisoned");
        while *left > 0 {
            left = self.done.wait(left).expect("latch poisoned");
        }
    }
}

/// Splits `0..len` into at most `pieces` near-equal contiguous ranges.
fn chunk_ranges(len: usize, pieces: usize) -> Vec<std::ops::Range<usize>> {
    if len == 0 {
        return Vec::new();
    }
    let pieces = pieces.clamp(1, len);
    let chunk = len.div_ceil(pieces);
    (0..len).step_by(chunk).map(|start| start..(start + chunk).min(len)).collect()
}

/// Runs chunked jobs on the pool and collects per-chunk outputs in
/// chunk order, propagating the first panic after all chunks finish.
fn run_chunks<U: Send + 'static>(
    pool: &ThreadPool,
    jobs: Vec<Box<dyn FnOnce() -> U + Send + 'static>>,
) -> Vec<U> {
    let n = jobs.len();
    let latch = Arc::new(Latch::new(n));
    let slots: Arc<Vec<Mutex<Option<std::thread::Result<U>>>>> =
        Arc::new((0..n).map(|_| Mutex::new(None)).collect());
    for (i, job) in jobs.into_iter().enumerate() {
        let latch = Arc::clone(&latch);
        let slots = Arc::clone(&slots);
        if let Err(rejected) = pool.execute(move || {
            let outcome = catch_unwind(AssertUnwindSafe(job));
            *slots[i].lock().expect("chunk slot poisoned") = Some(outcome);
            latch.count_down();
        }) {
            // Pool shutting down: run the whole wrapped job inline so
            // the slot is filled and the latch still opens — no chunk
            // is ever lost.
            (rejected.0)();
        }
    }
    latch.wait();
    // Read through the locks rather than unwrapping the Arc: a worker
    // may still be dropping its clone for an instant after the final
    // count_down.
    slots
        .iter()
        .map(|slot| {
            let outcome = slot
                .lock()
                .expect("chunk slot poisoned")
                .take()
                .expect("latch opened before a chunk stored its result");
            match outcome {
                Ok(v) => v,
                Err(panic) => std::panic::resume_unwind(panic),
            }
        })
        .collect()
}

/// Pool-backed `parallel::par_map`: applies `f` to every element,
/// preserving order. With one chunk (or `data.len() <= 1`) this is
/// serially equivalent to `data.iter().map(f).collect()`.
pub fn par_map<T, U, F>(pool: &ThreadPool, data: &[T], f: F) -> Vec<U>
where
    T: Clone + Send + 'static,
    U: Send + 'static,
    F: Fn(&T) -> U + Send + Sync + 'static,
{
    let f = Arc::new(f);
    let jobs: Vec<Box<dyn FnOnce() -> Vec<U> + Send>> = chunk_ranges(data.len(), pool.workers())
        .into_iter()
        .map(|range| {
            let chunk: Vec<T> = data[range].to_vec();
            let f = Arc::clone(&f);
            Box::new(move || chunk.iter().map(|x| f(x)).collect()) as Box<_>
        })
        .collect();
    run_chunks(pool, jobs).into_iter().flatten().collect()
}

/// Pool-backed `parallel::par_for_chunks`: applies `f(chunk_index,
/// chunk)` to near-equal contiguous chunks of `data`, returning the
/// mutated vector (owned, because pool jobs cannot borrow the caller's
/// stack). Chunk boundaries match `parallel::par_for_chunks` with
/// `threads = pool.workers()`.
pub fn par_for_chunks<T, F>(pool: &ThreadPool, data: Vec<T>, f: F) -> Vec<T>
where
    T: Send + 'static,
    F: Fn(usize, &mut [T]) + Send + Sync + 'static,
{
    if data.is_empty() {
        return data;
    }
    let f = Arc::new(f);
    let len = data.len();
    let mut rest = data;
    let mut pieces: Vec<Vec<T>> = Vec::new();
    for range in chunk_ranges(len, pool.workers()).into_iter().rev() {
        pieces.push(rest.split_off(range.start));
    }
    pieces.reverse();
    let jobs: Vec<Box<dyn FnOnce() -> Vec<T> + Send>> = pieces
        .into_iter()
        .enumerate()
        .map(|(i, mut piece)| {
            let f = Arc::clone(&f);
            Box::new(move || {
                f(i, &mut piece);
                piece
            }) as Box<_>
        })
        .collect();
    run_chunks(pool, jobs).into_iter().flatten().collect()
}

/// Pool-backed `parallel::par_reduce`: per-chunk local fold, then a
/// serial combine of the partials in chunk order. Requires the same
/// identity/associativity laws as `parallel::par_reduce` for
/// thread-count independence; with one chunk it degenerates to
/// `combine(identity, data.iter().fold(identity, fold))`.
pub fn par_reduce<T, A, F, G>(pool: &ThreadPool, data: &[T], identity: A, fold: F, combine: G) -> A
where
    T: Clone + Send + 'static,
    A: Send + Clone + 'static,
    F: Fn(A, &T) -> A + Send + Sync + 'static,
    G: Fn(A, A) -> A,
{
    if data.is_empty() {
        return identity;
    }
    let fold = Arc::new(fold);
    let jobs: Vec<Box<dyn FnOnce() -> A + Send>> = chunk_ranges(data.len(), pool.workers())
        .into_iter()
        .map(|range| {
            let chunk: Vec<T> = data[range].to_vec();
            let fold = Arc::clone(&fold);
            let id = identity.clone();
            Box::new(move || chunk.iter().fold(id, |acc, x| fold(acc, x))) as Box<_>
        })
        .collect();
    run_chunks(pool, jobs).into_iter().fold(identity, combine)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn par_map_matches_serial_and_preserves_order() {
        let pool = ThreadPool::new(4);
        let data: Vec<i64> = (0..1000).collect();
        let got = par_map(&pool, &data, |x| x * x);
        let want: Vec<i64> = data.iter().map(|x| x * x).collect();
        assert_eq!(got, want);
        // Repeated calls reuse the same workers.
        for _ in 0..10 {
            assert_eq!(par_map(&pool, &data, |x| x + 1).len(), 1000);
        }
        assert_eq!(pool.stats().panicked, 0);
    }

    #[test]
    fn par_for_chunks_matches_scoped_version() {
        let pool = ThreadPool::new(3);
        let data: Vec<u8> = (0..=255).collect();
        let from_pool = par_for_chunks(&pool, data.clone(), |_, chunk| {
            for x in chunk {
                *x = x.wrapping_mul(7);
            }
        });
        let mut from_scope = data;
        parallel::par::par_for_chunks(&mut from_scope, 3, |_, chunk| {
            for x in chunk {
                *x = x.wrapping_mul(7);
            }
        });
        assert_eq!(from_pool, from_scope);
    }

    #[test]
    fn par_reduce_sums() {
        let pool = ThreadPool::new(4);
        let data: Vec<u64> = (1..=10_000).collect();
        let total = par_reduce(&pool, &data, 0u64, |a, &x| a + x, |a, b| a + b);
        assert_eq!(total, 10_000 * 10_001 / 2);
    }

    #[test]
    fn empty_inputs_degenerate() {
        let pool = ThreadPool::new(2);
        let empty: Vec<u32> = Vec::new();
        assert!(par_map(&pool, &empty, |x| *x).is_empty());
        assert!(par_for_chunks(&pool, empty.clone(), |_, _| panic!("no chunks")).is_empty());
        assert_eq!(par_reduce(&pool, &empty, 9u32, |a, &x| a + x, |a, b| a + b), 9);
    }

    #[test]
    fn panicking_closure_propagates_without_wedging_the_pool() {
        let pool = ThreadPool::new(2);
        let data: Vec<u32> = (0..100).collect();
        let result = catch_unwind(AssertUnwindSafe(|| {
            par_map(&pool, &data, |&x| if x == 50 { panic!("element 50") } else { x })
        }));
        assert!(result.is_err(), "panic must reach the caller");
        // The pool survives and keeps working.
        assert_eq!(par_map(&pool, &data, |&x| x + 1)[0], 1);
    }
}
