//! The long-lived worker pool: the cs431 "hello server" `ThreadPool`
//! grown up — panic-isolating workers, `wait_empty`, join-on-drop with
//! drain semantics, per-worker plus aggregate counters, and a choice of
//! three queue topologies: the original shared FIFO, **per-worker
//! deques with work stealing**, and (since the policy rework)
//! **priority lanes** — one FIFO band per [`JobClass`] with an
//! anti-starvation aging rule, so interactive work jumps a bulk backlog
//! without bulk work starving forever.
//!
//! Every job now carries a [`JobMeta`] (`class`, `priority`,
//! `deadline`) instead of being an opaque closure. The metadata is
//! what the priority scheduler keys on, what the per-class counters
//! are bucketed by, and what nested submissions inherit: while a job
//! runs, its meta is visible through [`current_job_meta`], and
//! [`ThreadPool::execute`] submits with the running job's meta — so a
//! high-class `serve::par` call fans out high-class chunks instead of
//! being demoted to the default class behind background bulk jobs.
//!
//! ## The deque/steal protocol (`Scheduler::WorkStealing`)
//!
//! Every worker owns a deque (`Mutex<VecDeque>` — safe Rust, no
//! lock-free tricks):
//!
//! * **push**: a submission from a worker thread of this pool lands on
//!   that worker's own deque; an external submission is placed
//!   round-robin. Both push at the **back**.
//! * **local pop** is **LIFO** (back): a worker runs the newest job it
//!   owns first — the freshest, cache-warmest work, and the discipline
//!   that keeps short interactive jobs from waiting behind a backlog.
//! * **steal** is **FIFO** (front): when a worker's own deque is empty
//!   it sweeps victims by rotation (`id+1, id+2, …`) and takes the
//!   **oldest** job from the first non-empty deque — the job that has
//!   waited longest, which also prevents starvation under LIFO.
//! * **batched steal**: when the victim's deque is deep (at least
//!   [`BATCH_STEAL_DEPTH`] jobs), the thief takes half of it in one
//!   sweep — the oldest job to run immediately, the rest relocated to
//!   the thief's own deque — so a deep backlog rebalances in O(1)
//!   steals instead of one lock round-trip per job. The relocated
//!   jobs count as the thief's `local_hits` when eventually claimed;
//!   the event is counted in [`WorkerStats::batch_steals`].
//! * **parking**: only after a full failed sweep does a worker park on
//!   the shared condvar. There is no busy-spin; the sleeper-counted
//!   wake protocol below makes lost wakeups impossible.
//!
//! ## Priority lanes (`Scheduler::PriorityLanes`)
//!
//! One shared FIFO band per job class, highest class first. A claim
//! scans bands from [`JobClass::Interactive`] down and pops the oldest
//! job of the highest non-empty band, so grade-style work overtakes
//! any accumulated bulk backlog. Two refinements:
//!
//! * **urgent jobs** (`meta.priority >= URGENT_PRIORITY`) push to the
//!   *front* of their band, jumping same-class work;
//! * **aging**: every [`AGING_PERIOD`]-th claim scans the bands in
//!   *reverse* (lowest class first) and serves the oldest job of the
//!   lowest non-empty band. Under sustained high-class load this
//!   bounds starvation: a queued bulk job waits at most
//!   `AGING_PERIOD - 1` higher-class claims between bulk grants. Such
//!   promoted claims are counted per class in [`ClassStats::aged`].
//!
//! The old single shared FIFO survives as [`Scheduler::SharedFifo`] —
//! the measured baseline the `serve_stealing`/E12 and E13 experiments
//! compare against.
//!
//! ## Lock-free deques (`Scheduler::LockFree`)
//!
//! The same topology as `WorkStealing`, with the `Mutex<VecDeque>`s
//! replaced where it matters: every worker owns a Chase–Lev deque
//! ([`crate::deque`]) — lock-free LIFO pop on the owner's fast path,
//! CAS-only FIFO steals from thieves. This is the same service order
//! the mutex scheduler already uses (its owner pops the back, thieves
//! the front); here the owner's side costs no lock. The mutex queues
//! survive as per-worker **inboxes** for *external* submissions only
//! (an external thread has no owner handle, so it cannot push a
//! Chase–Lev deque — the same reason crossbeam and tokio pair their
//! lock-free worker queues with an injector):
//!
//! * **push** from a worker of this pool: lock-free push onto its own
//!   deque. External submissions round-robin into the inboxes.
//! * **claim**: own deque pop first (lock-free — a worker grinding a
//!   divide-and-conquer expansion touches no mutex at all), then the
//!   *newest* job from the own inbox (the empty-inbox probe is one
//!   atomic load, no lock), then a rotation steal sweep over the
//!   other workers' deques, then a rotation batch-stealing sweep over
//!   the other workers' inboxes taking the *oldest* (their owners are
//!   too blocked to drain them — the rescue path for stranded work).
//!   Owner-newest/thief-oldest is the exact service order the mutex
//!   scheduler's single deque gives both sides (`claim_stealing` pops
//!   the back, thieves the front), so E12's heavy-tail behaviour
//!   carries over unchanged.
//! * **batched steals** keep their spirit as *repeated-steal loops*: a
//!   thief that steals from a deep victim keeps CASing jobs out —
//!   relocating up to half the victim's backlog into its own deque —
//!   so a deep backlog still rebalances in one sweep. (A true
//!   multi-element single-CAS batch is unsound against concurrent
//!   owner pops, which re-take the bottom without a CAS; see
//!   DESIGN.md §12.)
//! * two new counters make the lock-free contention visible:
//!   [`WorkerStats::steal_cas_failures`] (a thief lost a CAS race) and
//!   [`WorkerStats::empty_steals`] (a steal attempt found the victim
//!   empty), mirrored as `pool.steal_cas_failures` /
//!   `pool.empty_steals` in the obs registry.
//!
//! The parking protocol below is unchanged — with one accounting
//! twist: a lock-free worker pushing to its own deque increments
//! `queued` *before* the push (a thief can observe a pushed job and
//! decrement within nanoseconds, so incrementing after could
//! transiently underflow the counter). A sweeper that sees `queued >
//! 0` but no job yet simply retries instead of parking — the same
//! in-transit rule batched steals already rely on.
//!
//! ## Why the parking protocol is lost-wakeup-free
//!
//! The pool keeps two `SeqCst` atomics: `queued` (jobs pushed but not
//! yet claimed) and `sleepers` (workers inside the parking critical
//! section). A worker parks only by: lock park mutex → increment
//! `sleepers` → re-check `queued == 0` → wait. A submitter publishes
//! by: push job → increment `queued` → if `sleepers > 0`, lock the
//! park mutex and notify. In the SeqCst total order either the
//! submitter sees the sleeper (and notifies under the mutex, so the
//! wakeup cannot slip between the worker's check and its wait), or the
//! worker's `queued` re-check happens after the increment and it never
//! sleeps. Either way the job is claimed. (A batched steal briefly
//! holds relocated jobs outside any deque; `queued` still counts them,
//! so a concurrently-sweeping worker re-checks and retries instead of
//! parking — no job is ever hidden from a sleeping pool.)

use crate::deque;
use std::cell::{Cell, RefCell};
use std::collections::VecDeque;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};
use std::sync::{Arc, Condvar, Mutex};
use std::thread;
use std::time::Instant;

/// A queued unit of work plus the scheduling metadata it carries.
struct Job {
    run: Box<dyn FnOnce() + Send + 'static>,
    meta: JobMeta,
}

/// Error returned when a job is submitted to a pool that has begun
/// shutting down: the job is handed back so nothing is silently lost.
pub struct PoolClosed<F>(pub F);

impl<F> std::fmt::Debug for PoolClosed<F> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str("PoolClosed(..)")
    }
}

/// The request class a job belongs to — the coarse scheduling signal
/// threaded through the whole serve pipeline (admission → scheduling →
/// shedding).
///
/// Variants are declared lowest-class first so `Ord` means "less
/// important": `Bulk < Batch < Interactive`. Under pressure the server
/// sheds the smallest class first; the priority-lane scheduler serves
/// the largest class first.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum JobClass {
    /// Background work: reproduce runs, full-corpus regeneration.
    /// First to be shed, last to be scheduled (modulo aging).
    Bulk,
    /// Deferred-but-expected work: homework generation, autograde
    /// batches.
    Batch,
    /// A human is waiting: grade lookups, clicker rounds.
    Interactive,
}

impl JobClass {
    /// Every class, highest first — the order bands are scanned and
    /// per-class tables are printed in.
    pub const ALL: [JobClass; 3] = [JobClass::Interactive, JobClass::Batch, JobClass::Bulk];

    /// Number of classes (= number of priority bands).
    pub const COUNT: usize = 3;

    /// The priority band this class maps to: 0 is served first.
    pub fn band(self) -> usize {
        match self {
            JobClass::Interactive => 0,
            JobClass::Batch => 1,
            JobClass::Bulk => 2,
        }
    }

    /// Inverse of [`JobClass::band`].
    ///
    /// # Panics
    /// If `band >= JobClass::COUNT`.
    pub fn from_band(band: usize) -> JobClass {
        Self::ALL[band]
    }
}

impl std::fmt::Display for JobClass {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            JobClass::Interactive => f.write_str("interactive"),
            JobClass::Batch => f.write_str("batch"),
            JobClass::Bulk => f.write_str("bulk"),
        }
    }
}

/// Jobs with `priority >= URGENT_PRIORITY` are pushed to the *front*
/// of their class band under [`Scheduler::PriorityLanes`], jumping
/// same-class work. Everything below queues FIFO within its band.
pub const URGENT_PRIORITY: u8 = 192;

/// Every `AGING_PERIOD`-th claim under [`Scheduler::PriorityLanes`]
/// scans the bands lowest-class-first, so an admitted bulk job waits
/// at most `AGING_PERIOD - 1` higher-class claims between bulk grants
/// — the anti-starvation bound the no-starvation property test checks.
pub const AGING_PERIOD: u64 = 8;

/// When a thief finds a victim deque at least this deep, it steals
/// half the deque in one sweep (a *batched steal*) instead of one job.
pub const BATCH_STEAL_DEPTH: usize = 4;

/// Under [`Scheduler::LockFree`], how many lost CAS races against one
/// victim a thief absorbs before moving to the next victim in its
/// sweep. A lost race means the victim is non-empty but contended;
/// bounded retries claim it without letting a sweep livelock.
pub const STEAL_RETRY_LIMIT: u32 = 4;

/// Scheduling metadata carried by every job.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct JobMeta {
    /// Request class — selects the priority band and the shed order.
    pub class: JobClass,
    /// Fine-grained urgency within the class (higher runs sooner).
    /// Values at or above [`URGENT_PRIORITY`] jump their band's queue.
    pub priority: u8,
    /// Latest useful completion time. The pool does not drop late
    /// jobs; it counts starts past the deadline per class
    /// ([`ClassStats::deadline_missed`]) and the server uses the
    /// deadline for admission retry hints.
    pub deadline: Option<Instant>,
}

impl Default for JobMeta {
    /// Batch class, middle priority, no deadline — the profile of
    /// legacy `execute` callers that never heard of metadata.
    fn default() -> JobMeta {
        JobMeta {
            class: JobClass::Batch,
            priority: 128,
            deadline: None,
        }
    }
}

impl JobMeta {
    /// A meta with the given class and default priority/deadline.
    pub fn for_class(class: JobClass) -> JobMeta {
        JobMeta {
            class,
            ..JobMeta::default()
        }
    }

    /// Builder: sets the deadline.
    pub fn with_deadline(mut self, deadline: Instant) -> JobMeta {
        self.deadline = Some(deadline);
        self
    }

    /// Builder: sets the priority.
    pub fn with_priority(mut self, priority: u8) -> JobMeta {
        self.priority = priority;
        self
    }
}

/// Which queue topology the pool schedules jobs with.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum Scheduler {
    /// One shared FIFO queue all workers pop from — the original pool
    /// design, kept as the measured baseline for the other schedulers
    /// (benches `serve_stealing`, experiments E12/E13).
    SharedFifo,
    /// Per-worker deques: LIFO local pop, FIFO rotation steal with
    /// batched steals on deep victims, park after a failed sweep.
    /// The default.
    #[default]
    WorkStealing,
    /// One shared FIFO band per [`JobClass`], highest class served
    /// first, with front-of-band urgent pushes and the
    /// [`AGING_PERIOD`] anti-starvation rule. The scheduler the
    /// class-aware server admission is designed for.
    PriorityLanes,
    /// The work-stealing topology over lock-free Chase–Lev deques
    /// ([`crate::deque`]): no lock on the owner's push/pop fast path,
    /// CAS-only steals, per-worker mutex inboxes only for external
    /// submissions. Measured against [`Scheduler::WorkStealing`] in
    /// experiment E17.
    LockFree,
}

impl std::fmt::Display for Scheduler {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Scheduler::SharedFifo => f.write_str("shared-fifo"),
            Scheduler::WorkStealing => f.write_str("work-stealing"),
            Scheduler::PriorityLanes => f.write_str("priority-lanes"),
            Scheduler::LockFree => f.write_str("lock-free"),
        }
    }
}

/// Counters for one worker thread.
#[derive(Debug, Default)]
struct WorkerCounters {
    started: AtomicU64,
    finished: AtomicU64,
    panicked: AtomicU64,
    local_hits: AtomicU64,
    steals: AtomicU64,
    stolen_from: AtomicU64,
    batch_steals: AtomicU64,
    steal_cas_failures: AtomicU64,
    empty_steals: AtomicU64,
    deque_high_water: AtomicUsize,
}

/// A point-in-time snapshot of one worker's counters.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct WorkerStats {
    /// Jobs this worker has begun executing.
    pub started: u64,
    /// Jobs this worker has completed (including panicked ones).
    pub finished: u64,
    /// Jobs that panicked on this worker.
    pub panicked: u64,
    /// Jobs this worker claimed from its own deque (LIFO pops; for the
    /// shared-FIFO and priority-lane schedulers, every claim counts
    /// here).
    pub local_hits: u64,
    /// Jobs this worker stole from another worker's deque (the job it
    /// ran immediately; batch-relocated jobs count as `local_hits`
    /// when later claimed).
    pub steals: u64,
    /// Jobs other workers stole from this worker's deque.
    pub stolen_from: u64,
    /// Steals that took half of a deep victim's deque in one sweep.
    pub batch_steals: u64,
    /// Steal attempts by this worker that lost a CAS race to the
    /// victim's owner or another thief ([`Scheduler::LockFree`] only —
    /// a mutex steal can't fail, it just waits).
    pub steal_cas_failures: u64,
    /// Steal attempts by this worker that found the victim's deque
    /// empty ([`Scheduler::LockFree`] only).
    pub empty_steals: u64,
    /// Deepest this worker's own deque has ever been (always 0 under
    /// the shared-FIFO and priority-lane schedulers, which have no
    /// per-worker deques).
    pub queue_high_water: usize,
}

/// Per-class counters (internal, atomic).
#[derive(Debug, Default)]
struct ClassCounters {
    submitted: AtomicU64,
    completed: AtomicU64,
    aged: AtomicU64,
    deadline_missed: AtomicU64,
    busy_micros: AtomicU64,
}

/// A point-in-time snapshot of one class's pool counters.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ClassStats {
    /// The class these counters describe.
    pub class: JobClass,
    /// Jobs of this class accepted by `execute`/`execute_with_meta`.
    pub submitted: u64,
    /// Jobs of this class fully executed (including panicked ones).
    pub completed: u64,
    /// Claims of this class granted by the aging pass while
    /// higher-class work was still queued (priority lanes only).
    pub aged: u64,
    /// Jobs of this class that *started* after their deadline.
    pub deadline_missed: u64,
    /// Total worker time spent executing jobs of this class, in
    /// microseconds. `busy_micros / completed` is the observed mean
    /// service time — the signal adaptive admission derives per-class
    /// budgets and deadline defaults from.
    pub busy_micros: u64,
}

/// A point-in-time snapshot of the pool's aggregate counters.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PoolStats {
    /// Worker thread count.
    pub workers: usize,
    /// Queue topology the pool runs.
    pub scheduler: Scheduler,
    /// Jobs accepted by [`ThreadPool::execute`] so far.
    pub submitted: u64,
    /// Jobs begun across all workers.
    pub started: u64,
    /// Jobs completed across all workers (including panicked ones).
    pub finished: u64,
    /// Jobs that panicked across all workers.
    pub panicked: u64,
    /// Jobs claimed from the claimer's own deque across all workers.
    pub local_hits: u64,
    /// Jobs stolen across all workers (0 under shared-FIFO and
    /// priority lanes).
    pub steals: u64,
    /// Batched-steal events across all workers.
    pub batch_steals: u64,
    /// CAS races lost while stealing, across all workers (lock-free
    /// scheduler only; the contention signal E17 reports).
    pub steal_cas_failures: u64,
    /// Steal attempts that found an empty victim, across all workers
    /// (lock-free scheduler only).
    pub empty_steals: u64,
    /// Deepest the total queued backlog has ever been
    /// (admission-pressure signal, summed across deques).
    pub queue_high_water: usize,
    /// Jobs currently queued but not yet claimed.
    pub queue_depth: usize,
    /// Per-worker breakdown, indexed by worker id.
    pub per_worker: Vec<WorkerStats>,
    /// Per-class breakdown, in [`JobClass::ALL`] order (highest class
    /// first).
    pub per_class: Vec<ClassStats>,
}

/// The lock-free scheduler's thread-local half: the worker's own
/// Chase–Lev handle plus one stealer per peer deque. `deque::Worker`
/// and `deque::Stealer` are deliberately `!Sync`, so they cannot live
/// in the shared [`PoolInner`] — each worker thread picks its handles
/// up from the construction-time handoff and stashes them here.
struct LfCtx {
    own: deque::Worker<Job>,
    /// Indexed by worker id; `stealers[own_id]` exists but is never
    /// used (a worker pops its own deque instead of stealing from it).
    stealers: Vec<deque::Stealer<Job>>,
}

/// Construction-time handoff of lock-free deque handles to worker
/// threads (empty under every other scheduler). Locked once per worker
/// at startup, never on a job path.
#[derive(Default)]
struct LfHandoff {
    workers: Vec<Option<deque::Worker<Job>>>,
    stealers: Vec<deque::Stealer<Job>>,
}

thread_local! {
    /// `(pool token, worker id)` for pool worker threads, so a job that
    /// submits into its own pool pushes onto its own deque.
    static WORKER_IDENTITY: Cell<Option<(usize, usize)>> = const { Cell::new(None) };

    /// This worker thread's lock-free deque handles (see [`LfCtx`]).
    /// `None` on external threads and under the mutex schedulers.
    static LF_CTX: RefCell<Option<LfCtx>> = const { RefCell::new(None) };

    /// The meta of the job currently executing on this thread (set by
    /// the worker loop around each job, and by [`with_meta`]). This is
    /// how nested submissions inherit their parent's class.
    static CURRENT_META: Cell<Option<JobMeta>> = const { Cell::new(None) };
}

/// The [`JobMeta`] this thread's submissions inherit: the meta of the
/// pool job currently running on this thread, or the meta installed by
/// an enclosing [`with_meta`] call. `None` on a plain external thread.
pub fn current_job_meta() -> Option<JobMeta> {
    CURRENT_META.with(|m| m.get())
}

/// Runs `f` with `meta` installed as this thread's inherited
/// submission meta, so every [`ThreadPool::execute`] (and therefore
/// every `serve::par` entry point) inside `f` carries it. The previous
/// meta is restored afterwards, panic or not.
pub fn with_meta<R>(meta: JobMeta, f: impl FnOnce() -> R) -> R {
    struct Restore(Option<JobMeta>);
    impl Drop for Restore {
        fn drop(&mut self) {
            CURRENT_META.with(|m| m.set(self.0));
        }
    }
    let _restore = Restore(CURRENT_META.with(|m| m.replace(Some(meta))));
    f()
}

/// Registry-backed mirrors of the pool's hot-path scheduling events
/// (PR 5). Handles are resolved once at construction; with a disabled
/// [`obs::Registry`] every call is a single never-taken branch, which is
/// the "obs off" arm experiment E15 measures against.
struct PoolObs {
    /// Jobs claimed, by any path (`pool.claims`).
    claims: obs::Counter,
    /// Claims satisfied from the worker's own deque / band
    /// (`pool.local_hits`).
    local_hits: obs::Counter,
    /// Claims satisfied by stealing from a victim (`pool.steals`).
    steals: obs::Counter,
    /// Steals that relocated half a deep victim deque
    /// (`pool.batch_steals`).
    batch_steals: obs::Counter,
    /// Steal CAS races lost (`pool.steal_cas_failures`, lock-free
    /// scheduler only).
    steal_cas_failures: obs::Counter,
    /// Steal attempts that found an empty victim
    /// (`pool.empty_steals`, lock-free scheduler only).
    empty_steals: obs::Counter,
    /// Instantaneous queued-but-unclaimed jobs (`pool.queue_depth`).
    queue_depth: obs::Gauge,
}

impl PoolObs {
    fn new(registry: &obs::Registry) -> PoolObs {
        PoolObs {
            claims: registry.counter("pool.claims"),
            local_hits: registry.counter("pool.local_hits"),
            steals: registry.counter("pool.steals"),
            batch_steals: registry.counter("pool.batch_steals"),
            steal_cas_failures: registry.counter("pool.steal_cas_failures"),
            empty_steals: registry.counter("pool.empty_steals"),
            queue_depth: registry.gauge("pool.queue_depth"),
        }
    }
}

/// Shared state between the pool handle and its workers.
struct PoolInner {
    scheduler: Scheduler,
    /// `WorkStealing`: one deque per worker. `SharedFifo`: a single
    /// shared queue in slot 0. `PriorityLanes`: one band per class,
    /// indexed by [`JobClass::band`].
    deques: Vec<Mutex<VecDeque<Job>>>,
    /// Jobs pushed but not yet claimed, across all deques.
    queued: AtomicUsize,
    /// Set (under the park mutex) when the pool begins shutting down.
    closed: AtomicBool,
    /// Workers inside the parking critical section.
    sleepers: AtomicUsize,
    /// Guards parking; never held while running a job.
    park: Mutex<()>,
    /// Signals parked workers that a job (or closure) is available.
    available: Condvar,
    /// Signals `wait_empty` that `pending` may have reached zero.
    empty: Condvar,
    /// Jobs submitted but not yet finished (queued + running). This is
    /// what `wait_empty` waits on: with stealing, "every deque empty"
    /// is *not* "idle" — a stolen job may still be running.
    pending: Mutex<usize>,
    /// Round-robin placement cursor for external submissions.
    next_deque: AtomicUsize,
    /// Lock-free deque handles awaiting pickup by their worker threads
    /// (see [`LfHandoff`]; empty under the mutex schedulers).
    lf: Mutex<LfHandoff>,
    /// Under [`Scheduler::LockFree`], the length of each inbox in
    /// `deques`, maintained inside the inbox critical sections but
    /// readable without the lock — a worker probing its own (or a
    /// victim's) inbox must not pay a lock just to learn it is empty.
    /// (Unused under the mutex schedulers.)
    inbox_len: Vec<AtomicUsize>,
    /// Monotonic claim counter driving the priority-lane aging rule.
    claim_tick: AtomicU64,
    submitted: AtomicU64,
    queue_high_water: AtomicUsize,
    per_worker: Vec<WorkerCounters>,
    per_class: [ClassCounters; JobClass::COUNT],
    /// Registry mirrors of the scheduling counters (no-ops when the
    /// pool was built without a live registry).
    obs: PoolObs,
}

impl PoolInner {
    /// A token identifying this pool instance for worker-local pushes.
    fn token(self: &Arc<Self>) -> usize {
        Arc::as_ptr(self) as usize
    }

    /// Marks one submitted job as fully finished and wakes `wait_empty`
    /// if that was the last one.
    fn finish_one(&self) {
        let mut pending = self.pending.lock().expect("pool mutex poisoned");
        *pending -= 1;
        if *pending == 0 {
            self.empty.notify_all();
        }
    }

    /// The calling thread's worker id, if it is a worker of this pool.
    fn own_worker_id(self: &Arc<Self>) -> Option<usize> {
        WORKER_IDENTITY.with(|w| match w.get() {
            Some((token, id)) if token == self.token() => Some(id),
            _ => None,
        })
    }

    /// Wakes one parked worker if any worker is parked.
    fn wake_one(&self) {
        if self.sleepers.load(Ordering::SeqCst) > 0 {
            let _guard = self.park.lock().expect("pool mutex poisoned");
            self.available.notify_one();
        }
    }

    /// Places `job` on a deque and wakes a parked worker if any exists.
    fn push(self: &Arc<Self>, job: Job) {
        let target = match self.scheduler {
            Scheduler::SharedFifo => 0,
            Scheduler::PriorityLanes => job.meta.class.band(),
            Scheduler::WorkStealing => {
                // A worker of *this* pool pushes to its own deque
                // (LIFO locality); external submitters round-robin.
                self.own_worker_id().unwrap_or_else(|| {
                    self.next_deque.fetch_add(1, Ordering::Relaxed) % self.deques.len()
                })
            }
            Scheduler::LockFree => {
                if let Some(id) = self.own_worker_id() {
                    // The lock-free fast path: push onto this worker's
                    // own Chase–Lev deque, no lock anywhere. `queued`
                    // moves *before* the push — a thief can claim the
                    // job (and decrement) the instant it is published,
                    // so incrementing afterwards could underflow. A
                    // sweeper that sees `queued > 0` before the push
                    // lands just retries (module docs).
                    let total = self.queued.fetch_add(1, Ordering::SeqCst) + 1;
                    LF_CTX.with(|ctx| {
                        let ctx = ctx.borrow();
                        let ctx = ctx
                            .as_ref()
                            .expect("lock-free worker without deque handles");
                        ctx.own.push(job);
                        self.per_worker[id]
                            .deque_high_water
                            .fetch_max(ctx.own.len(), Ordering::Relaxed);
                    });
                    self.queue_high_water.fetch_max(total, Ordering::Relaxed);
                    self.obs.queue_depth.add(1);
                    self.wake_one();
                    return;
                }
                // External submissions round-robin into the mutex
                // inboxes; owners claim them newest-first, thieves
                // oldest-first, like the mutex deques.
                self.next_deque.fetch_add(1, Ordering::Relaxed) % self.deques.len()
            }
        };
        let urgent =
            self.scheduler == Scheduler::PriorityLanes && job.meta.priority >= URGENT_PRIORITY;
        // `queued` normally moves inside a deque critical section, so a
        // worker that observes `queued > 0` and then locks the deques
        // finds the job (no underflow when a thief races a submitter);
        // the one exception — jobs in transit during a batched steal —
        // is covered by the parking re-check, which retries instead of
        // sleeping while `queued > 0`.
        let (depth, total) = {
            let mut q = self.deques[target].lock().expect("pool mutex poisoned");
            if urgent {
                q.push_front(job);
            } else {
                q.push_back(job);
            }
            if self.scheduler == Scheduler::LockFree {
                self.inbox_len[target].fetch_add(1, Ordering::Release);
            }
            (q.len(), self.queued.fetch_add(1, Ordering::SeqCst) + 1)
        };
        if matches!(
            self.scheduler,
            Scheduler::WorkStealing | Scheduler::LockFree
        ) {
            self.per_worker[target]
                .deque_high_water
                .fetch_max(depth, Ordering::Relaxed);
        }
        self.queue_high_water.fetch_max(total, Ordering::Relaxed);
        self.obs.queue_depth.add(1);
        self.wake_one();
    }

    /// Pops the front of band `band`, maintaining `queued`.
    fn pop_band_front(&self, band: usize) -> Option<Job> {
        let mut q = self.deques[band].lock().expect("pool mutex poisoned");
        let job = q.pop_front();
        if job.is_some() {
            self.queued.fetch_sub(1, Ordering::SeqCst);
            self.obs.queue_depth.add(-1);
        }
        job
    }

    /// One claim attempt for worker `id`: local pop, then (stealing
    /// only) a full rotation sweep; for priority lanes, a band scan
    /// with the aging rule. Returns `None` after a failed sweep — the
    /// caller then parks.
    fn claim(&self, id: usize) -> Option<Job> {
        match self.scheduler {
            Scheduler::SharedFifo => {
                let job = self.pop_band_front(0);
                if job.is_some() {
                    self.per_worker[id]
                        .local_hits
                        .fetch_add(1, Ordering::Relaxed);
                    self.obs.claims.inc();
                    self.obs.local_hits.inc();
                }
                job
            }
            Scheduler::PriorityLanes => self.claim_lanes(id),
            Scheduler::WorkStealing => self.claim_stealing(id),
            Scheduler::LockFree => LF_CTX.with(|ctx| {
                let ctx = ctx.borrow();
                let ctx = ctx.as_ref().expect("lock-free claim off a worker thread");
                self.claim_lockfree(id, ctx)
            }),
        }
    }

    /// Priority-lane claim: highest band first, except that every
    /// [`AGING_PERIOD`]-th claim scans lowest-first and counts the
    /// grant as aged when higher-class work was still queued.
    fn claim_lanes(&self, id: usize) -> Option<Job> {
        // Only ticks that can claim something should consume an aging
        // slot, or idle sweeps before parking would burn the aging
        // cadence while the pool is empty.
        if self.queued.load(Ordering::SeqCst) == 0 {
            return None;
        }
        let tick = self.claim_tick.fetch_add(1, Ordering::Relaxed);
        let aging_pass = tick % AGING_PERIOD == AGING_PERIOD - 1;
        let bands: &[usize] = if aging_pass { &[2, 1, 0] } else { &[0, 1, 2] };
        for &band in bands {
            if let Some(job) = self.pop_band_front(band) {
                self.per_worker[id]
                    .local_hits
                    .fetch_add(1, Ordering::Relaxed);
                self.obs.claims.inc();
                self.obs.local_hits.inc();
                if aging_pass && band > 0 {
                    let higher_waiting = (0..band).any(|b| {
                        !self.deques[b]
                            .lock()
                            .expect("pool mutex poisoned")
                            .is_empty()
                    });
                    if higher_waiting {
                        self.per_class[band].aged.fetch_add(1, Ordering::Relaxed);
                    }
                }
                return Some(job);
            }
        }
        None
    }

    /// Work-stealing claim: LIFO local pop, then a FIFO rotation sweep
    /// with batched steals on deep victims.
    fn claim_stealing(&self, id: usize) -> Option<Job> {
        // Newest-first from our own deque.
        let local = {
            let mut q = self.deques[id].lock().expect("pool mutex poisoned");
            let job = q.pop_back();
            if job.is_some() {
                self.queued.fetch_sub(1, Ordering::SeqCst);
                self.obs.queue_depth.add(-1);
            }
            job
        };
        if let Some(job) = local {
            self.per_worker[id]
                .local_hits
                .fetch_add(1, Ordering::Relaxed);
            self.obs.claims.inc();
            self.obs.local_hits.inc();
            return Some(job);
        }
        // Oldest-first from victims, by rotation. Never hold two deque
        // locks at once (a ring of simultaneous thieves would deadlock)
        // — a batch is moved out under the victim's lock, then pushed
        // under our own.
        let n = self.deques.len();
        for k in 1..n {
            let victim = (id + k) % n;
            let (job, batch) = {
                let mut q = self.deques[victim].lock().expect("pool mutex poisoned");
                match q.pop_front() {
                    None => (None, Vec::new()),
                    Some(job) => {
                        self.queued.fetch_sub(1, Ordering::SeqCst);
                        self.obs.queue_depth.add(-1);
                        let depth_before = q.len() + 1;
                        let mut batch = Vec::new();
                        if depth_before >= BATCH_STEAL_DEPTH {
                            // Take half the victim's backlog (the job
                            // being returned counts toward the half).
                            let extra = depth_before / 2 - 1;
                            batch.reserve(extra);
                            for _ in 0..extra {
                                match q.pop_front() {
                                    Some(j) => batch.push(j),
                                    None => break,
                                }
                            }
                        }
                        (Some(job), batch)
                    }
                }
            };
            if let Some(job) = job {
                if !batch.is_empty() {
                    let depth = {
                        let mut own = self.deques[id].lock().expect("pool mutex poisoned");
                        for j in batch {
                            own.push_back(j);
                        }
                        own.len()
                    };
                    self.per_worker[id]
                        .deque_high_water
                        .fetch_max(depth, Ordering::Relaxed);
                    self.per_worker[id]
                        .batch_steals
                        .fetch_add(1, Ordering::Relaxed);
                    self.obs.batch_steals.inc();
                }
                self.per_worker[id].steals.fetch_add(1, Ordering::Relaxed);
                self.per_worker[victim]
                    .stolen_from
                    .fetch_add(1, Ordering::Relaxed);
                self.obs.claims.inc();
                self.obs.steals.inc();
                return Some(job);
            }
        }
        None
    }

    /// Bookkeeping for a claim satisfied from the worker's own deque
    /// or inbox under the lock-free scheduler.
    fn count_local_hit(&self, id: usize) {
        self.queued.fetch_sub(1, Ordering::SeqCst);
        self.obs.queue_depth.add(-1);
        self.per_worker[id]
            .local_hits
            .fetch_add(1, Ordering::Relaxed);
        self.obs.claims.inc();
        self.obs.local_hits.inc();
    }

    /// Lock-free claim: own Chase–Lev deque first (the nested-work
    /// fast path — no lock at all), then the newest job from the own
    /// external-submission inbox, then a rotation steal sweep over the
    /// peers' deques (with the repeated-steal relocation loop standing
    /// in for batched steals), then a batch-stealing sweep over the
    /// peers' inboxes.
    fn claim_lockfree(&self, id: usize, ctx: &LfCtx) -> Option<Job> {
        let counters = &self.per_worker[id];
        // 1. Newest-first from our own deque — no lock, no CAS unless
        //    it is the last element. Worker-side (nested) submissions
        //    live only here, so divide-and-conquer expansion runs
        //    entirely on the lock-free path.
        if let Some(job) = ctx.own.pop() {
            self.count_local_hit(id);
            return Some(job);
        }
        // 2. Newest-first from our own inbox. External submissions
        //    stay in the inbox until claimed, so the owner's LIFO
        //    `pop_back` here and the thieves' FIFO `pop_front` (stage
        //    4) preserve exactly the order the mutex scheduler's
        //    single deque gives both sides. The empty-inbox probe is
        //    one atomic load — a worker spinning down toward parking
        //    takes no lock.
        if self.inbox_len[id].load(Ordering::Acquire) != 0 {
            let job = {
                let mut q = self.deques[id].lock().expect("pool mutex poisoned");
                let job = q.pop_back();
                if job.is_some() {
                    self.inbox_len[id].fetch_sub(1, Ordering::Release);
                }
                job
            };
            if let Some(job) = job {
                self.count_local_hit(id);
                return Some(job);
            }
        }
        // 3. Steal sweep, oldest-first from each victim's deque by
        //    rotation. `Retry` means we lost a CAS race — the victim
        //    is contended but non-empty, so try it again (bounded)
        //    before moving on.
        let n = self.per_worker.len();
        for k in 1..n {
            let victim = (id + k) % n;
            let st = &ctx.stealers[victim];
            let mut attempts = 0;
            loop {
                match st.steal() {
                    deque::Steal::Success(job) => {
                        self.queued.fetch_sub(1, Ordering::SeqCst);
                        self.obs.queue_depth.add(-1);
                        self.lf_relocate_from(id, ctx, victim);
                        counters.steals.fetch_add(1, Ordering::Relaxed);
                        self.per_worker[victim]
                            .stolen_from
                            .fetch_add(1, Ordering::Relaxed);
                        self.obs.claims.inc();
                        self.obs.steals.inc();
                        return Some(job);
                    }
                    deque::Steal::Retry => {
                        counters.steal_cas_failures.fetch_add(1, Ordering::Relaxed);
                        self.obs.steal_cas_failures.inc();
                        attempts += 1;
                        if attempts >= STEAL_RETRY_LIMIT {
                            break;
                        }
                    }
                    deque::Steal::Empty => {
                        counters.empty_steals.fetch_add(1, Ordering::Relaxed);
                        self.obs.empty_steals.inc();
                        break;
                    }
                }
            }
        }
        // 4. Last resort: the peers' inboxes (their owners are too
        //    busy — or too blocked — to drain them). Oldest-first,
        //    with the mutex scheduler's batch-steal rule: from a deep
        //    inbox, relocate up to half the backlog onto our own deque
        //    (oldest-first, so later thieves of *our* deque still see
        //    the oldest at the stealable end).
        for k in 1..n {
            let victim = (id + k) % n;
            if self.inbox_len[victim].load(Ordering::Acquire) == 0 {
                continue;
            }
            let (job, relocated) = {
                let mut q = self.deques[victim].lock().expect("pool mutex poisoned");
                match q.pop_front() {
                    None => (None, 0usize),
                    Some(job) => {
                        let depth_before = q.len() + 1;
                        let mut relocated = 0usize;
                        if depth_before >= BATCH_STEAL_DEPTH {
                            // Take half the victim's backlog (the job
                            // being returned counts toward the half).
                            // `ctx.own.push` takes no inbox lock, so
                            // pushing while holding the victim's lock
                            // cannot deadlock a ring of thieves.
                            for _ in 0..depth_before / 2 - 1 {
                                match q.pop_front() {
                                    Some(j) => {
                                        ctx.own.push(j);
                                        relocated += 1;
                                    }
                                    None => break,
                                }
                            }
                        }
                        self.inbox_len[victim].fetch_sub(relocated + 1, Ordering::Release);
                        (Some(job), relocated)
                    }
                }
            };
            if let Some(job) = job {
                self.queued.fetch_sub(1, Ordering::SeqCst);
                self.obs.queue_depth.add(-1);
                if relocated > 0 {
                    counters
                        .deque_high_water
                        .fetch_max(ctx.own.len(), Ordering::Relaxed);
                    counters.batch_steals.fetch_add(1, Ordering::Relaxed);
                    self.obs.batch_steals.inc();
                }
                counters.steals.fetch_add(1, Ordering::Relaxed);
                self.per_worker[victim]
                    .stolen_from
                    .fetch_add(1, Ordering::Relaxed);
                self.obs.claims.inc();
                self.obs.steals.inc();
                return Some(job);
            }
        }
        None
    }

    /// The repeated-steal loop that preserves batched steals' spirit:
    /// after a successful steal from a deep victim, keep CASing jobs
    /// across into our own deque — up to half the victim's backlog —
    /// so one sweep rebalances the whole pile. Relocated jobs stay in
    /// `queued` and count as our `local_hits` when later claimed,
    /// exactly like the mutex scheduler's batch relocation.
    fn lf_relocate_from(&self, id: usize, ctx: &LfCtx, victim: usize) {
        let st = &ctx.stealers[victim];
        let remaining = st.len();
        if remaining + 1 < BATCH_STEAL_DEPTH {
            return;
        }
        let target = remaining.div_ceil(2) - 1;
        let counters = &self.per_worker[id];
        // Steals come oldest-first and are pushed in that order, so
        // the haul keeps the deque-wide invariant: thieves of *our*
        // deque still find the oldest at the stealable end, and our
        // own LIFO pop prefers the newest — exactly how the mutex
        // scheduler's relocated batch behaves in its deque.
        let mut relocated = 0usize;
        while relocated < target {
            match st.steal() {
                deque::Steal::Success(job) => {
                    ctx.own.push(job);
                    relocated += 1;
                }
                deque::Steal::Retry => {
                    // Another thief is on this victim — let them have
                    // the rest rather than fight for every job.
                    counters.steal_cas_failures.fetch_add(1, Ordering::Relaxed);
                    self.obs.steal_cas_failures.inc();
                    break;
                }
                deque::Steal::Empty => break,
            }
        }
        if relocated > 0 {
            counters
                .deque_high_water
                .fetch_max(ctx.own.len(), Ordering::Relaxed);
            counters.batch_steals.fetch_add(1, Ordering::Relaxed);
            self.obs.batch_steals.inc();
        }
    }
}

/// A fixed-size pool of long-lived worker threads executing submitted
/// jobs.
///
/// * the default [`Scheduler::WorkStealing`] topology gives every
///   worker its own deque (LIFO local pop, FIFO rotation steal,
///   batched steals on deep victims) so one slow job cannot
///   head-of-line-block short jobs behind it;
///   [`Scheduler::PriorityLanes`] instead schedules by [`JobClass`]
///   with an aging rule — the topology the class-aware course server
///   runs;
/// * every job carries a [`JobMeta`]; [`ThreadPool::execute`] inherits
///   the submitting job's meta (see [`current_job_meta`]) and
///   [`ThreadPool::execute_with_meta`] sets it explicitly;
/// * a job that **panics** is contained: the worker survives, the panic
///   is counted, and every other job runs normally;
/// * **`Drop` drains**: jobs still queued when the pool is dropped are
///   executed before the workers join — an accepted job is never
///   silently discarded;
/// * [`ThreadPool::wait_empty`] blocks until no job is queued *or*
///   running (stolen-but-unfinished jobs included) — the quiesce point
///   graceful shutdown builds on.
pub struct ThreadPool {
    inner: Arc<PoolInner>,
    workers: Vec<thread::JoinHandle<()>>,
}

impl std::fmt::Debug for ThreadPool {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ThreadPool")
            .field("workers", &self.workers.len())
            .field("scheduler", &self.inner.scheduler)
            .finish()
    }
}

impl ThreadPool {
    /// Spawns a pool with `workers` threads and the default
    /// work-stealing scheduler.
    ///
    /// # Panics
    /// If `workers == 0`.
    pub fn new(workers: usize) -> ThreadPool {
        ThreadPool::with_scheduler(workers, Scheduler::default())
    }

    /// Spawns a pool with `workers` threads and an explicit queue
    /// topology (the shared-FIFO baseline is kept for measurement).
    ///
    /// # Panics
    /// If `workers == 0`.
    pub fn with_scheduler(workers: usize, scheduler: Scheduler) -> ThreadPool {
        ThreadPool::with_observability(workers, scheduler, &obs::Registry::disabled())
    }

    /// Spawns a pool whose scheduling events (`pool.claims`,
    /// `pool.local_hits`, `pool.steals`, `pool.batch_steals`, and the
    /// `pool.queue_depth` gauge) are mirrored into `registry`. Passing a
    /// disabled registry makes every mirror a no-op — that is exactly
    /// what [`ThreadPool::with_scheduler`] does.
    ///
    /// # Panics
    /// If `workers == 0`.
    pub fn with_observability(
        workers: usize,
        scheduler: Scheduler,
        registry: &obs::Registry,
    ) -> ThreadPool {
        assert!(workers > 0, "thread pool needs at least one worker");
        let deque_count = match scheduler {
            Scheduler::SharedFifo => 1,
            // Per-worker deques; under LockFree these mutex queues are
            // the external-submission inboxes beside the Chase–Lev
            // deques.
            Scheduler::WorkStealing | Scheduler::LockFree => workers,
            Scheduler::PriorityLanes => JobClass::COUNT,
        };
        let lf = if scheduler == Scheduler::LockFree {
            let mut handoff = LfHandoff::default();
            for _ in 0..workers {
                let (worker, stealer) = deque::deque::<Job>();
                handoff.workers.push(Some(worker));
                handoff.stealers.push(stealer);
            }
            handoff
        } else {
            LfHandoff::default()
        };
        let inner = Arc::new(PoolInner {
            scheduler,
            deques: (0..deque_count)
                .map(|_| Mutex::new(VecDeque::new()))
                .collect(),
            queued: AtomicUsize::new(0),
            closed: AtomicBool::new(false),
            sleepers: AtomicUsize::new(0),
            park: Mutex::new(()),
            available: Condvar::new(),
            empty: Condvar::new(),
            pending: Mutex::new(0),
            next_deque: AtomicUsize::new(0),
            lf: Mutex::new(lf),
            inbox_len: (0..deque_count).map(|_| AtomicUsize::new(0)).collect(),
            claim_tick: AtomicU64::new(0),
            submitted: AtomicU64::new(0),
            queue_high_water: AtomicUsize::new(0),
            per_worker: (0..workers).map(|_| WorkerCounters::default()).collect(),
            per_class: std::array::from_fn(|_| ClassCounters::default()),
            obs: PoolObs::new(registry),
        });
        let handles = (0..workers)
            .map(|id| {
                let inner = Arc::clone(&inner);
                thread::Builder::new()
                    .name(format!("serve-worker-{id}"))
                    .spawn(move || worker_loop(id, &inner))
                    .expect("spawning pool worker")
            })
            .collect();
        ThreadPool {
            inner,
            workers: handles,
        }
    }

    /// Number of worker threads.
    pub fn workers(&self) -> usize {
        self.inner.per_worker.len()
    }

    /// The queue topology this pool runs.
    pub fn scheduler(&self) -> Scheduler {
        self.inner.scheduler
    }

    /// Submits a job with the meta inherited from the current thread
    /// (the running pool job's meta, or an enclosing [`with_meta`]),
    /// falling back to [`JobMeta::default`]. Returns the job back as
    /// `Err(PoolClosed)` if the pool has begun shutting down
    /// (deterministic rejection — the caller decides what losing the
    /// job means).
    pub fn execute<F: FnOnce() + Send + 'static>(&self, job: F) -> Result<(), PoolClosed<F>> {
        self.execute_with_meta(current_job_meta().unwrap_or_default(), job)
    }

    /// Submits a job with explicit scheduling metadata.
    pub fn execute_with_meta<F: FnOnce() + Send + 'static>(
        &self,
        meta: JobMeta,
        job: F,
    ) -> Result<(), PoolClosed<F>> {
        // Count the job as pending *before* it becomes visible to
        // workers so `wait_empty` can never observe a running job that
        // it did not wait for.
        {
            let mut pending = self.inner.pending.lock().expect("pool mutex poisoned");
            *pending += 1;
        }
        if self.inner.closed.load(Ordering::SeqCst) {
            self.inner.finish_one();
            return Err(PoolClosed(job));
        }
        self.inner.submitted.fetch_add(1, Ordering::Relaxed);
        self.inner.per_class[meta.class.band()]
            .submitted
            .fetch_add(1, Ordering::Relaxed);
        self.inner.push(Job {
            run: Box::new(job),
            meta,
        });
        Ok(())
    }

    /// Blocks until every submitted job has finished and every queue is
    /// empty. Returns immediately if nothing is pending.
    ///
    /// "Empty" means *no job queued and no job running*: the pending
    /// count a job joins at submit time and leaves only after its
    /// closure returns (or panics). With work stealing this is the only
    /// correct definition — a stolen job leaves every deque empty while
    /// it is still running on the thief.
    pub fn wait_empty(&self) {
        let mut pending = self.inner.pending.lock().expect("pool mutex poisoned");
        while *pending > 0 {
            pending = self.inner.empty.wait(pending).expect("pool mutex poisoned");
        }
    }

    /// A snapshot of the pool's counters.
    pub fn stats(&self) -> PoolStats {
        let per_worker: Vec<WorkerStats> = self
            .inner
            .per_worker
            .iter()
            .map(|w| WorkerStats {
                started: w.started.load(Ordering::Relaxed),
                finished: w.finished.load(Ordering::Relaxed),
                panicked: w.panicked.load(Ordering::Relaxed),
                local_hits: w.local_hits.load(Ordering::Relaxed),
                steals: w.steals.load(Ordering::Relaxed),
                stolen_from: w.stolen_from.load(Ordering::Relaxed),
                batch_steals: w.batch_steals.load(Ordering::Relaxed),
                steal_cas_failures: w.steal_cas_failures.load(Ordering::Relaxed),
                empty_steals: w.empty_steals.load(Ordering::Relaxed),
                queue_high_water: w.deque_high_water.load(Ordering::Relaxed),
            })
            .collect();
        let per_class: Vec<ClassStats> = JobClass::ALL
            .iter()
            .map(|&class| {
                let c = &self.inner.per_class[class.band()];
                ClassStats {
                    class,
                    submitted: c.submitted.load(Ordering::Relaxed),
                    completed: c.completed.load(Ordering::Relaxed),
                    aged: c.aged.load(Ordering::Relaxed),
                    deadline_missed: c.deadline_missed.load(Ordering::Relaxed),
                    busy_micros: c.busy_micros.load(Ordering::Relaxed),
                }
            })
            .collect();
        PoolStats {
            workers: per_worker.len(),
            scheduler: self.inner.scheduler,
            submitted: self.inner.submitted.load(Ordering::Relaxed),
            started: per_worker.iter().map(|w| w.started).sum(),
            finished: per_worker.iter().map(|w| w.finished).sum(),
            panicked: per_worker.iter().map(|w| w.panicked).sum(),
            local_hits: per_worker.iter().map(|w| w.local_hits).sum(),
            steals: per_worker.iter().map(|w| w.steals).sum(),
            batch_steals: per_worker.iter().map(|w| w.batch_steals).sum(),
            steal_cas_failures: per_worker.iter().map(|w| w.steal_cas_failures).sum(),
            empty_steals: per_worker.iter().map(|w| w.empty_steals).sum(),
            queue_high_water: self.inner.queue_high_water.load(Ordering::Relaxed),
            queue_depth: self.inner.queued.load(Ordering::SeqCst),
            per_worker,
            per_class,
        }
    }
}

impl Drop for ThreadPool {
    /// Closes the queues and joins every worker. Queued jobs are
    /// **drained** (executed), not discarded; new submissions are
    /// rejected from this point on.
    fn drop(&mut self) {
        {
            let _guard = self.inner.park.lock().expect("pool mutex poisoned");
            self.inner.closed.store(true, Ordering::SeqCst);
        }
        self.inner.available.notify_all();
        for handle in self.workers.drain(..) {
            // A panicking *job* is caught inside the worker; a worker
            // thread itself dying is a bug worth propagating.
            handle.join().expect("pool worker crashed outside a job");
        }
    }
}

/// The worker body: claim (local pop, then steal sweep / band scan),
/// run (panic-contained, meta installed for nested submissions),
/// count, repeat; park after a failed sweep; exit once the pool is
/// closed *and* every deque is drained.
fn worker_loop(id: usize, inner: &Arc<PoolInner>) {
    WORKER_IDENTITY.with(|w| w.set(Some((inner.token(), id))));
    if inner.scheduler == Scheduler::LockFree {
        // Pick up this worker's Chase–Lev handles from the handoff.
        // Cloning a stealer mints a fresh pin slot, so every worker
        // thread pins independently during buffer reclamation.
        let ctx = {
            let mut lf = inner.lf.lock().expect("pool mutex poisoned");
            LfCtx {
                own: lf.workers[id].take().expect("worker handle claimed twice"),
                stealers: lf.stealers.iter().map(Clone::clone).collect(),
            }
        };
        LF_CTX.with(|c| *c.borrow_mut() = Some(ctx));
    }
    let counters = &inner.per_worker[id];
    loop {
        match inner.claim(id) {
            Some(job) => {
                let band = job.meta.class.band();
                if let Some(deadline) = job.meta.deadline {
                    if Instant::now() > deadline {
                        inner.per_class[band]
                            .deadline_missed
                            .fetch_add(1, Ordering::Relaxed);
                    }
                }
                counters.started.fetch_add(1, Ordering::Relaxed);
                CURRENT_META.with(|m| m.set(Some(job.meta)));
                let run_start = Instant::now();
                let outcome = catch_unwind(AssertUnwindSafe(job.run));
                let busy = run_start.elapsed();
                CURRENT_META.with(|m| m.set(None));
                if outcome.is_err() {
                    counters.panicked.fetch_add(1, Ordering::Relaxed);
                }
                counters.finished.fetch_add(1, Ordering::Relaxed);
                inner.per_class[band]
                    .busy_micros
                    .fetch_add(busy.as_micros() as u64, Ordering::Relaxed);
                inner.per_class[band]
                    .completed
                    .fetch_add(1, Ordering::Relaxed);
                inner.finish_one();
            }
            None => {
                // Full sweep failed: park. The sleepers/queued protocol
                // (see module docs) makes this lost-wakeup-free.
                let guard = inner.park.lock().expect("pool mutex poisoned");
                inner.sleepers.fetch_add(1, Ordering::SeqCst);
                if inner.queued.load(Ordering::SeqCst) > 0 {
                    inner.sleepers.fetch_sub(1, Ordering::SeqCst);
                    drop(guard);
                    // A job is in transit (counted but not yet visible
                    // to the sweep — the lock-free push counts *before*
                    // publishing). Donate the timeslice instead of
                    // re-running the full sweep against a publisher
                    // that may be preempted mid-push.
                    std::thread::yield_now();
                    continue;
                }
                if inner.closed.load(Ordering::SeqCst) {
                    inner.sleepers.fetch_sub(1, Ordering::SeqCst);
                    return;
                }
                let _guard = inner.available.wait(guard).expect("pool mutex poisoned");
                inner.sleepers.fetch_sub(1, Ordering::SeqCst);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::AtomicU64;
    use std::time::{Duration, Instant};

    const ALL_SCHEDULERS: [Scheduler; 4] = [
        Scheduler::SharedFifo,
        Scheduler::WorkStealing,
        Scheduler::PriorityLanes,
        Scheduler::LockFree,
    ];

    #[test]
    fn runs_jobs_and_counts_them_under_every_scheduler() {
        for scheduler in ALL_SCHEDULERS {
            let pool = ThreadPool::with_scheduler(4, scheduler);
            let hits = Arc::new(AtomicU64::new(0));
            for _ in 0..100 {
                let hits = Arc::clone(&hits);
                pool.execute(move || {
                    hits.fetch_add(1, Ordering::Relaxed);
                })
                .expect("pool accepts while alive");
            }
            pool.wait_empty();
            assert_eq!(hits.load(Ordering::Relaxed), 100, "{scheduler}");
            let stats = pool.stats();
            assert_eq!(stats.scheduler, scheduler);
            assert_eq!(stats.submitted, 100);
            assert_eq!(stats.finished, 100);
            assert_eq!(stats.panicked, 0);
            assert_eq!(stats.queue_depth, 0);
            assert!(stats.queue_high_water >= 1);
            assert_eq!(stats.per_worker.len(), 4);
            assert_eq!(
                stats.per_worker.iter().map(|w| w.finished).sum::<u64>(),
                100
            );
            // Every claim is either a local hit or a steal.
            assert_eq!(stats.local_hits + stats.steals, 100);
            // Default meta is Batch: the per-class ledger must agree.
            let batch = stats.per_class[JobClass::Batch.band()];
            assert_eq!(batch.class, JobClass::Batch);
            assert_eq!(batch.submitted, 100, "{scheduler}");
            assert_eq!(batch.completed, 100, "{scheduler}");
        }
    }

    #[test]
    fn registry_mirrors_agree_with_pool_stats() {
        for scheduler in ALL_SCHEDULERS {
            let registry = obs::Registry::new();
            let pool = ThreadPool::with_observability(4, scheduler, &registry);
            for _ in 0..200 {
                pool.execute(|| {}).unwrap();
            }
            pool.wait_empty();
            let stats = pool.stats();
            let snap = registry.snapshot();
            assert_eq!(snap.counter("pool.claims"), Some(200), "{scheduler}");
            assert_eq!(
                snap.counter("pool.local_hits"),
                Some(stats.local_hits),
                "{scheduler}"
            );
            assert_eq!(
                snap.counter("pool.steals"),
                Some(stats.steals),
                "{scheduler}"
            );
            assert_eq!(
                snap.counter("pool.batch_steals"),
                Some(stats.batch_steals),
                "{scheduler}"
            );
            assert_eq!(
                snap.counter("pool.steal_cas_failures"),
                Some(stats.steal_cas_failures),
                "{scheduler}"
            );
            assert_eq!(
                snap.counter("pool.empty_steals"),
                Some(stats.empty_steals),
                "{scheduler}"
            );
            assert_eq!(snap.gauge("pool.queue_depth"), Some(0), "{scheduler}");
        }
    }

    #[test]
    fn drop_drains_queued_jobs_under_every_scheduler() {
        for scheduler in ALL_SCHEDULERS {
            let hits = Arc::new(AtomicU64::new(0));
            {
                // One worker and a slow first job force the rest to queue.
                let pool = ThreadPool::with_scheduler(1, scheduler);
                for _ in 0..50 {
                    let hits = Arc::clone(&hits);
                    pool.execute(move || {
                        std::thread::sleep(Duration::from_micros(100));
                        hits.fetch_add(1, Ordering::Relaxed);
                    })
                    .unwrap();
                }
                // Drop immediately: everything queued must still run.
            }
            assert_eq!(
                hits.load(Ordering::Relaxed),
                50,
                "{scheduler} drop lost jobs"
            );
        }
    }

    #[test]
    fn panicking_job_never_wedges_a_worker() {
        let pool = ThreadPool::new(2);
        let hits = Arc::new(AtomicU64::new(0));
        for i in 0..40 {
            let hits = Arc::clone(&hits);
            pool.execute(move || {
                if i % 4 == 0 {
                    panic!("job {i} exploded");
                }
                hits.fetch_add(1, Ordering::Relaxed);
            })
            .unwrap();
        }
        pool.wait_empty();
        let stats = pool.stats();
        assert_eq!(stats.panicked, 10);
        assert_eq!(stats.finished, 40, "panicked jobs still count as finished");
        assert_eq!(hits.load(Ordering::Relaxed), 30);
        // The pool is still fully operational afterwards.
        let hits2 = Arc::clone(&hits);
        pool.execute(move || {
            hits2.fetch_add(1, Ordering::Relaxed);
        })
        .unwrap();
        pool.wait_empty();
        assert_eq!(hits.load(Ordering::Relaxed), 31);
    }

    #[test]
    fn idle_workers_steal_a_blocked_workers_backlog() {
        // 4 workers; worker deques are fed round-robin, and one job
        // blocks its worker for a long time. The shorts placed behind
        // the blocker (and behind everyone else) must be finished by
        // thieves long before the blocker completes.
        let pool = ThreadPool::with_scheduler(4, Scheduler::WorkStealing);
        let release = Arc::new(AtomicBool::new(false));
        let shorts_done = Arc::new(AtomicU64::new(0));
        {
            let release = Arc::clone(&release);
            pool.execute(move || {
                while !release.load(Ordering::SeqCst) {
                    std::thread::sleep(Duration::from_micros(200));
                }
            })
            .unwrap();
        }
        for _ in 0..40 {
            let shorts_done = Arc::clone(&shorts_done);
            pool.execute(move || {
                shorts_done.fetch_add(1, Ordering::SeqCst);
            })
            .unwrap();
        }
        // All 40 shorts must complete while the blocker still runs:
        // 10 of them sit behind the blocker and can only move if stolen.
        let deadline = Instant::now() + Duration::from_secs(5);
        while shorts_done.load(Ordering::SeqCst) < 40 {
            assert!(
                Instant::now() < deadline,
                "shorts stuck behind a blocked worker"
            );
            std::thread::sleep(Duration::from_millis(1));
        }
        let stats = pool.stats();
        assert!(stats.steals > 0, "balancing required steals: {stats:?}");
        release.store(true, Ordering::SeqCst);
        pool.wait_empty();
        let stats = pool.stats();
        assert_eq!(stats.finished, 41);
        assert_eq!(
            stats.per_worker.iter().map(|w| w.stolen_from).sum::<u64>(),
            stats.steals,
            "every steal has a victim"
        );
    }

    #[test]
    fn deep_victims_are_relieved_by_batched_steals() {
        // A parent job pushes 12 slow shorts onto its *own* deque and
        // then blocks. The only way the other worker makes progress is
        // stealing — and with a 12-deep victim, at least one sweep must
        // take a batch, not a single job.
        let pool = Arc::new(ThreadPool::with_scheduler(2, Scheduler::WorkStealing));
        let release = Arc::new(AtomicBool::new(false));
        let done = Arc::new(AtomicU64::new(0));
        {
            let release = Arc::clone(&release);
            let done = Arc::clone(&done);
            let handle = Arc::clone(&pool);
            pool.execute(move || {
                for _ in 0..12 {
                    let done = Arc::clone(&done);
                    handle
                        .execute(move || {
                            std::thread::sleep(Duration::from_millis(1));
                            done.fetch_add(1, Ordering::SeqCst);
                        })
                        .expect("pool is open");
                }
                while !release.load(Ordering::SeqCst) {
                    std::thread::sleep(Duration::from_micros(100));
                }
            })
            .unwrap();
        }
        let deadline = Instant::now() + Duration::from_secs(5);
        while done.load(Ordering::SeqCst) < 12 {
            assert!(
                Instant::now() < deadline,
                "shorts stuck behind the blocked parent"
            );
            std::thread::sleep(Duration::from_millis(1));
        }
        let stats = pool.stats();
        assert!(stats.steals > 0, "thief never stole: {stats:?}");
        assert!(
            stats.batch_steals >= 1,
            "12-deep victim never batch-stolen: {stats:?}"
        );
        assert_eq!(
            stats.per_worker.iter().map(|w| w.stolen_from).sum::<u64>(),
            stats.steals,
            "every steal has a victim"
        );
        release.store(true, Ordering::SeqCst);
        pool.wait_empty();
        assert_eq!(pool.stats().finished, 13);
    }

    #[test]
    fn lockfree_thieves_relieve_a_blocked_worker() {
        // The LockFree twin of the stealing tests above: one worker
        // blocks with a backlog on its own Chase–Lev deque (pushed by
        // its job, so they are *not* in any inbox), and the other
        // worker can only make progress via CAS steals — with the
        // repeated-steal relocation kicking in on the deep victim.
        let pool = Arc::new(ThreadPool::with_scheduler(2, Scheduler::LockFree));
        let release = Arc::new(AtomicBool::new(false));
        let done = Arc::new(AtomicU64::new(0));
        {
            let release = Arc::clone(&release);
            let done = Arc::clone(&done);
            let handle = Arc::clone(&pool);
            pool.execute(move || {
                for _ in 0..12 {
                    let done = Arc::clone(&done);
                    handle
                        .execute(move || {
                            std::thread::sleep(Duration::from_millis(1));
                            done.fetch_add(1, Ordering::SeqCst);
                        })
                        .expect("pool is open");
                }
                while !release.load(Ordering::SeqCst) {
                    std::thread::sleep(Duration::from_micros(100));
                }
            })
            .unwrap();
        }
        let deadline = Instant::now() + Duration::from_secs(5);
        while done.load(Ordering::SeqCst) < 12 {
            assert!(
                Instant::now() < deadline,
                "shorts stuck behind the blocked owner"
            );
            std::thread::sleep(Duration::from_millis(1));
        }
        let stats = pool.stats();
        assert!(stats.steals > 0, "thief never stole: {stats:?}");
        assert!(
            stats.batch_steals >= 1,
            "deep victim never triggered the relocation loop: {stats:?}"
        );
        assert_eq!(
            stats.per_worker.iter().map(|w| w.stolen_from).sum::<u64>(),
            stats.steals,
            "every steal has a victim"
        );
        release.store(true, Ordering::SeqCst);
        pool.wait_empty();
        assert_eq!(pool.stats().finished, 13);
        assert_eq!(pool.stats().queue_depth, 0, "queued balanced to zero");
    }

    #[test]
    fn lockfree_nested_submissions_use_the_workers_own_deque() {
        let pool = Arc::new(ThreadPool::with_scheduler(2, Scheduler::LockFree));
        let order = Arc::new(Mutex::new(Vec::new()));
        {
            let pool2 = Arc::clone(&pool);
            let order = Arc::clone(&order);
            pool.execute(move || {
                order.lock().unwrap().push("parent");
                let order = Arc::clone(&order);
                pool2
                    .execute(move || {
                        order.lock().unwrap().push("child");
                    })
                    .expect("pool is open");
            })
            .unwrap();
        }
        pool.wait_empty();
        assert_eq!(*order.lock().unwrap(), vec!["parent", "child"]);
        let stats = pool.stats();
        assert_eq!(stats.finished, 2);
        // The parent's push went to its own deque, whose high-water
        // mark must have registered it.
        assert!(
            stats.per_worker.iter().any(|w| w.queue_high_water >= 1),
            "own-deque push left no high-water trace: {stats:?}"
        );
    }

    #[test]
    fn wait_empty_waits_for_stolen_but_running_jobs() {
        // Every deque goes empty the moment the job is claimed; only
        // the pending count knows the job is still running. wait_empty
        // must block on it.
        let pool = ThreadPool::with_scheduler(2, Scheduler::WorkStealing);
        let finished = Arc::new(AtomicBool::new(false));
        let flag = Arc::clone(&finished);
        pool.execute(move || {
            std::thread::sleep(Duration::from_millis(30));
            flag.store(true, Ordering::SeqCst);
        })
        .unwrap();
        pool.wait_empty();
        assert!(
            finished.load(Ordering::SeqCst),
            "wait_empty returned while a claimed job was still running"
        );
        assert_eq!(pool.stats().queue_depth, 0);
    }

    #[test]
    fn wait_empty_returns_only_at_depth_zero() {
        let pool = ThreadPool::new(2);
        let running = Arc::new(AtomicU64::new(0));
        for _ in 0..20 {
            let running = Arc::clone(&running);
            pool.execute(move || {
                running.fetch_add(1, Ordering::SeqCst);
                std::thread::sleep(Duration::from_millis(1));
                running.fetch_sub(1, Ordering::SeqCst);
            })
            .unwrap();
        }
        pool.wait_empty();
        assert_eq!(
            running.load(Ordering::SeqCst),
            0,
            "wait_empty returned with jobs running"
        );
        assert_eq!(pool.stats().queue_depth, 0);
        assert_eq!(pool.stats().finished, 20);
    }

    #[test]
    fn wait_empty_on_idle_pool_is_instant() {
        let pool = ThreadPool::new(3);
        pool.wait_empty(); // must not block
        assert_eq!(pool.stats().submitted, 0);
    }

    #[test]
    fn worker_submissions_land_on_the_workers_own_deque() {
        // A job that submits into its own pool must push to its own
        // deque (and the pool must drain it before wait_empty returns,
        // because the child joins `pending` before the parent exits).
        let pool = Arc::new(ThreadPool::with_scheduler(2, Scheduler::WorkStealing));
        let order = Arc::new(Mutex::new(Vec::new()));
        {
            let pool2 = Arc::clone(&pool);
            let order = Arc::clone(&order);
            pool.execute(move || {
                order.lock().unwrap().push("parent");
                let order = Arc::clone(&order);
                pool2
                    .execute(move || {
                        order.lock().unwrap().push("child");
                    })
                    .expect("pool is open");
            })
            .unwrap();
        }
        pool.wait_empty();
        assert_eq!(*order.lock().unwrap(), vec!["parent", "child"]);
        assert_eq!(pool.stats().finished, 2);
    }

    #[test]
    fn parked_workers_wake_across_quiet_gaps() {
        // Exercise the park/wake protocol: rounds of work separated by
        // idle gaps long enough for every worker to park. A lost
        // wakeup would hang a round (and the test) forever.
        let pool = ThreadPool::with_scheduler(3, Scheduler::WorkStealing);
        let hits = Arc::new(AtomicU64::new(0));
        for round in 0..20 {
            for _ in 0..7 {
                let hits = Arc::clone(&hits);
                pool.execute(move || {
                    hits.fetch_add(1, Ordering::Relaxed);
                })
                .unwrap();
            }
            pool.wait_empty();
            assert_eq!(hits.load(Ordering::Relaxed), 7 * (round + 1));
            // Let the workers actually park before the next round.
            std::thread::sleep(Duration::from_millis(2));
        }
    }

    #[test]
    fn concurrent_submitters_and_wait_empty_agree() {
        // The drop-while-submitting race surface, minus the drop (safe
        // Rust forbids executing into a pool being dropped): many
        // threads submit while another repeatedly calls wait_empty;
        // every wait_empty return must observe a consistent world.
        let pool = Arc::new(ThreadPool::with_scheduler(4, Scheduler::WorkStealing));
        let done = Arc::new(AtomicU64::new(0));
        thread::scope(|s| {
            for _ in 0..4 {
                let pool = Arc::clone(&pool);
                let done = Arc::clone(&done);
                s.spawn(move || {
                    for _ in 0..200 {
                        let done = Arc::clone(&done);
                        pool.execute(move || {
                            done.fetch_add(1, Ordering::SeqCst);
                        })
                        .unwrap();
                    }
                });
            }
            for _ in 0..10 {
                pool.wait_empty();
                let st = pool.stats();
                assert!(st.finished <= st.submitted);
            }
        });
        pool.wait_empty();
        assert_eq!(done.load(Ordering::SeqCst), 800);
        assert_eq!(pool.stats().finished, 800);
    }

    #[test]
    fn priority_lanes_serve_interactive_ahead_of_bulk() {
        // One worker, blocked while a mixed backlog accumulates. Strict
        // priority would run all 5 interactive jobs before any bulk;
        // the aging rule may legitimately promote a bounded number of
        // bulk jobs early, so assert "mostly first", not "all first".
        let pool = ThreadPool::with_scheduler(1, Scheduler::PriorityLanes);
        let release = Arc::new(AtomicBool::new(false));
        let order: Arc<Mutex<Vec<JobClass>>> = Arc::new(Mutex::new(Vec::new()));
        {
            let release = Arc::clone(&release);
            pool.execute(move || {
                while !release.load(Ordering::SeqCst) {
                    std::thread::sleep(Duration::from_micros(100));
                }
            })
            .unwrap();
        }
        for _ in 0..5 {
            let order = Arc::clone(&order);
            pool.execute_with_meta(JobMeta::for_class(JobClass::Bulk), move || {
                order.lock().unwrap().push(JobClass::Bulk);
            })
            .unwrap();
        }
        for _ in 0..5 {
            let order = Arc::clone(&order);
            pool.execute_with_meta(JobMeta::for_class(JobClass::Interactive), move || {
                order.lock().unwrap().push(JobClass::Interactive);
            })
            .unwrap();
        }
        release.store(true, Ordering::SeqCst);
        pool.wait_empty();
        let order = order.lock().unwrap();
        let interactive_in_first_half = order[..5]
            .iter()
            .filter(|&&c| c == JobClass::Interactive)
            .count();
        assert!(
            interactive_in_first_half >= 3,
            "bulk backlog starved interactive work: {order:?}"
        );
        let stats = pool.stats();
        assert_eq!(stats.per_class[JobClass::Interactive.band()].completed, 5);
        assert_eq!(stats.per_class[JobClass::Bulk.band()].completed, 5);
    }

    #[test]
    fn urgent_jobs_jump_their_own_band() {
        let pool = ThreadPool::with_scheduler(1, Scheduler::PriorityLanes);
        let release = Arc::new(AtomicBool::new(false));
        let order: Arc<Mutex<Vec<&'static str>>> = Arc::new(Mutex::new(Vec::new()));
        {
            let release = Arc::clone(&release);
            pool.execute(move || {
                while !release.load(Ordering::SeqCst) {
                    std::thread::sleep(Duration::from_micros(100));
                }
            })
            .unwrap();
        }
        for name in ["first", "second", "third"] {
            let order = Arc::clone(&order);
            pool.execute_with_meta(JobMeta::for_class(JobClass::Interactive), move || {
                order.lock().unwrap().push(name);
            })
            .unwrap();
        }
        {
            let order = Arc::clone(&order);
            pool.execute_with_meta(
                JobMeta::for_class(JobClass::Interactive).with_priority(URGENT_PRIORITY),
                move || {
                    order.lock().unwrap().push("urgent");
                },
            )
            .unwrap();
        }
        release.store(true, Ordering::SeqCst);
        pool.wait_empty();
        assert_eq!(
            *order.lock().unwrap(),
            vec!["urgent", "first", "second", "third"]
        );
    }

    #[test]
    fn aging_runs_bulk_under_sustained_interactive_load() {
        // One worker; a bulk job queued behind a gate while interactive
        // jobs are fed continuously. Without aging the bulk job would
        // starve for as long as the feed lasts; with AGING_PERIOD the
        // bulk job must complete while the feed is still running.
        let pool = ThreadPool::with_scheduler(1, Scheduler::PriorityLanes);
        let release = Arc::new(AtomicBool::new(false));
        let bulk_done = Arc::new(AtomicBool::new(false));
        {
            let release = Arc::clone(&release);
            pool.execute(move || {
                while !release.load(Ordering::SeqCst) {
                    std::thread::sleep(Duration::from_micros(100));
                }
            })
            .unwrap();
        }
        {
            let bulk_done = Arc::clone(&bulk_done);
            pool.execute_with_meta(JobMeta::for_class(JobClass::Bulk), move || {
                bulk_done.store(true, Ordering::SeqCst);
            })
            .unwrap();
        }
        // Prime the interactive lane deeply, then open the gate and
        // keep feeding so the lane never runs dry.
        for _ in 0..64 {
            pool.execute_with_meta(JobMeta::for_class(JobClass::Interactive), || {
                std::thread::sleep(Duration::from_micros(50));
            })
            .unwrap();
        }
        release.store(true, Ordering::SeqCst);
        let deadline = Instant::now() + Duration::from_secs(5);
        while !bulk_done.load(Ordering::SeqCst) {
            assert!(
                Instant::now() < deadline,
                "bulk job starved under interactive load"
            );
            // Keep the interactive lane non-empty, throttled to
            // roughly the worker's pace so the backlog stays bounded.
            pool.execute_with_meta(JobMeta::for_class(JobClass::Interactive), || {
                std::thread::sleep(Duration::from_micros(50));
            })
            .unwrap();
            std::thread::sleep(Duration::from_micros(30));
        }
        pool.wait_empty();
        let stats = pool.stats();
        assert!(
            stats.per_class[JobClass::Bulk.band()].aged >= 1,
            "bulk ran but not via the aging rule: {stats:?}"
        );
    }

    #[test]
    fn deadline_misses_are_counted_per_class() {
        let pool = ThreadPool::with_scheduler(1, Scheduler::PriorityLanes);
        let already_passed = Instant::now() - Duration::from_millis(5);
        pool.execute_with_meta(
            JobMeta::for_class(JobClass::Interactive).with_deadline(already_passed),
            || {},
        )
        .unwrap();
        let future = Instant::now() + Duration::from_secs(60);
        pool.execute_with_meta(
            JobMeta::for_class(JobClass::Interactive).with_deadline(future),
            || {},
        )
        .unwrap();
        pool.wait_empty();
        let stats = pool.stats();
        assert_eq!(
            stats.per_class[JobClass::Interactive.band()].deadline_missed,
            1
        );
    }

    #[test]
    fn busy_time_is_accounted_to_the_jobs_class() {
        let pool = ThreadPool::with_scheduler(2, Scheduler::PriorityLanes);
        for _ in 0..4 {
            pool.execute_with_meta(JobMeta::for_class(JobClass::Bulk), || {
                std::thread::sleep(Duration::from_millis(5));
            })
            .unwrap();
        }
        pool.execute_with_meta(JobMeta::for_class(JobClass::Interactive), || {})
            .unwrap();
        pool.wait_empty();
        let stats = pool.stats();
        let bulk = stats.per_class[JobClass::Bulk.band()];
        // 4 x 5ms of real work: the bulk meter must show at least most
        // of it, and the mean service time must dwarf the no-op class.
        assert!(
            bulk.busy_micros >= 15_000,
            "bulk busy under-counted: {stats:?}"
        );
        let interactive = stats.per_class[JobClass::Interactive.band()];
        assert!(
            bulk.busy_micros / bulk.completed > interactive.busy_micros.max(1),
            "class service times indistinguishable: {stats:?}"
        );
    }

    #[test]
    fn nested_submissions_inherit_the_parents_meta() {
        let pool = Arc::new(ThreadPool::with_scheduler(2, Scheduler::PriorityLanes));
        let observed: Arc<Mutex<Vec<JobClass>>> = Arc::new(Mutex::new(Vec::new()));
        {
            let pool2 = Arc::clone(&pool);
            let observed = Arc::clone(&observed);
            pool.execute_with_meta(JobMeta::for_class(JobClass::Interactive), move || {
                // The child uses plain execute: it must inherit
                // Interactive, not fall back to the Batch default.
                let observed = Arc::clone(&observed);
                pool2
                    .execute(move || {
                        observed
                            .lock()
                            .unwrap()
                            .push(current_job_meta().expect("meta visible inside job").class);
                    })
                    .expect("pool is open");
            })
            .unwrap();
        }
        pool.wait_empty();
        assert_eq!(*observed.lock().unwrap(), vec![JobClass::Interactive]);
        let stats = pool.stats();
        assert_eq!(stats.per_class[JobClass::Interactive.band()].submitted, 2);
        assert_eq!(stats.per_class[JobClass::Batch.band()].submitted, 0);
    }

    #[test]
    fn with_meta_scopes_the_inherited_meta() {
        assert_eq!(current_job_meta(), None);
        let inner = with_meta(JobMeta::for_class(JobClass::Bulk), || {
            current_job_meta().map(|m| m.class)
        });
        assert_eq!(inner, Some(JobClass::Bulk));
        assert_eq!(
            current_job_meta(),
            None,
            "meta must not leak out of with_meta"
        );
    }
}
