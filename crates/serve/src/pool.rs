//! The long-lived worker pool: the cs431 "hello server" `ThreadPool`
//! grown up — panic-isolating workers, `wait_empty`, join-on-drop with
//! drain semantics, per-worker plus aggregate counters, and (since the
//! scheduler rework) **per-worker deques with work stealing** instead
//! of one shared FIFO, so a slow job never head-of-line-blocks the
//! short jobs queued behind it.
//!
//! ## The deque/steal protocol
//!
//! Every worker owns a deque (`Mutex<VecDeque<Job>>` — safe Rust, no
//! lock-free tricks):
//!
//! * **push**: a submission from a worker thread of this pool lands on
//!   that worker's own deque; an external submission is placed
//!   round-robin. Both push at the **back**.
//! * **local pop** is **LIFO** (back): a worker runs the newest job it
//!   owns first — the freshest, cache-warmest work, and the discipline
//!   that keeps short interactive jobs from waiting behind a backlog.
//! * **steal** is **FIFO** (front): when a worker's own deque is empty
//!   it sweeps victims by rotation (`id+1, id+2, …`) and takes the
//!   **oldest** job from the first non-empty deque — the job that has
//!   waited longest, which also prevents starvation under LIFO.
//! * **parking**: only after a full failed sweep does a worker park on
//!   the shared condvar. There is no busy-spin; the sleeper-counted
//!   wake protocol below makes lost wakeups impossible.
//!
//! The old single shared FIFO survives as
//! [`Scheduler::SharedFifo`] — the measured baseline the
//! `serve_stealing` bench and experiment E12 compare against.
//!
//! ## Why the parking protocol is lost-wakeup-free
//!
//! The pool keeps two `SeqCst` atomics: `queued` (jobs pushed but not
//! yet claimed) and `sleepers` (workers inside the parking critical
//! section). A worker parks only by: lock park mutex → increment
//! `sleepers` → re-check `queued == 0` → wait. A submitter publishes
//! by: push job → increment `queued` → if `sleepers > 0`, lock the
//! park mutex and notify. In the SeqCst total order either the
//! submitter sees the sleeper (and notifies under the mutex, so the
//! wakeup cannot slip between the worker's check and its wait), or the
//! worker's `queued` re-check happens after the increment and it never
//! sleeps. Either way the job is claimed.

use std::cell::Cell;
use std::collections::VecDeque;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};
use std::sync::{Arc, Condvar, Mutex};
use std::thread;

/// A queued unit of work.
struct Job(Box<dyn FnOnce() + Send + 'static>);

/// Error returned when a job is submitted to a pool that has begun
/// shutting down: the job is handed back so nothing is silently lost.
pub struct PoolClosed<F>(pub F);

impl<F> std::fmt::Debug for PoolClosed<F> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str("PoolClosed(..)")
    }
}

/// Which queue topology the pool schedules jobs with.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum Scheduler {
    /// One shared FIFO queue all workers pop from — the original pool
    /// design, kept as the measured baseline for the stealing
    /// scheduler (bench `serve_stealing`, experiment E12).
    SharedFifo,
    /// Per-worker deques: LIFO local pop, FIFO rotation steal, park
    /// after a failed sweep. The default.
    #[default]
    WorkStealing,
}

impl std::fmt::Display for Scheduler {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Scheduler::SharedFifo => f.write_str("shared-fifo"),
            Scheduler::WorkStealing => f.write_str("work-stealing"),
        }
    }
}

/// Counters for one worker thread.
#[derive(Debug, Default)]
struct WorkerCounters {
    started: AtomicU64,
    finished: AtomicU64,
    panicked: AtomicU64,
    local_hits: AtomicU64,
    steals: AtomicU64,
    stolen_from: AtomicU64,
    deque_high_water: AtomicUsize,
}

/// A point-in-time snapshot of one worker's counters.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct WorkerStats {
    /// Jobs this worker has begun executing.
    pub started: u64,
    /// Jobs this worker has completed (including panicked ones).
    pub finished: u64,
    /// Jobs that panicked on this worker.
    pub panicked: u64,
    /// Jobs this worker claimed from its own deque (LIFO pops; for the
    /// shared-FIFO scheduler, every claim counts here).
    pub local_hits: u64,
    /// Jobs this worker stole from another worker's deque.
    pub steals: u64,
    /// Jobs other workers stole from this worker's deque.
    pub stolen_from: u64,
    /// Deepest this worker's own deque has ever been (always 0 under
    /// the shared-FIFO scheduler, which has no per-worker deques).
    pub queue_high_water: usize,
}

/// A point-in-time snapshot of the pool's aggregate counters.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PoolStats {
    /// Worker thread count.
    pub workers: usize,
    /// Queue topology the pool runs.
    pub scheduler: Scheduler,
    /// Jobs accepted by [`ThreadPool::execute`] so far.
    pub submitted: u64,
    /// Jobs begun across all workers.
    pub started: u64,
    /// Jobs completed across all workers (including panicked ones).
    pub finished: u64,
    /// Jobs that panicked across all workers.
    pub panicked: u64,
    /// Jobs claimed from the claimer's own deque across all workers.
    pub local_hits: u64,
    /// Jobs stolen across all workers (0 under shared-FIFO).
    pub steals: u64,
    /// Deepest the total queued backlog has ever been
    /// (admission-pressure signal, summed across deques).
    pub queue_high_water: usize,
    /// Jobs currently queued but not yet claimed.
    pub queue_depth: usize,
    /// Per-worker breakdown, indexed by worker id.
    pub per_worker: Vec<WorkerStats>,
}

thread_local! {
    /// `(pool token, worker id)` for pool worker threads, so a job that
    /// submits into its own pool pushes onto its own deque.
    static WORKER_IDENTITY: Cell<Option<(usize, usize)>> = const { Cell::new(None) };
}

/// Shared state between the pool handle and its workers.
struct PoolInner {
    scheduler: Scheduler,
    /// `WorkStealing`: one deque per worker. `SharedFifo`: a single
    /// shared queue in slot 0.
    deques: Vec<Mutex<VecDeque<Job>>>,
    /// Jobs pushed but not yet claimed, across all deques.
    queued: AtomicUsize,
    /// Set (under the park mutex) when the pool begins shutting down.
    closed: AtomicBool,
    /// Workers inside the parking critical section.
    sleepers: AtomicUsize,
    /// Guards parking; never held while running a job.
    park: Mutex<()>,
    /// Signals parked workers that a job (or closure) is available.
    available: Condvar,
    /// Signals `wait_empty` that `pending` may have reached zero.
    empty: Condvar,
    /// Jobs submitted but not yet finished (queued + running). This is
    /// what `wait_empty` waits on: with stealing, "every deque empty"
    /// is *not* "idle" — a stolen job may still be running.
    pending: Mutex<usize>,
    /// Round-robin placement cursor for external submissions.
    next_deque: AtomicUsize,
    submitted: AtomicU64,
    queue_high_water: AtomicUsize,
    per_worker: Vec<WorkerCounters>,
}

impl PoolInner {
    /// A token identifying this pool instance for worker-local pushes.
    fn token(self: &Arc<Self>) -> usize {
        Arc::as_ptr(self) as usize
    }

    /// Marks one submitted job as fully finished and wakes `wait_empty`
    /// if that was the last one.
    fn finish_one(&self) {
        let mut pending = self.pending.lock().expect("pool mutex poisoned");
        *pending -= 1;
        if *pending == 0 {
            self.empty.notify_all();
        }
    }

    /// Places `job` on a deque and wakes a parked worker if any exists.
    fn push(self: &Arc<Self>, job: Job) {
        let target = match self.scheduler {
            Scheduler::SharedFifo => 0,
            Scheduler::WorkStealing => {
                // A worker of *this* pool pushes to its own deque
                // (LIFO locality); external submitters round-robin.
                let own = WORKER_IDENTITY.with(|w| match w.get() {
                    Some((token, id)) if token == self.token() => Some(id),
                    _ => None,
                });
                own.unwrap_or_else(|| {
                    self.next_deque.fetch_add(1, Ordering::Relaxed) % self.deques.len()
                })
            }
        };
        // `queued` moves only inside a deque critical section, so a
        // worker that observes `queued > 0` and then locks the deques
        // is guaranteed to find the job — no underflow when a thief
        // races the submitter, no busy-spin on a not-yet-visible push.
        let (depth, total) = {
            let mut q = self.deques[target].lock().expect("pool mutex poisoned");
            q.push_back(job);
            (q.len(), self.queued.fetch_add(1, Ordering::SeqCst) + 1)
        };
        if self.scheduler == Scheduler::WorkStealing {
            self.per_worker[target].deque_high_water.fetch_max(depth, Ordering::Relaxed);
        }
        self.queue_high_water.fetch_max(total, Ordering::Relaxed);
        if self.sleepers.load(Ordering::SeqCst) > 0 {
            let _guard = self.park.lock().expect("pool mutex poisoned");
            self.available.notify_one();
        }
    }

    /// One claim attempt for worker `id`: local pop, then (stealing
    /// only) a full rotation sweep. Returns `None` after a failed
    /// sweep — the caller then parks.
    fn claim(&self, id: usize) -> Option<Job> {
        match self.scheduler {
            Scheduler::SharedFifo => {
                let job = {
                    let mut q = self.deques[0].lock().expect("pool mutex poisoned");
                    let job = q.pop_front();
                    if job.is_some() {
                        self.queued.fetch_sub(1, Ordering::SeqCst);
                    }
                    job
                };
                if job.is_some() {
                    self.per_worker[id].local_hits.fetch_add(1, Ordering::Relaxed);
                }
                job
            }
            Scheduler::WorkStealing => {
                // Newest-first from our own deque.
                let local = {
                    let mut q = self.deques[id].lock().expect("pool mutex poisoned");
                    let job = q.pop_back();
                    if job.is_some() {
                        self.queued.fetch_sub(1, Ordering::SeqCst);
                    }
                    job
                };
                if let Some(job) = local {
                    self.per_worker[id].local_hits.fetch_add(1, Ordering::Relaxed);
                    return Some(job);
                }
                // Oldest-first from victims, by rotation.
                let n = self.deques.len();
                for k in 1..n {
                    let victim = (id + k) % n;
                    let stolen = {
                        let mut q = self.deques[victim].lock().expect("pool mutex poisoned");
                        let job = q.pop_front();
                        if job.is_some() {
                            self.queued.fetch_sub(1, Ordering::SeqCst);
                        }
                        job
                    };
                    if let Some(job) = stolen {
                        self.per_worker[id].steals.fetch_add(1, Ordering::Relaxed);
                        self.per_worker[victim].stolen_from.fetch_add(1, Ordering::Relaxed);
                        return Some(job);
                    }
                }
                None
            }
        }
    }
}

/// A fixed-size pool of long-lived worker threads executing submitted
/// jobs.
///
/// * the default [`Scheduler::WorkStealing`] topology gives every
///   worker its own deque (LIFO local pop, FIFO rotation steal) so one
///   slow job cannot head-of-line-block short jobs behind it;
/// * a job that **panics** is contained: the worker survives, the panic
///   is counted, and every other job runs normally;
/// * **`Drop` drains**: jobs still queued when the pool is dropped are
///   executed before the workers join — an accepted job is never
///   silently discarded;
/// * [`ThreadPool::wait_empty`] blocks until no job is queued *or*
///   running (stolen-but-unfinished jobs included) — the quiesce point
///   graceful shutdown builds on.
pub struct ThreadPool {
    inner: Arc<PoolInner>,
    workers: Vec<thread::JoinHandle<()>>,
}

impl std::fmt::Debug for ThreadPool {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ThreadPool")
            .field("workers", &self.workers.len())
            .field("scheduler", &self.inner.scheduler)
            .finish()
    }
}

impl ThreadPool {
    /// Spawns a pool with `workers` threads and the default
    /// work-stealing scheduler.
    ///
    /// # Panics
    /// If `workers == 0`.
    pub fn new(workers: usize) -> ThreadPool {
        ThreadPool::with_scheduler(workers, Scheduler::default())
    }

    /// Spawns a pool with `workers` threads and an explicit queue
    /// topology (the shared-FIFO baseline is kept for measurement).
    ///
    /// # Panics
    /// If `workers == 0`.
    pub fn with_scheduler(workers: usize, scheduler: Scheduler) -> ThreadPool {
        assert!(workers > 0, "thread pool needs at least one worker");
        let deque_count = match scheduler {
            Scheduler::SharedFifo => 1,
            Scheduler::WorkStealing => workers,
        };
        let inner = Arc::new(PoolInner {
            scheduler,
            deques: (0..deque_count).map(|_| Mutex::new(VecDeque::new())).collect(),
            queued: AtomicUsize::new(0),
            closed: AtomicBool::new(false),
            sleepers: AtomicUsize::new(0),
            park: Mutex::new(()),
            available: Condvar::new(),
            empty: Condvar::new(),
            pending: Mutex::new(0),
            next_deque: AtomicUsize::new(0),
            submitted: AtomicU64::new(0),
            queue_high_water: AtomicUsize::new(0),
            per_worker: (0..workers).map(|_| WorkerCounters::default()).collect(),
        });
        let handles = (0..workers)
            .map(|id| {
                let inner = Arc::clone(&inner);
                thread::Builder::new()
                    .name(format!("serve-worker-{id}"))
                    .spawn(move || worker_loop(id, &inner))
                    .expect("spawning pool worker")
            })
            .collect();
        ThreadPool { inner, workers: handles }
    }

    /// Number of worker threads.
    pub fn workers(&self) -> usize {
        self.inner.per_worker.len()
    }

    /// The queue topology this pool runs.
    pub fn scheduler(&self) -> Scheduler {
        self.inner.scheduler
    }

    /// Submits a job. Returns the job back as `Err(PoolClosed)` if the
    /// pool has begun shutting down (deterministic rejection — the
    /// caller decides what losing the job means).
    pub fn execute<F: FnOnce() + Send + 'static>(&self, job: F) -> Result<(), PoolClosed<F>> {
        // Count the job as pending *before* it becomes visible to
        // workers so `wait_empty` can never observe a running job that
        // it did not wait for.
        {
            let mut pending = self.inner.pending.lock().expect("pool mutex poisoned");
            *pending += 1;
        }
        if self.inner.closed.load(Ordering::SeqCst) {
            self.inner.finish_one();
            return Err(PoolClosed(job));
        }
        self.inner.submitted.fetch_add(1, Ordering::Relaxed);
        self.inner.push(Job(Box::new(job)));
        Ok(())
    }

    /// Blocks until every submitted job has finished and every queue is
    /// empty. Returns immediately if nothing is pending.
    ///
    /// "Empty" means *no job queued and no job running*: the pending
    /// count a job joins at submit time and leaves only after its
    /// closure returns (or panics). With work stealing this is the only
    /// correct definition — a stolen job leaves every deque empty while
    /// it is still running on the thief.
    pub fn wait_empty(&self) {
        let mut pending = self.inner.pending.lock().expect("pool mutex poisoned");
        while *pending > 0 {
            pending = self.inner.empty.wait(pending).expect("pool mutex poisoned");
        }
    }

    /// A snapshot of the pool's counters.
    pub fn stats(&self) -> PoolStats {
        let per_worker: Vec<WorkerStats> = self
            .inner
            .per_worker
            .iter()
            .map(|w| WorkerStats {
                started: w.started.load(Ordering::Relaxed),
                finished: w.finished.load(Ordering::Relaxed),
                panicked: w.panicked.load(Ordering::Relaxed),
                local_hits: w.local_hits.load(Ordering::Relaxed),
                steals: w.steals.load(Ordering::Relaxed),
                stolen_from: w.stolen_from.load(Ordering::Relaxed),
                queue_high_water: w.deque_high_water.load(Ordering::Relaxed),
            })
            .collect();
        PoolStats {
            workers: per_worker.len(),
            scheduler: self.inner.scheduler,
            submitted: self.inner.submitted.load(Ordering::Relaxed),
            started: per_worker.iter().map(|w| w.started).sum(),
            finished: per_worker.iter().map(|w| w.finished).sum(),
            panicked: per_worker.iter().map(|w| w.panicked).sum(),
            local_hits: per_worker.iter().map(|w| w.local_hits).sum(),
            steals: per_worker.iter().map(|w| w.steals).sum(),
            queue_high_water: self.inner.queue_high_water.load(Ordering::Relaxed),
            queue_depth: self.inner.queued.load(Ordering::SeqCst),
            per_worker,
        }
    }
}

impl Drop for ThreadPool {
    /// Closes the queues and joins every worker. Queued jobs are
    /// **drained** (executed), not discarded; new submissions are
    /// rejected from this point on.
    fn drop(&mut self) {
        {
            let _guard = self.inner.park.lock().expect("pool mutex poisoned");
            self.inner.closed.store(true, Ordering::SeqCst);
        }
        self.inner.available.notify_all();
        for handle in self.workers.drain(..) {
            // A panicking *job* is caught inside the worker; a worker
            // thread itself dying is a bug worth propagating.
            handle.join().expect("pool worker crashed outside a job");
        }
    }
}

/// The worker body: claim (local pop, then steal sweep), run
/// (panic-contained), count, repeat; park after a failed sweep; exit
/// once the pool is closed *and* every deque is drained.
fn worker_loop(id: usize, inner: &Arc<PoolInner>) {
    WORKER_IDENTITY.with(|w| w.set(Some((inner.token(), id))));
    let counters = &inner.per_worker[id];
    loop {
        match inner.claim(id) {
            Some(job) => {
                counters.started.fetch_add(1, Ordering::Relaxed);
                let outcome = catch_unwind(AssertUnwindSafe(job.0));
                if outcome.is_err() {
                    counters.panicked.fetch_add(1, Ordering::Relaxed);
                }
                counters.finished.fetch_add(1, Ordering::Relaxed);
                inner.finish_one();
            }
            None => {
                // Full sweep failed: park. The sleepers/queued protocol
                // (see module docs) makes this lost-wakeup-free.
                let guard = inner.park.lock().expect("pool mutex poisoned");
                inner.sleepers.fetch_add(1, Ordering::SeqCst);
                if inner.queued.load(Ordering::SeqCst) > 0 {
                    inner.sleepers.fetch_sub(1, Ordering::SeqCst);
                    continue;
                }
                if inner.closed.load(Ordering::SeqCst) {
                    inner.sleepers.fetch_sub(1, Ordering::SeqCst);
                    return;
                }
                let _guard = inner.available.wait(guard).expect("pool mutex poisoned");
                inner.sleepers.fetch_sub(1, Ordering::SeqCst);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::AtomicU64;
    use std::time::{Duration, Instant};

    const BOTH: [Scheduler; 2] = [Scheduler::SharedFifo, Scheduler::WorkStealing];

    #[test]
    fn runs_jobs_and_counts_them_under_both_schedulers() {
        for scheduler in BOTH {
            let pool = ThreadPool::with_scheduler(4, scheduler);
            let hits = Arc::new(AtomicU64::new(0));
            for _ in 0..100 {
                let hits = Arc::clone(&hits);
                pool.execute(move || {
                    hits.fetch_add(1, Ordering::Relaxed);
                })
                .expect("pool accepts while alive");
            }
            pool.wait_empty();
            assert_eq!(hits.load(Ordering::Relaxed), 100, "{scheduler}");
            let stats = pool.stats();
            assert_eq!(stats.scheduler, scheduler);
            assert_eq!(stats.submitted, 100);
            assert_eq!(stats.finished, 100);
            assert_eq!(stats.panicked, 0);
            assert_eq!(stats.queue_depth, 0);
            assert!(stats.queue_high_water >= 1);
            assert_eq!(stats.per_worker.len(), 4);
            assert_eq!(stats.per_worker.iter().map(|w| w.finished).sum::<u64>(), 100);
            // Every claim is either a local hit or a steal.
            assert_eq!(stats.local_hits + stats.steals, 100);
        }
    }

    #[test]
    fn drop_drains_queued_jobs_under_both_schedulers() {
        for scheduler in BOTH {
            let hits = Arc::new(AtomicU64::new(0));
            {
                // One worker and a slow first job force the rest to queue.
                let pool = ThreadPool::with_scheduler(1, scheduler);
                for _ in 0..50 {
                    let hits = Arc::clone(&hits);
                    pool.execute(move || {
                        std::thread::sleep(Duration::from_micros(100));
                        hits.fetch_add(1, Ordering::Relaxed);
                    })
                    .unwrap();
                }
                // Drop immediately: everything queued must still run.
            }
            assert_eq!(hits.load(Ordering::Relaxed), 50, "{scheduler} drop lost jobs");
        }
    }

    #[test]
    fn panicking_job_never_wedges_a_worker() {
        let pool = ThreadPool::new(2);
        let hits = Arc::new(AtomicU64::new(0));
        for i in 0..40 {
            let hits = Arc::clone(&hits);
            pool.execute(move || {
                if i % 4 == 0 {
                    panic!("job {i} exploded");
                }
                hits.fetch_add(1, Ordering::Relaxed);
            })
            .unwrap();
        }
        pool.wait_empty();
        let stats = pool.stats();
        assert_eq!(stats.panicked, 10);
        assert_eq!(stats.finished, 40, "panicked jobs still count as finished");
        assert_eq!(hits.load(Ordering::Relaxed), 30);
        // The pool is still fully operational afterwards.
        let hits2 = Arc::clone(&hits);
        pool.execute(move || {
            hits2.fetch_add(1, Ordering::Relaxed);
        })
        .unwrap();
        pool.wait_empty();
        assert_eq!(hits.load(Ordering::Relaxed), 31);
    }

    #[test]
    fn idle_workers_steal_a_blocked_workers_backlog() {
        // 4 workers; worker deques are fed round-robin, and one job
        // blocks its worker for a long time. The shorts placed behind
        // the blocker (and behind everyone else) must be finished by
        // thieves long before the blocker completes.
        let pool = ThreadPool::with_scheduler(4, Scheduler::WorkStealing);
        let release = Arc::new(AtomicBool::new(false));
        let shorts_done = Arc::new(AtomicU64::new(0));
        {
            let release = Arc::clone(&release);
            pool.execute(move || {
                while !release.load(Ordering::SeqCst) {
                    std::thread::sleep(Duration::from_micros(200));
                }
            })
            .unwrap();
        }
        for _ in 0..40 {
            let shorts_done = Arc::clone(&shorts_done);
            pool.execute(move || {
                shorts_done.fetch_add(1, Ordering::SeqCst);
            })
            .unwrap();
        }
        // All 40 shorts must complete while the blocker still runs:
        // 10 of them sit behind the blocker and can only move if stolen.
        let deadline = Instant::now() + Duration::from_secs(5);
        while shorts_done.load(Ordering::SeqCst) < 40 {
            assert!(Instant::now() < deadline, "shorts stuck behind a blocked worker");
            std::thread::sleep(Duration::from_millis(1));
        }
        let stats = pool.stats();
        assert!(stats.steals > 0, "balancing required steals: {stats:?}");
        release.store(true, Ordering::SeqCst);
        pool.wait_empty();
        let stats = pool.stats();
        assert_eq!(stats.finished, 41);
        assert_eq!(
            stats.per_worker.iter().map(|w| w.stolen_from).sum::<u64>(),
            stats.steals,
            "every steal has a victim"
        );
    }

    #[test]
    fn wait_empty_waits_for_stolen_but_running_jobs() {
        // Every deque goes empty the moment the job is claimed; only
        // the pending count knows the job is still running. wait_empty
        // must block on it.
        let pool = ThreadPool::with_scheduler(2, Scheduler::WorkStealing);
        let finished = Arc::new(AtomicBool::new(false));
        let flag = Arc::clone(&finished);
        pool.execute(move || {
            std::thread::sleep(Duration::from_millis(30));
            flag.store(true, Ordering::SeqCst);
        })
        .unwrap();
        pool.wait_empty();
        assert!(
            finished.load(Ordering::SeqCst),
            "wait_empty returned while a claimed job was still running"
        );
        assert_eq!(pool.stats().queue_depth, 0);
    }

    #[test]
    fn wait_empty_returns_only_at_depth_zero() {
        let pool = ThreadPool::new(2);
        let running = Arc::new(AtomicU64::new(0));
        for _ in 0..20 {
            let running = Arc::clone(&running);
            pool.execute(move || {
                running.fetch_add(1, Ordering::SeqCst);
                std::thread::sleep(Duration::from_millis(1));
                running.fetch_sub(1, Ordering::SeqCst);
            })
            .unwrap();
        }
        pool.wait_empty();
        assert_eq!(running.load(Ordering::SeqCst), 0, "wait_empty returned with jobs running");
        assert_eq!(pool.stats().queue_depth, 0);
        assert_eq!(pool.stats().finished, 20);
    }

    #[test]
    fn wait_empty_on_idle_pool_is_instant() {
        let pool = ThreadPool::new(3);
        pool.wait_empty(); // must not block
        assert_eq!(pool.stats().submitted, 0);
    }

    #[test]
    fn worker_submissions_land_on_the_workers_own_deque() {
        // A job that submits into its own pool must push to its own
        // deque (and the pool must drain it before wait_empty returns,
        // because the child joins `pending` before the parent exits).
        let pool = Arc::new(ThreadPool::with_scheduler(2, Scheduler::WorkStealing));
        let order = Arc::new(Mutex::new(Vec::new()));
        {
            let pool2 = Arc::clone(&pool);
            let order = Arc::clone(&order);
            pool.execute(move || {
                order.lock().unwrap().push("parent");
                let order = Arc::clone(&order);
                pool2
                    .execute(move || {
                        order.lock().unwrap().push("child");
                    })
                    .expect("pool is open");
            })
            .unwrap();
        }
        pool.wait_empty();
        assert_eq!(*order.lock().unwrap(), vec!["parent", "child"]);
        assert_eq!(pool.stats().finished, 2);
    }

    #[test]
    fn parked_workers_wake_across_quiet_gaps() {
        // Exercise the park/wake protocol: rounds of work separated by
        // idle gaps long enough for every worker to park. A lost
        // wakeup would hang a round (and the test) forever.
        let pool = ThreadPool::with_scheduler(3, Scheduler::WorkStealing);
        let hits = Arc::new(AtomicU64::new(0));
        for round in 0..20 {
            for _ in 0..7 {
                let hits = Arc::clone(&hits);
                pool.execute(move || {
                    hits.fetch_add(1, Ordering::Relaxed);
                })
                .unwrap();
            }
            pool.wait_empty();
            assert_eq!(hits.load(Ordering::Relaxed), 7 * (round + 1));
            // Let the workers actually park before the next round.
            std::thread::sleep(Duration::from_millis(2));
        }
    }

    #[test]
    fn concurrent_submitters_and_wait_empty_agree() {
        // The drop-while-submitting race surface, minus the drop (safe
        // Rust forbids executing into a pool being dropped): many
        // threads submit while another repeatedly calls wait_empty;
        // every wait_empty return must observe a consistent world.
        let pool = Arc::new(ThreadPool::with_scheduler(4, Scheduler::WorkStealing));
        let done = Arc::new(AtomicU64::new(0));
        thread::scope(|s| {
            for _ in 0..4 {
                let pool = Arc::clone(&pool);
                let done = Arc::clone(&done);
                s.spawn(move || {
                    for _ in 0..200 {
                        let done = Arc::clone(&done);
                        pool.execute(move || {
                            done.fetch_add(1, Ordering::SeqCst);
                        })
                        .unwrap();
                    }
                });
            }
            for _ in 0..10 {
                pool.wait_empty();
                let st = pool.stats();
                assert!(st.finished <= st.submitted);
            }
        });
        pool.wait_empty();
        assert_eq!(done.load(Ordering::SeqCst), 800);
        assert_eq!(pool.stats().finished, 800);
    }
}
