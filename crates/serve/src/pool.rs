//! The long-lived worker pool: the cs431 "hello server" `ThreadPool`
//! grown up — panic-isolating workers, `wait_empty`, join-on-drop with
//! drain semantics, and per-worker plus aggregate counters as the
//! subsystem's first observability hooks.
//!
//! Built from the same parts the course teaches (one `Mutex`, one
//! `Condvar`, a `VecDeque` — the bounded-buffer idiom of
//! `parallel::bounded` minus the capacity bound, because admission
//! control lives a layer up in [`crate::server`]).

use std::collections::VecDeque;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
use std::sync::{Arc, Condvar, Mutex};
use std::thread;

/// A queued unit of work.
struct Job(Box<dyn FnOnce() + Send + 'static>);

/// Error returned when a job is submitted to a pool that has begun
/// shutting down: the job is handed back so nothing is silently lost.
pub struct PoolClosed<F>(pub F);

impl<F> std::fmt::Debug for PoolClosed<F> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str("PoolClosed(..)")
    }
}

/// Counters for one worker thread.
#[derive(Debug, Default)]
struct WorkerCounters {
    started: AtomicU64,
    finished: AtomicU64,
    panicked: AtomicU64,
}

/// A point-in-time snapshot of one worker's counters.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct WorkerStats {
    /// Jobs this worker has begun executing.
    pub started: u64,
    /// Jobs this worker has completed (including panicked ones).
    pub finished: u64,
    /// Jobs that panicked on this worker.
    pub panicked: u64,
}

/// A point-in-time snapshot of the pool's aggregate counters.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PoolStats {
    /// Worker thread count.
    pub workers: usize,
    /// Jobs accepted by [`ThreadPool::execute`] so far.
    pub submitted: u64,
    /// Jobs begun across all workers.
    pub started: u64,
    /// Jobs completed across all workers (including panicked ones).
    pub finished: u64,
    /// Jobs that panicked across all workers.
    pub panicked: u64,
    /// Deepest the queue has ever been (admission-pressure signal).
    pub queue_high_water: usize,
    /// Jobs currently queued but not yet claimed.
    pub queue_depth: usize,
    /// Per-worker breakdown, indexed by worker id.
    pub per_worker: Vec<WorkerStats>,
}

/// Shared state between the pool handle and its workers.
struct PoolInner {
    queue: Mutex<QueueState>,
    /// Signals workers that a job (or closure of the queue) is available.
    available: Condvar,
    /// Signals `wait_empty` that `pending` may have reached zero.
    empty: Condvar,
    /// Jobs submitted but not yet finished (queued + running).
    pending: Mutex<usize>,
    submitted: AtomicU64,
    queue_high_water: AtomicUsize,
    per_worker: Vec<WorkerCounters>,
}

struct QueueState {
    jobs: VecDeque<Job>,
    closed: bool,
}

impl PoolInner {
    /// Marks one submitted job as fully finished and wakes `wait_empty`
    /// if that was the last one.
    fn finish_one(&self) {
        let mut pending = self.pending.lock().expect("pool mutex poisoned");
        *pending -= 1;
        if *pending == 0 {
            self.empty.notify_all();
        }
    }
}

/// A fixed-size pool of long-lived worker threads executing submitted
/// jobs in FIFO order.
///
/// * a job that **panics** is contained: the worker survives, the panic
///   is counted, and every other job runs normally;
/// * **`Drop` drains**: jobs still queued when the pool is dropped are
///   executed before the workers join — an accepted job is never
///   silently discarded;
/// * [`ThreadPool::wait_empty`] blocks until no job is queued *or*
///   running — the quiesce point graceful shutdown builds on.
pub struct ThreadPool {
    inner: Arc<PoolInner>,
    workers: Vec<thread::JoinHandle<()>>,
}

impl std::fmt::Debug for ThreadPool {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ThreadPool").field("workers", &self.workers.len()).finish()
    }
}

impl ThreadPool {
    /// Spawns a pool with `workers` threads.
    ///
    /// # Panics
    /// If `workers == 0`.
    pub fn new(workers: usize) -> ThreadPool {
        assert!(workers > 0, "thread pool needs at least one worker");
        let inner = Arc::new(PoolInner {
            queue: Mutex::new(QueueState { jobs: VecDeque::new(), closed: false }),
            available: Condvar::new(),
            empty: Condvar::new(),
            pending: Mutex::new(0),
            submitted: AtomicU64::new(0),
            queue_high_water: AtomicUsize::new(0),
            per_worker: (0..workers).map(|_| WorkerCounters::default()).collect(),
        });
        let handles = (0..workers)
            .map(|id| {
                let inner = Arc::clone(&inner);
                thread::Builder::new()
                    .name(format!("serve-worker-{id}"))
                    .spawn(move || worker_loop(id, &inner))
                    .expect("spawning pool worker")
            })
            .collect();
        ThreadPool { inner, workers: handles }
    }

    /// Number of worker threads.
    pub fn workers(&self) -> usize {
        self.inner.per_worker.len()
    }

    /// Submits a job. Returns the job back as `Err(PoolClosed)` if the
    /// pool has begun shutting down (deterministic rejection — the
    /// caller decides what losing the job means).
    pub fn execute<F: FnOnce() + Send + 'static>(&self, job: F) -> Result<(), PoolClosed<F>> {
        // Count the job as pending *before* it becomes visible to
        // workers so `wait_empty` can never observe a running job that
        // it did not wait for.
        {
            let mut pending = self.inner.pending.lock().expect("pool mutex poisoned");
            *pending += 1;
        }
        let mut q = self.inner.queue.lock().expect("pool mutex poisoned");
        if q.closed {
            drop(q);
            self.inner.finish_one();
            return Err(PoolClosed(job));
        }
        q.jobs.push_back(Job(Box::new(job)));
        let depth = q.jobs.len();
        drop(q);
        self.inner.submitted.fetch_add(1, Ordering::Relaxed);
        self.inner.queue_high_water.fetch_max(depth, Ordering::Relaxed);
        self.inner.available.notify_one();
        Ok(())
    }

    /// Blocks until every submitted job has finished and the queue is
    /// empty. Returns immediately if nothing is pending.
    ///
    /// "Empty" means *no job queued and no job running*: the pending
    /// count a job joins at submit time and leaves only after its
    /// closure returns (or panics).
    pub fn wait_empty(&self) {
        let mut pending = self.inner.pending.lock().expect("pool mutex poisoned");
        while *pending > 0 {
            pending = self.inner.empty.wait(pending).expect("pool mutex poisoned");
        }
    }

    /// A snapshot of the pool's counters.
    pub fn stats(&self) -> PoolStats {
        let per_worker: Vec<WorkerStats> = self
            .inner
            .per_worker
            .iter()
            .map(|w| WorkerStats {
                started: w.started.load(Ordering::Relaxed),
                finished: w.finished.load(Ordering::Relaxed),
                panicked: w.panicked.load(Ordering::Relaxed),
            })
            .collect();
        PoolStats {
            workers: per_worker.len(),
            submitted: self.inner.submitted.load(Ordering::Relaxed),
            started: per_worker.iter().map(|w| w.started).sum(),
            finished: per_worker.iter().map(|w| w.finished).sum(),
            panicked: per_worker.iter().map(|w| w.panicked).sum(),
            queue_high_water: self.inner.queue_high_water.load(Ordering::Relaxed),
            queue_depth: self.inner.queue.lock().expect("pool mutex poisoned").jobs.len(),
            per_worker,
        }
    }
}

impl Drop for ThreadPool {
    /// Closes the queue and joins every worker. Queued jobs are
    /// **drained** (executed), not discarded; new submissions are
    /// rejected from this point on.
    fn drop(&mut self) {
        {
            let mut q = self.inner.queue.lock().expect("pool mutex poisoned");
            q.closed = true;
        }
        self.inner.available.notify_all();
        for handle in self.workers.drain(..) {
            // A panicking *job* is caught inside the worker; a worker
            // thread itself dying is a bug worth propagating.
            handle.join().expect("pool worker crashed outside a job");
        }
    }
}

/// The worker body: claim, run (panic-contained), count, repeat; exit
/// once the queue is closed *and* drained.
fn worker_loop(id: usize, inner: &PoolInner) {
    let counters = &inner.per_worker[id];
    loop {
        let job = {
            let mut q = inner.queue.lock().expect("pool mutex poisoned");
            loop {
                if let Some(job) = q.jobs.pop_front() {
                    break Some(job);
                }
                if q.closed {
                    break None;
                }
                q = inner.available.wait(q).expect("pool mutex poisoned");
            }
        };
        let Some(job) = job else { return };
        counters.started.fetch_add(1, Ordering::Relaxed);
        let outcome = catch_unwind(AssertUnwindSafe(job.0));
        if outcome.is_err() {
            counters.panicked.fetch_add(1, Ordering::Relaxed);
        }
        counters.finished.fetch_add(1, Ordering::Relaxed);
        inner.finish_one();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::AtomicU64;
    use std::time::Duration;

    #[test]
    fn runs_jobs_and_counts_them() {
        let pool = ThreadPool::new(4);
        let hits = Arc::new(AtomicU64::new(0));
        for _ in 0..100 {
            let hits = Arc::clone(&hits);
            pool.execute(move || {
                hits.fetch_add(1, Ordering::Relaxed);
            })
            .expect("pool accepts while alive");
        }
        pool.wait_empty();
        assert_eq!(hits.load(Ordering::Relaxed), 100);
        let stats = pool.stats();
        assert_eq!(stats.submitted, 100);
        assert_eq!(stats.finished, 100);
        assert_eq!(stats.panicked, 0);
        assert_eq!(stats.queue_depth, 0);
        assert!(stats.queue_high_water >= 1);
        assert_eq!(stats.per_worker.len(), 4);
        assert_eq!(stats.per_worker.iter().map(|w| w.finished).sum::<u64>(), 100);
    }

    #[test]
    fn drop_drains_queued_jobs() {
        let hits = Arc::new(AtomicU64::new(0));
        {
            // One worker and a slow first job force the rest to queue.
            let pool = ThreadPool::new(1);
            for _ in 0..50 {
                let hits = Arc::clone(&hits);
                pool.execute(move || {
                    std::thread::sleep(Duration::from_micros(100));
                    hits.fetch_add(1, Ordering::Relaxed);
                })
                .unwrap();
            }
            // Drop immediately: everything queued must still run.
        }
        assert_eq!(hits.load(Ordering::Relaxed), 50, "drop discarded queued jobs");
    }

    #[test]
    fn panicking_job_never_wedges_a_worker() {
        let pool = ThreadPool::new(2);
        let hits = Arc::new(AtomicU64::new(0));
        for i in 0..40 {
            let hits = Arc::clone(&hits);
            pool.execute(move || {
                if i % 4 == 0 {
                    panic!("job {i} exploded");
                }
                hits.fetch_add(1, Ordering::Relaxed);
            })
            .unwrap();
        }
        pool.wait_empty();
        let stats = pool.stats();
        assert_eq!(stats.panicked, 10);
        assert_eq!(stats.finished, 40, "panicked jobs still count as finished");
        assert_eq!(hits.load(Ordering::Relaxed), 30);
        // The pool is still fully operational afterwards.
        let hits2 = Arc::clone(&hits);
        pool.execute(move || {
            hits2.fetch_add(1, Ordering::Relaxed);
        })
        .unwrap();
        pool.wait_empty();
        assert_eq!(hits.load(Ordering::Relaxed), 31);
    }

    #[test]
    fn wait_empty_returns_only_at_depth_zero() {
        let pool = ThreadPool::new(2);
        let running = Arc::new(AtomicU64::new(0));
        for _ in 0..20 {
            let running = Arc::clone(&running);
            pool.execute(move || {
                running.fetch_add(1, Ordering::SeqCst);
                std::thread::sleep(Duration::from_millis(1));
                running.fetch_sub(1, Ordering::SeqCst);
            })
            .unwrap();
        }
        pool.wait_empty();
        assert_eq!(running.load(Ordering::SeqCst), 0, "wait_empty returned with jobs running");
        assert_eq!(pool.stats().queue_depth, 0);
        assert_eq!(pool.stats().finished, 20);
    }

    #[test]
    fn wait_empty_on_idle_pool_is_instant() {
        let pool = ThreadPool::new(3);
        pool.wait_empty(); // must not block
        assert_eq!(pool.stats().submitted, 0);
    }
}
