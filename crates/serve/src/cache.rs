//! The concurrent result cache: `get_or_insert_with` with the cs431
//! "hello server" specification — the compute closure runs **exactly
//! once per key** even under concurrent callers, and callers with
//! *distinct* keys never serialize behind one global lock — plus the
//! production extras the spec leaves out: sharding, capacity-bounded
//! LRU eviction per shard, and hit/miss/eviction counters.
//!
//! Layout: keys hash to one of N shards; each shard is a
//! `Mutex<HashMap<K, slot>>` held only for map bookkeeping, never
//! during a compute. A slot is an `Arc<Mutex<state> + Condvar>`
//! promise: the first caller inserts it in the `Computing` state and
//! runs the closure *outside* every lock; latecomers for the same key
//! block on the slot's condvar; callers for other keys touch other
//! slots (and usually other shards) and proceed in parallel.

use crate::fault::{FaultPlan, FaultPoint};
use std::collections::hash_map::DefaultHasher;
use std::collections::HashMap;
use std::hash::{Hash, Hasher};
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Condvar, Mutex};

/// A filled-exactly-once promise for a computed value.
struct Slot<V> {
    state: Mutex<SlotState<V>>,
    ready: Condvar,
}

enum SlotState<V> {
    /// The inserting caller is still running the closure.
    Computing,
    /// The value is available.
    Ready(V),
    /// The closure panicked; waiters must not hang forever.
    Poisoned,
}

struct ShardEntry<V> {
    slot: Arc<Slot<V>>,
    /// Logical timestamp of the last hit — the LRU eviction key.
    last_used: u64,
}

struct Shard<K, V> {
    map: Mutex<ShardMap<K, V>>,
}

struct ShardMap<K, V> {
    entries: HashMap<K, ShardEntry<V>>,
    /// Monotonic per-shard access clock driving `last_used`.
    clock: u64,
}

/// A point-in-time snapshot of the cache counters.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CacheStats {
    /// Lookups that found an entry (ready or still computing).
    pub hits: u64,
    /// Lookups that had to start a compute.
    pub misses: u64,
    /// Entries removed by the per-shard LRU capacity bound.
    pub evictions: u64,
    /// Entries currently resident across all shards.
    pub entries: usize,
}

/// Sharded compute-once cache with per-shard LRU capacity bounds.
///
/// Guarantees (the cs431 `hello_server::cache` spec, plus eviction):
///
/// * **exactly-once while resident**: concurrent
///   [`Cache::get_or_insert_with`] calls for the same key run the
///   closure once; everyone gets a clone of that one result. (After an
///   eviction the key is no longer resident, so a later lookup
///   recomputes — "exactly once per *cached* key", which is the only
///   guarantee a bounded cache can make.)
/// * **no cross-key blocking**: a slow compute for key A never delays
///   a compute for key B; shard mutexes guard map bookkeeping only.
/// * **panic containment**: a panicking closure poisons only its own
///   slot — waiters for that key panic with a clear message instead of
///   hanging, the entry is removed so the key can be retried, and every
///   other key is untouched.
pub struct Cache<K, V> {
    shards: Vec<Shard<K, V>>,
    capacity_per_shard: usize,
    hits: AtomicU64,
    misses: AtomicU64,
    evictions: AtomicU64,
    /// Optional seeded fault injection (test tooling): a stall at
    /// [`FaultPoint::CacheLockHold`] is executed while a shard's map
    /// lock is held, and [`FaultPoint::CacheEvictDuringCompute`]
    /// triggers a forced eviction sweep while the firing owner's entry
    /// is still `Computing`.
    fault_plan: Option<FaultPlan>,
}

impl<K, V> std::fmt::Debug for Cache<K, V> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Cache")
            .field("shards", &self.shards.len())
            .field("capacity_per_shard", &self.capacity_per_shard)
            .finish()
    }
}

impl<K: Eq + Hash + Clone, V: Clone> Cache<K, V> {
    /// A cache with `shards` independent shards, each holding at most
    /// `capacity_per_shard` entries before LRU eviction kicks in.
    ///
    /// # Panics
    /// If `shards == 0` or `capacity_per_shard == 0`.
    pub fn new(shards: usize, capacity_per_shard: usize) -> Cache<K, V> {
        Cache::with_fault_plan(shards, capacity_per_shard, None)
    }

    /// Like [`Cache::new`], plus a seeded [`FaultPlan`] consulted at
    /// the cache-layer fault points:
    ///
    /// * [`FaultPoint::CacheLockHold`] fires during phase-1 bookkeeping
    ///   **while the shard's map lock is held** — a stall there makes
    ///   every other caller hashing to the shard pile up behind the
    ///   lock (attach only stalls; a panic would poison the shard).
    /// * [`FaultPoint::CacheEvictDuringCompute`] fires in a compute
    ///   owner just before it publishes its value; when the plan is
    ///   present the cache then runs a **forced eviction sweep** at
    ///   that exact moment, while the owner's own entry is still
    ///   `Computing` — the adversarial schedule that proves in-flight
    ///   entries are never evicted out from under their waiters.
    ///
    /// # Panics
    /// If `shards == 0` or `capacity_per_shard == 0`.
    pub fn with_fault_plan(
        shards: usize,
        capacity_per_shard: usize,
        fault_plan: Option<FaultPlan>,
    ) -> Cache<K, V> {
        assert!(shards > 0, "cache needs at least one shard");
        assert!(capacity_per_shard > 0, "cache shards need capacity >= 1");
        Cache {
            shards: (0..shards)
                .map(|_| Shard {
                    map: Mutex::new(ShardMap {
                        entries: HashMap::new(),
                        clock: 0,
                    }),
                })
                .collect(),
            capacity_per_shard,
            hits: AtomicU64::new(0),
            misses: AtomicU64::new(0),
            evictions: AtomicU64::new(0),
            fault_plan,
        }
    }

    fn shard_for(&self, key: &K) -> &Shard<K, V> {
        let mut h = DefaultHasher::new();
        key.hash(&mut h);
        &self.shards[(h.finish() as usize) % self.shards.len()]
    }

    /// Returns the cached value for `key`, or runs `compute` to fill
    /// it. See the type docs for the concurrency guarantees.
    ///
    /// # Panics
    /// If `compute` panics (the panic is re-propagated to the computing
    /// caller; concurrent waiters for the same key panic with a
    /// poisoned-slot message).
    pub fn get_or_insert_with<F: FnOnce(K) -> V>(&self, key: K, compute: F) -> V {
        let shard = self.shard_for(&key);
        // Phase 1 — bookkeeping under the shard lock: find or insert
        // the slot. No compute happens while this lock is held.
        let (slot, owner) = {
            let mut map = shard.map.lock().expect("cache shard poisoned");
            if let Some(plan) = &self.fault_plan {
                // Deliberately inside the critical section: a stall
                // here holds this shard's lock (the shard-lock-hold
                // injection point).
                plan.fire(FaultPoint::CacheLockHold);
            }
            map.clock += 1;
            let now = map.clock;
            match map.entries.get_mut(&key) {
                Some(entry) => {
                    entry.last_used = now;
                    self.hits.fetch_add(1, Ordering::Relaxed);
                    (Arc::clone(&entry.slot), false)
                }
                None => {
                    let slot = Arc::new(Slot {
                        state: Mutex::new(SlotState::Computing),
                        ready: Condvar::new(),
                    });
                    map.entries.insert(
                        key.clone(),
                        ShardEntry {
                            slot: Arc::clone(&slot),
                            last_used: now,
                        },
                    );
                    self.misses.fetch_add(1, Ordering::Relaxed);
                    (slot, true)
                }
            }
        };

        if owner {
            // Phase 2 (owner) — run the closure outside every lock so
            // other keys (and other shards) proceed concurrently.
            let key_for_cleanup = key.clone();
            match catch_unwind(AssertUnwindSafe(move || compute(key))) {
                Ok(value) => {
                    if let Some(plan) = &self.fault_plan {
                        // The evict-during-compute schedule: our own
                        // entry is still `Computing` here; a forced
                        // sweep now must leave it resident (eviction
                        // only removes `Ready` entries) or waiters on
                        // our slot would recompute or hang.
                        plan.fire(FaultPoint::CacheEvictDuringCompute);
                        self.evict_if_over_capacity(shard);
                    }
                    {
                        let mut st = slot.state.lock().expect("cache slot poisoned");
                        *st = SlotState::Ready(value.clone());
                    }
                    if let Some(plan) = &self.fault_plan {
                        // Between publish and wakeup: a stall here
                        // delays every waiter parked on this key. (Drop
                        // schedules are honored by the `Promise`
                        // implementation, whose waiters use timed
                        // re-checks; this impl's condvar waiters would
                        // hang, so only the stall/panic schedule is
                        // consulted.)
                        plan.fire(FaultPoint::CachePromiseWake);
                    }
                    slot.ready.notify_all();
                    self.evict_if_over_capacity(shard);
                    value
                }
                Err(panic) => {
                    {
                        let mut st = slot.state.lock().expect("cache slot poisoned");
                        *st = SlotState::Poisoned;
                    }
                    slot.ready.notify_all();
                    // Remove the entry so the key can be retried by a
                    // later, independent call.
                    let mut map = shard.map.lock().expect("cache shard poisoned");
                    map.entries.remove(&key_for_cleanup);
                    drop(map);
                    std::panic::resume_unwind(panic);
                }
            }
        } else {
            // Phase 2 (waiter) — block on this key's slot only.
            let mut st = slot.state.lock().expect("cache slot poisoned");
            loop {
                match &*st {
                    SlotState::Ready(v) => return v.clone(),
                    SlotState::Poisoned => {
                        panic!("cache compute for this key panicked in another thread")
                    }
                    SlotState::Computing => {
                        st = slot.ready.wait(st).expect("cache slot poisoned");
                    }
                }
            }
        }
    }

    /// Read-only probe: returns the cached value for `key`, or `None`
    /// without inserting anything on a miss. Hit or miss, the probe
    /// takes the shard's map lock — the structural contrast E19 draws
    /// against the promise cache's lock-free [`rcache::Cache::get`]. A
    /// hit bumps recency and, if the owner is still computing, waits on
    /// the slot like any other waiter.
    ///
    /// # Panics
    /// If the owner computing this key panicked.
    pub fn get(&self, key: &K) -> Option<V> {
        let shard = self.shard_for(key);
        let slot = {
            let mut map = shard.map.lock().expect("cache shard poisoned");
            map.clock += 1;
            let now = map.clock;
            match map.entries.get_mut(key) {
                Some(entry) => {
                    entry.last_used = now;
                    self.hits.fetch_add(1, Ordering::Relaxed);
                    Arc::clone(&entry.slot)
                }
                None => {
                    self.misses.fetch_add(1, Ordering::Relaxed);
                    return None;
                }
            }
        };
        let mut st = slot.state.lock().expect("cache slot poisoned");
        loop {
            match &*st {
                SlotState::Ready(v) => return Some(v.clone()),
                SlotState::Poisoned => {
                    panic!("cache compute for this key panicked in another thread")
                }
                SlotState::Computing => {
                    st = slot.ready.wait(st).expect("cache slot poisoned");
                }
            }
        }
    }

    /// Evicts least-recently-used *ready* entries until the shard is
    /// back within capacity. In-flight (`Computing`) entries are never
    /// evicted: their waiters hold the slot, not the map entry.
    fn evict_if_over_capacity(&self, shard: &Shard<K, V>) {
        let mut map = shard.map.lock().expect("cache shard poisoned");
        while map.entries.len() > self.capacity_per_shard {
            let victim = map
                .entries
                .iter()
                .filter(|(_, e)| {
                    matches!(
                        &*e.slot.state.lock().expect("cache slot poisoned"),
                        SlotState::Ready(_)
                    )
                })
                .min_by_key(|(_, e)| e.last_used)
                .map(|(k, _)| k.clone());
            match victim {
                Some(k) => {
                    map.entries.remove(&k);
                    self.evictions.fetch_add(1, Ordering::Relaxed);
                }
                // Everything over capacity is still computing; nothing
                // legal to evict right now. The next completion will
                // re-check.
                None => break,
            }
        }
    }

    /// Current number of resident entries across all shards.
    pub fn len(&self) -> usize {
        self.shards
            .iter()
            .map(|s| s.map.lock().expect("cache shard poisoned").entries.len())
            .sum()
    }

    /// True when no entry is resident.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// A snapshot of the hit/miss/eviction counters.
    pub fn stats(&self) -> CacheStats {
        CacheStats {
            hits: self.hits.load(Ordering::Relaxed),
            misses: self.misses.load(Ordering::Relaxed),
            evictions: self.evictions.load(Ordering::Relaxed),
            entries: self.len(),
        }
    }
}

/// Which compute-once cache implementation backs the server.
///
/// Both satisfy the same contract (exactly-once per resident key, no
/// cross-key blocking, panic containment, Computing never evicted);
/// they differ in how the *hit* path scales:
///
/// * [`ShardedMutex`](CacheImpl::ShardedMutex) — this module's
///   [`Cache`]: every hit takes its shard's mutex and splices the LRU
///   clock. The seed behavior and the measured baseline.
/// * [`Promise`](CacheImpl::Promise) — [`rcache::Cache`]: seqlock
///   validated lock-free reads over a split-ordered bucket table with
///   CLOCK second-chance eviction; a hit takes **no exclusive lock**
///   (experiment E19 asserts the structural counter). See DESIGN.md
///   §14.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum CacheImpl {
    /// Sharded `Mutex<HashMap>` + per-shard LRU (the default).
    #[default]
    ShardedMutex,
    /// `crates/rcache` promise-slot cache with a lock-free hit path.
    Promise,
}

/// The server-facing cache: one of the two [`CacheImpl`]s behind a
/// uniform `get_or_insert_with`, so `CourseServer`, the net tier, and
/// the router run on either unchanged.
pub enum ServerCache<K, V> {
    /// The sharded-mutex [`Cache`].
    ShardedMutex(Cache<K, V>),
    /// The lock-free promise cache (boxed: its pin-slot array makes
    /// the bare struct ~4 KiB, which would bloat the enum).
    Promise(Box<rcache::Cache<K, V>>),
}

impl<K, V> std::fmt::Debug for ServerCache<K, V> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ServerCache::ShardedMutex(c) => f.debug_tuple("ShardedMutex").field(c).finish(),
            ServerCache::Promise(_) => f.debug_tuple("Promise").finish(),
        }
    }
}

impl<K, V> ServerCache<K, V>
where
    K: Eq + Hash + Clone + Send + Sync,
    V: Clone + Send + Sync,
{
    /// Builds the selected implementation with equivalent sizing: the
    /// `Promise` cache gets one pool of `shards * capacity_per_shard`
    /// entries (it has no shard-local bounds), the same [`FaultPlan`]
    /// seams, and the given registry for its `rcache.*` mirrors.
    pub fn build(
        which: CacheImpl,
        shards: usize,
        capacity_per_shard: usize,
        fault_plan: Option<FaultPlan>,
        registry: &obs::Registry,
    ) -> ServerCache<K, V> {
        match which {
            CacheImpl::ShardedMutex => ServerCache::ShardedMutex(Cache::with_fault_plan(
                shards,
                capacity_per_shard,
                fault_plan,
            )),
            CacheImpl::Promise => {
                let hooks = match fault_plan {
                    None => rcache::Hooks::default(),
                    Some(plan) => {
                        let for_publish = plan.clone();
                        let for_wake = plan;
                        rcache::Hooks {
                            before_publish: Some(Arc::new(move || {
                                for_publish.fire(FaultPoint::CacheEvictDuringCompute);
                            })),
                            before_wake: Some(Arc::new(move || {
                                for_wake.fire(FaultPoint::CachePromiseWake);
                                if for_wake.should_drop(FaultPoint::CachePromiseWake) {
                                    rcache::WakeFate::Drop
                                } else {
                                    rcache::WakeFate::Deliver
                                }
                            })),
                        }
                    }
                };
                ServerCache::Promise(Box::new(rcache::Cache::with_config(rcache::Config {
                    capacity: shards.max(1) * capacity_per_shard.max(1),
                    initial_buckets: shards.max(8),
                    registry: registry.clone(),
                    hooks,
                })))
            }
        }
    }

    /// Dispatches to the selected implementation's
    /// `get_or_insert_with`. The promise cache hands back `Arc<V>`;
    /// this surface clones out of it so both impls return `V` to the
    /// server.
    pub fn get_or_insert_with<F: FnOnce(K) -> V>(&self, key: K, compute: F) -> V {
        match self {
            ServerCache::ShardedMutex(c) => c.get_or_insert_with(key, compute),
            ServerCache::Promise(c) => (*c.get_or_insert_with(key, |k| compute(k.clone()))).clone(),
        }
    }

    /// Counter snapshot in the common [`CacheStats`] shape. For the
    /// promise cache, CLOCK sweep removals map to `evictions` and
    /// occupancy to `entries`; its extra counters (waits, retries,
    /// locked hits) are on [`ServerCache::promise_stats`] and the
    /// `rcache.*` obs mirrors.
    pub fn stats(&self) -> CacheStats {
        match self {
            ServerCache::ShardedMutex(c) => c.stats(),
            ServerCache::Promise(c) => {
                let s = c.stats();
                CacheStats {
                    hits: s.hits,
                    misses: s.misses,
                    evictions: s.evictions,
                    entries: s.occupancy,
                }
            }
        }
    }

    /// The promise implementation's full counter set (including
    /// `locked_hits`, the hit path's exclusive-lock counter), or `None`
    /// on [`CacheImpl::ShardedMutex`].
    pub fn promise_stats(&self) -> Option<rcache::Stats> {
        match self {
            ServerCache::ShardedMutex(_) => None,
            ServerCache::Promise(c) => Some(c.stats()),
        }
    }

    /// Resident entries.
    pub fn len(&self) -> usize {
        match self {
            ServerCache::ShardedMutex(c) => c.len(),
            ServerCache::Promise(c) => c.len(),
        }
    }

    /// True when no entry is resident.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::AtomicU64;
    use std::thread;
    use std::time::Duration;

    #[test]
    fn caches_and_counts() {
        let cache: Cache<u32, String> = Cache::new(4, 8);
        let computes = AtomicU64::new(0);
        for _ in 0..3 {
            let v = cache.get_or_insert_with(7, |k| {
                computes.fetch_add(1, Ordering::SeqCst);
                format!("value-{k}")
            });
            assert_eq!(v, "value-7");
        }
        assert_eq!(computes.load(Ordering::SeqCst), 1);
        let stats = cache.stats();
        assert_eq!(stats.misses, 1);
        assert_eq!(stats.hits, 2);
        assert_eq!(stats.entries, 1);
    }

    #[test]
    fn probe_reads_without_inserting() {
        let cache: Cache<u32, u64> = Cache::new(2, 4);
        assert!(cache.get(&5).is_none());
        assert_eq!(cache.len(), 0, "a probe miss must not insert");
        assert_eq!(cache.get_or_insert_with(5, |k| u64::from(k) * 7), 35);
        assert_eq!(cache.get(&5), Some(35));
        let stats = cache.stats();
        assert_eq!(stats.hits, 1);
        assert_eq!(stats.misses, 2);
        assert_eq!(stats.entries, 1);
    }

    #[test]
    fn closure_runs_exactly_once_per_key_under_contention() {
        let cache: Arc<Cache<u32, u64>> = Arc::new(Cache::new(8, 64));
        let computes = Arc::new(AtomicU64::new(0));
        thread::scope(|s| {
            for t in 0..12 {
                let cache = Arc::clone(&cache);
                let computes = Arc::clone(&computes);
                s.spawn(move || {
                    for round in 0..50 {
                        let key = (round + t) % 10;
                        let v = cache.get_or_insert_with(key, |k| {
                            computes.fetch_add(1, Ordering::SeqCst);
                            // Widen the race window.
                            thread::sleep(Duration::from_micros(200));
                            u64::from(k) * 3
                        });
                        assert_eq!(v, u64::from(key) * 3);
                    }
                });
            }
        });
        assert_eq!(
            computes.load(Ordering::SeqCst),
            10,
            "closure reran for a cached key"
        );
    }

    #[test]
    fn distinct_keys_compute_concurrently() {
        // Two uncached keys, two threads: if the cache held a global
        // lock during compute, the pair would need >= 2 * T; overlap
        // keeps it well under. We assert logical overlap (both closures
        // in flight at once), not wall-clock, to stay robust on slow CI.
        let cache: Cache<u8, u8> = Cache::new(4, 8);
        let in_flight = AtomicU64::new(0);
        let overlapped = AtomicU64::new(0);
        thread::scope(|s| {
            for key in [1u8, 2u8] {
                let cache = &cache;
                let in_flight = &in_flight;
                let overlapped = &overlapped;
                s.spawn(move || {
                    cache.get_or_insert_with(key, |k| {
                        in_flight.fetch_add(1, Ordering::SeqCst);
                        // Give the other closure time to enter.
                        for _ in 0..200 {
                            if in_flight.load(Ordering::SeqCst) == 2 {
                                overlapped.store(1, Ordering::SeqCst);
                                break;
                            }
                            thread::sleep(Duration::from_micros(100));
                        }
                        in_flight.fetch_sub(1, Ordering::SeqCst);
                        k
                    });
                });
            }
        });
        assert_eq!(
            overlapped.load(Ordering::SeqCst),
            1,
            "computes for distinct keys serialized"
        );
    }

    #[test]
    fn lru_eviction_respects_capacity_and_recency() {
        let cache: Cache<u32, u32> = Cache::new(1, 3);
        for k in 0..3 {
            cache.get_or_insert_with(k, |k| k);
        }
        // Touch key 0 so key 1 is now the least recently used.
        cache.get_or_insert_with(0, |_| unreachable!("0 is cached"));
        cache.get_or_insert_with(3, |k| k);
        assert_eq!(cache.len(), 3);
        assert_eq!(cache.stats().evictions, 1);
        let computes = AtomicU64::new(0);
        cache.get_or_insert_with(1, |k| {
            computes.fetch_add(1, Ordering::SeqCst);
            k
        });
        assert_eq!(
            computes.load(Ordering::SeqCst),
            1,
            "evicted key should recompute"
        );
    }

    #[test]
    fn panicking_compute_poisons_only_its_key() {
        let cache: Arc<Cache<u32, u32>> = Arc::new(Cache::new(2, 8));
        let c2 = Arc::clone(&cache);
        let boom = thread::spawn(move || c2.get_or_insert_with(9, |_| panic!("bad compute")));
        assert!(
            boom.join().is_err(),
            "panic must propagate to the computing caller"
        );
        // The key is retryable and other keys are unaffected.
        assert_eq!(cache.get_or_insert_with(9, |_| 42), 42);
        assert_eq!(cache.get_or_insert_with(10, |k| k), 10);
    }
}
