//! A lock-free Chase–Lev work-stealing deque — the repo's first
//! deliberate `unsafe`, and the replacement for the `Mutex<VecDeque>`
//! per-worker queues under [`crate::pool::Scheduler::LockFree`].
//!
//! One thread (the **owner**, holding the [`Worker`] handle) pushes and
//! pops at the *bottom* of a growable circular buffer, LIFO, with no
//! lock and no CAS on the fast path. Any number of **thieves** (each
//! holding its own [`Stealer`] handle) take from the *top*, FIFO,
//! with a single CAS per steal. The only moment owner and thieves can
//! contend for the same element is when exactly one element remains;
//! that race is decided by a CAS on `top`, guarded by the canonical
//! `SeqCst` fence (Chase & Lev 2005; orderings after Lê, Pop, Cohen &
//! Nardelli, PPoPP 2013).
//!
//! ## Layout and the index protocol
//!
//! `top` and `bottom` are monotonically increasing `i64` positions
//! (never wrapped, so CASes on `top` are ABA-free); a position maps to
//! a slot by masking with the (power-of-two) buffer capacity. The
//! deque's elements live at positions `top..bottom`:
//!
//! * **push** (owner): write the element at `bottom`, then publish
//!   with a `Release` store of `bottom + 1` — a thief that observes
//!   the new `bottom` via its `Acquire` load also observes the
//!   element's bits.
//! * **pop** (owner): decrement `bottom` first, then `SeqCst`-fence,
//!   then read `top`. The fence forces the decrement and the thief's
//!   CAS into one total order: either the thief's CAS sees the old
//!   `bottom` and the owner sees the advanced `top` (thief wins), or
//!   the owner's decrement is ordered first and the thief's
//!   re-validation fails. When `top == bottom` (last element) the
//!   owner must itself CAS `top` forward — winning the race against
//!   any thief — before it may keep the element.
//! * **steal** (thief): read `top`, `SeqCst`-fence, read `bottom`;
//!   if non-empty, copy the element at `top` out and CAS
//!   `top → top + 1`. The copy happens *before* the CAS, so the bits
//!   read may be stale or torn if another thief (or the owner's
//!   last-element pop) got there first — but then the CAS fails and
//!   the copy is discarded without ever being treated as a `T`.
//!
//! Slot reads and writes are **per-word relaxed atomics** (the C11
//! formulation), not plain memory accesses: a stalled thief may read a
//! slot the owner is concurrently overwriting after the positions
//! wrapped the buffer. The torn value is discarded when the CAS fails;
//! making the accesses atomic makes the race well-defined (and keeps
//! ThreadSanitizer quiet, which `scripts/tsan.sh` relies on).
//!
//! ## Growth and epoch-based buffer retirement
//!
//! When the buffer fills, the owner allocates one twice as large,
//! copies positions `top..bottom`, and publishes it with a `SeqCst`
//! store. The old buffer cannot be freed yet: a thief that loaded the
//! old pointer may still be mid-copy. Retirement is an epoch /
//! quiescence scheme (the discipline of the cs431/cs492 lock-free
//! exemplars):
//!
//! * every [`Stealer`] owns a **pin slot**; a steal pins by storing
//!   the deque's current epoch into its slot (re-validating that the
//!   epoch did not move — see [`Stealer::pin`]), and unpins by
//!   storing [`IDLE`] when done;
//! * the owner retires an old buffer tagged with the current epoch and
//!   *then* advances the epoch (both `SeqCst`);
//! * a retired buffer tagged `t` is freed only once every pin slot is
//!   `IDLE` or holds an epoch `> t`.
//!
//! Why that is safe: a thief pinned at epoch `e` loads the buffer
//! pointer only *after* its pin is validated. If `e > t`, the
//! validation load observed the epoch advance, which (in the `SeqCst`
//! total order) happens after the new buffer was published — so the
//! thief's pointer load can only see the new buffer, never buffer `t`.
//! If `e <= t`, the owner's scan sees `e` in the slot and keeps buffer
//! `t` alive. The scan-misses-the-pin race is closed by the
//! validation loop: a pin stored after the owner's scan re-reads the
//! epoch, finds it advanced past `e`, and re-pins at the new epoch —
//! again unable to reach buffer `t`. The full argument is written out
//! in DESIGN.md §12.
//!
//! Handles, not discipline, enforce the roles: [`Worker`] is `Send`
//! but not `Sync` and not `Clone` (exactly one owner thread at a
//! time), and each [`Stealer`] is `Send` but not `Sync` (one pin slot
//! per stealing thread; `Clone` mints a fresh slot). The public API is
//! entirely safe — all `unsafe` is private to this module, each block
//! annotated with the invariant it relies on.

#![allow(unsafe_code)]

use std::cell::Cell;
use std::marker::PhantomData;
use std::mem::{self, MaybeUninit};
use std::sync::atomic::{fence, AtomicI64, AtomicPtr, AtomicU64, AtomicUsize, Ordering};
use std::sync::{Arc, Mutex};

/// The pin-slot value meaning "this stealer is not reading any
/// buffer": never a valid epoch (epochs count up from 0).
const IDLE: u64 = u64::MAX;

/// Slots each element occupies, in machine words; elements are copied
/// word-by-word with relaxed atomics. Bounded so the staging area on
/// the stack stays small — raise it if a job type ever outgrows it
/// (checked at construction, not per operation).
const MAX_WORDS: usize = 8;

/// Default initial capacity (slots) of a fresh deque.
const MIN_CAP: usize = 64;

const WORD: usize = mem::size_of::<usize>();

/// Words needed to hold one `T`.
fn words_per<T>() -> usize {
    mem::size_of::<T>().div_ceil(WORD)
}

/// The outcome of a steal attempt.
#[derive(Debug)]
pub enum Steal<T> {
    /// The deque had nothing to take when the thief looked.
    Empty,
    /// Another thread won the race for the observed element; the
    /// deque may still be non-empty — retrying immediately is fair.
    Retry,
    /// The thief now owns this element.
    Success(T),
}

/// The growable circular buffer: `cap * words_per` relaxed-atomic
/// words. Untyped on purpose — element ownership is tracked by the
/// `top`/`bottom` protocol, never by the buffer, so freeing a buffer
/// never drops elements (they either moved to a newer buffer on
/// growth or were claimed through a CAS).
struct Buffer {
    /// Power of two, so position → slot is a mask.
    cap: usize,
    words_per: usize,
    words: Box<[AtomicUsize]>,
}

impl Buffer {
    fn alloc(cap: usize, words_per: usize) -> *mut Buffer {
        debug_assert!(cap.is_power_of_two());
        Box::into_raw(Box::new(Buffer {
            cap,
            words_per,
            words: (0..cap * words_per).map(|_| AtomicUsize::new(0)).collect(),
        }))
    }

    /// First word of the slot for position `index` (`index >= 0`).
    fn slot(&self, index: i64) -> usize {
        (index as usize & (self.cap - 1)) * self.words_per
    }

    /// Moves `value` into the slot for `index`. Owner-only (the owner
    /// is the sole writer of element bits in the *current* buffer).
    /// Ownership of `value` transfers to the slot: no drop here, and
    /// the bits are dropped exactly once by whoever wins the element.
    fn write<T>(&self, index: i64, value: T) {
        let mut staged = [0usize; MAX_WORDS];
        // SAFETY: `staged` is word-aligned and at least
        // `size_of::<T>()` bytes (words_per::<T>() <= MAX_WORDS is
        // asserted at deque construction, and align_of::<T>() <= WORD).
        // `value` is moved in and deliberately not dropped — the slot
        // now owns the bits.
        unsafe { std::ptr::write(staged.as_mut_ptr().cast::<T>(), value) };
        let base = self.slot(index);
        for (w, word) in staged.iter().enumerate().take(self.words_per) {
            self.words[base + w].store(*word, Ordering::Relaxed);
        }
    }

    /// Copies the bits at `index` out. The result is only a valid `T`
    /// if the caller subsequently *wins* the element (its CAS on `top`
    /// succeeds, or it is the owner acting under the pop protocol) —
    /// until then the bits may be stale or torn and must be discarded
    /// without `assume_init`.
    fn read<T>(&self, index: i64) -> MaybeUninit<T> {
        let mut staged = [0usize; MAX_WORDS];
        let base = self.slot(index);
        for (w, word) in staged.iter_mut().enumerate().take(self.words_per) {
            *word = self.words[base + w].load(Ordering::Relaxed);
        }
        // SAFETY: `staged` is word-aligned, large enough for `T`, and
        // the destination is `MaybeUninit<T>` — reinterpreting
        // possibly-torn bits as *maybe-uninitialized* is always sound;
        // soundness of a later `assume_init` is the caller's proof
        // obligation (CAS victory).
        unsafe { std::ptr::read(staged.as_ptr().cast::<MaybeUninit<T>>()) }
    }

    /// Copies the raw words of position `index` from `src` (growth
    /// path: the owner relocating live elements into a new buffer).
    fn copy_from(&self, src: &Buffer, index: i64) {
        let from = src.slot(index);
        let to = self.slot(index);
        for w in 0..self.words_per {
            self.words[to + w].store(
                src.words[from + w].load(Ordering::Relaxed),
                Ordering::Relaxed,
            );
        }
    }
}

/// State shared by the owner and every thief.
struct Inner<T> {
    /// Next position a thief takes (monotonic; CAS-advanced).
    top: AtomicI64,
    /// Next position the owner writes (moved only by the owner).
    bottom: AtomicI64,
    /// The current buffer. Superseded buffers move to `retired`.
    buffer: AtomicPtr<Buffer>,
    /// Retirement epoch: advanced (`SeqCst`) each time a buffer is
    /// retired. Thieves pin the epoch they observe before touching
    /// `buffer`.
    epoch: AtomicU64,
    /// One pin slot per live [`Stealer`]. Locked only when stealers
    /// are minted/dropped and when the owner scans during reclamation
    /// — never on any push/pop/steal fast path.
    pins: Mutex<Vec<Arc<AtomicU64>>>,
    /// Superseded buffers awaiting quiescence, tagged with the epoch
    /// at which they were retired. Owner-only (guarded by the lock for
    /// `Drop`'s benefit; uncontended in steady state).
    retired: Mutex<Vec<(u64, *mut Buffer)>>,
    _marker: PhantomData<T>,
}

// SAFETY: elements (`T`) cross threads exactly once each (push by the
// owner, claim by owner-pop or a CAS-winning thief), so `T: Send`
// suffices; the shared control state is all atomics and mutexes.
unsafe impl<T: Send> Send for Inner<T> {}
// SAFETY: as above — all concurrent access to `Inner`'s fields goes
// through atomics or mutexes; raw buffer pointers are dereferenced
// only under the pin/epoch protocol documented at module level.
unsafe impl<T: Send> Sync for Inner<T> {}

impl<T> Inner<T> {
    /// Frees retired buffers no pinned thief can still reference: a
    /// buffer tagged `t` is reachable only by a thief whose pin slot
    /// holds an epoch `<= t` (see the module-level argument).
    fn reclaim(&self) {
        let min_pinned = {
            let pins = self.pins.lock().expect("deque pin registry poisoned");
            pins.iter()
                .map(|p| p.load(Ordering::SeqCst))
                .min()
                .unwrap_or(IDLE)
        };
        let mut retired = self.retired.lock().expect("deque retired list poisoned");
        retired.retain(|&(tag, ptr)| {
            if tag < min_pinned {
                // SAFETY: `ptr` came from `Buffer::alloc` (Box) and is
                // reachable by no thief: every pin slot is IDLE or
                // holds an epoch > tag, and the quiescence argument
                // shows such a thief can only load the newer buffer.
                // The owner itself reloads `buffer` before every
                // access, so it holds no stale reference either.
                drop(unsafe { Box::from_raw(ptr) });
                false
            } else {
                true
            }
        });
    }
}

impl<T> Drop for Inner<T> {
    fn drop(&mut self) {
        // Exclusive access: no owner, no thieves. Drop the elements
        // still queued, then free the current and retired buffers.
        let t = self.top.load(Ordering::Relaxed);
        let b = self.bottom.load(Ordering::Relaxed);
        let buf_ptr = self.buffer.load(Ordering::Relaxed);
        // SAFETY: `buf_ptr` is the current buffer, valid until freed
        // below; positions `t..b` hold initialized elements nobody
        // else can claim anymore (no handles remain).
        let buf = unsafe { &*buf_ptr };
        for i in t..b {
            // SAFETY: position `i` is within `top..bottom`, so the
            // slot holds a live `T` this drop now uniquely owns.
            drop(unsafe { buf.read::<T>(i).assume_init() });
        }
        // SAFETY: allocated by `Buffer::alloc`; no references remain.
        drop(unsafe { Box::from_raw(buf_ptr) });
        let retired = mem::take(&mut *self.retired.lock().expect("deque retired list poisoned"));
        for (_, ptr) in retired {
            // SAFETY: retired buffers hold no owned elements (their
            // live range was copied forward on growth); allocated by
            // `Buffer::alloc`; no thief remains to reference them.
            drop(unsafe { Box::from_raw(ptr) });
        }
    }
}

/// The owner-side handle: LIFO `push`/`pop` with no lock and no CAS on
/// the fast path. `Send` but deliberately neither `Sync` nor `Clone` —
/// the Chase–Lev protocol admits exactly one owner thread at a time.
pub struct Worker<T> {
    inner: Arc<Inner<T>>,
    /// `Cell` makes this `!Sync` without a negative impl.
    _not_sync: PhantomData<Cell<()>>,
}

/// A thief-side handle: FIFO `steal` by CAS. `Send` but not `Sync`
/// (the pin slot is single-thread); `Clone` mints a fresh pin slot, so
/// every stealing thread clones its own handle.
pub struct Stealer<T> {
    inner: Arc<Inner<T>>,
    pin: Arc<AtomicU64>,
    _not_sync: PhantomData<Cell<()>>,
}

/// Creates an owner/thief handle pair with the default capacity.
pub fn deque<T: Send>() -> (Worker<T>, Stealer<T>) {
    deque_with_capacity(MIN_CAP)
}

/// Creates a deque with an explicit initial capacity (rounded up to a
/// power of two, minimum 2) — small capacities force the growth path,
/// which is what the stress tests hammer.
///
/// # Panics
/// If `T` is larger than [`MAX_WORDS`] machine words or more aligned
/// than a word.
pub fn deque_with_capacity<T: Send>(cap: usize) -> (Worker<T>, Stealer<T>) {
    assert!(
        words_per::<T>() <= MAX_WORDS,
        "element type too large for the deque's staging area"
    );
    assert!(
        mem::align_of::<T>() <= WORD,
        "element type over-aligned for word-wise slot copies"
    );
    let cap = cap.max(2).next_power_of_two();
    let inner = Arc::new(Inner {
        top: AtomicI64::new(0),
        bottom: AtomicI64::new(0),
        buffer: AtomicPtr::new(Buffer::alloc(cap, words_per::<T>())),
        epoch: AtomicU64::new(0),
        pins: Mutex::new(Vec::new()),
        retired: Mutex::new(Vec::new()),
        _marker: PhantomData,
    });
    let worker = Worker {
        inner: Arc::clone(&inner),
        _not_sync: PhantomData,
    };
    let stealer = Stealer::register(inner);
    (worker, stealer)
}

impl<T: Send> Worker<T> {
    /// Pushes at the bottom (LIFO end). Lock-free: the only write
    /// shared with thieves is the `Release` publication of `bottom`.
    pub fn push(&self, value: T) {
        let b = self.inner.bottom.load(Ordering::Relaxed);
        let t = self.inner.top.load(Ordering::Acquire);
        let mut buf_ptr = self.inner.buffer.load(Ordering::Relaxed);
        // SAFETY: the current buffer is freed only by the owner (this
        // thread) during reclamation, which it is not doing now.
        if b - t >= unsafe { &*buf_ptr }.cap as i64 {
            self.grow(t, b);
            buf_ptr = self.inner.buffer.load(Ordering::Relaxed);
        }
        // SAFETY: current buffer, valid as above; position `b` is
        // outside `top..bottom`, so no thief reads it as an element
        // until the `Release` store of `bottom` publishes it.
        unsafe { &*buf_ptr }.write(b, value);
        self.inner.bottom.store(b + 1, Ordering::Release);
    }

    /// Pops from the bottom (the newest element). Lock-free; a CAS is
    /// needed only for the very last element, where owner and thieves
    /// can race.
    pub fn pop(&self) -> Option<T> {
        let b = self.inner.bottom.load(Ordering::Relaxed) - 1;
        let buf_ptr = self.inner.buffer.load(Ordering::Relaxed);
        self.inner.bottom.store(b, Ordering::Relaxed);
        // The canonical Chase–Lev fence: orders the `bottom` decrement
        // against every thief's top/bottom reads, so owner and thief
        // cannot both conclude they own the last element.
        fence(Ordering::SeqCst);
        let t = self.inner.top.load(Ordering::Relaxed);
        if t <= b {
            // SAFETY: current buffer (owner never holds a stale
            // pointer across its own reclamation; none ran since the
            // load above — both happen on this thread).
            let v = unsafe { &*buf_ptr }.read::<T>(b);
            if t == b {
                // Last element: win it with the same CAS thieves use.
                if self
                    .inner
                    .top
                    .compare_exchange(t, t + 1, Ordering::SeqCst, Ordering::Relaxed)
                    .is_err()
                {
                    // A thief won; the bits we copied are theirs.
                    // `v` stays MaybeUninit — never dropped here.
                    self.inner.bottom.store(b + 1, Ordering::Relaxed);
                    return None;
                }
                self.inner.bottom.store(b + 1, Ordering::Relaxed);
            }
            // SAFETY: either `t < b` (the element was strictly inside
            // the deque — thieves can reach at most `top`, which the
            // fence proves was still `< b` after our decrement) or the
            // CAS above succeeded, which is exactly the proof we won
            // the last element.
            Some(unsafe { v.assume_init() })
        } else {
            // Empty: restore bottom.
            self.inner.bottom.store(b + 1, Ordering::Relaxed);
            None
        }
    }

    /// Elements currently in the deque, as seen by the owner (exact
    /// between owner operations; racing steals may make it stale by
    /// the time the caller looks).
    pub fn len(&self) -> usize {
        let b = self.inner.bottom.load(Ordering::Relaxed);
        let t = self.inner.top.load(Ordering::Relaxed);
        (b - t).max(0) as usize
    }

    /// Whether [`Worker::len`] is zero.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Mints a new thief handle (with its own pin slot).
    pub fn stealer(&self) -> Stealer<T> {
        Stealer::register(Arc::clone(&self.inner))
    }

    /// Doubles the buffer, copying live positions, and retires the old
    /// buffer under the epoch scheme.
    fn grow(&self, t: i64, b: i64) {
        let old_ptr = self.inner.buffer.load(Ordering::Relaxed);
        // SAFETY: current buffer, valid until retired below.
        let old = unsafe { &*old_ptr };
        let new_ptr = Buffer::alloc(old.cap * 2, old.words_per);
        // SAFETY: freshly allocated, not yet shared.
        let new = unsafe { &*new_ptr };
        for i in t..b {
            new.copy_from(old, i);
        }
        // Publish the new buffer, then advance the epoch, both SeqCst:
        // a thief whose pin validates against the advanced epoch is
        // guaranteed (in the SeqCst total order) to load the new
        // pointer, which is what lets the old buffer eventually be
        // freed.
        self.inner.buffer.store(new_ptr, Ordering::SeqCst);
        let tag = self.inner.epoch.fetch_add(1, Ordering::SeqCst);
        self.inner
            .retired
            .lock()
            .expect("deque retired list poisoned")
            .push((tag, old_ptr));
        self.inner.reclaim();
    }
}

impl<T> std::fmt::Debug for Worker<T> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("deque::Worker").finish_non_exhaustive()
    }
}

impl<T> std::fmt::Debug for Stealer<T> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("deque::Stealer").finish_non_exhaustive()
    }
}

/// Unpins the stealer's slot when a steal attempt finishes.
struct PinGuard<'a>(&'a AtomicU64);

impl Drop for PinGuard<'_> {
    fn drop(&mut self) {
        self.0.store(IDLE, Ordering::Release);
    }
}

impl<T: Send> Stealer<T> {
    fn register(inner: Arc<Inner<T>>) -> Stealer<T> {
        let pin = Arc::new(AtomicU64::new(IDLE));
        inner
            .pins
            .lock()
            .expect("deque pin registry poisoned")
            .push(Arc::clone(&pin));
        Stealer {
            inner,
            pin,
            _not_sync: PhantomData,
        }
    }

    /// Publishes "I may dereference the buffer pointer" before the
    /// load, with the validation loop that closes the race against a
    /// concurrent retire-and-scan (module docs; DESIGN.md §12).
    fn pin(&self) -> PinGuard<'_> {
        let mut e = self.inner.epoch.load(Ordering::SeqCst);
        loop {
            self.pin.store(e, Ordering::SeqCst);
            let now = self.inner.epoch.load(Ordering::SeqCst);
            if now == e {
                return PinGuard(&self.pin);
            }
            e = now;
        }
    }

    /// One steal attempt from the top (FIFO end): copy, then CAS. The
    /// element is only owned — and its bits only trusted — if the CAS
    /// succeeds.
    pub fn steal(&self) -> Steal<T> {
        let _pin = self.pin();
        let t = self.inner.top.load(Ordering::Acquire);
        // Order our `top` read before the `bottom` read, pairing with
        // the owner-pop fence: if a pop's decrement is ordered before
        // this fence, we see the shrunken deque; otherwise the pop
        // sees our (future) CAS.
        fence(Ordering::SeqCst);
        let b = self.inner.bottom.load(Ordering::Acquire);
        if t >= b {
            return Steal::Empty;
        }
        // SeqCst pairs with the grow-path publication for the epoch
        // argument; the pin above keeps whichever buffer we load alive
        // until the guard drops.
        let buf_ptr = self.inner.buffer.load(Ordering::SeqCst);
        // SAFETY: the pin/epoch protocol guarantees this pointer is
        // not freed while our pin slot holds an epoch <= its retire
        // tag; the bits read may still be stale — see below.
        let v = unsafe { &*buf_ptr }.read::<T>(t);
        if self
            .inner
            .top
            .compare_exchange(t, t + 1, Ordering::SeqCst, Ordering::Relaxed)
            .is_err()
        {
            // Lost the race; `v` may be torn and is discarded as
            // MaybeUninit (no drop).
            return Steal::Retry;
        }
        // SAFETY: the CAS succeeded, so position `t` was still inside
        // `top..bottom` when we advanced `top` — the bits we copied
        // are the committed element, and we are its unique owner.
        Steal::Success(unsafe { v.assume_init() })
    }

    /// Elements visible to this thief right now (approximate under
    /// concurrency; used for steal-batch sizing, not correctness).
    pub fn len(&self) -> usize {
        let t = self.inner.top.load(Ordering::Acquire);
        let b = self.inner.bottom.load(Ordering::Acquire);
        (b - t).max(0) as usize
    }

    /// Whether [`Stealer::len`] is zero.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

impl<T: Send> Clone for Stealer<T> {
    /// A fresh handle with its *own* pin slot — required before moving
    /// a stealer to another thread.
    fn clone(&self) -> Stealer<T> {
        Stealer::register(Arc::clone(&self.inner))
    }
}

impl<T> Drop for Stealer<T> {
    fn drop(&mut self) {
        let mut pins = self.inner.pins.lock().expect("deque pin registry poisoned");
        pins.retain(|p| !Arc::ptr_eq(p, &self.pin));
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::AtomicU64;

    #[test]
    fn owner_push_pop_is_lifo() {
        let (w, _s) = deque::<u64>();
        for i in 0..10 {
            w.push(i);
        }
        assert_eq!(w.len(), 10);
        for i in (0..10).rev() {
            assert_eq!(w.pop(), Some(i));
        }
        assert_eq!(w.pop(), None);
        assert!(w.is_empty());
    }

    #[test]
    fn steal_is_fifo_from_the_top() {
        let (w, s) = deque::<u64>();
        for i in 0..5 {
            w.push(i);
        }
        match s.steal() {
            Steal::Success(v) => assert_eq!(v, 0, "thief takes the oldest"),
            other => panic!("steal failed: {other:?}"),
        }
        assert_eq!(w.pop(), Some(4), "owner still pops the newest");
        assert_eq!(s.len(), 3);
    }

    #[test]
    fn growth_preserves_every_element() {
        let (w, s) = deque_with_capacity::<u64>(2);
        for i in 0..1000 {
            w.push(i);
        }
        let mut seen = Vec::new();
        loop {
            match s.steal() {
                Steal::Success(v) => seen.push(v),
                Steal::Empty => break,
                Steal::Retry => {}
            }
        }
        assert_eq!(seen, (0..1000).collect::<Vec<_>>());
    }

    #[test]
    fn interleaved_push_pop_steal_conserves_elements() {
        let (w, s) = deque_with_capacity::<u64>(4);
        let mut popped = 0u64;
        let mut stolen = 0u64;
        let mut pushed = 0u64;
        for round in 0..200u64 {
            for _ in 0..(round % 7) {
                w.push(pushed);
                pushed += 1;
            }
            if round % 3 == 0 && w.pop().is_some() {
                popped += 1;
            }
            if let Steal::Success(_) = s.steal() {
                stolen += 1;
            }
        }
        while w.pop().is_some() {
            popped += 1;
        }
        assert_eq!(popped + stolen, pushed, "every push claimed exactly once");
    }

    #[test]
    fn queued_elements_are_dropped_with_the_deque() {
        static DROPS: AtomicU64 = AtomicU64::new(0);
        struct Token;
        impl Drop for Token {
            fn drop(&mut self) {
                DROPS.fetch_add(1, Ordering::SeqCst);
            }
        }
        {
            let (w, _s) = deque_with_capacity::<Token>(2);
            for _ in 0..10 {
                w.push(Token);
            }
            drop(w.pop()); // 1 dropped here
        }
        assert_eq!(DROPS.load(Ordering::SeqCst), 10, "9 at drop + 1 popped");
    }

    #[test]
    fn two_thieves_never_share_an_element() {
        use std::sync::Mutex;
        let (w, s1) = deque::<u64>();
        let s2 = s1.clone();
        for i in 0..2000 {
            w.push(i);
        }
        let taken = Mutex::new(vec![0u8; 2000]);
        std::thread::scope(|scope| {
            for s in [s1, s2] {
                let taken = &taken;
                scope.spawn(move || loop {
                    match s.steal() {
                        Steal::Success(v) => {
                            let mut t = taken.lock().unwrap();
                            t[v as usize] += 1;
                        }
                        Steal::Empty => break,
                        Steal::Retry => {}
                    }
                });
            }
        });
        assert!(
            taken.lock().unwrap().iter().all(|&n| n == 1),
            "every element stolen exactly once"
        );
    }

    #[test]
    fn zero_sized_elements_work() {
        let (w, s) = deque::<()>();
        for _ in 0..100 {
            w.push(());
        }
        let mut n = 0;
        while let Steal::Success(()) = s.steal() {
            n += 1;
        }
        n += std::iter::from_fn(|| w.pop()).count();
        assert_eq!(n, 100);
    }
}
