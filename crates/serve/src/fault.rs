//! Seeded fault injection for the course server (test tooling).
//!
//! A [`FaultPlan`] makes registered handlers misbehave on purpose —
//! panicking or stalling at chosen points — so the server's invariants
//! (tickets always resolve, shutdown drains every accepted request,
//! a panic poisons only the panicking job) can be tested under
//! adversarial schedules instead of only on the happy path.
//!
//! Determinism: every decision is a pure function of the plan's seed
//! and a global firing sequence number, hashed with a SplitMix64-style
//! mixer. The same seed and the same number of [`FaultPlan::fire`]
//! calls therefore produce the same faults, which keeps failures
//! reproducible. (The *interleaving* of worker threads still varies
//! run to run — that is the point: deterministic faults, adversarial
//! schedules.)
//!
//! The plan is wired in via [`ServerConfig::fault_plan`] and consulted
//! by the server at [`FaultPoint::BeforeHandle`] (before the workload
//! runs, inside the cache's compute closure) and
//! [`FaultPoint::AfterHandle`] (after the workload produced a
//! response, still inside the compute closure). Both points sit under
//! the server's `catch_unwind`, so injected panics must surface as
//! `ok: false` responses, never as hung tickets.
//!
//! [`ServerConfig::fault_plan`]: crate::server::ServerConfig::fault_plan

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::Duration;

/// Where in the request path a fault fires.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum FaultPoint {
    /// Before the handler runs the workload (inside the cache compute
    /// closure): a panic here means the request produced no response.
    BeforeHandle,
    /// After the handler produced a response but before it is returned
    /// (still inside the compute closure): a panic here throws away
    /// completed work.
    AfterHandle,
    /// Inside `submit`, after admission succeeded but before the job
    /// reaches the pool: a stall here widens the admitted-but-not-yet-
    /// enqueued window that graceful shutdown must cover (the
    /// submission-side race point). A panic here unwinds into the
    /// *submitting* client; the server's open-submission accounting is
    /// guard-protected, so shutdown still drains correctly.
    BeforeEnqueue,
    /// Inside the cache's bookkeeping phase, while a shard's map lock
    /// is held: a stall here holds the shard lock, forcing every other
    /// request hashing to the shard to pile up behind it (the
    /// shard-lock-hold point). Panics here would poison the shard
    /// mutex, so plans should only attach stalls to this point.
    CacheLockHold,
    /// In a cache compute owner just before it publishes its value:
    /// the cache responds by running a forced eviction sweep at that
    /// moment, proving in-progress (`Computing`) entries are never
    /// evicted out from under their waiters.
    CacheEvictDuringCompute,
    /// In a compute owner, after its value is published but before
    /// waiters parked on the key's promise slot are notified. A stall
    /// here delays every waiter's wakeup; on the `Promise` cache
    /// implementation a [`FaultKind::Drop`] schedule
    /// (`FaultPlan::should_drop`) swallows the notification entirely —
    /// waiters must still complete off their timed re-checks. (The
    /// `ShardedMutex` implementation consults only the
    /// stall/panic schedule here: its waiters block indefinitely on a
    /// condvar, so attach drop schedules to `Promise` runs.)
    CachePromiseWake,
    /// In the TCP front end's per-connection reader, after a request
    /// frame is parsed but before it is submitted: a stall here models
    /// a slow/stuck reader; a [`FaultKind::Drop`] here severs the
    /// connection mid-request — the admitted work must still drain and
    /// the server ledger must still balance even though the response
    /// has nowhere to go.
    NetReadFrame,
    /// In the TCP front end's per-connection writer, before a response
    /// frame is written: a stall here models a slow client that the
    /// write timeout must bound; a [`FaultKind::Drop`] severs the
    /// connection with responses still queued.
    NetWriteFrame,
}

/// What an injected fault does.
#[derive(Debug, Clone, Copy)]
pub enum FaultKind {
    /// Panic with a recognizable message.
    Panic,
    /// Sleep for the given duration, simulating a stuck handler.
    Stall(Duration),
    /// Sever a connection (wire-level points only). `Drop` rules never
    /// fire from [`FaultPlan::fire`]; the net layer polls them with
    /// [`FaultPlan::should_drop`] and closes the socket itself.
    Drop,
}

#[derive(Debug, Clone, Copy)]
struct FaultRule {
    point: FaultPoint,
    kind: FaultKind,
    /// Fire on `numerator` out of every `denominator` hash buckets.
    numerator: u32,
    denominator: u32,
}

struct PlanInner {
    seed: u64,
    rules: Vec<FaultRule>,
    /// One tick per `fire`/`should_drop` call, across all points and
    /// threads.
    sequence: AtomicU64,
    panics: AtomicU64,
    stalls: AtomicU64,
    drops: AtomicU64,
}

/// Counters for faults actually injected so far.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FaultStats {
    /// Panics injected.
    pub panics: u64,
    /// Stalls injected.
    pub stalls: u64,
    /// Connection drops granted to [`FaultPlan::should_drop`] callers.
    pub drops: u64,
}

/// A seeded, shareable schedule of handler faults.
///
/// Build one with [`FaultPlan::new`] and the `panic_at` / `stall_at`
/// builders, hand it to [`ServerConfig::fault_plan`], and read back
/// [`FaultPlan::stats`] to assert the test actually exercised the
/// faulty paths. Clones share state (the plan is internally an `Arc`),
/// so keep a clone in the test to observe counters after the server
/// consumed the original.
///
/// [`ServerConfig::fault_plan`]: crate::server::ServerConfig::fault_plan
#[derive(Clone)]
pub struct FaultPlan {
    inner: Arc<PlanInner>,
}

impl std::fmt::Debug for FaultPlan {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("FaultPlan")
            .field("seed", &self.inner.seed)
            .field("rules", &self.inner.rules.len())
            .field("stats", &self.stats())
            .finish()
    }
}

/// SplitMix64 finalizer: a cheap, well-mixed hash of the counter.
fn mix(mut z: u64) -> u64 {
    z = z.wrapping_add(0x9e37_79b9_7f4a_7c15);
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

impl FaultPlan {
    /// An empty plan: no rules, nothing fires until some are added.
    pub fn new(seed: u64) -> FaultPlan {
        FaultPlan {
            inner: Arc::new(PlanInner {
                seed,
                rules: Vec::new(),
                sequence: AtomicU64::new(0),
                panics: AtomicU64::new(0),
                stalls: AtomicU64::new(0),
                drops: AtomicU64::new(0),
            }),
        }
    }

    fn with_rule(self, rule: FaultRule) -> FaultPlan {
        assert!(
            rule.denominator > 0,
            "fault rate denominator must be positive"
        );
        assert!(
            rule.numerator <= rule.denominator,
            "fault rate cannot exceed 1 ({}/{})",
            rule.numerator,
            rule.denominator
        );
        // Builders run before the plan is shared; the unwrap documents
        // that contract rather than silently cloning state.
        let PlanInner {
            seed,
            mut rules,
            sequence,
            panics,
            stalls,
            drops,
        } = Arc::try_unwrap(self.inner)
            .unwrap_or_else(|_| panic!("configure the FaultPlan before cloning/sharing it"));
        rules.push(rule);
        FaultPlan {
            inner: Arc::new(PlanInner {
                seed,
                rules,
                sequence,
                panics,
                stalls,
                drops,
            }),
        }
    }

    /// Adds a rule: panic at `point` on roughly `numerator` out of
    /// every `denominator` firings (seed-deterministic, not periodic).
    pub fn panic_at(self, point: FaultPoint, numerator: u32, denominator: u32) -> FaultPlan {
        self.with_rule(FaultRule {
            point,
            kind: FaultKind::Panic,
            numerator,
            denominator,
        })
    }

    /// Adds a rule: stall for `stall` at `point` on roughly
    /// `numerator` out of every `denominator` firings.
    pub fn stall_at(
        self,
        point: FaultPoint,
        stall: Duration,
        numerator: u32,
        denominator: u32,
    ) -> FaultPlan {
        self.with_rule(FaultRule {
            point,
            kind: FaultKind::Stall(stall),
            numerator,
            denominator,
        })
    }

    /// Adds a rule: grant a connection drop at `point` on roughly
    /// `numerator` out of every `denominator` [`should_drop`] polls.
    /// Only the wire-level points consult drop rules.
    ///
    /// [`should_drop`]: FaultPlan::should_drop
    pub fn drop_at(self, point: FaultPoint, numerator: u32, denominator: u32) -> FaultPlan {
        self.with_rule(FaultRule {
            point,
            kind: FaultKind::Drop,
            numerator,
            denominator,
        })
    }

    /// Consults the plan at `point`; sleeps or panics per the rules.
    ///
    /// Called by the server inside its panic isolation; tests may also
    /// call it directly to script a fault at an exact moment.
    pub fn fire(&self, point: FaultPoint) {
        let seq = self.inner.sequence.fetch_add(1, Ordering::Relaxed);
        for (ridx, rule) in self.inner.rules.iter().enumerate() {
            if rule.point != point {
                continue;
            }
            let h = mix(self.inner.seed ^ mix(seq ^ ((ridx as u64) << 32)));
            if (h % u64::from(rule.denominator)) as u32 >= rule.numerator {
                continue;
            }
            match rule.kind {
                FaultKind::Stall(dur) => {
                    self.inner.stalls.fetch_add(1, Ordering::Relaxed);
                    std::thread::sleep(dur);
                }
                FaultKind::Panic => {
                    self.inner.panics.fetch_add(1, Ordering::Relaxed);
                    panic!("fault injection: seeded panic at {point:?} (firing #{seq})");
                }
                // Drop is an action only the net layer can take (it
                // owns the socket); `fire` never acts on it.
                FaultKind::Drop => {}
            }
        }
    }

    /// Consults the drop rules at `point`: `true` means the caller
    /// should sever its connection now. Seed-deterministic like
    /// [`FaultPlan::fire`] (each poll consumes one sequence tick), and
    /// counted in [`FaultStats::drops`] when granted.
    pub fn should_drop(&self, point: FaultPoint) -> bool {
        let seq = self.inner.sequence.fetch_add(1, Ordering::Relaxed);
        for (ridx, rule) in self.inner.rules.iter().enumerate() {
            if rule.point != point || !matches!(rule.kind, FaultKind::Drop) {
                continue;
            }
            let h = mix(self.inner.seed ^ mix(seq ^ ((ridx as u64) << 32)));
            if (h % u64::from(rule.denominator)) as u32 >= rule.numerator {
                continue;
            }
            self.inner.drops.fetch_add(1, Ordering::Relaxed);
            return true;
        }
        false
    }

    /// Counters of faults injected so far (shared across clones).
    pub fn stats(&self) -> FaultStats {
        FaultStats {
            panics: self.inner.panics.load(Ordering::Relaxed),
            stalls: self.inner.stalls.load(Ordering::Relaxed),
            drops: self.inner.drops.load(Ordering::Relaxed),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::panic::{catch_unwind, AssertUnwindSafe};

    #[test]
    fn empty_plan_never_fires() {
        let plan = FaultPlan::new(42);
        for _ in 0..1000 {
            plan.fire(FaultPoint::BeforeHandle);
            plan.fire(FaultPoint::AfterHandle);
        }
        assert_eq!(
            plan.stats(),
            FaultStats {
                panics: 0,
                stalls: 0,
                drops: 0
            }
        );
    }

    #[test]
    fn drop_rules_only_answer_should_drop() {
        let plan = FaultPlan::new(9).drop_at(FaultPoint::NetReadFrame, 1, 2);
        // `fire` never acts on (or counts) a Drop rule.
        for _ in 0..50 {
            plan.fire(FaultPoint::NetReadFrame);
        }
        assert_eq!(plan.stats().drops, 0);
        let granted = (0..200)
            .filter(|_| plan.should_drop(FaultPoint::NetReadFrame))
            .count() as u64;
        assert!(
            (40..=160).contains(&granted),
            "got {granted}/200 drops at rate 1/2"
        );
        assert_eq!(plan.stats().drops, granted);
        // Wrong point: no grants.
        assert!(!(0..50).any(|_| plan.should_drop(FaultPoint::NetWriteFrame)));
    }

    #[test]
    fn panic_rule_fires_at_roughly_its_rate_and_is_seed_deterministic() {
        let run = |seed: u64| -> Vec<bool> {
            let plan = FaultPlan::new(seed).panic_at(FaultPoint::BeforeHandle, 1, 4);
            (0..400)
                .map(|_| {
                    catch_unwind(AssertUnwindSafe(|| plan.fire(FaultPoint::BeforeHandle))).is_err()
                })
                .collect()
        };
        let a = run(7);
        let b = run(7);
        assert_eq!(a, b, "same seed must fault the same firings");
        let hits = a.iter().filter(|&&x| x).count();
        // 1/4 rate over 400 firings: allow generous slack, but it must
        // fire sometimes and not always.
        assert!(
            (40..=160).contains(&hits),
            "got {hits}/400 faults at rate 1/4"
        );
        let c = run(8);
        assert_ne!(a, c, "different seeds should differ somewhere");
    }

    #[test]
    fn always_rules_fire_every_time_and_stalls_really_sleep() {
        let plan =
            FaultPlan::new(0).stall_at(FaultPoint::AfterHandle, Duration::from_millis(5), 1, 1);
        let t0 = std::time::Instant::now();
        plan.fire(FaultPoint::AfterHandle);
        plan.fire(FaultPoint::BeforeHandle); // wrong point: no stall
        assert!(t0.elapsed() >= Duration::from_millis(5));
        assert_eq!(
            plan.stats(),
            FaultStats {
                panics: 0,
                stalls: 1,
                drops: 0
            }
        );
    }

    #[test]
    fn clones_share_counters() {
        let plan =
            FaultPlan::new(1).stall_at(FaultPoint::BeforeHandle, Duration::from_micros(1), 1, 1);
        let observer = plan.clone();
        plan.fire(FaultPoint::BeforeHandle);
        assert_eq!(observer.stats().stalls, 1);
    }

    #[test]
    #[should_panic(expected = "configure the FaultPlan before cloning")]
    fn configuring_a_shared_plan_is_an_error() {
        let plan = FaultPlan::new(3);
        let _held = plan.clone();
        let _ = plan.panic_at(FaultPoint::BeforeHandle, 1, 2);
    }
}
