//! The course server: the pool and the cache composed into a
//! request/response front end for the course's real workloads — grading
//! an assembly submission (`cs31::autograde`), generating a homework
//! variant (`cs31::homework`), and running a registered `reproduce`
//! experiment — with a bounded admission queue (explicit backpressure,
//! reject-with-retry-hint), result caching by request key, and graceful
//! shutdown that drains every accepted request.

use crate::cache::{Cache, CacheStats};
use crate::fault::{FaultPlan, FaultPoint};
use crate::pool::{PoolStats, Scheduler, ThreadPool};
use cs31::autograde;
use cs31::homework;
use parallel::Semaphore;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Condvar, Mutex};

/// A course workload. The enum *is* the cache key: two requests are
/// the same work iff they compare equal.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub enum Request {
    /// Grade an assembly submission against the Lab 4 sum-array rubric.
    Grade {
        /// AT&T-syntax submission source.
        submission: String,
    },
    /// Generate one homework problem variant.
    Homework {
        /// Generator name from `cs31::homework::generators()`.
        generator: String,
        /// Variant seed.
        seed: u64,
    },
    /// Run a registered experiment (the `reproduce` ids, when wired via
    /// [`ServerConfig::experiments`]).
    Reproduce {
        /// Experiment id, e.g. `"e6"`.
        id: String,
    },
}

/// What the server hands back for a completed request.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Response {
    /// `false` when the handler failed (unknown id, handler panic);
    /// the body then carries the error text.
    pub ok: bool,
    /// Rendered result (grade report, problem text, experiment table).
    pub body: String,
    /// `true` when the result came from the cache without re-running
    /// the workload.
    pub cached: bool,
}

/// Admission rejection: the queue is full. Carries an honest
/// backpressure signal instead of blocking the client.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Rejected {
    /// Requests currently admitted (queued + running).
    pub in_flight: usize,
    /// Suggested client backoff before retrying.
    pub retry_after_ms: u64,
}

/// Error for [`CourseServer::submit`] after shutdown began.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ShuttingDown;

/// Sizing knobs for [`CourseServer::new`].
#[derive(Debug, Clone)]
pub struct ServerConfig {
    /// Worker threads executing requests.
    pub workers: usize,
    /// Admission bound: maximum requests queued or running at once.
    pub queue_capacity: usize,
    /// Result-cache shards.
    pub cache_shards: usize,
    /// LRU capacity per cache shard.
    pub cache_capacity_per_shard: usize,
    /// Queue topology for the worker pool. Defaults to
    /// [`Scheduler::WorkStealing`]; [`Scheduler::SharedFifo`] keeps the
    /// old single-queue behavior as a measurable baseline.
    pub scheduler: Scheduler,
    /// Optional seeded fault injection for tests: panic/stall handlers
    /// at chosen points. `None` (the default) injects nothing.
    pub fault_plan: Option<FaultPlan>,
}

impl Default for ServerConfig {
    fn default() -> Self {
        ServerConfig {
            workers: 4,
            queue_capacity: 64,
            cache_shards: 8,
            cache_capacity_per_shard: 32,
            scheduler: Scheduler::default(),
            fault_plan: None,
        }
    }
}

/// An experiment runner, as exported by `bench::all_experiments`.
pub type ExperimentFn = fn() -> String;

/// A one-shot handle to a submitted request's eventual [`Response`].
pub struct Ticket {
    promise: Arc<Promise>,
}

impl std::fmt::Debug for Ticket {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Ticket").field("resolved", &self.try_get().is_some()).finish()
    }
}

struct Promise {
    state: Mutex<Option<Response>>,
    done: Condvar,
}

impl Ticket {
    /// Blocks until the request completes and returns its response.
    /// Every accepted request is eventually completed — including
    /// through pool drop — so this cannot hang on a live server.
    pub fn wait(&self) -> Response {
        let mut st = self.promise.state.lock().expect("ticket mutex poisoned");
        loop {
            if let Some(resp) = st.as_ref() {
                return resp.clone();
            }
            st = self.promise.done.wait(st).expect("ticket mutex poisoned");
        }
    }

    /// Non-blocking poll.
    pub fn try_get(&self) -> Option<Response> {
        self.promise.state.lock().expect("ticket mutex poisoned").clone()
    }
}

/// Aggregate request counters plus the pool and cache snapshots.
#[derive(Debug, Clone)]
pub struct ServerStats {
    /// Requests admitted past backpressure.
    pub accepted: u64,
    /// Requests rejected by the admission bound.
    pub rejected: u64,
    /// Requests whose ticket has been completed.
    pub completed: u64,
    /// Result-cache counters.
    pub cache: CacheStats,
    /// Worker-pool counters.
    pub pool: PoolStats,
}

struct ServerInner {
    cache: Cache<Request, Response>,
    experiments: Vec<(String, ExperimentFn)>,
    fault_plan: Option<FaultPlan>,
    admission: Semaphore,
    queue_capacity: usize,
    workers: usize,
    accepting: AtomicBool,
    accepted: AtomicU64,
    rejected: AtomicU64,
    completed: AtomicU64,
}

impl ServerInner {
    /// Runs the workload for `req` (no caching at this layer). Both
    /// fault points fire inside the caller's panic isolation, so an
    /// injected panic resolves the ticket with an error and poisons
    /// only this request's cache slot.
    fn handle(&self, req: &Request) -> Response {
        if let Some(plan) = &self.fault_plan {
            plan.fire(FaultPoint::BeforeHandle);
        }
        let response = self.handle_inner(req);
        if let Some(plan) = &self.fault_plan {
            plan.fire(FaultPoint::AfterHandle);
        }
        response
    }

    fn handle_inner(&self, req: &Request) -> Response {
        match req {
            Request::Grade { submission } => {
                let report =
                    autograde::grade(submission, &autograde::sum_array_rubric(), 200_000);
                Response { ok: true, body: report.render(), cached: false }
            }
            Request::Homework { generator, seed } => {
                match homework::generators().into_iter().find(|(name, _)| name == generator) {
                    Some((_, gen)) => {
                        let p = gen(*seed);
                        Response {
                            ok: true,
                            body: format!(
                                "[{}]\n{}\n--- solution ---\n{}",
                                p.set, p.prompt, p.solution
                            ),
                            cached: false,
                        }
                    }
                    None => Response {
                        ok: false,
                        body: format!("unknown homework generator {generator:?}"),
                        cached: false,
                    },
                }
            }
            Request::Reproduce { id } => {
                match self.experiments.iter().find(|(eid, _)| eid == id) {
                    Some((_, run)) => Response { ok: true, body: run(), cached: false },
                    None => Response {
                        ok: false,
                        body: format!("unknown experiment id {id:?} (is it registered?)"),
                        cached: false,
                    },
                }
            }
        }
    }
}

/// The thread-pool job server for course workloads.
///
/// Lifecycle: [`CourseServer::submit`] either admits a request (you get
/// a [`Ticket`]) or rejects it with a retry hint — it never blocks the
/// caller. Admitted requests run on the worker pool, consult the
/// result cache (compute-once per distinct request), and complete
/// their ticket even if the handler panics. [`CourseServer::shutdown`]
/// stops admission and drains in-flight work; dropping the server
/// without calling it drains too (pool drop joins after draining).
pub struct CourseServer {
    inner: Arc<ServerInner>,
    pool: ThreadPool,
}

impl std::fmt::Debug for CourseServer {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("CourseServer")
            .field("workers", &self.inner.workers)
            .field("queue_capacity", &self.inner.queue_capacity)
            .finish()
    }
}

impl CourseServer {
    /// Builds a server with no experiments registered (Grade and
    /// Homework requests work; Reproduce requests answer `ok: false`).
    pub fn new(config: ServerConfig) -> CourseServer {
        CourseServer::with_experiments(config, Vec::new())
    }

    /// Builds a server that can also run the given experiment registry
    /// (pass `bench::all_experiments()`-shaped pairs).
    pub fn with_experiments(
        config: ServerConfig,
        experiments: Vec<(String, ExperimentFn)>,
    ) -> CourseServer {
        assert!(config.workers > 0, "server needs at least one worker");
        assert!(config.queue_capacity > 0, "server needs queue capacity >= 1");
        let inner = Arc::new(ServerInner {
            cache: Cache::new(config.cache_shards, config.cache_capacity_per_shard),
            experiments,
            fault_plan: config.fault_plan,
            admission: Semaphore::new(config.queue_capacity),
            queue_capacity: config.queue_capacity,
            workers: config.workers,
            accepting: AtomicBool::new(true),
            accepted: AtomicU64::new(0),
            rejected: AtomicU64::new(0),
            completed: AtomicU64::new(0),
        });
        CourseServer { inner, pool: ThreadPool::with_scheduler(config.workers, config.scheduler) }
    }

    /// Submits a request without blocking.
    ///
    /// * `Ok(ticket)` — admitted; the ticket resolves exactly once.
    /// * `Err(SubmitError::Busy(_))` — the admission queue is full;
    ///   retry after the hinted backoff.
    /// * `Err(SubmitError::ShuttingDown(_))` — shutdown has begun.
    pub fn submit(&self, req: Request) -> Result<Ticket, SubmitError> {
        if !self.inner.accepting.load(Ordering::SeqCst) {
            return Err(SubmitError::ShuttingDown(ShuttingDown));
        }
        if !self.inner.admission.try_acquire() {
            self.inner.rejected.fetch_add(1, Ordering::Relaxed);
            let in_flight = self.inner.queue_capacity - self.inner.admission.available();
            // Rough honest hint: one worker-sweep of the backlog.
            let retry_after_ms =
                ((in_flight as u64).saturating_mul(2) / self.inner.workers as u64).max(1);
            return Err(SubmitError::Busy(Rejected { in_flight, retry_after_ms }));
        }
        self.inner.accepted.fetch_add(1, Ordering::Relaxed);

        let promise = Arc::new(Promise { state: Mutex::new(None), done: Condvar::new() });
        let ticket = Ticket { promise: Arc::clone(&promise) };
        let inner = Arc::clone(&self.inner);
        let submit_result = self.pool.execute(move || {
            let ran_here = Arc::new(AtomicBool::new(false));
            let ran_flag = Arc::clone(&ran_here);
            let inner_for_job = Arc::clone(&inner);
            let req_for_job = req.clone();
            let outcome = catch_unwind(AssertUnwindSafe(|| {
                inner_for_job.cache.get_or_insert_with(req_for_job, |r| {
                    ran_flag.store(true, Ordering::SeqCst);
                    inner_for_job.handle(&r)
                })
            }));
            let response = match outcome {
                Ok(mut resp) => {
                    resp.cached = !ran_here.load(Ordering::SeqCst);
                    resp
                }
                Err(_) => Response {
                    ok: false,
                    body: "request handler panicked; see server logs".to_string(),
                    cached: false,
                },
            };
            {
                let mut st = promise.state.lock().expect("ticket mutex poisoned");
                // Count before publishing under the same lock: whoever
                // sees the resolved ticket also sees the counter.
                inner.completed.fetch_add(1, Ordering::Relaxed);
                *st = Some(response);
            }
            promise.done.notify_all();
            inner.admission.release();
        });
        match submit_result {
            Ok(()) => Ok(ticket),
            Err(_) => {
                // The pool refused (shutdown raced us): undo admission
                // and tell the caller honestly.
                self.inner.accepted.fetch_sub(1, Ordering::Relaxed);
                self.inner.admission.release();
                Err(SubmitError::ShuttingDown(ShuttingDown))
            }
        }
    }

    /// Stops admission, then blocks until every accepted request has
    /// completed its ticket. The server can still report [`stats`] and
    /// resolve outstanding tickets afterwards; new submissions fail
    /// with [`SubmitError::ShuttingDown`].
    ///
    /// [`stats`]: CourseServer::stats
    pub fn shutdown(&self) {
        self.inner.accepting.store(false, Ordering::SeqCst);
        self.pool.wait_empty();
    }

    /// A snapshot of request, cache, and pool counters.
    pub fn stats(&self) -> ServerStats {
        ServerStats {
            accepted: self.inner.accepted.load(Ordering::Relaxed),
            rejected: self.inner.rejected.load(Ordering::Relaxed),
            completed: self.inner.completed.load(Ordering::Relaxed),
            cache: self.inner.cache.stats(),
            pool: self.pool.stats(),
        }
    }
}

/// Why [`CourseServer::submit`] declined a request.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SubmitError {
    /// Admission queue full — backpressure, retry later.
    Busy(Rejected),
    /// The server is shutting down; do not retry.
    ShuttingDown(ShuttingDown),
}

#[cfg(test)]
mod tests {
    use super::*;

    const GOOD_SUBMISSION: &str = r"
        main:
            movl $0, %eax
            movl $0, %edi
            cmpl $0, %ecx
            je done
        loop:
            addl (%esi,%edi,4), %eax
            addl $1, %edi
            cmpl %ecx, %edi
            jne loop
        done:
            hlt
    ";

    #[test]
    fn grades_a_real_submission_and_caches_the_result() {
        let server = CourseServer::new(ServerConfig::default());
        let req = Request::Grade { submission: GOOD_SUBMISSION.to_string() };
        let first = server.submit(req.clone()).expect("accepted").wait();
        assert!(first.ok);
        assert!(first.body.contains("100%"), "unexpected grade: {}", first.body);
        assert!(!first.cached);
        let second = server.submit(req).expect("accepted").wait();
        assert!(second.cached, "warm request should hit the cache");
        assert_eq!(second.body, first.body);
    }

    #[test]
    fn homework_requests_use_real_generators() {
        let server = CourseServer::new(ServerConfig::default());
        let ok = server
            .submit(Request::Homework { generator: "binary_arithmetic".into(), seed: 7 })
            .expect("accepted")
            .wait();
        assert!(ok.ok);
        assert!(ok.body.contains("solution"), "missing solution: {}", ok.body);
        let bad = server
            .submit(Request::Homework { generator: "no_such_generator".into(), seed: 7 })
            .expect("accepted")
            .wait();
        assert!(!bad.ok);
    }

    #[test]
    fn reproduce_requests_need_a_registry() {
        let bare = CourseServer::new(ServerConfig::default());
        let miss = bare.submit(Request::Reproduce { id: "e6".into() }).unwrap().wait();
        assert!(!miss.ok);

        fn fake_experiment() -> String {
            "E-fake: table".to_string()
        }
        let wired = CourseServer::with_experiments(
            ServerConfig::default(),
            vec![("e-fake".to_string(), fake_experiment as ExperimentFn)],
        );
        let hit = wired.submit(Request::Reproduce { id: "e-fake".into() }).unwrap().wait();
        assert!(hit.ok);
        assert_eq!(hit.body, "E-fake: table");
    }

    fn slow_experiment() -> String {
        std::thread::sleep(std::time::Duration::from_millis(100));
        "slow table".to_string()
    }

    #[test]
    fn backpressure_rejects_with_retry_hint_instead_of_blocking() {
        // Two distinct slow requests fill the 1 worker + 1 queue slot;
        // admission is only released on completion, so the third submit
        // lands inside the 100ms compute window and must be rejected.
        let server = CourseServer::with_experiments(
            ServerConfig { workers: 1, queue_capacity: 2, ..ServerConfig::default() },
            vec![
                ("slow-a".to_string(), slow_experiment as ExperimentFn),
                ("slow-b".to_string(), slow_experiment as ExperimentFn),
            ],
        );
        let tickets: Vec<Ticket> = ["slow-a", "slow-b"]
            .iter()
            .map(|id| {
                server
                    .submit(Request::Reproduce { id: (*id).into() })
                    .expect("first requests fit the queue")
            })
            .collect();
        let rejected = match server.submit(Request::Reproduce { id: "slow-a".into() }) {
            Err(SubmitError::Busy(r)) => r,
            other => panic!("expected Busy rejection, got {other:?}"),
        };
        assert!(rejected.retry_after_ms >= 1);
        assert!(rejected.in_flight >= 1);
        assert_eq!(server.stats().rejected, 1);
        for t in tickets {
            assert!(t.wait().ok);
        }
    }

    #[test]
    fn shutdown_drains_every_accepted_request() {
        let server = CourseServer::new(ServerConfig {
            workers: 2,
            queue_capacity: 32,
            ..ServerConfig::default()
        });
        let tickets: Vec<Ticket> = (0..20)
            .map(|seed| {
                server
                    .submit(Request::Homework { generator: "fork_puzzle".into(), seed })
                    .expect("accepted")
            })
            .collect();
        server.shutdown();
        // After shutdown: no new work...
        assert!(matches!(
            server.submit(Request::Homework { generator: "fork_puzzle".into(), seed: 999 }),
            Err(SubmitError::ShuttingDown(_))
        ));
        // ...and every accepted ticket is already resolved.
        for t in &tickets {
            let resp = t.try_get().expect("shutdown returned before a ticket resolved");
            assert!(resp.ok);
        }
        let stats = server.stats();
        assert_eq!(stats.completed, 20);
        assert_eq!(stats.accepted, 20);
    }

    #[test]
    fn handler_panic_resolves_the_ticket_with_an_error() {
        fn bomb() -> String {
            panic!("experiment exploded")
        }
        let server = CourseServer::with_experiments(
            ServerConfig::default(),
            vec![("boom".to_string(), bomb as ExperimentFn)],
        );
        let resp = server.submit(Request::Reproduce { id: "boom".into() }).unwrap().wait();
        assert!(!resp.ok);
        assert!(resp.body.contains("panicked"));
        // Server still serves other requests afterwards.
        let ok = server
            .submit(Request::Homework { generator: "binary_arithmetic".into(), seed: 1 })
            .unwrap()
            .wait();
        assert!(ok.ok);
        assert_eq!(server.stats().pool.panicked, 0, "panic was contained before the pool");
    }
}
