//! The course server: the pool and the cache composed into a
//! request/response front end for the course's real workloads — grading
//! an assembly submission (`cs31::autograde`), generating a homework
//! variant (`cs31::homework`), and running a registered `reproduce`
//! experiment — with **class-aware admission** (explicit backpressure,
//! per-class queue budgets, lowest-class-first load shedding,
//! deadline-aware retry hints), result caching by request key, and
//! graceful shutdown that drains every accepted request.
//!
//! ## Admission pipeline
//!
//! Every request is classified by the configured [`AdmissionPolicy`]
//! into a [`JobMeta`] (`class`, `priority`, `deadline`) before anything
//! else happens, and that metadata follows the job through the whole
//! pipeline:
//!
//! 1. **per-class budget** — each class may occupy at most
//!    `admit_limit(class)` of the admission queue, so bulk work can
//!    never fill the queue wall-to-wall and lock interactive work out;
//! 2. **global bound** — the admission semaphore caps total in-flight
//!    work; when it is exhausted an incoming request may **displace**
//!    (shed) the newest queued request of a *lower* class: the victim's
//!    ticket resolves immediately with an honest `ok: false` "shed
//!    under load" response and its queue slot transfers to the
//!    newcomer;
//! 3. **scheduling** — the job is submitted to the pool with its meta,
//!    so under [`Scheduler::PriorityLanes`] grade-class work overtakes
//!    the bulk backlog (with the pool's aging rule keeping bulk work
//!    from starving);
//! 4. **rejection** — when neither a slot nor a victim exists the
//!    caller gets a [`Rejected`] whose `retry_after_ms` respects the
//!    request's deadline: never a hint that lands after the deadline
//!    has already passed.
//!
//! Per-class counters (admitted / completed / shed / rejected /
//! deadline-missed) are kept on both the server and the pool, so the
//! scheduling win is *measured*, not asserted — see experiment E13.

use crate::cache::{CacheImpl, CacheStats, ServerCache};
use crate::fault::{FaultPlan, FaultPoint};
use crate::pool::{JobClass, JobMeta, PoolStats, Scheduler, ThreadPool};
use cs31::autograde;
use cs31::homework;
use parallel::Semaphore;
use std::collections::VecDeque;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Condvar, Mutex};
use std::time::{Duration, Instant};

/// A course workload. The enum *is* the cache key: two requests are
/// the same work iff they compare equal.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub enum Request {
    /// Grade an assembly submission against the Lab 4 sum-array rubric.
    Grade {
        /// AT&T-syntax submission source.
        submission: String,
    },
    /// Generate one homework problem variant.
    Homework {
        /// Generator name from `cs31::homework::generators()`.
        generator: String,
        /// Variant seed.
        seed: u64,
    },
    /// Run a registered experiment (the `reproduce` ids, when wired via
    /// [`CourseServer::with_experiments`]).
    Reproduce {
        /// Experiment id, e.g. `"e6"`.
        id: String,
    },
    /// Run Game of Life generations (`crates/life`, the Lab 6/10
    /// workload) — a real course compute with genuinely heavy-tailed,
    /// cache-friendly service times: cost scales with `w * h * steps`
    /// and the parameter tuple is the cache key, so repeated variants
    /// hit. Dimensions and steps are bounded (≤ [`LIFE_MAX_DIM`],
    /// ≤ [`LIFE_MAX_STEPS`]); out-of-range requests get `ok: false`.
    Life {
        /// Grid width (columns), `1..=LIFE_MAX_DIM`.
        w: u32,
        /// Grid height (rows), `1..=LIFE_MAX_DIM`.
        h: u32,
        /// Generations to run, `1..=LIFE_MAX_STEPS`.
        steps: u32,
        /// Seed for the random initial grid (35% density, toroidal).
        seed: u64,
    },
    /// Run a memory-hierarchy cache simulation (`crates/memsim`, the
    /// Lab 5 workload): replay a named access pattern against an
    /// 8 KiB 2-way cache and report hits, misses, AMAT, and cycles.
    /// Like [`Request::Life`], the parameter tuple is the cache key,
    /// so repeated variants hit. Access counts are bounded
    /// (≤ [`MEMTRACE_MAX_ACCESSES`]); unknown patterns and
    /// out-of-range counts get `ok: false`.
    MemTrace {
        /// Access pattern: one of [`MEMTRACE_PATTERNS`]
        /// (`seq`, `stride`, `random`, `ws`, `rmw`).
        pattern: String,
        /// Memory accesses to replay, `1..=MEMTRACE_MAX_ACCESSES`.
        accesses: u32,
        /// Varies the base address (and, for `random`, the address
        /// sequence) without changing the work size.
        seed: u64,
    },
}

/// Largest grid dimension [`Request::Life`] accepts.
pub const LIFE_MAX_DIM: u32 = 256;
/// Largest generation count [`Request::Life`] accepts.
pub const LIFE_MAX_STEPS: u32 = 512;
/// Largest access count [`Request::MemTrace`] accepts.
pub const MEMTRACE_MAX_ACCESSES: u32 = 1 << 16;
/// Patterns [`Request::MemTrace`] understands.
pub const MEMTRACE_PATTERNS: [&str; 5] = ["seq", "stride", "random", "ws", "rmw"];

/// What the server hands back for a completed request.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Response {
    /// `false` when the handler failed (unknown id, handler panic) or
    /// the request was shed under load; the body carries the reason.
    pub ok: bool,
    /// Rendered result (grade report, problem text, experiment table).
    pub body: String,
    /// `true` when the result came from the cache without re-running
    /// the workload.
    pub cached: bool,
}

/// Admission rejection. Carries an honest backpressure signal instead
/// of blocking the client.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Rejected {
    /// Requests currently admitted (queued + running).
    pub in_flight: usize,
    /// Suggested client backoff before retrying. Deadline-aware: never
    /// longer than half the request's remaining deadline budget, and
    /// `0` ("retrying is already pointless") once the deadline has
    /// passed.
    pub retry_after_ms: u64,
    /// The class the rejected request was classified into.
    pub class: JobClass,
}

/// Error for [`CourseServer::submit`] after shutdown began.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ShuttingDown;

/// Every shed response's body starts with this prefix. Front ends that
/// only see the [`Response`] (the TCP layer, which must translate a
/// shed completion into a wire-level SHED frame) match on it instead of
/// guessing at prose.
pub const SHED_BODY_PREFIX: &str = "shed under load";

/// How the server classifies and budgets incoming requests.
///
/// The policy is consulted on every submit: [`classify`] turns the
/// request into the [`JobMeta`] that follows it through scheduling and
/// shedding, [`admit_limit`] bounds how much of the admission queue one
/// class may occupy, and [`displaces`] decides which queued classes an
/// incoming request may shed when the queue is full.
///
/// [`classify`]: AdmissionPolicy::classify
/// [`admit_limit`]: AdmissionPolicy::admit_limit
/// [`displaces`]: AdmissionPolicy::displaces
pub trait AdmissionPolicy: Send + Sync + std::fmt::Debug {
    /// The scheduling metadata for `req` (class, priority, deadline —
    /// deadlines are measured from the moment of classification).
    fn classify(&self, req: &Request) -> JobMeta;

    /// Maximum in-flight requests of `class` given the total admission
    /// capacity. Must return at least 1, or the class is unservable.
    fn admit_limit(&self, class: JobClass, queue_capacity: usize) -> usize;

    /// Whether an incoming request of class `incoming` may displace a
    /// *queued* (not yet started) request of class `queued` when the
    /// admission queue is full.
    fn displaces(&self, incoming: JobClass, queued: JobClass) -> bool;

    /// Feedback: the measured service time of a request of `class`
    /// whose handler actually ran (cache hits are not observations).
    /// Called by the server from the worker thread after every computed
    /// response. The default ignores it; [`AdaptiveAdmission`] uses it
    /// to keep a per-class EWMA that drives its budgets and deadlines.
    fn observe(&self, _class: JobClass, _service: Duration) {}
}

/// The default policy: grade lookups are interactive with a tight
/// deadline, homework generation is batch, reproduce runs are bulk.
///
/// * **classify** — `Grade` → `Interactive`, priority 160, deadline
///   +500ms; `Homework` → `Batch`, priority 128, deadline +5s;
///   `Reproduce` → `Bulk`, priority 64, no deadline.
/// * **admit_limit** — `Interactive` may fill the whole queue, `Batch`
///   three quarters, `Bulk` half (each at least 1), so bulk load can
///   never crowd out a grade request entirely.
/// * **displaces** — strictly higher classes displace lower ones
///   (`Interactive` sheds `Batch`/`Bulk`, `Batch` sheds `Bulk`).
#[derive(Debug, Clone, Copy, Default)]
pub struct ClassAwareAdmission;

impl AdmissionPolicy for ClassAwareAdmission {
    fn classify(&self, req: &Request) -> JobMeta {
        match req {
            Request::Grade { .. } => JobMeta::for_class(JobClass::Interactive)
                .with_priority(160)
                .with_deadline(Instant::now() + Duration::from_millis(500)),
            Request::Homework { .. } => JobMeta::for_class(JobClass::Batch)
                .with_deadline(Instant::now() + Duration::from_secs(5)),
            // Life shares Homework's class/budget: real batch compute,
            // slightly below Homework so generated problem sets win
            // ties.
            Request::Life { .. } => JobMeta::for_class(JobClass::Batch)
                .with_priority(112)
                .with_deadline(Instant::now() + Duration::from_secs(5)),
            // MemTrace is batch compute like Life: real simulation
            // work, priority between Homework and Life.
            Request::MemTrace { .. } => JobMeta::for_class(JobClass::Batch)
                .with_priority(120)
                .with_deadline(Instant::now() + Duration::from_secs(5)),
            Request::Reproduce { .. } => JobMeta::for_class(JobClass::Bulk).with_priority(64),
        }
    }

    fn admit_limit(&self, class: JobClass, queue_capacity: usize) -> usize {
        match class {
            JobClass::Interactive => queue_capacity,
            JobClass::Batch => (queue_capacity * 3 / 4).max(1),
            JobClass::Bulk => (queue_capacity / 2).max(1),
        }
    }

    fn displaces(&self, incoming: JobClass, queued: JobClass) -> bool {
        incoming > queued
    }
}

/// Class-aware admission whose budgets and deadlines *adapt to the
/// observed workload* instead of being policy constants.
///
/// [`ClassAwareAdmission`] hard-codes two kinds of numbers: each
/// class's deadline (+500ms, +5s, none) and each class's share of the
/// admission queue (full, 3/4, 1/2). Those constants are right for the
/// course's nominal workload and wrong the moment reproduce runs get
/// 10x slower or grading gets trivially cheap. This policy derives both
/// from an EWMA of observed per-class service times, fed by the
/// server's [`AdmissionPolicy::observe`] hook (weight 1/8 to the newest
/// sample):
///
/// * **deadline** — `DEADLINE_SERVICE_MULTIPLE` (4x) the class EWMA,
///   clamped to the class's `[floor, ceiling]` band, so a deadline is
///   always a few service times away: tight when the class is fast,
///   realistic when it is slow, never tighter than the floor (a grade
///   cannot be deadlined below 25ms however fast grading gets). Bulk
///   work stays deadline-free. Before the first observation the
///   ceiling (the [`ClassAwareAdmission`] constant) is used.
/// * **queue budget** — the number of this class's jobs one worker
///   could drain within the class's *patience window*
///   (`patience / ewma`), capped by the same static share
///   [`ClassAwareAdmission`] grants and floored at 1. A class observed
///   to be slow gets a small budget (admitting a deep queue of 200ms
///   jobs just converts backpressure into timeouts); a fast class gets
///   its full static share.
///
/// Classification (which request is which class, who displaces whom)
/// is inherited unchanged from the static policy.
#[derive(Debug, Default)]
pub struct AdaptiveAdmission {
    /// Observed mean service time per class, EWMA, in microseconds.
    /// 0 = no observation yet.
    ewma_micros: [AtomicU64; JobClass::COUNT],
}

/// A deadline is this many observed service times after admission.
pub const DEADLINE_SERVICE_MULTIPLE: u64 = 4;

impl AdaptiveAdmission {
    /// `[floor, ceiling]` for each class's adaptive deadline, by band.
    /// Ceilings are the [`ClassAwareAdmission`] constants; `None` means
    /// the class never carries a deadline.
    const DEADLINE_BANDS: [Option<(Duration, Duration)>; JobClass::COUNT] = [
        Some((Duration::from_millis(25), Duration::from_millis(500))),
        Some((Duration::from_millis(250), Duration::from_secs(5))),
        None,
    ];

    /// How long a queued job of each class may reasonably wait, by
    /// band — the patience window its queue budget is derived from.
    const PATIENCE: [Duration; JobClass::COUNT] = [
        Duration::from_millis(500),
        Duration::from_secs(2),
        Duration::from_secs(4),
    ];

    /// The observed mean service time of `class`, if any request of
    /// that class has completed yet.
    pub fn observed_service(&self, class: JobClass) -> Option<Duration> {
        match self.ewma_micros[class.band()].load(Ordering::Relaxed) {
            0 => None,
            us => Some(Duration::from_micros(us)),
        }
    }

    fn adaptive_deadline(&self, class: JobClass) -> Option<Duration> {
        let (floor, ceiling) = Self::DEADLINE_BANDS[class.band()]?;
        Some(match self.observed_service(class) {
            None => ceiling,
            Some(ewma) => (ewma * DEADLINE_SERVICE_MULTIPLE as u32).clamp(floor, ceiling),
        })
    }
}

impl AdmissionPolicy for AdaptiveAdmission {
    fn classify(&self, req: &Request) -> JobMeta {
        let (class, priority) = match req {
            Request::Grade { .. } => (JobClass::Interactive, 160),
            Request::Homework { .. } => (JobClass::Batch, 128),
            Request::Life { .. } => (JobClass::Batch, 112),
            Request::MemTrace { .. } => (JobClass::Batch, 120),
            Request::Reproduce { .. } => (JobClass::Bulk, 64),
        };
        let mut meta = JobMeta::for_class(class).with_priority(priority);
        if let Some(budget) = self.adaptive_deadline(class) {
            meta = meta.with_deadline(Instant::now() + budget);
        }
        meta
    }

    fn admit_limit(&self, class: JobClass, queue_capacity: usize) -> usize {
        let share = ClassAwareAdmission.admit_limit(class, queue_capacity);
        match self.observed_service(class) {
            None => share,
            Some(ewma) => {
                let drainable =
                    (Self::PATIENCE[class.band()].as_micros() / ewma.as_micros().max(1)) as usize;
                drainable.clamp(1, share)
            }
        }
    }

    fn displaces(&self, incoming: JobClass, queued: JobClass) -> bool {
        incoming > queued
    }

    fn observe(&self, class: JobClass, service: Duration) {
        let sample = (service.as_micros() as u64).max(1);
        let slot = &self.ewma_micros[class.band()];
        // Racy read-modify-write is fine: the EWMA is a smoothing
        // heuristic, and a lost update just weights a neighbor sample.
        let old = slot.load(Ordering::Relaxed);
        let new = if old == 0 {
            sample
        } else {
            (old * 7 + sample) / 8
        };
        slot.store(new, Ordering::Relaxed);
    }
}

/// The pre-refactor policy, kept as a measurable baseline: everything
/// is one class (`Batch`, default meta), every class may fill the whole
/// queue, nothing is ever displaced — admission is pure
/// first-come-first-served.
#[derive(Debug, Clone, Copy, Default)]
pub struct FcfsAdmission;

impl AdmissionPolicy for FcfsAdmission {
    fn classify(&self, _req: &Request) -> JobMeta {
        JobMeta::default()
    }

    fn admit_limit(&self, _class: JobClass, queue_capacity: usize) -> usize {
        queue_capacity
    }

    fn displaces(&self, _incoming: JobClass, _queued: JobClass) -> bool {
        false
    }
}

/// Sizing knobs for [`CourseServer::new`].
#[derive(Debug, Clone)]
pub struct ServerConfig {
    /// Worker threads executing requests.
    pub workers: usize,
    /// Admission bound: maximum requests queued or running at once.
    pub queue_capacity: usize,
    /// Result-cache shards.
    pub cache_shards: usize,
    /// LRU capacity per cache shard.
    pub cache_capacity_per_shard: usize,
    /// Which compute-once cache implementation to run
    /// ([`CacheImpl::ShardedMutex`], the default, or
    /// [`CacheImpl::Promise`] for the lock-free-hit-path
    /// `crates/rcache`). The `Promise` cache is sized to the same total
    /// budget, `cache_shards * cache_capacity_per_shard`.
    pub cache_impl: CacheImpl,
    /// Queue topology for the worker pool. Defaults to
    /// [`Scheduler::WorkStealing`]; use [`Scheduler::PriorityLanes`] to
    /// let the admission classes drive scheduling order, or
    /// [`Scheduler::SharedFifo`] for the single-queue baseline.
    pub scheduler: Scheduler,
    /// Request classification and budgeting. Defaults to
    /// [`ClassAwareAdmission`]; [`FcfsAdmission`] restores the old
    /// first-come-first-served behavior as a measurable baseline.
    pub admission: Arc<dyn AdmissionPolicy>,
    /// Optional seeded fault injection for tests: panic/stall handlers
    /// at chosen points. `None` (the default) injects nothing.
    pub fault_plan: Option<FaultPlan>,
    /// Metrics registry the server (and its pool) mirror their counters
    /// into. Defaults to a fresh live [`obs::Registry`] per server; pass
    /// [`obs::Registry::disabled`] to compile every recording site down
    /// to a never-taken branch (the "obs off" arm of experiment E15), or
    /// a shared registry to aggregate several servers.
    pub registry: obs::Registry,
    /// Capacity (in spans) of the request-lifecycle trace ring. Rounded
    /// up to a power of two; old spans are overwritten, so memory is
    /// bounded by construction.
    pub trace_capacity: usize,
}

impl Default for ServerConfig {
    fn default() -> Self {
        ServerConfig {
            workers: 4,
            queue_capacity: 64,
            cache_shards: 8,
            cache_capacity_per_shard: 32,
            cache_impl: CacheImpl::default(),
            scheduler: Scheduler::default(),
            admission: Arc::new(ClassAwareAdmission),
            fault_plan: None,
            registry: obs::Registry::new(),
            trace_capacity: 256,
        }
    }
}

/// An experiment runner, as exported by `bench::all_experiments`.
pub type ExperimentFn = fn() -> String;

/// A one-shot handle to a submitted request's eventual [`Response`].
pub struct Ticket {
    promise: Arc<Promise>,
}

impl std::fmt::Debug for Ticket {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Ticket")
            .field("resolved", &self.try_get().is_some())
            .finish()
    }
}

/// The resolution slot plus the callbacks waiting on it. Callbacks
/// registered before resolution run on the resolving thread (worker or
/// shedder) the moment the response publishes — the mechanism the TCP
/// front end uses to complete pipelined requests out of order without
/// parking a thread per request.
type ReadyCallback = Box<dyn FnOnce(&Response) + Send>;

#[derive(Default)]
struct PromiseState {
    response: Option<Response>,
    callbacks: Vec<ReadyCallback>,
}

struct Promise {
    state: Mutex<PromiseState>,
    done: Condvar,
}

impl Promise {
    fn new() -> Arc<Promise> {
        Arc::new(Promise {
            state: Mutex::new(PromiseState::default()),
            done: Condvar::new(),
        })
    }

    /// Publishes `resp` exactly once: runs `count` under the state lock
    /// (the counter-then-publish discipline — whoever sees the resolved
    /// ticket also sees the counters), then wakes blocking waiters and
    /// runs every registered callback outside the lock.
    fn resolve(&self, resp: Response, count: impl FnOnce()) {
        let callbacks = {
            let mut st = self.state.lock().expect("ticket mutex poisoned");
            count();
            st.response = Some(resp.clone());
            std::mem::take(&mut st.callbacks)
        };
        self.done.notify_all();
        for cb in callbacks {
            cb(&resp);
        }
    }
}

impl Ticket {
    /// Blocks until the request completes and returns its response.
    /// Every accepted request is eventually completed — run, shed
    /// under load, or drained through pool drop — so this cannot hang
    /// on a live server.
    pub fn wait(&self) -> Response {
        let mut st = self.promise.state.lock().expect("ticket mutex poisoned");
        loop {
            if let Some(resp) = st.response.as_ref() {
                return resp.clone();
            }
            st = self.promise.done.wait(st).expect("ticket mutex poisoned");
        }
    }

    /// Non-blocking poll.
    pub fn try_get(&self) -> Option<Response> {
        self.promise
            .state
            .lock()
            .expect("ticket mutex poisoned")
            .response
            .clone()
    }

    /// Registers `f` to run with the response when the ticket resolves
    /// (immediately, on this thread, if it already has). Resolution
    /// runs callbacks on the resolving thread — keep them short; the
    /// intended use is handing the response to another queue, the way
    /// the TCP front end forwards it to a connection's writer.
    pub fn on_ready(&self, f: impl FnOnce(&Response) + Send + 'static) {
        let mut st = self.promise.state.lock().expect("ticket mutex poisoned");
        if let Some(resp) = st.response.clone() {
            drop(st);
            f(&resp);
        } else {
            st.callbacks.push(Box::new(f));
        }
    }
}

/// Per-class request counters.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ClassServerStats {
    /// The class these counters describe.
    pub class: JobClass,
    /// Requests of this class admitted past backpressure.
    pub admitted: u64,
    /// Requests of this class completed by running their workload.
    pub completed: u64,
    /// Requests of this class displaced (shed) by higher-class
    /// admission while still queued; their tickets resolved with
    /// `ok: false`.
    pub shed: u64,
    /// Requests of this class rejected at admission (class budget or
    /// full queue with nothing shedable).
    pub rejected: u64,
    /// Jobs of this class that started past their deadline (pool
    /// counter; includes shed no-ops claimed after the deadline).
    pub deadline_missed: u64,
    /// Requests of this class currently admitted but neither completed
    /// nor shed (`admitted - completed - shed` at snapshot time).
    pub in_flight: u64,
}

/// Aggregate request counters plus the pool and cache snapshots.
#[derive(Debug, Clone)]
pub struct ServerStats {
    /// Requests admitted past backpressure.
    pub accepted: u64,
    /// Requests rejected by the admission bound or a class budget.
    pub rejected: u64,
    /// Requests whose workload ran to completion.
    pub completed: u64,
    /// Requests displaced while queued (tickets resolved `ok: false`).
    pub shed: u64,
    /// Per-class breakdown, in [`JobClass::ALL`] order (highest class
    /// first).
    pub per_class: Vec<ClassServerStats>,
    /// Result-cache counters.
    pub cache: CacheStats,
    /// Worker-pool counters.
    pub pool: PoolStats,
}

/// Per-class atomic counters (internal).
#[derive(Debug, Default)]
struct ClassLedger {
    admitted: AtomicU64,
    completed: AtomicU64,
    shed: AtomicU64,
    rejected: AtomicU64,
}

/// A queued-but-not-started request, registered so higher-class
/// admission can displace it. `taken` is the single-owner latch: the
/// worker closure and any shedder race to CAS it `false → true`;
/// exactly one side wins and resolves the ticket.
struct QueuedEntry {
    taken: Arc<AtomicBool>,
    promise: Arc<Promise>,
    /// When admission granted the slot — the start of the queue-wait
    /// stage, measured by whichever side (worker or shedder) wins the
    /// `taken` race.
    admitted_at: Instant,
    /// Trace span id (admission order) for the lifecycle record.
    span_id: u64,
}

/// Registry mirrors of the admission ledgers plus the lifecycle tracer
/// (PR 5). The completed/shed mirrors increment inside the same
/// count-then-publish closure as the ledgers, and the admitted mirror
/// increments only once the request is irrevocably admitted — so after
/// a drain, `serve.admitted.<class>` equals
/// `serve.completed.<class> + serve.shed.<class>` exactly like the
/// `ServerStats` ledgers.
struct ServeObs {
    admitted: [obs::Counter; JobClass::COUNT],
    completed: [obs::Counter; JobClass::COUNT],
    shed: [obs::Counter; JobClass::COUNT],
    rejected: [obs::Counter; JobClass::COUNT],
    tracer: obs::Tracer,
}

impl ServeObs {
    fn new(registry: &obs::Registry, trace_capacity: usize) -> ServeObs {
        let class_counters = |what: &str| {
            std::array::from_fn(|band| {
                registry.counter(&format!("serve.{what}.{}", JobClass::from_band(band)))
            })
        };
        let labels: Vec<String> = (0..JobClass::COUNT)
            .map(|band| JobClass::from_band(band).to_string())
            .collect();
        let label_refs: Vec<&str> = labels.iter().map(String::as_str).collect();
        ServeObs {
            admitted: class_counters("admitted"),
            completed: class_counters("completed"),
            shed: class_counters("shed"),
            rejected: class_counters("rejected"),
            tracer: obs::Tracer::new(trace_capacity, registry, &label_refs),
        }
    }
}

struct ServerInner {
    cache: ServerCache<Request, Response>,
    experiments: Vec<(String, ExperimentFn)>,
    fault_plan: Option<FaultPlan>,
    policy: Arc<dyn AdmissionPolicy>,
    slots: Semaphore,
    queue_capacity: usize,
    workers: usize,
    accepting: AtomicBool,
    accepted: AtomicU64,
    rejected: AtomicU64,
    completed: AtomicU64,
    shed: AtomicU64,
    per_class: [ClassLedger; JobClass::COUNT],
    /// Shed registry: queued-but-not-started requests, one deque per
    /// class band. Entries whose `taken` flag is set are dead weight,
    /// pruned opportunistically from both ends on insert.
    shed_queues: [Mutex<VecDeque<QueuedEntry>>; JobClass::COUNT],
    /// Submissions currently inside `submit` past the accepting check.
    /// Shutdown waits for this to reach zero before draining the pool,
    /// closing the admitted-but-not-yet-enqueued window.
    open: Mutex<usize>,
    open_zero: Condvar,
    /// The metrics registry this server reports into (shared with its
    /// pool, the tracer, and — through [`CourseServer::registry`] — the
    /// TCP front end).
    registry: obs::Registry,
    /// Registry mirrors of the ledgers plus the lifecycle tracer.
    obs: ServeObs,
}

impl ServerInner {
    /// Runs the workload for `req` (no caching at this layer). Both
    /// fault points fire inside the caller's panic isolation, so an
    /// injected panic resolves the ticket with an error and poisons
    /// only this request's cache slot.
    fn handle(&self, req: &Request) -> Response {
        if let Some(plan) = &self.fault_plan {
            plan.fire(FaultPoint::BeforeHandle);
        }
        let response = self.handle_inner(req);
        if let Some(plan) = &self.fault_plan {
            plan.fire(FaultPoint::AfterHandle);
        }
        response
    }

    fn handle_inner(&self, req: &Request) -> Response {
        match req {
            Request::Grade { submission } => {
                let report = autograde::grade(submission, &autograde::sum_array_rubric(), 200_000);
                Response {
                    ok: true,
                    body: report.render(),
                    cached: false,
                }
            }
            Request::Homework { generator, seed } => {
                match homework::generators()
                    .into_iter()
                    .find(|(name, _)| name == generator)
                {
                    Some((_, gen)) => {
                        let p = gen(*seed);
                        Response {
                            ok: true,
                            body: format!(
                                "[{}]\n{}\n--- solution ---\n{}",
                                p.set, p.prompt, p.solution
                            ),
                            cached: false,
                        }
                    }
                    None => Response {
                        ok: false,
                        body: format!("unknown homework generator {generator:?}"),
                        cached: false,
                    },
                }
            }
            Request::Life { w, h, steps, seed } => {
                if *w == 0
                    || *h == 0
                    || *steps == 0
                    || *w > LIFE_MAX_DIM
                    || *h > LIFE_MAX_DIM
                    || *steps > LIFE_MAX_STEPS
                {
                    return Response {
                        ok: false,
                        body: format!(
                            "life parameters out of range: {w}x{h} steps {steps} \
                             (limits {LIFE_MAX_DIM}x{LIFE_MAX_DIM}, {LIFE_MAX_STEPS} steps)"
                        ),
                        cached: false,
                    };
                }
                match life::grid::Grid::random(
                    *h as usize,
                    *w as usize,
                    0.35,
                    *seed,
                    life::grid::Boundary::Toroidal,
                ) {
                    Ok(grid) => {
                        let (last, rounds) = life::serial::run(grid, *steps as usize);
                        let (births, deaths) = rounds
                            .iter()
                            .fold((0u64, 0u64), |(b, d), r| (b + r.births, d + r.deaths));
                        // A cheap order-sensitive digest of the final
                        // board so clients (and parity tests) can
                        // compare full outcomes, not just populations.
                        let checksum = last.cells().iter().enumerate().fold(
                            0xcbf2_9ce4_8422_2325u64,
                            |acc, (i, &alive)| {
                                (acc ^ ((i as u64) << 1 | u64::from(alive)))
                                    .wrapping_mul(0x100_0000_01b3)
                            },
                        );
                        Response {
                            ok: true,
                            body: format!(
                                "life {w}x{h} seed {seed}: {steps} steps, \
                                 population {}, births {births}, deaths {deaths}, \
                                 checksum {checksum:016x}",
                                last.population()
                            ),
                            cached: false,
                        }
                    }
                    Err(e) => Response {
                        ok: false,
                        body: format!("life grid rejected: {e:?}"),
                        cached: false,
                    },
                }
            }
            Request::MemTrace {
                pattern,
                accesses,
                seed,
            } => {
                if *accesses == 0 || *accesses > MEMTRACE_MAX_ACCESSES {
                    return Response {
                        ok: false,
                        body: format!(
                            "memtrace accesses out of range: {accesses} \
                             (limit {MEMTRACE_MAX_ACCESSES})"
                        ),
                        cached: false,
                    };
                }
                // The seed shifts the base address (cache-line aligned)
                // so distinct seeds are distinct cache keys without
                // changing the work size.
                let base = (seed & 0xFFFF) * 64;
                let n = *accesses as usize;
                let trace = match pattern.as_str() {
                    "seq" => memsim::patterns::strided_trace(base, n, 4),
                    "stride" => memsim::patterns::strided_trace(base, n, 64),
                    "random" => memsim::patterns::random_trace(base, 1 << 20, n, *seed),
                    // 8 KiB working set = exactly the simulated cache's
                    // capacity; reps sized so the event count ≈ n.
                    "ws" => memsim::patterns::working_set_trace(base, 8192, 64, (n / 128).max(1)),
                    "rmw" => memsim::patterns::rmw_trace(base, n.div_ceil(2), 64),
                    other => {
                        return Response {
                            ok: false,
                            body: format!(
                                "unknown memtrace pattern {other:?} \
                                 (expected one of {MEMTRACE_PATTERNS:?})"
                            ),
                            cached: false,
                        }
                    }
                };
                let config = memsim::cache::CacheConfig::set_associative(64, 2, 64);
                let mut cache = memsim::cache::Cache::new(config).expect("valid static config");
                cache.run_trace(&trace);
                let stats = cache.stats();
                Response {
                    ok: true,
                    body: format!(
                        "memtrace {pattern} seed {seed}: {} accesses, \
                         {} hits, {} misses, hit rate {:.3}, amat {:.2}, cycles {}",
                        trace.len(),
                        stats.hits,
                        stats.misses,
                        stats.hit_rate(),
                        cache.amat(),
                        cache.total_cycles()
                    ),
                    cached: false,
                }
            }
            Request::Reproduce { id } => match self.experiments.iter().find(|(eid, _)| eid == id) {
                Some((_, run)) => Response {
                    ok: true,
                    body: run(),
                    cached: false,
                },
                None => Response {
                    ok: false,
                    body: format!("unknown experiment id {id:?} (is it registered?)"),
                    cached: false,
                },
            },
        }
    }

    /// In-flight requests of the class at `band`:
    /// admitted − completed − shed.
    fn class_in_flight(&self, band: usize) -> u64 {
        let ledger = &self.per_class[band];
        ledger
            .admitted
            .load(Ordering::SeqCst)
            .saturating_sub(ledger.completed.load(Ordering::SeqCst))
            .saturating_sub(ledger.shed.load(Ordering::SeqCst))
    }

    /// Builds the deadline-aware rejection for a request with `meta`.
    fn busy(&self, meta: &JobMeta) -> Rejected {
        let in_flight = self.queue_capacity - self.slots.available();
        // Rough honest base hint: one worker-sweep of the backlog.
        let base = ((in_flight as u64).saturating_mul(2) / self.workers as u64).max(1);
        let retry_after_ms = match meta.deadline {
            None => base,
            Some(deadline) => {
                let remaining = deadline
                    .saturating_duration_since(Instant::now())
                    .as_millis() as u64;
                if remaining == 0 {
                    // The deadline already passed: retrying cannot
                    // possibly be useful; say so honestly.
                    0
                } else {
                    // Never hint a backoff that lands the retry past
                    // the deadline: cap at half the remaining budget.
                    base.min((remaining / 2).max(1))
                }
            }
        };
        Rejected {
            in_flight,
            retry_after_ms,
            class: meta.class,
        }
    }

    /// Tries to displace the newest queued (not yet started) request of
    /// a class below `incoming`, lowest class first. On success the
    /// victim's ticket is resolved with an `ok: false` shed response
    /// and its admission slot is considered transferred to the caller
    /// (the victim's worker closure becomes a no-op that does *not*
    /// release the semaphore).
    fn shed_one_below(&self, incoming: JobClass) -> bool {
        for band in (0..JobClass::COUNT).rev() {
            let queued_class = JobClass::from_band(band);
            if !self.policy.displaces(incoming, queued_class) {
                continue;
            }
            let victim = {
                let mut q = self.shed_queues[band].lock().expect("shed queue poisoned");
                let mut found = None;
                // Newest victim first: the request that has invested
                // the least waiting is the cheapest to turn away.
                for i in (0..q.len()).rev() {
                    let taken = &q[i].taken;
                    if taken
                        .compare_exchange(false, true, Ordering::SeqCst, Ordering::SeqCst)
                        .is_ok()
                    {
                        found = q.remove(i);
                        break;
                    }
                }
                found
            };
            if let Some(entry) = victim {
                // Count before publishing under the promise lock, same
                // discipline as completion: whoever sees the resolved
                // ticket also sees the counter.
                entry.promise.resolve(
                    Response {
                        ok: false,
                        body: format!(
                            "{SHED_BODY_PREFIX}: queued {queued_class} request displaced by \
                             {incoming} admission; retry later"
                        ),
                        cached: false,
                    },
                    || {
                        self.shed.fetch_add(1, Ordering::SeqCst);
                        self.per_class[band].shed.fetch_add(1, Ordering::SeqCst);
                        self.obs.shed[band].inc();
                    },
                );
                let queue_us = entry.admitted_at.elapsed().as_micros() as u64;
                self.obs.tracer.record(&obs::SpanRecord {
                    id: entry.span_id,
                    class: band as u8,
                    outcome: obs::SpanOutcome::Shed,
                    queue_us,
                    service_us: 0,
                    total_us: queue_us,
                });
                return true;
            }
        }
        false
    }

    /// Registers a queued request as a displacement candidate, pruning
    /// already-taken entries from both ends while the lock is held.
    fn register_queued(&self, band: usize, entry: QueuedEntry) {
        let mut q = self.shed_queues[band].lock().expect("shed queue poisoned");
        while q.front().is_some_and(|e| e.taken.load(Ordering::SeqCst)) {
            q.pop_front();
        }
        while q.back().is_some_and(|e| e.taken.load(Ordering::SeqCst)) {
            q.pop_back();
        }
        q.push_back(entry);
    }
}

/// Decrements the open-submission count on drop, so even a panic
/// inside `submit` (e.g. an injected `BeforeEnqueue` fault) cannot
/// leave shutdown waiting forever.
struct OpenGuard<'a> {
    inner: &'a ServerInner,
}

impl<'a> OpenGuard<'a> {
    fn enter(inner: &'a ServerInner) -> OpenGuard<'a> {
        *inner.open.lock().expect("open counter poisoned") += 1;
        OpenGuard { inner }
    }
}

impl Drop for OpenGuard<'_> {
    fn drop(&mut self) {
        let mut open = self.inner.open.lock().expect("open counter poisoned");
        *open -= 1;
        if *open == 0 {
            self.inner.open_zero.notify_all();
        }
    }
}

/// The thread-pool job server for course workloads.
///
/// Lifecycle: [`CourseServer::submit`] classifies the request via the
/// configured [`AdmissionPolicy`] and either admits it (you get a
/// [`Ticket`]) or rejects it with a deadline-aware retry hint — it
/// never blocks the caller. Admitted requests run on the worker pool
/// with their class metadata (under [`Scheduler::PriorityLanes`] that
/// metadata decides execution order), consult the result cache
/// (compute-once per distinct request), and complete their ticket even
/// if the handler panics. Under pressure a higher-class submit may
/// displace a queued lower-class request; the victim's ticket resolves
/// with an `ok: false` shed response rather than hanging.
/// [`CourseServer::shutdown`] stops admission and drains in-flight
/// work; dropping the server without calling it drains too (pool drop
/// joins after draining).
pub struct CourseServer {
    inner: Arc<ServerInner>,
    pool: ThreadPool,
}

impl std::fmt::Debug for CourseServer {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("CourseServer")
            .field("workers", &self.inner.workers)
            .field("queue_capacity", &self.inner.queue_capacity)
            .field("policy", &self.inner.policy)
            .finish()
    }
}

impl CourseServer {
    /// Builds a server with no experiments registered (Grade and
    /// Homework requests work; Reproduce requests answer `ok: false`).
    pub fn new(config: ServerConfig) -> CourseServer {
        CourseServer::with_experiments(config, Vec::new())
    }

    /// Builds a server that can also run the given experiment registry
    /// (pass `bench::all_experiments()`-shaped pairs).
    pub fn with_experiments(
        config: ServerConfig,
        experiments: Vec<(String, ExperimentFn)>,
    ) -> CourseServer {
        assert!(config.workers > 0, "server needs at least one worker");
        assert!(
            config.queue_capacity > 0,
            "server needs queue capacity >= 1"
        );
        let inner = Arc::new(ServerInner {
            cache: ServerCache::build(
                config.cache_impl,
                config.cache_shards,
                config.cache_capacity_per_shard,
                config.fault_plan.clone(),
                &config.registry,
            ),
            experiments,
            fault_plan: config.fault_plan,
            policy: config.admission,
            slots: Semaphore::new(config.queue_capacity),
            queue_capacity: config.queue_capacity,
            workers: config.workers,
            accepting: AtomicBool::new(true),
            accepted: AtomicU64::new(0),
            rejected: AtomicU64::new(0),
            completed: AtomicU64::new(0),
            shed: AtomicU64::new(0),
            per_class: std::array::from_fn(|_| ClassLedger::default()),
            shed_queues: std::array::from_fn(|_| Mutex::new(VecDeque::new())),
            open: Mutex::new(0),
            open_zero: Condvar::new(),
            obs: ServeObs::new(&config.registry, config.trace_capacity),
            registry: config.registry.clone(),
        });
        CourseServer {
            inner,
            pool: ThreadPool::with_observability(
                config.workers,
                config.scheduler,
                &config.registry,
            ),
        }
    }

    /// The metrics registry this server mirrors its counters into. The
    /// TCP front end registers its wire-level metrics here too, so one
    /// snapshot covers admission, pool, stage, and network telemetry.
    pub fn registry(&self) -> &obs::Registry {
        &self.inner.registry
    }

    /// The request-lifecycle tracer: recent spans plus the per-stage
    /// duration histograms (`serve.stage.*`) they feed.
    pub fn tracer(&self) -> &obs::Tracer {
        &self.inner.obs.tracer
    }

    /// Submits a request without blocking, classified by the server's
    /// [`AdmissionPolicy`].
    ///
    /// * `Ok(ticket)` — admitted; the ticket resolves exactly once
    ///   (with the computed response, or an `ok: false` shed response
    ///   if a higher-class request displaced it while queued).
    /// * `Err(SubmitError::Busy(_))` — class budget or queue full with
    ///   nothing shedable; retry after the hinted backoff.
    /// * `Err(SubmitError::ShuttingDown(_))` — shutdown has begun.
    pub fn submit(&self, req: Request) -> Result<Ticket, SubmitError> {
        let meta = self.inner.policy.classify(&req);
        self.submit_with_meta(meta, req)
    }

    /// Like [`CourseServer::submit`], but with explicit scheduling
    /// metadata instead of the policy's classification (the class still
    /// counts against its per-class budget).
    pub fn submit_with_meta(&self, meta: JobMeta, req: Request) -> Result<Ticket, SubmitError> {
        let inner = &self.inner;
        // Count this submission as "open" for the whole admission
        // window, so shutdown cannot slip between our accepting check
        // and the job reaching the pool.
        let _open = OpenGuard::enter(inner);
        if !inner.accepting.load(Ordering::SeqCst) {
            return Err(SubmitError::ShuttingDown(ShuttingDown));
        }
        let band = meta.class.band();

        // Per-class budget: one class may not occupy the whole queue.
        let limit = inner.policy.admit_limit(meta.class, inner.queue_capacity) as u64;
        if inner.class_in_flight(band) >= limit {
            inner.rejected.fetch_add(1, Ordering::Relaxed);
            inner.per_class[band]
                .rejected
                .fetch_add(1, Ordering::Relaxed);
            inner.obs.rejected[band].inc();
            return Err(SubmitError::Busy(inner.busy(&meta)));
        }

        // Global bound: take a free slot, or displace a queued
        // lower-class request and inherit its slot.
        if !inner.slots.try_acquire() && !inner.shed_one_below(meta.class) {
            inner.rejected.fetch_add(1, Ordering::Relaxed);
            inner.per_class[band]
                .rejected
                .fetch_add(1, Ordering::Relaxed);
            inner.obs.rejected[band].inc();
            return Err(SubmitError::Busy(inner.busy(&meta)));
        }

        // The pre-increment value doubles as the trace span id:
        // admission order, unique per server.
        let span_id = inner.accepted.fetch_add(1, Ordering::SeqCst);
        inner.per_class[band]
            .admitted
            .fetch_add(1, Ordering::SeqCst);
        let admitted_at = Instant::now();

        let promise = Promise::new();
        let ticket = Ticket {
            promise: Arc::clone(&promise),
        };
        let taken = Arc::new(AtomicBool::new(false));
        inner.register_queued(
            band,
            QueuedEntry {
                taken: Arc::clone(&taken),
                promise: Arc::clone(&promise),
                admitted_at,
                span_id,
            },
        );
        if let Some(plan) = &inner.fault_plan {
            plan.fire(FaultPoint::BeforeEnqueue);
        }

        let job_inner = Arc::clone(&self.inner);
        let job_taken = Arc::clone(&taken);
        let submit_result = self.pool.execute_with_meta(meta, move || {
            // Lose the race against a shedder and there is nothing to
            // do: the ticket is already resolved and our admission slot
            // was transferred to the displacing request.
            if job_taken
                .compare_exchange(false, true, Ordering::SeqCst, Ordering::SeqCst)
                .is_err()
            {
                return;
            }
            // Winning the `taken` race ends the queue-wait stage and
            // starts the executing stage of the lifecycle span.
            let claimed_at = Instant::now();
            let ran_here = Arc::new(AtomicBool::new(false));
            let ran_flag = Arc::clone(&ran_here);
            let inner_for_job = Arc::clone(&job_inner);
            let req_for_job = req.clone();
            let run_start = Instant::now();
            let outcome = catch_unwind(AssertUnwindSafe(|| {
                inner_for_job.cache.get_or_insert_with(req_for_job, |r| {
                    ran_flag.store(true, Ordering::SeqCst);
                    inner_for_job.handle(&r)
                })
            }));
            let service = run_start.elapsed();
            // Feed the observed service time back to the policy — only
            // when the handler actually ran (a cache hit says nothing
            // about this class's cost).
            if ran_here.load(Ordering::SeqCst) {
                job_inner.policy.observe(meta.class, service);
            }
            let panicked = outcome.is_err();
            let response = match outcome {
                Ok(mut resp) => {
                    resp.cached = !ran_here.load(Ordering::SeqCst);
                    resp
                }
                Err(_) => Response {
                    ok: false,
                    body: "request handler panicked; see server logs".to_string(),
                    cached: false,
                },
            };
            // Count before publishing under the promise lock: whoever
            // sees the resolved ticket also sees the counter.
            promise.resolve(response, || {
                job_inner.completed.fetch_add(1, Ordering::SeqCst);
                job_inner.per_class[band]
                    .completed
                    .fetch_add(1, Ordering::SeqCst);
                job_inner.obs.completed[band].inc();
            });
            job_inner.slots.release();
            job_inner.obs.tracer.record(&obs::SpanRecord {
                id: span_id,
                class: band as u8,
                outcome: if panicked {
                    obs::SpanOutcome::Panicked
                } else {
                    obs::SpanOutcome::Completed
                },
                queue_us: claimed_at.duration_since(admitted_at).as_micros() as u64,
                service_us: service.as_micros() as u64,
                total_us: admitted_at.elapsed().as_micros() as u64,
            });
        });
        match submit_result {
            Ok(()) => {
                // Mirror `admitted` only once the request is irrevocably
                // admitted (counters cannot decrement the way the un-admit
                // path below rolls the ledger back), so the registry
                // balances after a drain: admitted = completed + shed.
                inner.obs.admitted[band].inc();
                Ok(ticket)
            }
            Err(_) => {
                // The pool refused (it is being dropped). If we still
                // own the entry, undo the admission honestly; if a
                // shedder beat us to it, the ticket already resolved
                // with a shed response — hand it out as accepted.
                if taken
                    .compare_exchange(false, true, Ordering::SeqCst, Ordering::SeqCst)
                    .is_ok()
                {
                    inner.accepted.fetch_sub(1, Ordering::SeqCst);
                    inner.per_class[band]
                        .admitted
                        .fetch_sub(1, Ordering::SeqCst);
                    inner.slots.release();
                    Err(SubmitError::ShuttingDown(ShuttingDown))
                } else {
                    // A shedder already resolved (and counted) this
                    // request; it stays admitted in the ledger, so
                    // mirror that here too.
                    inner.obs.admitted[band].inc();
                    Ok(ticket)
                }
            }
        }
    }

    /// Stops admission, waits out submissions already in flight through
    /// `submit` (the admitted-but-not-yet-enqueued window), then blocks
    /// until every accepted request has completed its ticket. The
    /// server can still report [`stats`] and resolve outstanding
    /// tickets afterwards; new submissions fail with
    /// [`SubmitError::ShuttingDown`].
    ///
    /// [`stats`]: CourseServer::stats
    pub fn shutdown(&self) {
        self.inner.accepting.store(false, Ordering::SeqCst);
        let mut open = self.inner.open.lock().expect("open counter poisoned");
        while *open > 0 {
            open = self
                .inner
                .open_zero
                .wait(open)
                .expect("open counter poisoned");
        }
        drop(open);
        self.pool.wait_empty();
    }

    /// The backoff hint (in ms) the server would attach to a rejection
    /// of a request with `meta` right now: backlog-proportional,
    /// deadline-capped, 0 once the deadline has passed. The TCP front
    /// end uses this to put an honest retry hint on wire-level shed
    /// responses, which carry no [`Rejected`] of their own.
    pub fn retry_hint(&self, meta: &JobMeta) -> u64 {
        self.inner.busy(meta).retry_after_ms
    }

    /// The promise cache's full counter set (waits, retries, and
    /// `locked_hits` — the hit path's exclusive-lock counter), or
    /// `None` when the server runs [`CacheImpl::ShardedMutex`].
    pub fn promise_cache_stats(&self) -> Option<rcache::Stats> {
        self.inner.cache.promise_stats()
    }

    /// A snapshot of request, cache, and pool counters.
    pub fn stats(&self) -> ServerStats {
        let pool = self.pool.stats();
        let per_class: Vec<ClassServerStats> = JobClass::ALL
            .iter()
            .map(|&class| {
                let band = class.band();
                let ledger = &self.inner.per_class[band];
                let admitted = ledger.admitted.load(Ordering::SeqCst);
                let completed = ledger.completed.load(Ordering::SeqCst);
                let shed = ledger.shed.load(Ordering::SeqCst);
                ClassServerStats {
                    class,
                    admitted,
                    completed,
                    shed,
                    rejected: ledger.rejected.load(Ordering::SeqCst),
                    deadline_missed: pool.per_class[band].deadline_missed,
                    in_flight: admitted.saturating_sub(completed).saturating_sub(shed),
                }
            })
            .collect();
        ServerStats {
            accepted: self.inner.accepted.load(Ordering::SeqCst),
            rejected: self.inner.rejected.load(Ordering::SeqCst),
            completed: self.inner.completed.load(Ordering::SeqCst),
            shed: self.inner.shed.load(Ordering::SeqCst),
            per_class,
            cache: self.inner.cache.stats(),
            pool,
        }
    }
}

/// Why [`CourseServer::submit`] declined a request.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SubmitError {
    /// Admission queue or class budget full — backpressure, retry
    /// later (or give up, if `retry_after_ms` is 0).
    Busy(Rejected),
    /// The server is shutting down; do not retry.
    ShuttingDown(ShuttingDown),
}

#[cfg(test)]
mod tests {
    use super::*;

    const GOOD_SUBMISSION: &str = r"
        main:
            movl $0, %eax
            movl $0, %edi
            cmpl $0, %ecx
            je done
        loop:
            addl (%esi,%edi,4), %eax
            addl $1, %edi
            cmpl %ecx, %edi
            jne loop
        done:
            hlt
    ";

    #[test]
    fn grades_a_real_submission_and_caches_the_result() {
        let server = CourseServer::new(ServerConfig::default());
        let req = Request::Grade {
            submission: GOOD_SUBMISSION.to_string(),
        };
        let first = server.submit(req.clone()).expect("accepted").wait();
        assert!(first.ok);
        assert!(
            first.body.contains("100%"),
            "unexpected grade: {}",
            first.body
        );
        assert!(!first.cached);
        let second = server.submit(req).expect("accepted").wait();
        assert!(second.cached, "warm request should hit the cache");
        assert_eq!(second.body, first.body);
    }

    #[test]
    fn homework_requests_use_real_generators() {
        let server = CourseServer::new(ServerConfig::default());
        let ok = server
            .submit(Request::Homework {
                generator: "binary_arithmetic".into(),
                seed: 7,
            })
            .expect("accepted")
            .wait();
        assert!(ok.ok);
        assert!(
            ok.body.contains("solution"),
            "missing solution: {}",
            ok.body
        );
        let bad = server
            .submit(Request::Homework {
                generator: "no_such_generator".into(),
                seed: 7,
            })
            .expect("accepted")
            .wait();
        assert!(!bad.ok);
    }

    #[test]
    fn reproduce_requests_need_a_registry() {
        let bare = CourseServer::new(ServerConfig::default());
        let miss = bare
            .submit(Request::Reproduce { id: "e6".into() })
            .unwrap()
            .wait();
        assert!(!miss.ok);

        fn fake_experiment() -> String {
            "E-fake: table".to_string()
        }
        let wired = CourseServer::with_experiments(
            ServerConfig::default(),
            vec![("e-fake".to_string(), fake_experiment as ExperimentFn)],
        );
        let hit = wired
            .submit(Request::Reproduce {
                id: "e-fake".into(),
            })
            .unwrap()
            .wait();
        assert!(hit.ok);
        assert_eq!(hit.body, "E-fake: table");
    }

    fn slow_experiment() -> String {
        std::thread::sleep(std::time::Duration::from_millis(100));
        "slow table".to_string()
    }

    #[test]
    fn registry_mirrors_balance_the_ledgers_and_spans_separate_stages() {
        let server = CourseServer::new(ServerConfig::default());
        let tickets: Vec<Ticket> = (0..12)
            .map(|seed| {
                server
                    .submit(Request::Homework {
                        generator: "binary_arithmetic".into(),
                        seed,
                    })
                    .expect("accepted")
            })
            .collect();
        for t in tickets {
            t.wait();
        }
        server.shutdown();

        let st = server.stats();
        let snap = server.registry().snapshot();
        for class in JobClass::ALL {
            let row = st.per_class[JobClass::ALL.iter().position(|&c| c == class).unwrap()];
            let admitted = snap.counter(&format!("serve.admitted.{class}")).unwrap();
            let completed = snap.counter(&format!("serve.completed.{class}")).unwrap();
            let shed = snap.counter(&format!("serve.shed.{class}")).unwrap();
            let rejected = snap.counter(&format!("serve.rejected.{class}")).unwrap();
            assert_eq!(admitted, row.admitted, "{class} admitted mirror");
            assert_eq!(completed, row.completed, "{class} completed mirror");
            assert_eq!(shed, row.shed, "{class} shed mirror");
            assert_eq!(rejected, row.rejected, "{class} rejected mirror");
            assert_eq!(admitted, completed + shed, "{class} drained balance");
        }
        // Pool mirrors cover every admitted request that reached a worker.
        assert_eq!(snap.counter("pool.claims"), Some(st.accepted));
        assert_eq!(snap.gauge("pool.queue_depth"), Some(0));

        // Homework defaults to the Batch class: its stage histograms hold
        // one span per request, and total >= queue + service per sample.
        let queue = snap.hist("serve.stage.queue_us.batch").unwrap();
        let service = snap.hist("serve.stage.service_us.batch").unwrap();
        let total = snap.hist("serve.stage.total_us.batch").unwrap();
        assert_eq!(queue.count(), 12);
        assert_eq!(service.count(), 12);
        assert_eq!(total.count(), 12);
        assert!(total.max() >= service.min());

        // The trace ring retains the most recent spans with real data.
        let spans = server.tracer().recent(12);
        assert_eq!(spans.len(), 12);
        for span in spans {
            assert_eq!(span.outcome, obs::SpanOutcome::Completed);
            assert!(span.total_us >= span.queue_us);
            assert!(span.total_us >= span.service_us);
        }
    }

    #[test]
    fn disabled_registry_records_nothing_but_serves_normally() {
        let server = CourseServer::new(ServerConfig {
            registry: obs::Registry::disabled(),
            ..ServerConfig::default()
        });
        let resp = server
            .submit(Request::Homework {
                generator: "binary_arithmetic".into(),
                seed: 1,
            })
            .expect("accepted")
            .wait();
        assert!(resp.ok);
        assert!(server.registry().snapshot().entries.is_empty());
        assert!(server.tracer().recent(10).is_empty());
        // The bespoke ledgers still work regardless of the registry.
        assert_eq!(server.stats().accepted, 1);
    }

    #[test]
    fn backpressure_rejects_with_retry_hint_instead_of_blocking() {
        // Two distinct slow requests fill the 1 worker + 1 queue slot;
        // admission is only released on completion, so the third submit
        // lands inside the 100ms compute window and must be rejected.
        // FCFS admission isolates the global bound from class budgets
        // (under the class-aware default, Bulk would cap at queue/2).
        let server = CourseServer::with_experiments(
            ServerConfig {
                workers: 1,
                queue_capacity: 2,
                admission: Arc::new(FcfsAdmission),
                ..ServerConfig::default()
            },
            vec![
                ("slow-a".to_string(), slow_experiment as ExperimentFn),
                ("slow-b".to_string(), slow_experiment as ExperimentFn),
            ],
        );
        let tickets: Vec<Ticket> = ["slow-a", "slow-b"]
            .iter()
            .map(|id| {
                server
                    .submit(Request::Reproduce { id: (*id).into() })
                    .expect("first requests fit the queue")
            })
            .collect();
        let rejected = match server.submit(Request::Reproduce {
            id: "slow-a".into(),
        }) {
            Err(SubmitError::Busy(r)) => r,
            other => panic!("expected Busy rejection, got {other:?}"),
        };
        assert!(rejected.retry_after_ms >= 1);
        assert!(rejected.in_flight >= 1);
        assert_eq!(server.stats().rejected, 1);
        for t in tickets {
            assert!(t.wait().ok);
        }
    }

    #[test]
    fn class_budget_rejects_bulk_before_the_queue_is_full() {
        // Class-aware admission: Bulk may hold at most half of an
        // 8-slot queue. The 5th bulk submit must bounce even though the
        // queue itself has room — and its rejection must say Bulk.
        let server = CourseServer::with_experiments(
            ServerConfig {
                workers: 1,
                queue_capacity: 8,
                ..ServerConfig::default()
            },
            vec![("slow-a".to_string(), slow_experiment as ExperimentFn)],
        );
        let _tickets: Vec<Ticket> = (0..4)
            .map(|_| {
                server
                    .submit(Request::Reproduce {
                        id: "slow-a".into(),
                    })
                    .expect("within the bulk budget")
            })
            .collect();
        let rejected = match server.submit(Request::Reproduce {
            id: "slow-a".into(),
        }) {
            Err(SubmitError::Busy(r)) => r,
            other => panic!("expected Busy from the class budget, got {other:?}"),
        };
        assert_eq!(rejected.class, JobClass::Bulk);
        // An interactive request still gets in: the queue has slots.
        let grade = server
            .submit(Request::Grade {
                submission: GOOD_SUBMISSION.to_string(),
            })
            .expect("interactive admission unaffected by the bulk budget");
        assert!(grade.wait().ok);
        let st = server.stats();
        assert_eq!(st.per_class[JobClass::Bulk.band()].rejected, 1);
        assert_eq!(st.per_class[JobClass::Interactive.band()].rejected, 0);
    }

    #[test]
    fn full_queue_sheds_the_newest_bulk_request_for_interactive_work() {
        // 1 worker, 4 slots: a running bulk job, a queued bulk job
        // (bulk budget = 4/2 = 2), and two queued batch jobs fill the
        // queue. An interactive submit must displace the *queued* bulk
        // request: its ticket resolves ok=false "shed", the grade is
        // admitted without any slot becoming free, and the counters
        // record the displacement per class.
        let server = CourseServer::with_experiments(
            ServerConfig {
                workers: 1,
                queue_capacity: 4,
                scheduler: Scheduler::PriorityLanes,
                ..ServerConfig::default()
            },
            vec![
                ("slow-a".to_string(), slow_experiment as ExperimentFn),
                ("slow-b".to_string(), slow_experiment as ExperimentFn),
            ],
        );
        let running = server
            .submit(Request::Reproduce {
                id: "slow-a".into(),
            })
            .unwrap();
        // Give the worker time to claim slow-a so slow-b stays queued.
        std::thread::sleep(std::time::Duration::from_millis(20));
        let queued = server
            .submit(Request::Reproduce {
                id: "slow-b".into(),
            })
            .unwrap();
        let batches: Vec<Ticket> = (0..2)
            .map(|seed| {
                server
                    .submit(Request::Homework {
                        generator: "fork_puzzle".into(),
                        seed,
                    })
                    .expect("batch work fits its budget")
            })
            .collect();
        let grade = server
            .submit(Request::Grade {
                submission: GOOD_SUBMISSION.to_string(),
            })
            .expect("interactive work displaces queued bulk work");
        let shed_resp = queued.wait();
        assert!(!shed_resp.ok, "displaced ticket must resolve ok=false");
        assert!(
            shed_resp.body.contains("shed under load"),
            "{}",
            shed_resp.body
        );
        assert!(grade.wait().ok);
        assert!(running.wait().ok, "the running bulk request is never shed");
        for t in batches {
            assert!(t.wait().ok, "batch work is not collateral damage");
        }
        server.shutdown();
        let st = server.stats();
        assert_eq!(st.shed, 1);
        let bulk = st.per_class[JobClass::Bulk.band()];
        assert_eq!(bulk.shed, 1);
        assert_eq!(bulk.admitted, 2);
        assert_eq!(bulk.completed, 1);
        assert_eq!(bulk.in_flight, 0);
        let interactive = st.per_class[JobClass::Interactive.band()];
        assert_eq!(interactive.admitted, 1);
        assert_eq!(interactive.completed, 1);
        // Global ledger balances: accepted = completed + shed.
        assert_eq!(st.accepted, st.completed + st.shed);
    }

    #[test]
    fn rejection_hints_respect_the_request_deadline() {
        // Fill the queue with interactive work (nothing interactive can
        // shed), then submit more: the hint for a deadline-carrying
        // class must never exceed half its remaining deadline budget.
        let server = CourseServer::with_experiments(
            ServerConfig {
                workers: 1,
                queue_capacity: 2,
                ..ServerConfig::default()
            },
            Vec::new(),
        );
        // Two distinct slow grades: invalid source still grades (0%),
        // so use the fault-free slow path via homework instead. Grade
        // requests are fast; hold the queue with *interactive-class*
        // metadata on slow reproduce handlers.
        let slow_meta = JobMeta::for_class(JobClass::Interactive);
        let _a = server
            .submit_with_meta(
                slow_meta,
                Request::Homework {
                    generator: "binary_arithmetic".into(),
                    seed: 1,
                },
            )
            .unwrap();
        let _b = server
            .submit_with_meta(
                slow_meta,
                Request::Homework {
                    generator: "binary_arithmetic".into(),
                    seed: 2,
                },
            )
            .unwrap();
        // Deadline 40ms out: the hint must be <= 20ms even though the
        // base backlog hint could be larger, and a passed deadline
        // hints 0.
        let tight = JobMeta::for_class(JobClass::Interactive)
            .with_deadline(Instant::now() + Duration::from_millis(40));
        match server.submit_with_meta(
            tight,
            Request::Grade {
                submission: GOOD_SUBMISSION.to_string(),
            },
        ) {
            Err(SubmitError::Busy(r)) => {
                assert!(
                    r.retry_after_ms <= 20,
                    "hint {} ignores deadline",
                    r.retry_after_ms
                );
            }
            Ok(_) => {} // queue drained first on a fast machine: fine
            other => panic!("unexpected: {other:?}"),
        }
        let expired = JobMeta::for_class(JobClass::Interactive)
            .with_deadline(Instant::now() - Duration::from_millis(1));
        match server.submit_with_meta(
            expired,
            Request::Grade {
                submission: GOOD_SUBMISSION.to_string(),
            },
        ) {
            Err(SubmitError::Busy(r)) => {
                assert_eq!(r.retry_after_ms, 0, "passed deadline must hint 0");
            }
            Ok(_) => {}
            other => panic!("unexpected: {other:?}"),
        }
    }

    #[test]
    fn shutdown_drains_every_accepted_request() {
        let server = CourseServer::new(ServerConfig {
            workers: 2,
            queue_capacity: 32,
            ..ServerConfig::default()
        });
        let tickets: Vec<Ticket> = (0..20)
            .map(|seed| {
                server
                    .submit(Request::Homework {
                        generator: "fork_puzzle".into(),
                        seed,
                    })
                    .expect("accepted")
            })
            .collect();
        server.shutdown();
        // After shutdown: no new work...
        assert!(matches!(
            server.submit(Request::Homework {
                generator: "fork_puzzle".into(),
                seed: 999
            }),
            Err(SubmitError::ShuttingDown(_))
        ));
        // ...and every accepted ticket is already resolved.
        for t in &tickets {
            let resp = t
                .try_get()
                .expect("shutdown returned before a ticket resolved");
            assert!(resp.ok);
        }
        let stats = server.stats();
        assert_eq!(stats.completed, 20);
        assert_eq!(stats.accepted, 20);
    }

    #[test]
    fn handler_panic_resolves_the_ticket_with_an_error() {
        fn bomb() -> String {
            panic!("experiment exploded")
        }
        let server = CourseServer::with_experiments(
            ServerConfig::default(),
            vec![("boom".to_string(), bomb as ExperimentFn)],
        );
        let resp = server
            .submit(Request::Reproduce { id: "boom".into() })
            .unwrap()
            .wait();
        assert!(!resp.ok);
        assert!(resp.body.contains("panicked"));
        // Server still serves other requests afterwards.
        let ok = server
            .submit(Request::Homework {
                generator: "binary_arithmetic".into(),
                seed: 1,
            })
            .unwrap()
            .wait();
        assert!(ok.ok);
        assert_eq!(
            server.stats().pool.panicked,
            0,
            "panic was contained before the pool"
        );
    }

    #[test]
    fn on_ready_fires_for_computed_shed_and_already_resolved_tickets() {
        use std::sync::mpsc;
        // Computed: callback registered before completion.
        let server = CourseServer::with_experiments(
            ServerConfig {
                workers: 1,
                queue_capacity: 4,
                scheduler: Scheduler::PriorityLanes,
                ..ServerConfig::default()
            },
            vec![
                ("slow-a".to_string(), slow_experiment as ExperimentFn),
                ("slow-b".to_string(), slow_experiment as ExperimentFn),
            ],
        );
        let (tx, rx) = mpsc::channel();
        let running = server
            .submit(Request::Reproduce {
                id: "slow-a".into(),
            })
            .unwrap();
        let tx1 = tx.clone();
        running.on_ready(move |resp| tx1.send(("computed", resp.ok)).unwrap());
        // Shed: a queued bulk request displaced by interactive work
        // must fire its callback from the shedding thread.
        std::thread::sleep(Duration::from_millis(20));
        let queued = server
            .submit(Request::Reproduce {
                id: "slow-b".into(),
            })
            .unwrap();
        let tx2 = tx.clone();
        queued.on_ready(move |resp| tx2.send(("shed", resp.ok)).unwrap());
        for _ in 0..3 {
            let _ = server.submit(Request::Homework {
                generator: "fork_puzzle".into(),
                seed: 1,
            });
        }
        server
            .submit(Request::Grade {
                submission: GOOD_SUBMISSION.to_string(),
            })
            .expect("interactive displaces queued bulk");
        let mut got: Vec<(&str, bool)> = vec![rx.recv().unwrap(), rx.recv().unwrap()];
        got.sort_unstable();
        assert_eq!(got, vec![("computed", true), ("shed", false)]);
        // Already resolved: callback runs immediately on this thread.
        let done = server
            .submit(Request::Grade {
                submission: GOOD_SUBMISSION.to_string(),
            })
            .unwrap();
        done.wait();
        let hit = Arc::new(AtomicBool::new(false));
        let flag = Arc::clone(&hit);
        done.on_ready(move |resp| flag.store(resp.ok, Ordering::SeqCst));
        assert!(
            hit.load(Ordering::SeqCst),
            "late on_ready must fire synchronously"
        );
        server.shutdown();
    }

    #[test]
    fn adaptive_admission_derives_budgets_and_deadlines_from_observations() {
        let policy = AdaptiveAdmission::default();
        // Before any observation: static shares and ceiling deadlines.
        assert_eq!(policy.admit_limit(JobClass::Bulk, 64), 32);
        assert_eq!(policy.admit_limit(JobClass::Interactive, 64), 64);
        let cold = policy.classify(&Request::Grade {
            submission: String::new(),
        });
        assert_eq!(cold.class, JobClass::Interactive);
        let cold_budget = cold
            .deadline
            .unwrap()
            .saturating_duration_since(Instant::now());
        assert!(
            cold_budget > Duration::from_millis(400),
            "cold deadline should be the ceiling"
        );
        // Slow bulk observations shrink the bulk budget: 500ms EWMA
        // against 4s patience leaves room for ~8 queued jobs, not 32.
        for _ in 0..32 {
            policy.observe(JobClass::Bulk, Duration::from_millis(500));
        }
        let bulk_limit = policy.admit_limit(JobClass::Bulk, 64);
        assert!(
            (1..=10).contains(&bulk_limit),
            "bulk budget should shrink, got {bulk_limit}"
        );
        // Fast interactive observations tighten the grade deadline to
        // 4x the EWMA, but never below the 25ms floor.
        for _ in 0..32 {
            policy.observe(JobClass::Interactive, Duration::from_millis(2));
        }
        let warm = policy.classify(&Request::Grade {
            submission: String::new(),
        });
        let warm_budget = warm
            .deadline
            .unwrap()
            .saturating_duration_since(Instant::now());
        assert!(
            warm_budget <= Duration::from_millis(30),
            "warm deadline should track 4x EWMA, got {warm_budget:?}"
        );
        assert!(
            warm_budget >= Duration::from_millis(20),
            "deadline floor violated"
        );
        // Bulk never carries a deadline, observed or not.
        assert_eq!(
            policy
                .classify(&Request::Reproduce { id: "e1".into() })
                .deadline,
            None
        );
    }

    #[test]
    fn adaptive_admission_learns_through_a_live_server() {
        let policy = Arc::new(AdaptiveAdmission::default());
        let server = CourseServer::new(ServerConfig {
            workers: 2,
            admission: Arc::clone(&policy) as Arc<dyn AdmissionPolicy>,
            ..ServerConfig::default()
        });
        assert!(policy.observed_service(JobClass::Batch).is_none());
        for seed in 0..4 {
            let resp = server
                .submit(Request::Homework {
                    generator: "binary_arithmetic".into(),
                    seed,
                })
                .expect("admitted")
                .wait();
            assert!(resp.ok);
        }
        let ewma = policy
            .observed_service(JobClass::Batch)
            .expect("server must feed observations back to the policy");
        assert!(ewma > Duration::ZERO);
        // A cache hit is not an observation: re-submitting an identical
        // request must leave the EWMA untouched.
        let cached = server
            .submit(Request::Homework {
                generator: "binary_arithmetic".into(),
                seed: 0,
            })
            .expect("admitted")
            .wait();
        assert!(cached.cached);
        assert_eq!(policy.observed_service(JobClass::Batch), Some(ewma));
        server.shutdown();
    }

    #[test]
    fn requests_reach_the_pool_with_their_admission_class() {
        // The meta assigned at admission must be the meta the pool
        // schedules and counts with — the whole point of the refactor.
        let server = CourseServer::new(ServerConfig {
            scheduler: Scheduler::PriorityLanes,
            ..ServerConfig::default()
        });
        server
            .submit(Request::Grade {
                submission: GOOD_SUBMISSION.to_string(),
            })
            .unwrap()
            .wait();
        server
            .submit(Request::Homework {
                generator: "fork_puzzle".into(),
                seed: 3,
            })
            .unwrap()
            .wait();
        server.shutdown();
        let pool = server.stats().pool;
        assert_eq!(pool.per_class[JobClass::Interactive.band()].submitted, 1);
        assert_eq!(pool.per_class[JobClass::Batch.band()].submitted, 1);
        assert_eq!(pool.per_class[JobClass::Bulk.band()].submitted, 0);
    }
}
