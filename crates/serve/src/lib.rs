//! # serve — the thread-pool job server for course workloads
//!
//! The course ends where servers begin: Lab 10's pthreads lesson
//! ("divide the work, synchronize, join") is exactly the skeleton of a
//! request-serving system. This crate grows that lesson into the
//! repo's first serving subsystem, shaped after the cs431/cs492
//! "hello server" homework (`thread_pool.rs` + `cache.rs`) and built
//! only from this workspace's own primitives and `std`:
//!
//! * [`pool`] — a long-lived [`pool::ThreadPool`] with panic-isolating
//!   workers, [`pool::ThreadPool::wait_empty`], drain-on-drop, and
//!   per-worker + aggregate counters;
//! * [`cache`] — a sharded compute-once [`cache::Cache`]
//!   (`get_or_insert_with` runs the closure exactly once per key;
//!   distinct keys never block each other) with per-shard LRU
//!   eviction and hit/miss/eviction stats;
//! * [`server`] — the [`server::CourseServer`] front end: bounded
//!   admission with reject-and-retry-hint backpressure, result caching
//!   by request key, and graceful drain-everything shutdown over the
//!   course's real workloads (grade / homework / reproduce);
//! * [`par`] — pool-backed `par_map` / `par_for_chunks` / `par_reduce`
//!   so repeated data-parallel calls reuse workers instead of spawning
//!   threads per call, with grained variants that oversubscribe the
//!   pool so stealing balances ragged chunk costs;
//! * [`fault`] — seeded [`fault::FaultPlan`] injection (panic/stall at
//!   chosen handler points) for testing server invariants under
//!   adversarial schedules.
//!
//! Since PR 2 the pool schedules with per-worker deques plus work
//! stealing ([`pool::Scheduler::WorkStealing`], the default); the old
//! single shared queue survives as [`pool::Scheduler::SharedFifo`] for
//! baseline comparisons. See `DESIGN.md` for the deque/steal protocol
//! and the parking discipline's no-lost-wakeup argument.
//!
//! Since PR 4 the server is reachable over TCP: the `net` crate wraps
//! a [`server::CourseServer`] in a length-prefixed wire protocol and a
//! blocking socket front end, completing pipelined requests out of
//! order via [`server::Ticket::on_ready`] callbacks. Admission can now
//! also *adapt*: [`server::AdaptiveAdmission`] derives per-class queue
//! budgets and deadline defaults from an EWMA of observed service
//! times (fed through [`server::AdmissionPolicy::observe`]), and the
//! [`fault::FaultPlan`] reaches the wire (reader/writer stalls,
//! connection drops) so the drain-everything shutdown invariant is
//! tested against socket-level failure too.
//!
//! Since PR 3 every job carries a [`pool::JobMeta`] (`class`,
//! `priority`, `deadline`) threaded through the whole pipeline:
//! requests are classified by a pluggable
//! [`server::AdmissionPolicy`] (per-class queue budgets,
//! lowest-class-first load shedding, deadline-aware retry hints), the
//! pool's [`pool::Scheduler::PriorityLanes`] topology schedules by
//! class with an anti-starvation aging rule, and nested submissions —
//! including every [`par`] entry point called from inside a job —
//! inherit the caller's class instead of demoting to the default. Both
//! the server and the pool keep per-class counters so the scheduling
//! win is measured (experiment E13), not asserted.
//!
//! Since PR 5 the whole pipeline reports into the zero-dependency
//! `obs` crate: the server mirrors its admission/completion/shed
//! ledgers into named [`obs::Registry`] counters (same
//! count-then-publish discipline, so a drained snapshot balances), the
//! pool mirrors claims/local-hits/steals plus a live queue-depth
//! gauge, and every request records a lifecycle span (admitted →
//! queued → claimed → executing → completed/shed) into a bounded
//! [`obs::Tracer`] ring feeding per-stage duration histograms — so
//! queue-wait and service-time are separable per class. Pass
//! [`obs::Registry::disabled`] in [`server::ServerConfig`] and every
//! recording site collapses to a never-taken branch; experiment E15
//! measures that overhead.
//!
//! Since PR 7 the pool can schedule over real lock-free Chase–Lev
//! deques ([`pool::Scheduler::LockFree`], backed by [`deque`]): owner
//! LIFO push/pop with no lock on the fast path, CAS-only steals, the
//! canonical SeqCst fence deciding the last-element race, and
//! epoch/quiescence retirement of grown buffers. This is the crate's
//! first deliberate `unsafe` (confined to [`deque`]; the rest of the
//! crate still denies it), landed with the DESIGN.md §12 ordering
//! argument, adversarial stress/parity tests, and a ThreadSanitizer
//! harness (`scripts/tsan.sh`). Experiment E17 measures the win over
//! the mutex deques under a contended submit/claim/steal workload.
//!
//! ```
//! use serve::server::{CourseServer, Request, ServerConfig};
//!
//! let server = CourseServer::new(ServerConfig::default());
//! let ticket = server
//!     .submit(Request::Homework { generator: "binary_arithmetic".into(), seed: 31 })
//!     .expect("admitted");
//! let response = ticket.wait();
//! assert!(response.ok);
//! server.shutdown();
//! ```

// `deny`, not `forbid`: the `deque` module opts back in (scoped
// `allow`) for the Chase–Lev slot copies — everything else stays safe.
#![deny(unsafe_code)]
#![deny(missing_docs)]

pub mod cache;
pub mod deque;
pub mod fault;
pub mod par;
pub mod pool;
pub mod server;

pub use cache::{Cache, CacheImpl, ServerCache};
pub use fault::{FaultPlan, FaultPoint};
pub use pool::{JobClass, JobMeta, Scheduler, ThreadPool};
pub use server::{
    AdaptiveAdmission, AdmissionPolicy, ClassAwareAdmission, CourseServer, FcfsAdmission, Request,
    Response, ServerConfig, SHED_BODY_PREFIX,
};
