//! The Lab 8 command parser and the Lab 9 Unix shell.
//!
//! Lab 8: "The parser must tokenize a string and detect the presence of an
//! ampersand character (indicating that the command should be run in the
//! background)." Lab 9: "students build a shell that executes commands in
//! the foreground and background. They use fork and execvp to start child
//! processes and waitpid to reap terminated processes. We also require
//! students to implement a simplified history mechanism."

use crate::kernel::{Kernel, KernelError};
use crate::proc::Pid;

/// A parsed command line.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParsedCommand {
    /// The tokens (command name + arguments).
    pub tokens: Vec<String>,
    /// `&` present: run in the background.
    pub background: bool,
}

/// Parser errors.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ParseError {
    /// Nothing but whitespace.
    Empty,
    /// `&` somewhere other than the end.
    StrayAmpersand,
}

impl std::fmt::Display for ParseError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ParseError::Empty => write!(f, "empty command"),
            ParseError::StrayAmpersand => write!(f, "'&' must end the command"),
        }
    }
}

impl std::error::Error for ParseError {}

/// Tokenizes a command line and detects a trailing `&` — the Lab 8
/// library. `&` may be attached to the last token (`sleep 5&`).
pub fn parse_command(line: &str) -> Result<ParsedCommand, ParseError> {
    let mut tokens: Vec<String> = line.split_whitespace().map(str::to_string).collect();
    if tokens.is_empty() {
        return Err(ParseError::Empty);
    }
    let mut background = false;
    // Detach a trailing '&' glued to the final token.
    if let Some(last) = tokens.last_mut() {
        if last != "&" && last.ends_with('&') {
            last.truncate(last.len() - 1);
            tokens.push("&".to_string());
            if tokens[tokens.len() - 2].is_empty() {
                tokens.remove(tokens.len() - 2);
            }
        }
    }
    if let Some(pos) = tokens.iter().position(|t| t == "&") {
        if pos != tokens.len() - 1 {
            return Err(ParseError::StrayAmpersand);
        }
        background = true;
        tokens.pop();
        if tokens.is_empty() {
            return Err(ParseError::Empty);
        }
    }
    Ok(ParsedCommand { tokens, background })
}

/// A shell session over a [`Kernel`].
#[derive(Debug)]
pub struct Shell {
    /// The kernel this shell drives.
    pub kernel: Kernel,
    /// The shell's own PID in the hierarchy (jobs are its children).
    pub pid: Pid,
    history: Vec<String>,
    /// Live background jobs: `(pid, command)`.
    jobs: Vec<(Pid, String)>,
    /// Completed jobs: `(pid, command, exit_code)`.
    pub completed: Vec<(Pid, String, i32)>,
}

/// What one shell line produced.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ShellEvent {
    /// Foreground job ran to completion with this exit code.
    Finished(Pid, i32),
    /// Background job launched.
    Launched(Pid),
    /// A builtin produced output.
    Builtin(String),
    /// Parse or spawn error, rendered.
    Error(String),
}

impl Shell {
    /// Wraps a kernel, registering the shell in the process hierarchy.
    pub fn new(mut kernel: Kernel) -> Shell {
        let pid = kernel.register_external();
        Shell {
            kernel,
            pid,
            history: Vec::new(),
            jobs: Vec::new(),
            completed: Vec::new(),
        }
    }

    /// The history list (most recent last), 1-indexed for `!n`.
    pub fn history(&self) -> &[String] {
        &self.history
    }

    /// Current background jobs.
    pub fn jobs(&self) -> &[(Pid, String)] {
        &self.jobs
    }

    /// Expands `!!` and `!n` against history.
    fn expand_history(&self, line: &str) -> Result<String, String> {
        let line = line.trim();
        if line == "!!" {
            return self
                .history
                .last()
                .cloned()
                .ok_or_else(|| "history is empty".to_string());
        }
        if let Some(num) = line.strip_prefix('!') {
            if let Ok(n) = num.trim().parse::<usize>() {
                return self
                    .history
                    .get(n.wrapping_sub(1))
                    .cloned()
                    .ok_or_else(|| format!("no history entry {n}"));
            }
        }
        Ok(line.to_string())
    }

    /// Reaps any zombie children (run on every prompt, like Lab 9's
    /// SIGCHLD handler loop).
    pub fn reap_background(&mut self) -> Vec<(Pid, String, i32)> {
        let mut done = Vec::new();
        while let Some((child, code)) = self.kernel.reap_one(self.pid) {
            let cmd = self
                .jobs
                .iter()
                .find(|(p, _)| *p == child)
                .map(|(_, c)| c.clone())
                .unwrap_or_default();
            self.jobs.retain(|(p, _)| *p != child);
            done.push((child, cmd, code));
        }
        self.completed.extend(done.clone());
        done
    }

    /// Executes one command line, like a prompt interaction.
    pub fn run_line(&mut self, line: &str) -> ShellEvent {
        // Reap finished background jobs first (the Lab 9 discipline).
        self.reap_background();

        let line = match self.expand_history(line) {
            Ok(l) => l,
            Err(e) => return ShellEvent::Error(e),
        };

        let parsed = match parse_command(&line) {
            Ok(p) => p,
            Err(e) => return ShellEvent::Error(e.to_string()),
        };
        self.history.push(line.clone());

        // Builtins.
        match parsed.tokens[0].as_str() {
            "history" => {
                let text = self
                    .history
                    .iter()
                    .enumerate()
                    .map(|(i, c)| format!("{:>3}  {c}", i + 1))
                    .collect::<Vec<_>>()
                    .join("\n");
                return ShellEvent::Builtin(text);
            }
            "ps" => {
                return ShellEvent::Builtin(self.kernel.process_tree());
            }
            "kill" => {
                let target = parsed.tokens.get(1).and_then(|t| t.parse::<Pid>().ok());
                return match target {
                    Some(pid) => match self.kernel.send_signal(pid, crate::proc::Sig::Term) {
                        Ok(()) => {
                            // Let the signal land (the victim must run once).
                            for _ in 0..50 {
                                if !self.kernel.step() {
                                    break;
                                }
                            }
                            self.reap_background();
                            ShellEvent::Builtin(format!("sent SIGTERM to {pid}"))
                        }
                        Err(e) => ShellEvent::Error(e.to_string()),
                    },
                    None => ShellEvent::Error("usage: kill PID".to_string()),
                };
            }
            "jobs" => {
                let text = self
                    .jobs
                    .iter()
                    .map(|(p, c)| format!("[{p}] {c}"))
                    .collect::<Vec<_>>()
                    .join("\n");
                return ShellEvent::Builtin(text);
            }
            _ => {}
        }

        // fork + exec the named program.
        let child = match self.kernel.spawn_child_of(self.pid, &parsed.tokens[0]) {
            Ok(pid) => pid,
            Err(KernelError::NoSuchProgram(name)) => {
                return ShellEvent::Error(format!("{name}: command not found"))
            }
            Err(e) => return ShellEvent::Error(e.to_string()),
        };

        if parsed.background {
            self.jobs.push((child, line));
            ShellEvent::Launched(child)
        } else {
            // Foreground: waitpid(child) — run the kernel until it exits.
            let code = loop {
                if let Some(p) = self.kernel.reap_one(self.pid) {
                    if p.0 == child {
                        break p.1;
                    }
                    // A background job finished while we waited.
                    let cmd = self
                        .jobs
                        .iter()
                        .find(|(j, _)| *j == p.0)
                        .map(|(_, c)| c.clone())
                        .unwrap_or_default();
                    self.jobs.retain(|(j, _)| *j != p.0);
                    self.completed.push((p.0, cmd, p.1));
                    continue;
                }
                if !self.kernel.step() {
                    break -1; // deadlock safety: child never exits
                }
            };
            ShellEvent::Finished(child, code)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::proc::{program, Op};

    fn demo_kernel() -> Kernel {
        let mut k = Kernel::new(2);
        k.register_program(
            "ls",
            program(vec![Op::Print("file_a  file_b".into()), Op::Exit(0)]),
        );
        k.register_program(
            "sleepy",
            program(vec![
                Op::Compute(20),
                Op::Print("done napping".into()),
                Op::Exit(0),
            ]),
        );
        k.register_program("false", program(vec![Op::Exit(1)]));
        k
    }

    #[test]
    fn parser_basic() {
        let p = parse_command("ls -l /tmp").unwrap();
        assert_eq!(p.tokens, vec!["ls", "-l", "/tmp"]);
        assert!(!p.background);
    }

    #[test]
    fn parser_ampersand_forms() {
        assert!(parse_command("sleep 5 &").unwrap().background);
        let glued = parse_command("sleep 5&").unwrap();
        assert!(glued.background);
        assert_eq!(glued.tokens, vec!["sleep", "5"]);
        assert!(!parse_command("ls").unwrap().background);
    }

    #[test]
    fn parser_errors() {
        assert_eq!(parse_command("   "), Err(ParseError::Empty));
        assert_eq!(parse_command("&"), Err(ParseError::Empty));
        assert_eq!(parse_command("a & b"), Err(ParseError::StrayAmpersand));
    }

    #[test]
    fn foreground_runs_to_completion() {
        let mut sh = Shell::new(demo_kernel());
        match sh.run_line("ls") {
            ShellEvent::Finished(_, 0) => {}
            other => panic!("expected Finished(_, 0), got {other:?}"),
        }
        assert!(sh.kernel.output().iter().any(|(_, s)| s.contains("file_a")));
    }

    #[test]
    fn exit_codes_propagate() {
        let mut sh = Shell::new(demo_kernel());
        match sh.run_line("false") {
            ShellEvent::Finished(_, 1) => {}
            other => panic!("expected exit 1, got {other:?}"),
        }
    }

    #[test]
    fn background_job_runs_while_foreground_works() {
        let mut sh = Shell::new(demo_kernel());
        let bg = match sh.run_line("sleepy &") {
            ShellEvent::Launched(pid) => pid,
            other => panic!("expected Launched, got {other:?}"),
        };
        assert_eq!(sh.jobs().len(), 1);
        // Foreground command: the kernel runs both (time-sharing).
        sh.run_line("ls");
        // Keep prompting until the background job is reaped.
        for _ in 0..50 {
            if sh.jobs().is_empty() {
                break;
            }
            sh.run_line("ls");
        }
        assert!(sh.jobs().is_empty(), "background job eventually reaped");
        assert!(sh.completed.iter().any(|(p, _, _)| *p == bg));
        assert!(sh.kernel.output().iter().any(|(_, s)| s == "done napping"));
    }

    #[test]
    fn command_not_found() {
        let mut sh = Shell::new(demo_kernel());
        match sh.run_line("vim") {
            ShellEvent::Error(e) => assert!(e.contains("command not found")),
            other => panic!("expected error, got {other:?}"),
        }
    }

    #[test]
    fn history_builtin_and_expansion() {
        let mut sh = Shell::new(demo_kernel());
        sh.run_line("ls");
        sh.run_line("false");
        match sh.run_line("history") {
            ShellEvent::Builtin(text) => {
                assert!(text.contains("1  ls"));
                assert!(text.contains("2  false"));
            }
            other => panic!("expected builtin, got {other:?}"),
        }
        // !1 re-runs ls.
        match sh.run_line("!1") {
            ShellEvent::Finished(_, 0) => {}
            other => panic!("expected rerun of ls, got {other:?}"),
        }
        // !! re-runs the last command (ls again).
        match sh.run_line("!!") {
            ShellEvent::Finished(_, 0) => {}
            other => panic!("{other:?}"),
        }
        assert_eq!(sh.history().last().unwrap(), "ls");
    }

    #[test]
    fn history_errors() {
        let mut sh = Shell::new(demo_kernel());
        assert!(matches!(sh.run_line("!!"), ShellEvent::Error(_)));
        assert!(matches!(sh.run_line("!99"), ShellEvent::Error(_)));
    }

    #[test]
    fn ps_shows_the_hierarchy() {
        let mut sh = Shell::new(demo_kernel());
        sh.run_line("sleepy &");
        match sh.run_line("ps") {
            ShellEvent::Builtin(tree) => {
                assert!(tree.contains("pid 1"), "{tree}");
                assert!(tree.lines().count() >= 3, "init + shell + job:\n{tree}");
            }
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn kill_terminates_a_background_job() {
        let mut k = demo_kernel();
        k.register_program(
            "forever",
            crate::proc::program(vec![Op::Compute(1_000_000), Op::Exit(0)]),
        );
        let mut sh = Shell::new(k);
        let pid = match sh.run_line("forever &") {
            ShellEvent::Launched(p) => p,
            other => panic!("{other:?}"),
        };
        match sh.run_line(&format!("kill {pid}")) {
            ShellEvent::Builtin(msg) => assert!(msg.contains("SIGTERM")),
            other => panic!("{other:?}"),
        }
        // The job is gone from the job table after reaping.
        sh.reap_background();
        assert!(sh.jobs().is_empty(), "killed job reaped");
        assert!(matches!(sh.run_line("kill 9999"), ShellEvent::Error(_)));
        assert!(matches!(sh.run_line("kill"), ShellEvent::Error(_)));
    }

    #[test]
    fn jobs_builtin_lists_running() {
        let mut sh = Shell::new(demo_kernel());
        sh.run_line("sleepy &");
        match sh.run_line("jobs") {
            ShellEvent::Builtin(text) => assert!(text.contains("sleepy"), "{text}"),
            other => panic!("{other:?}"),
        }
    }
}
