//! Process types: PIDs, states, signals, and the deterministic
//! instruction scripts processes execute.
//!
//! The course's homework asks students to "trace through C code examples
//! with fork, exit, wait, draw \[the\] process hierarchy, \[and\] identify
//! possible outputs from concurrent processes". [`Op`] is that C-example
//! vocabulary: a process is a list of ops, `Fork` duplicates the script
//! and program counter (child and parent then diverge via
//! [`Op::JumpIfChild`], exactly like branching on `fork()`'s return
//! value), and `Print` output interleavings depend on scheduling.

/// Process identifier. PID 1 is `init`.
pub type Pid = u32;

/// The signals the course covers.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Sig {
    /// Child terminated (delivered automatically by the kernel).
    Chld,
    /// Interrupt (Ctrl-C).
    Int,
    /// Termination request.
    Term,
    /// User-defined signal 1 (for handler demos).
    Usr1,
}

/// What a registered handler does when its signal is delivered.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Handler {
    /// Restore the default action.
    Default,
    /// Ignore the signal.
    Ignore,
    /// Print a message and continue (the classic demo handler).
    Print(String),
    /// Reap one zombie child if present (the SIGCHLD handler of Lab 9).
    Reap,
}

/// One step of a process script.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Op {
    /// Burn `n` time units of CPU.
    Compute(u32),
    /// Emit a line of output (tagged with the emitting PID).
    Print(String),
    /// `fork()`: duplicate this process. The child resumes at the next op
    /// with its fork-child flag set.
    Fork,
    /// Jump to the op at `target` if this process is the child of the most
    /// recent fork (i.e. `fork()` returned 0).
    JumpIfChild(usize),
    /// Unconditional jump.
    Jump(usize),
    /// Replace this process's script with the named program (`exec`).
    Exec(String),
    /// `exit(code)`: terminate, becoming a zombie until reaped.
    Exit(i32),
    /// `wait()`: block until any child terminates; reap it.
    Wait,
    /// Register a handler for a signal.
    OnSignal(Sig, Handler),
    /// Send a signal to another process (by hierarchy role).
    Kill(KillTarget, Sig),
    /// Yield the CPU voluntarily (end of time slice).
    Yield,
    /// Block for `n` ticks of simulated I/O (disk/network wait): the CPU
    /// is free for other processes meanwhile — the I/O-bound process
    /// model from the scheduling discussion.
    Sleep(u32),
}

/// Whom `Op::Kill` targets (scripts can't know concrete PIDs up front).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum KillTarget {
    /// The most recently forked live child.
    LastChild,
    /// The parent process.
    Parent,
    /// This process itself.
    Me,
}

/// Process lifecycle states, as drawn in lecture.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ProcState {
    /// Runnable, waiting for the CPU.
    Ready,
    /// Currently on the CPU.
    Running,
    /// Blocked in `wait()` for a child to exit.
    Blocked,
    /// Exited but not yet reaped by its parent.
    Zombie,
}

/// Convenience constructor for a program script.
pub fn program(ops: Vec<Op>) -> Vec<Op> {
    ops
}

/// The classic lecture example: fork, both sides print, parent waits.
///
/// ```c
/// pid = fork();
/// if (pid == 0) { printf("child\n"); exit(0); }
/// printf("parent\n"); wait(NULL);
/// ```
pub fn fork_print_wait() -> Vec<Op> {
    vec![
        Op::Fork,
        Op::JumpIfChild(4),
        Op::Print("parent".into()),
        Op::Jump(6),
        Op::Print("child".into()),
        Op::Exit(0),
        Op::Wait,
        Op::Exit(0),
    ]
}

/// The double-fork exam favorite: how many processes? (Four.)
pub fn double_fork() -> Vec<Op> {
    vec![Op::Fork, Op::Fork, Op::Print("hello".into()), Op::Exit(0)]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn op_construction() {
        let p = fork_print_wait();
        assert_eq!(p.len(), 8);
        assert_eq!(p[0], Op::Fork);
        assert!(matches!(p[1], Op::JumpIfChild(4)));
    }

    #[test]
    fn states_are_distinct() {
        assert_ne!(ProcState::Ready, ProcState::Zombie);
        assert_ne!(ProcState::Running, ProcState::Blocked);
    }
}
