//! The kernel: PCBs, the process hierarchy, fork/exec/exit/wait, zombies
//! and orphans, signal delivery, and a round-robin time-sharing scheduler
//! with a recorded execution timeline.

use crate::proc::{Handler, KillTarget, Op, Pid, ProcState, Sig};
use std::collections::{BTreeMap, HashMap, VecDeque};

/// PID of `init`, the root of the hierarchy and adopter of orphans.
pub const INIT: Pid = 1;

/// Kernel API errors.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum KernelError {
    /// Unknown program name in `spawn`/`exec`.
    NoSuchProgram(String),
    /// Unknown or dead process.
    NoSuchProcess(Pid),
    /// `run_until_idle` exhausted its fuel (livelock/deadlock in scripts).
    OutOfFuel,
}

impl std::fmt::Display for KernelError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            KernelError::NoSuchProgram(n) => write!(f, "no such program {n:?}"),
            KernelError::NoSuchProcess(p) => write!(f, "no such process {p}"),
            KernelError::OutOfFuel => write!(f, "kernel ran out of fuel"),
        }
    }
}

impl std::error::Error for KernelError {}

/// A process control block.
#[derive(Debug, Clone)]
pub struct Pcb {
    /// Process id.
    pub pid: Pid,
    /// Parent process id.
    pub ppid: Pid,
    /// The script being executed.
    pub ops: Vec<Op>,
    /// Program counter into `ops`.
    pub pc: usize,
    /// Lifecycle state.
    pub state: ProcState,
    /// Exit code once a zombie.
    pub exit_code: Option<i32>,
    /// True in the child between a fork and the next fork.
    pub is_fork_child: bool,
    /// The most recently forked child (for `KillTarget::LastChild`).
    pub last_child: Option<Pid>,
    /// Registered signal handlers.
    pub handlers: HashMap<Sig, Handler>,
    /// Undelivered signals.
    pub pending: VecDeque<Sig>,
    /// Remaining units of an in-progress `Compute`.
    compute_left: u32,
    /// Tick at which a `Sleep` completes (process is Blocked until then).
    wake_at: Option<u64>,
}

/// A reap record: `(parent, child, exit_code)`.
pub type ReapRecord = (Pid, Pid, i32);

/// The simulated kernel.
#[derive(Debug, Clone)]
pub struct Kernel {
    procs: BTreeMap<Pid, Pcb>,
    ready: VecDeque<Pid>,
    programs: HashMap<String, Vec<Op>>,
    output: Vec<(Pid, String)>,
    /// Current simulated time (ticks).
    pub time: u64,
    quantum: u32,
    slice_used: u32,
    current: Option<Pid>,
    last_run: Option<Pid>,
    context_switches: u64,
    timeline: Vec<(u64, Pid)>,
    next_pid: Pid,
    reaps: Vec<ReapRecord>,
}

impl Kernel {
    /// A kernel with the given scheduling quantum (ticks per slice).
    /// PID 1 (`init`) exists from boot and adopts orphans.
    pub fn new(quantum: u32) -> Kernel {
        assert!(quantum > 0, "quantum must be positive");
        let mut procs = BTreeMap::new();
        procs.insert(
            INIT,
            Pcb {
                pid: INIT,
                ppid: 0,
                ops: vec![],
                pc: 0,
                state: ProcState::Blocked, // init sits in wait() forever
                exit_code: None,
                is_fork_child: false,
                last_child: None,
                handlers: HashMap::new(),
                pending: VecDeque::new(),
                compute_left: 0,
                wake_at: None,
            },
        );
        Kernel {
            procs,
            ready: VecDeque::new(),
            programs: HashMap::new(),
            output: Vec::new(),
            time: 0,
            quantum,
            slice_used: 0,
            current: None,
            last_run: None,
            context_switches: 0,
            timeline: Vec::new(),
            next_pid: 2,
            reaps: Vec::new(),
        }
    }

    /// Registers a named program (the "filesystem" of executables).
    pub fn register_program(&mut self, name: &str, ops: Vec<Op>) {
        self.programs.insert(name.to_string(), ops);
    }

    /// Spawns a program as a child of `init`.
    pub fn spawn(&mut self, program: &str) -> Result<Pid, KernelError> {
        self.spawn_child_of(INIT, program)
    }

    /// Spawns a program as a child of an existing process (what the shell
    /// uses so its jobs are *its* children).
    pub fn spawn_child_of(&mut self, parent: Pid, program: &str) -> Result<Pid, KernelError> {
        if !self.procs.contains_key(&parent) {
            return Err(KernelError::NoSuchProcess(parent));
        }
        let ops = self
            .programs
            .get(program)
            .cloned()
            .ok_or_else(|| KernelError::NoSuchProgram(program.to_string()))?;
        let pid = self.alloc_pid();
        self.procs.insert(
            pid,
            Pcb {
                pid,
                ppid: parent,
                ops,
                pc: 0,
                state: ProcState::Ready,
                exit_code: None,
                is_fork_child: false,
                last_child: None,
                handlers: HashMap::new(),
                pending: VecDeque::new(),
                compute_left: 0,
                wake_at: None,
            },
        );
        if let Some(p) = self.procs.get_mut(&parent) {
            p.last_child = Some(pid);
        }
        self.ready.push_back(pid);
        Ok(pid)
    }

    /// Registers an externally driven process (the interactive shell):
    /// it exists in the hierarchy but is never scheduled.
    pub fn register_external(&mut self) -> Pid {
        let pid = self.alloc_pid();
        self.procs.insert(
            pid,
            Pcb {
                pid,
                ppid: INIT,
                ops: vec![],
                pc: 0,
                state: ProcState::Blocked,
                exit_code: None,
                is_fork_child: false,
                last_child: None,
                handlers: HashMap::new(),
                pending: VecDeque::new(),
                compute_left: 0,
                wake_at: None,
            },
        );
        pid
    }

    fn alloc_pid(&mut self) -> Pid {
        let pid = self.next_pid;
        self.next_pid += 1;
        pid
    }

    /// All output lines emitted so far, in emission order.
    pub fn output(&self) -> &[(Pid, String)] {
        &self.output
    }

    /// Context switches performed.
    pub fn context_switches(&self) -> u64 {
        self.context_switches
    }

    /// The scheduling timeline: which PID ran at each tick.
    pub fn timeline(&self) -> &[(u64, Pid)] {
        &self.timeline
    }

    /// Reaps recorded so far.
    pub fn reaps(&self) -> &[ReapRecord] {
        &self.reaps
    }

    /// Looks up a PCB.
    pub fn process(&self, pid: Pid) -> Result<&Pcb, KernelError> {
        self.procs.get(&pid).ok_or(KernelError::NoSuchProcess(pid))
    }

    /// Live (non-reaped) PIDs.
    pub fn pids(&self) -> Vec<Pid> {
        self.procs.keys().copied().collect()
    }

    /// Sends a signal to a process (the external `kill` command).
    pub fn send_signal(&mut self, pid: Pid, sig: Sig) -> Result<(), KernelError> {
        let p = self
            .procs
            .get_mut(&pid)
            .ok_or(KernelError::NoSuchProcess(pid))?;
        if p.state != ProcState::Zombie {
            p.pending.push_back(sig);
            // Signals wake blocked (scheduled) processes so handlers run;
            // externally driven processes (empty script) stay parked.
            if p.state == ProcState::Blocked && !p.ops.is_empty() {
                p.state = ProcState::Ready;
                self.ready.push_back(pid);
            }
        }
        Ok(())
    }

    /// Reaps one zombie child of `parent`, if any. Returns `(child, code)`.
    pub fn reap_one(&mut self, parent: Pid) -> Option<(Pid, i32)> {
        let zombie = self
            .procs
            .values()
            .find(|p| p.ppid == parent && p.state == ProcState::Zombie)
            .map(|p| p.pid)?;
        let code = self.procs[&zombie].exit_code.unwrap_or(0);
        self.procs.remove(&zombie);
        self.reaps.push((parent, zombie, code));
        Some((zombie, code))
    }

    fn has_children(&self, pid: Pid) -> bool {
        self.procs.values().any(|p| p.ppid == pid)
    }

    /// Terminates `pid` with `code`: zombie state, SIGCHLD to the parent,
    /// orphan reparenting to init, auto-reap if the parent is init.
    fn terminate(&mut self, pid: Pid, code: i32) {
        let ppid = match self.procs.get_mut(&pid) {
            Some(p) => {
                p.state = ProcState::Zombie;
                p.exit_code = Some(code);
                p.pending.clear();
                p.ppid
            }
            None => return,
        };
        // Orphans go to init (and any zombie orphans are reaped by init).
        let orphans: Vec<Pid> = self
            .procs
            .values()
            .filter(|p| p.ppid == pid)
            .map(|p| p.pid)
            .collect();
        for o in orphans {
            if let Some(p) = self.procs.get_mut(&o) {
                p.ppid = INIT;
                if p.state == ProcState::Zombie {
                    self.reap_one(INIT);
                }
            }
        }
        if self.current == Some(pid) {
            self.current = None;
            self.slice_used = 0;
        }
        // Notify the parent.
        if ppid == INIT || !self.procs.contains_key(&ppid) {
            self.reap_one(INIT);
            return;
        }
        let parent_waiting = {
            let parent = self.procs.get_mut(&ppid).expect("parent exists");
            parent.pending.push_back(Sig::Chld);
            // Blocked *in a Wait op* — externally driven processes (the
            // shell) have empty scripts and reap explicitly instead.
            parent.state == ProcState::Blocked && !parent.ops.is_empty()
        };
        if parent_waiting {
            // Parent is in wait(): reap on its behalf and unblock it past
            // the Wait op.
            self.reap_one(ppid);
            let parent = self.procs.get_mut(&ppid).expect("parent exists");
            // Drop the Chld we just queued: wait() consumed the event.
            parent.pending.pop_back();
            parent.pc += 1;
            parent.state = ProcState::Ready;
            self.ready.push_back(ppid);
        }
    }

    /// Delivers pending signals to `pid`. Returns false if it died.
    fn deliver_signals(&mut self, pid: Pid) -> bool {
        loop {
            let (sig, handler) = {
                let p = match self.procs.get_mut(&pid) {
                    Some(p) => p,
                    None => return false,
                };
                match p.pending.pop_front() {
                    Some(s) => {
                        let h = p.handlers.get(&s).cloned().unwrap_or(Handler::Default);
                        (s, h)
                    }
                    None => return true,
                }
            };
            match handler {
                Handler::Ignore => {}
                Handler::Default => match sig {
                    Sig::Chld | Sig::Usr1 => {} // default: ignore
                    Sig::Int | Sig::Term => {
                        self.terminate(pid, 128 + 2);
                        return false;
                    }
                },
                Handler::Print(msg) => {
                    self.output.push((pid, format!("[signal {sig:?}] {msg}")));
                }
                Handler::Reap => {
                    self.reap_one(pid);
                }
            }
        }
    }

    /// True if any process can still make progress.
    pub fn has_runnable(&self) -> bool {
        self.current.is_some() || !self.ready.is_empty()
    }

    /// Wakes sleepers whose timer has expired.
    fn wake_sleepers(&mut self) {
        let now = self.time;
        let due: Vec<Pid> = self
            .procs
            .values()
            .filter(|p| p.state == ProcState::Blocked && p.wake_at.is_some_and(|w| w <= now))
            .map(|p| p.pid)
            .collect();
        for pid in due {
            let p = self.procs.get_mut(&pid).expect("just listed");
            p.wake_at = None;
            p.state = ProcState::Ready;
            self.ready.push_back(pid);
        }
    }

    /// True if any process is asleep on the timer.
    fn has_sleepers(&self) -> bool {
        self.procs
            .values()
            .any(|p| p.state == ProcState::Blocked && p.wake_at.is_some())
    }

    /// Advances the machine by one tick. Returns false when idle.
    pub fn step(&mut self) -> bool {
        self.wake_sleepers();
        // Pick a process if the CPU is free.
        if self.current.is_none() {
            match self.ready.pop_front() {
                Some(pid) => {
                    if self.last_run.is_some() && self.last_run != Some(pid) {
                        self.context_switches += 1;
                    }
                    self.current = Some(pid);
                    self.slice_used = 0;
                    if let Some(p) = self.procs.get_mut(&pid) {
                        p.state = ProcState::Running;
                    }
                }
                None => {
                    if self.has_sleepers() {
                        // CPU idle, clock still runs (everyone is in I/O).
                        self.time += 1;
                        return true;
                    }
                    return false;
                }
            }
        }
        let pid = self.current.expect("just set");
        self.last_run = Some(pid);

        if !self.deliver_signals(pid) {
            return true; // died to a signal; tick consumed
        }

        self.time += 1;
        self.timeline.push((self.time, pid));
        self.slice_used += 1;

        self.execute_op(pid);

        // Quantum expiry: preempt if still running.
        if self.current == Some(pid) && self.slice_used >= self.quantum {
            let p = self.procs.get_mut(&pid).expect("running process");
            p.state = ProcState::Ready;
            self.ready.push_back(pid);
            self.current = None;
            self.slice_used = 0;
        }
        true
    }

    fn execute_op(&mut self, pid: Pid) {
        let op = {
            let p = self.procs.get(&pid).expect("current process");
            p.ops.get(p.pc).cloned()
        };
        let op = match op {
            Some(op) => op,
            None => {
                // Fell off the end: implicit exit(0).
                self.terminate(pid, 0);
                return;
            }
        };
        match op {
            Op::Compute(n) => {
                let p = self.procs.get_mut(&pid).expect("current");
                if p.compute_left == 0 {
                    p.compute_left = n;
                }
                p.compute_left -= 1;
                if p.compute_left == 0 {
                    p.pc += 1;
                }
            }
            Op::Print(msg) => {
                self.output.push((pid, msg));
                self.procs.get_mut(&pid).expect("current").pc += 1;
            }
            Op::Fork => {
                let child_pid = self.alloc_pid();
                let child = {
                    let p = self.procs.get_mut(&pid).expect("current");
                    p.pc += 1;
                    p.is_fork_child = false;
                    p.last_child = Some(child_pid);
                    Pcb {
                        pid: child_pid,
                        ppid: pid,
                        ops: p.ops.clone(),
                        pc: p.pc,
                        state: ProcState::Ready,
                        exit_code: None,
                        is_fork_child: true,
                        last_child: None,
                        handlers: p.handlers.clone(),
                        pending: VecDeque::new(),
                        compute_left: 0,
                        wake_at: None,
                    }
                };
                self.procs.insert(child_pid, child);
                self.ready.push_back(child_pid);
            }
            Op::JumpIfChild(t) => {
                let p = self.procs.get_mut(&pid).expect("current");
                p.pc = if p.is_fork_child { t } else { p.pc + 1 };
            }
            Op::Jump(t) => {
                self.procs.get_mut(&pid).expect("current").pc = t;
            }
            Op::Exec(name) => match self.programs.get(&name).cloned() {
                Some(ops) => {
                    let p = self.procs.get_mut(&pid).expect("current");
                    p.ops = ops;
                    p.pc = 0;
                    p.compute_left = 0;
                    // exec resets handlers, like the real thing.
                    p.handlers.clear();
                }
                None => {
                    self.output.push((pid, format!("exec: {name}: not found")));
                    self.terminate(pid, 127);
                }
            },
            Op::Exit(code) => self.terminate(pid, code),
            Op::Wait => {
                if let Some((_child, _code)) = self.reap_one(pid) {
                    self.procs.get_mut(&pid).expect("current").pc += 1;
                } else if self.has_children(pid) {
                    let p = self.procs.get_mut(&pid).expect("current");
                    p.state = ProcState::Blocked;
                    self.current = None;
                    self.slice_used = 0;
                } else {
                    // No children: wait returns immediately (-1 in C).
                    self.procs.get_mut(&pid).expect("current").pc += 1;
                }
            }
            Op::OnSignal(sig, handler) => {
                let p = self.procs.get_mut(&pid).expect("current");
                p.handlers.insert(sig, handler);
                p.pc += 1;
            }
            Op::Kill(target, sig) => {
                let target_pid = {
                    let p = self.procs.get(&pid).expect("current");
                    match target {
                        KillTarget::LastChild => p.last_child,
                        KillTarget::Parent => Some(p.ppid),
                        KillTarget::Me => Some(pid),
                    }
                };
                self.procs.get_mut(&pid).expect("current").pc += 1;
                if let Some(t) = target_pid {
                    let _ = self.send_signal(t, sig);
                }
            }
            Op::Yield => {
                let p = self.procs.get_mut(&pid).expect("current");
                p.pc += 1;
                p.state = ProcState::Ready;
                self.ready.push_back(pid);
                self.current = None;
                self.slice_used = 0;
            }
            Op::Sleep(n) => {
                let wake = self.time + n as u64;
                let p = self.procs.get_mut(&pid).expect("current");
                p.pc += 1;
                p.state = ProcState::Blocked;
                p.wake_at = Some(wake);
                self.current = None;
                self.slice_used = 0;
            }
        }
    }

    /// Runs until no process is runnable, bounded by `fuel` ticks.
    pub fn run_until_idle(&mut self, fuel: u64) -> bool {
        for _ in 0..fuel {
            if !self.step() {
                return true;
            }
        }
        !self.has_runnable()
    }

    /// Renders the timeline as an ASCII Gantt chart — one row per PID,
    /// one column per tick — the timesharing picture from lecture.
    pub fn gantt(&self) -> String {
        if self.timeline.is_empty() {
            return String::from("(no execution yet)\n");
        }
        let mut pids: Vec<Pid> = self.timeline.iter().map(|(_, p)| *p).collect();
        pids.sort_unstable();
        pids.dedup();
        let end = self.timeline.last().expect("nonempty").0;
        let mut out = String::new();
        for pid in pids {
            let mut row = format!("pid {pid:>3} |");
            let mut ran = vec![false; end as usize + 1];
            for &(t, p) in &self.timeline {
                if p == pid {
                    ran[t as usize] = true;
                }
            }
            for &cell in ran.iter().take(end as usize + 1).skip(1) {
                row.push(if cell { '#' } else { '.' });
            }
            out.push_str(&row);
            out.push('\n');
        }
        out.push_str(&format!(
            "        +{} ticks, {} switches\n",
            end, self.context_switches
        ));
        out
    }

    /// Renders the process hierarchy as an indented tree (the homework's
    /// "draw the process hierarchy").
    pub fn process_tree(&self) -> String {
        let mut out = String::new();
        self.tree_walk(INIT, 0, &mut out);
        out
    }

    fn tree_walk(&self, pid: Pid, depth: usize, out: &mut String) {
        if let Some(p) = self.procs.get(&pid) {
            let state = match p.state {
                ProcState::Ready => "ready",
                ProcState::Running => "running",
                ProcState::Blocked => "blocked",
                ProcState::Zombie => "zombie",
            };
            out.push_str(&format!("{}pid {} [{}]\n", "  ".repeat(depth), pid, state));
            let mut kids: Vec<Pid> = self
                .procs
                .values()
                .filter(|c| c.ppid == pid && c.pid != pid)
                .map(|c| c.pid)
                .collect();
            kids.sort_unstable();
            for k in kids {
                self.tree_walk(k, depth + 1, out);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::proc::{double_fork, fork_print_wait, program};

    fn kernel_with(name: &str, ops: Vec<Op>) -> Kernel {
        let mut k = Kernel::new(3);
        k.register_program(name, ops);
        k
    }

    #[test]
    fn single_process_prints_and_exits() {
        let mut k = kernel_with(
            "p",
            program(vec![
                Op::Print("a".into()),
                Op::Print("b".into()),
                Op::Exit(0),
            ]),
        );
        let pid = k.spawn("p").unwrap();
        assert!(k.run_until_idle(100));
        assert_eq!(k.output(), &[(pid, "a".into()), (pid, "b".into())]);
        // Exited child of init is auto-reaped.
        assert!(k.process(pid).is_err());
    }

    #[test]
    fn fork_print_wait_produces_both_lines() {
        let mut k = kernel_with("f", fork_print_wait());
        let parent = k.spawn("f").unwrap();
        assert!(k.run_until_idle(1000));
        let lines: Vec<&str> = k.output().iter().map(|(_, s)| s.as_str()).collect();
        assert_eq!(lines.len(), 2);
        assert!(lines.contains(&"parent"));
        assert!(lines.contains(&"child"));
        // The child was reaped by the parent, not init.
        assert!(k.reaps().iter().any(|(p, _, _)| *p == parent));
    }

    #[test]
    fn double_fork_makes_four_printers() {
        let mut k = kernel_with("d", double_fork());
        k.spawn("d").unwrap();
        assert!(k.run_until_idle(1000));
        let hellos = k.output().iter().filter(|(_, s)| s == "hello").count();
        assert_eq!(hellos, 4, "fork-fork quadruples");
    }

    #[test]
    fn zombie_until_reaped() {
        // Child exits; parent computes before waiting → child is a zombie
        // in the interim.
        let mut k = kernel_with(
            "z",
            program(vec![
                Op::Fork,
                Op::JumpIfChild(5),
                Op::Compute(8),
                Op::Wait,
                Op::Exit(0),
                Op::Exit(7), // child exits immediately
            ]),
        );
        let parent = k.spawn("z").unwrap();
        // Run a few ticks: child should be done, parent still computing.
        for _ in 0..8 {
            k.step();
        }
        let zombies: Vec<Pid> = k
            .pids()
            .into_iter()
            .filter(|p| k.process(*p).map(|x| x.state) == Ok(ProcState::Zombie))
            .collect();
        assert_eq!(zombies.len(), 1, "child is a zombie awaiting reap");
        assert!(k.process_tree().contains("zombie"));
        assert!(k.run_until_idle(1000));
        let reap = k.reaps().iter().find(|(p, _, _)| *p == parent).unwrap();
        assert_eq!(reap.2, 7, "exit code delivered through wait");
    }

    #[test]
    fn wait_blocks_until_child_exits() {
        // Parent waits immediately; child computes for a while.
        let mut k = kernel_with(
            "w",
            program(vec![
                Op::Fork,
                Op::JumpIfChild(4),
                Op::Wait,
                Op::Exit(0),
                Op::Compute(10),
                Op::Exit(3),
            ]),
        );
        let parent = k.spawn("w").unwrap();
        for _ in 0..3 {
            k.step();
        }
        assert_eq!(k.process(parent).unwrap().state, ProcState::Blocked);
        assert!(k.run_until_idle(1000));
        assert!(k
            .reaps()
            .iter()
            .any(|(p, c, code)| *p == parent && *c != parent && *code == 3));
    }

    #[test]
    fn orphan_reparented_to_init() {
        // Parent forks then exits instantly; the computing child becomes
        // an orphan, is adopted by init, and auto-reaped on exit.
        let mut k = kernel_with(
            "o",
            program(vec![
                Op::Fork,
                Op::JumpIfChild(3),
                Op::Exit(0),
                Op::Compute(5),
                Op::Exit(0),
            ]),
        );
        k.spawn("o").unwrap();
        assert!(k.run_until_idle(1000));
        // Everything is cleaned up: only init remains.
        assert_eq!(k.pids(), vec![INIT]);
    }

    #[test]
    fn round_robin_interleaves_output() {
        let mut k = Kernel::new(1); // quantum 1: strict alternation
        k.register_program(
            "a",
            program(vec![
                Op::Print("a1".into()),
                Op::Print("a2".into()),
                Op::Exit(0),
            ]),
        );
        k.register_program(
            "b",
            program(vec![
                Op::Print("b1".into()),
                Op::Print("b2".into()),
                Op::Exit(0),
            ]),
        );
        k.spawn("a").unwrap();
        k.spawn("b").unwrap();
        assert!(k.run_until_idle(100));
        let lines: Vec<&str> = k.output().iter().map(|(_, s)| s.as_str()).collect();
        assert_eq!(
            lines,
            vec!["a1", "b1", "a2", "b2"],
            "quantum-1 interleaving"
        );
        assert!(k.context_switches() >= 3);
    }

    #[test]
    fn bigger_quantum_runs_longer_stretches() {
        let run = |q: u32| {
            let mut k = Kernel::new(q);
            k.register_program("c", program(vec![Op::Compute(6), Op::Exit(0)]));
            k.spawn("c").unwrap();
            k.spawn("c").unwrap();
            k.run_until_idle(1000);
            k.context_switches()
        };
        assert!(run(1) > run(6), "larger quanta → fewer switches");
    }

    #[test]
    fn exec_replaces_program() {
        let mut k = Kernel::new(3);
        k.register_program("ls", program(vec![Op::Print("files!".into()), Op::Exit(0)]));
        k.register_program(
            "launcher",
            program(vec![Op::Print("launching".into()), Op::Exec("ls".into())]),
        );
        k.spawn("launcher").unwrap();
        assert!(k.run_until_idle(100));
        let lines: Vec<&str> = k.output().iter().map(|(_, s)| s.as_str()).collect();
        assert_eq!(lines, vec!["launching", "files!"]);
    }

    #[test]
    fn exec_missing_program_fails_like_127() {
        let mut k = kernel_with("bad", program(vec![Op::Exec("nope".into())]));
        k.spawn("bad").unwrap();
        assert!(k.run_until_idle(100));
        assert!(k.output()[0].1.contains("not found"));
    }

    #[test]
    fn sigint_kills_sigterm_handled() {
        let mut k = Kernel::new(3);
        k.register_program(
            "tough",
            program(vec![
                Op::OnSignal(Sig::Term, Handler::Print("not today".into())),
                Op::Compute(3),
                Op::Exit(0),
            ]),
        );
        let pid = k.spawn("tough").unwrap();
        k.step(); // install handler
        k.send_signal(pid, Sig::Term).unwrap();
        assert!(k.run_until_idle(100));
        assert!(k.output().iter().any(|(_, s)| s.contains("not today")));

        let mut k2 = Kernel::new(3);
        k2.register_program("soft", program(vec![Op::Compute(10), Op::Exit(0)]));
        let pid2 = k2.spawn("soft").unwrap();
        k2.step();
        k2.send_signal(pid2, Sig::Int).unwrap();
        assert!(k2.run_until_idle(100));
        assert!(k2
            .reaps()
            .iter()
            .any(|(_, c, code)| *c == pid2 && *code == 130));
    }

    #[test]
    fn sigchld_handler_reaps() {
        // Parent installs a Reap handler, forks, and loops computing; the
        // child's exit triggers asynchronous reaping (Lab 9's mechanism).
        let mut k = Kernel::new(2);
        k.register_program(
            "bg",
            program(vec![
                Op::OnSignal(Sig::Chld, Handler::Reap),
                Op::Fork,
                Op::JumpIfChild(5),
                Op::Compute(10),
                Op::Exit(0),
                Op::Exit(9),
            ]),
        );
        let parent = k.spawn("bg").unwrap();
        assert!(k.run_until_idle(1000));
        assert!(
            k.reaps()
                .iter()
                .any(|(p, _, code)| *p == parent && *code == 9),
            "handler reaped the child: {:?}",
            k.reaps()
        );
    }

    #[test]
    fn kill_last_child() {
        let mut k = Kernel::new(2);
        k.register_program(
            "killer",
            program(vec![
                Op::Fork,
                Op::JumpIfChild(5),
                Op::Kill(KillTarget::LastChild, Sig::Term),
                Op::Wait,
                Op::Exit(0),
                Op::Compute(1000), // child would run forever
                Op::Exit(0),
            ]),
        );
        let parent = k.spawn("killer").unwrap();
        assert!(k.run_until_idle(5000), "parent's kill ends the child");
        assert!(k.reaps().iter().any(|(p, _, _)| *p == parent));
    }

    #[test]
    fn process_tree_shape() {
        let mut k = kernel_with("t", program(vec![Op::Fork, Op::Compute(5), Op::Exit(0)]));
        k.spawn("t").unwrap();
        k.step();
        k.step(); // fork happened
        let tree = k.process_tree();
        assert!(tree.starts_with("pid 1"));
        let depth2 = tree.lines().filter(|l| l.starts_with("    pid")).count();
        assert_eq!(depth2, 1, "grandchild under the spawned process:\n{tree}");
    }

    #[test]
    fn errors() {
        let mut k = Kernel::new(1);
        assert!(matches!(
            k.spawn("ghost"),
            Err(KernelError::NoSuchProgram(_))
        ));
        assert!(matches!(
            k.send_signal(999, Sig::Int),
            Err(KernelError::NoSuchProcess(999))
        ));
        assert!(matches!(k.process(42), Err(KernelError::NoSuchProcess(42))));
    }

    #[test]
    fn sleep_frees_the_cpu_for_others() {
        // An I/O-bound process (compute 1, sleep 6, repeat) overlaps with
        // a CPU-bound one: total time ≈ the CPU-bound process's work, not
        // the sum — the overlap lesson from the scheduling lecture.
        let mut k = Kernel::new(2);
        k.register_program(
            "io",
            program(vec![
                Op::Compute(1),
                Op::Sleep(6),
                Op::Compute(1),
                Op::Sleep(6),
                Op::Compute(1),
                Op::Exit(0),
            ]),
        );
        k.register_program("cpu", program(vec![Op::Compute(20), Op::Exit(0)]));
        k.spawn("io").unwrap();
        k.spawn("cpu").unwrap();
        assert!(k.run_until_idle(10_000));
        // Serialized it would be ~(3+12) + 20 + exits ≈ 37+; overlapped
        // the sleeps hide under the CPU burst.
        assert!(
            k.time < 30,
            "I/O waits overlapped with compute: {} ticks",
            k.time
        );
    }

    #[test]
    fn pure_sleeper_advances_the_clock() {
        let mut k = Kernel::new(2);
        k.register_program(
            "nap",
            program(vec![Op::Sleep(10), Op::Print("up".into()), Op::Exit(0)]),
        );
        k.spawn("nap").unwrap();
        assert!(k.run_until_idle(1000));
        assert_eq!(k.output().len(), 1);
        assert!(k.time >= 10, "the clock ran during the nap: {}", k.time);
    }

    #[test]
    fn sleeper_can_still_be_killed() {
        let mut k = Kernel::new(2);
        k.register_program("nap", program(vec![Op::Sleep(1000), Op::Exit(0)]));
        let pid = k.spawn("nap").unwrap();
        k.step(); // enter the sleep
        k.send_signal(pid, Sig::Term).unwrap();
        assert!(k.run_until_idle(100));
        assert!(k
            .reaps()
            .iter()
            .any(|(_, c, code)| *c == pid && *code == 130));
    }

    #[test]
    fn gantt_renders_interleaving() {
        let mut k = Kernel::new(2);
        k.register_program("c", program(vec![Op::Compute(4), Op::Exit(0)]));
        k.spawn("c").unwrap();
        k.spawn("c").unwrap();
        k.run_until_idle(100);
        let g = k.gantt();
        assert!(g.contains("pid   2"), "{g}");
        assert!(g.contains("pid   3"), "{g}");
        assert!(g.contains('#'));
        assert!(g.contains("switches"));
        // Quantum 2: pid 2's row starts with ##.. (two on, two off).
        let row2 = g.lines().find(|l| l.contains("pid   2")).unwrap();
        assert!(row2.contains("##.."), "{g}");
        assert_eq!(Kernel::new(1).gantt(), "(no execution yet)\n");
    }

    #[test]
    fn timeline_records_every_tick() {
        let mut k = kernel_with("p", program(vec![Op::Compute(5), Op::Exit(0)]));
        k.spawn("p").unwrap();
        k.run_until_idle(100);
        assert_eq!(k.timeline().len() as u64, k.time);
    }
}
