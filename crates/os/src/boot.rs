//! The boot sequence, "demystif\[ying\] what an OS is … a bit about how an
//! OS boots onto the hardware and initializes itself to be prepared to
//! run programs" (§III-A *Operating Systems*) — as a typed state machine
//! whose transitions carry the lecture narrative.

/// Stages of bringing a machine from power-on to a running system.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum BootStage {
    /// Power applied; CPU starts at the reset vector.
    PowerOn,
    /// Firmware (BIOS/UEFI) runs self-test and finds a boot device.
    Firmware,
    /// The bootloader loads the kernel image into memory.
    Bootloader,
    /// The kernel initializes: trap table, memory management, scheduler.
    KernelInit,
    /// The first user process (`init`, PID 1) is created.
    InitProcess,
    /// Steady state: login/shell; the OS is a service provider now.
    Running,
}

impl BootStage {
    /// What happens during this stage (the lecture beat).
    pub fn narration(&self) -> &'static str {
        match self {
            BootStage::PowerOn => {
                "CPU begins fetching at a fixed reset address in firmware ROM"
            }
            BootStage::Firmware => {
                "firmware self-tests hardware and locates a bootable device"
            }
            BootStage::Bootloader => {
                "bootloader copies the kernel image from disk into RAM and jumps to it"
            }
            BootStage::KernelInit => {
                "kernel installs its trap table, initializes memory management and the scheduler"
            }
            BootStage::InitProcess => {
                "the kernel hand-crafts PID 1 (init), the ancestor of every process"
            }
            BootStage::Running => {
                "init spawns login/shell; from now on everything happens via processes and system calls"
            }
        }
    }

    /// The next stage, or `None` once running.
    pub fn next(&self) -> Option<BootStage> {
        match self {
            BootStage::PowerOn => Some(BootStage::Firmware),
            BootStage::Firmware => Some(BootStage::Bootloader),
            BootStage::Bootloader => Some(BootStage::KernelInit),
            BootStage::KernelInit => Some(BootStage::InitProcess),
            BootStage::InitProcess => Some(BootStage::Running),
            BootStage::Running => None,
        }
    }
}

/// Runs the whole boot sequence, returning the narration transcript.
pub fn boot_transcript() -> Vec<(BootStage, &'static str)> {
    let mut out = Vec::new();
    let mut stage = BootStage::PowerOn;
    loop {
        out.push((stage, stage.narration()));
        match stage.next() {
            Some(s) => stage = s,
            None => break,
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn boot_reaches_running_in_order() {
        let t = boot_transcript();
        assert_eq!(t.len(), 6);
        assert_eq!(t.first().unwrap().0, BootStage::PowerOn);
        assert_eq!(t.last().unwrap().0, BootStage::Running);
        // Strictly ordered.
        for w in t.windows(2) {
            assert!(w[0].0 < w[1].0);
        }
    }

    #[test]
    fn narration_mentions_init() {
        assert!(BootStage::InitProcess.narration().contains("PID 1"));
        assert!(BootStage::Running.next().is_none());
    }
}
