//! # os — a simulated Unix-like kernel, scheduler, and shell
//!
//! CS 31's operating-systems module (§III-A) "primarily focuses on
//! mechanisms and key abstractions": the process abstraction, `fork` and
//! the process hierarchy, `exit`/`wait`/`exec`, concurrency through
//! multiprogramming and context switching, and asynchronous signals
//! (primarily SIGCHLD). Labs 8 and 9 build a command parser and a Unix
//! shell with foreground/background jobs on top.
//!
//! This crate simulates all of it:
//!
//! * [`proc`] — processes as deterministic instruction scripts
//!   ([`proc::Op`]), so the course's "trace this fork code, list the
//!   possible outputs" homework is executable;
//! * [`kernel`] — the kernel proper: PCBs, fork/exec/exit/wait(pid),
//!   zombies and orphan reparenting, signals and handlers, a round-robin
//!   time-sharing scheduler with a recorded timeline;
//! * [`shell`] — the Lab 8 parser (tokenizer, `&` detection, history) and
//!   the Lab 9 shell (foreground/background jobs, SIGCHLD-driven reaping);
//! * [`boot`] — the "how an OS boots onto the hardware" narrative as a
//!   typed state machine.
//!
//! ```
//! use os::kernel::Kernel;
//! use os::proc::{program, Op};
//!
//! let mut k = Kernel::new(2);
//! k.register_program("hello", program(vec![
//!     Op::Print("hello".into()),
//!     Op::Exit(0),
//! ]));
//! let pid = k.spawn("hello").unwrap();
//! k.run_until_idle(1000);
//! assert_eq!(k.output(), &[(pid, "hello".to_string())]);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod boot;
pub mod kernel;
pub mod proc;
pub mod shell;

pub use kernel::{Kernel, KernelError};
pub use proc::{Op, Pid, ProcState, Sig};
