//! Belady's OPT and the three-C miss classification — the "brainstorm
//! better policies" extension of the caching module.
//!
//! When the class is asked to invent replacement policies, the natural
//! question is "how good could any policy be?" [`opt_misses`] answers it
//! with the clairvoyant optimum (evict the block reused furthest in the
//! future). [`classify_misses`] then splits a real cache's misses into
//! the **compulsory / capacity / conflict** taxonomy by differencing
//! against an infinite cache and a fully associative LRU cache of equal
//! capacity.

use crate::cache::{Cache, CacheConfig};
use crate::trace::TraceEvent;
use std::collections::{HashMap, HashSet};

/// Counts misses for a **fully associative** cache of `blocks` lines with
/// Belady's optimal replacement, over `trace` (loads and stores treated
/// alike). Offline: it sees the whole trace.
pub fn opt_misses(trace: &[TraceEvent], blocks: usize, block_size: u64) -> u64 {
    assert!(blocks > 0 && block_size.is_power_of_two());
    let mask = !(block_size - 1);
    let lines: Vec<u64> = trace.iter().map(|e| e.addr & mask).collect();

    // next_use[i] = index of the next access to the same block after i.
    let mut next_use = vec![usize::MAX; lines.len()];
    let mut last_seen: HashMap<u64, usize> = HashMap::new();
    for (i, &b) in lines.iter().enumerate().rev() {
        next_use[i] = last_seen.get(&b).copied().unwrap_or(usize::MAX);
        last_seen.insert(b, i);
    }

    let mut resident: HashMap<u64, usize> = HashMap::new(); // block → its next use
    let mut misses = 0u64;
    for (i, &b) in lines.iter().enumerate() {
        if let std::collections::hash_map::Entry::Occupied(mut e) = resident.entry(b) {
            e.insert(next_use[i]);
            continue;
        }
        misses += 1;
        if resident.len() == blocks {
            // Evict the block whose next use is furthest away.
            let victim = *resident
                .iter()
                .max_by_key(|(_, &nu)| nu)
                .map(|(blk, _)| blk)
                .expect("cache full");
            resident.remove(&victim);
        }
        resident.insert(b, next_use[i]);
    }
    misses
}

/// The three-C breakdown of a cache configuration's misses on a trace.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct MissClassification {
    /// Total misses of the actual cache.
    pub total: u64,
    /// First-touch misses (an infinite cache would still miss these).
    pub compulsory: u64,
    /// Extra misses a fully associative LRU cache of the same capacity
    /// incurs beyond compulsory.
    pub capacity: u64,
    /// The remainder: misses caused by the actual cache's limited
    /// associativity. Can be "negative" in corner cases (LRU is not
    /// optimal), clamped at zero with the overshoot folded into capacity.
    pub conflict: u64,
}

/// Classifies a configuration's misses on a trace into the three Cs.
pub fn classify_misses(config: CacheConfig, trace: &[TraceEvent]) -> MissClassification {
    // Actual cache.
    let mut actual = Cache::new(config).expect("valid config");
    actual.run_trace(trace);
    let total = actual.stats().misses;

    // Compulsory: distinct blocks.
    let mask = !(config.block_size - 1);
    let distinct: HashSet<u64> = trace.iter().map(|e| e.addr & mask).collect();
    let compulsory = distinct.len() as u64;

    // Capacity: fully associative LRU of equal capacity.
    let total_blocks = config.num_sets * config.ways;
    let mut full = Cache::new(CacheConfig::fully_associative(
        total_blocks,
        config.block_size,
    ))
    .expect("valid config");
    full.run_trace(trace);
    let full_misses = full.stats().misses;

    // LRU is not optimal, so the fully associative reference can
    // occasionally miss MORE than the actual cache; fold that overshoot
    // into capacity so the parts always sum to the total.
    let (capacity, conflict) = if total >= full_misses {
        (full_misses - compulsory, total - full_misses)
    } else {
        (total.saturating_sub(compulsory), 0)
    };
    MissClassification {
        total,
        compulsory,
        capacity,
        conflict,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cache::ReplacementPolicy;
    use crate::patterns;
    use crate::trace::TraceEvent;
    use proptest::prelude::*;

    #[test]
    fn opt_on_the_textbook_sequence() {
        // Blocks A B C D A B E A B C D E with 3 frames: OPT misses = 7
        // (the classic Belady example, usually shown with pages).
        let seq = [0u64, 1, 2, 3, 0, 1, 4, 0, 1, 2, 3, 4];
        let trace: Vec<TraceEvent> = seq.iter().map(|&b| TraceEvent::load(b * 64)).collect();
        assert_eq!(opt_misses(&trace, 3, 64), 7);
    }

    #[test]
    fn opt_beats_lru_on_looping_scan() {
        // A loop one block bigger than the cache: LRU misses everything,
        // OPT keeps most of the loop resident.
        let trace = patterns::working_set_trace(0, 5 * 64, 64, 10); // 5 blocks, 4-line caches
        let mut lru = Cache::new(CacheConfig::fully_associative(4, 64)).unwrap();
        lru.run_trace(&trace);
        let opt = opt_misses(&trace, 4, 64);
        assert!(
            lru.stats().misses > 2 * opt,
            "LRU {} vs OPT {opt}",
            lru.stats().misses
        );
    }

    #[test]
    fn opt_lower_bounds_every_policy() {
        let trace = patterns::random_trace(0, 64 * 64, 400, 5);
        let opt = opt_misses(&trace, 16, 64);
        for policy in [
            ReplacementPolicy::Lru,
            ReplacementPolicy::Fifo,
            ReplacementPolicy::Random,
        ] {
            let mut cfg = CacheConfig::fully_associative(16, 64);
            cfg.replacement = policy;
            let mut c = Cache::new(cfg).unwrap();
            c.run_trace(&trace);
            assert!(c.stats().misses >= opt, "{policy:?} beat OPT?!");
        }
    }

    #[test]
    fn classification_sums_and_attributes() {
        // A direct-mapped cache on the A/B aliasing pattern: nearly all
        // non-compulsory misses are conflict misses.
        let mut trace = Vec::new();
        for _ in 0..5 {
            for i in 0..8u64 {
                trace.push(TraceEvent::load(i * 64));
                trace.push(TraceEvent::load(0x1000 + i * 64)); // aliases in DM
            }
        }
        let c = classify_misses(CacheConfig::direct_mapped(64, 64), &trace);
        assert_eq!(c.total, c.compulsory + c.capacity + c.conflict);
        assert_eq!(c.compulsory, 16);
        assert_eq!(c.capacity, 0, "16 blocks fit a 64-line cache");
        assert!(c.conflict >= 60, "aliasing must show as conflict: {c:?}");
    }

    #[test]
    fn capacity_misses_when_working_set_exceeds_cache() {
        // 128 blocks streamed repeatedly through a 64-line cache, fully
        // associative: no conflicts possible, pure capacity.
        let trace = patterns::working_set_trace(0, 128 * 64, 64, 4);
        let c = classify_misses(CacheConfig::fully_associative(64, 64), &trace);
        assert_eq!(c.conflict, 0);
        assert_eq!(c.compulsory, 128);
        assert!(c.capacity > 0);
    }

    #[test]
    fn infinite_reuse_has_only_compulsory() {
        let trace = patterns::working_set_trace(0, 16 * 64, 64, 10);
        let c = classify_misses(CacheConfig::set_associative(16, 4, 64), &trace);
        assert_eq!(c.total, 16);
        assert_eq!(c.capacity + c.conflict, 0);
    }

    proptest! {
        #[test]
        fn prop_opt_never_worse_than_lru(
            addrs in proptest::collection::vec(0u64..(32 * 64), 1..300)
        ) {
            let trace: Vec<TraceEvent> = addrs.iter().map(|&a| TraceEvent::load(a)).collect();
            let opt = opt_misses(&trace, 8, 64);
            let mut lru = Cache::new(CacheConfig::fully_associative(8, 64)).unwrap();
            lru.run_trace(&trace);
            prop_assert!(opt <= lru.stats().misses);
        }

        #[test]
        fn prop_classification_parts_sum(
            addrs in proptest::collection::vec(0u64..(64 * 64), 1..200)
        ) {
            let trace: Vec<TraceEvent> = addrs.iter().map(|&a| TraceEvent::load(a)).collect();
            let c = classify_misses(CacheConfig::direct_mapped(16, 64), &trace);
            prop_assert_eq!(c.total, c.compulsory + c.capacity + c.conflict);
            prop_assert!(c.compulsory >= 1);
        }
    }
}
