//! # memsim — the memory hierarchy and cache simulator
//!
//! Covers CS 31's *Memory Hierarchy* and *Caching* modules (§III-A): storage
//! device characteristics, locality, direct-mapped and set-associative
//! caches, address division into tag/index/offset, replacement and write
//! policies, and the classic nested-loop stride exercise.
//!
//! * [`device`] — the storage technologies table that motivates the
//!   hierarchy (registers → SRAM → DRAM → SSD → disk);
//! * [`addr`] — address splitting: "how various cache parameters like the
//!   block size and number of lines affect address division into the tag,
//!   index, and offset" — the course's named source of student confusion;
//! * [`cache`] — the trace-driven simulator: any associativity from
//!   direct-mapped to fully associative, LRU/FIFO/Random replacement,
//!   write-through/write-back × allocate/no-allocate;
//! * [`multilevel`] — L1+L2 stacks and average memory access time;
//! * [`optimal`] — Belady's OPT and the compulsory/capacity/conflict
//!   miss taxonomy (the "how good could any policy be" extension);
//! * [`patterns`] — workload generators: row-major vs column-major
//!   2-D traversals (experiment **E3**), sequential, strided, random;
//! * [`trace`] — homework-style per-access hit/miss/evict tables
//!   (the HW 7/8 "tracing accesses" exercises).
//!
//! ```
//! use memsim::cache::{Cache, CacheConfig};
//! use memsim::trace::AccessKind;
//!
//! // 64-set direct-mapped cache with 16-byte blocks (1 KiB).
//! let mut c = Cache::new(CacheConfig::direct_mapped(64, 16)).unwrap();
//! assert!(!c.access(0x1234, AccessKind::Load).hit);  // cold miss
//! assert!(c.access(0x1234, AccessKind::Load).hit);   // now cached
//! assert!(c.access(0x1238, AccessKind::Load).hit);   // same block
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod addr;
pub mod cache;
pub mod device;
pub mod multilevel;
pub mod optimal;
pub mod patterns;
pub mod trace;

pub use addr::AddressLayout;
pub use cache::{Cache, CacheConfig, ReplacementPolicy, WriteAllocate, WritePolicy};
pub use trace::{AccessKind, TraceEvent};

/// Errors from configuring simulators in this crate.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum MemSimError {
    /// A size parameter must be a power of two.
    NotPowerOfTwo {
        /// Which parameter.
        what: &'static str,
        /// The offending value.
        value: u64,
    },
    /// A parameter was zero.
    Zero(&'static str),
}

impl std::fmt::Display for MemSimError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            MemSimError::NotPowerOfTwo { what, value } => {
                write!(f, "{what} must be a power of two, got {value}")
            }
            MemSimError::Zero(what) => write!(f, "{what} must be nonzero"),
        }
    }
}

impl std::error::Error for MemSimError {}
