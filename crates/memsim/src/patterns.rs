//! Access-pattern generators — the workloads behind the course's locality
//! exercises, including the nested-loop stride comparison (experiment
//! **E3**): "two code blocks containing nested for loops access memory in
//! different stride patterns … analyze their relative performance with
//! cache behavior in mind" (§III-A *Caching*).

use crate::trace::{AccessKind, TraceEvent};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Iteration order over a 2-D array.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum LoopOrder {
    /// `for i { for j { a[i][j] } }` — unit stride, cache friendly in C.
    RowMajor,
    /// `for j { for i { a[i][j] } }` — stride = row length, cache hostile.
    ColumnMajor,
}

/// Generates the load trace of summing an `rows × cols` matrix of
/// `elem_size`-byte elements stored row-major at `base`, traversed in the
/// given loop order.
pub fn matrix_sum_trace(
    base: u64,
    rows: usize,
    cols: usize,
    elem_size: u64,
    order: LoopOrder,
) -> Vec<TraceEvent> {
    let mut t = Vec::with_capacity(rows * cols);
    let addr = |i: usize, j: usize| base + ((i * cols + j) as u64) * elem_size;
    match order {
        LoopOrder::RowMajor => {
            for i in 0..rows {
                for j in 0..cols {
                    t.push(TraceEvent::load(addr(i, j)));
                }
            }
        }
        LoopOrder::ColumnMajor => {
            for j in 0..cols {
                for i in 0..rows {
                    t.push(TraceEvent::load(addr(i, j)));
                }
            }
        }
    }
    t
}

/// The three classic matrix-multiply loop orders. For `C = A x B` with
/// row-major storage, the innermost loop's stride pattern differs per
/// order — the advanced follow-up to the two-loop exercise.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum MatMulOrder {
    /// i-j-k: C row-wise, A row-wise, B column-wise (the naive order).
    Ijk,
    /// k-i-j: B row-wise in the inner loop — the cache-friendly rewrite.
    Kij,
    /// j-k-i: everything column-wise — the worst order.
    Jki,
}

/// Generates the memory trace of an `n x n` matrix multiply
/// (`elem_size`-byte elements; A at `base_a`, B at `base_b`, C at
/// `base_c`) in the given loop order, with the value that is invariant in
/// the inner loop held in a register (as any compiler does): `ijk` keeps
/// the C sum registered, `kij` keeps A(i,k), `jki` keeps B(k,j).
pub fn matmul_trace(
    n: usize,
    elem_size: u64,
    base_a: u64,
    base_b: u64,
    base_c: u64,
    order: MatMulOrder,
) -> Vec<TraceEvent> {
    let a = |i: usize, j: usize| base_a + ((i * n + j) as u64) * elem_size;
    let b = |i: usize, j: usize| base_b + ((i * n + j) as u64) * elem_size;
    let cc = |i: usize, j: usize| base_c + ((i * n + j) as u64) * elem_size;
    let mut t = Vec::with_capacity(n * n * (n * 2 + 2));
    match order {
        MatMulOrder::Ijk => {
            for i in 0..n {
                for j in 0..n {
                    t.push(TraceEvent::load(cc(i, j))); // sum = C[i][j]
                    for k in 0..n {
                        t.push(TraceEvent::load(a(i, k)));
                        t.push(TraceEvent::load(b(k, j)));
                    }
                    t.push(TraceEvent {
                        addr: cc(i, j),
                        kind: AccessKind::Store,
                    });
                }
            }
        }
        MatMulOrder::Kij => {
            for k in 0..n {
                for i in 0..n {
                    t.push(TraceEvent::load(a(i, k))); // r = A[i][k]
                    for j in 0..n {
                        t.push(TraceEvent::load(b(k, j)));
                        t.push(TraceEvent::load(cc(i, j)));
                        t.push(TraceEvent {
                            addr: cc(i, j),
                            kind: AccessKind::Store,
                        });
                    }
                }
            }
        }
        MatMulOrder::Jki => {
            for j in 0..n {
                for k in 0..n {
                    t.push(TraceEvent::load(b(k, j))); // r = B[k][j]
                    for i in 0..n {
                        t.push(TraceEvent::load(a(i, k)));
                        t.push(TraceEvent::load(cc(i, j)));
                        t.push(TraceEvent {
                            addr: cc(i, j),
                            kind: AccessKind::Store,
                        });
                    }
                }
            }
        }
    }
    t
}

/// A pure sequential sweep: `count` loads of `stride` bytes apart.
pub fn strided_trace(base: u64, count: usize, stride: u64) -> Vec<TraceEvent> {
    (0..count)
        .map(|i| TraceEvent::load(base + i as u64 * stride))
        .collect()
}

/// Uniform-random loads in `[base, base + span)`, seeded for determinism.
pub fn random_trace(base: u64, span: u64, count: usize, seed: u64) -> Vec<TraceEvent> {
    let mut rng = StdRng::seed_from_u64(seed);
    (0..count)
        .map(|_| TraceEvent::load(base + rng.gen_range(0..span)))
        .collect()
}

/// A loop over a small working set repeated `reps` times — pure temporal
/// locality (the "library books on your desk" exercise).
pub fn working_set_trace(base: u64, set_bytes: u64, stride: u64, reps: usize) -> Vec<TraceEvent> {
    let per_rep = (set_bytes / stride) as usize;
    let mut t = Vec::with_capacity(per_rep * reps);
    for _ in 0..reps {
        for i in 0..per_rep {
            t.push(TraceEvent::load(base + i as u64 * stride));
        }
    }
    t
}

/// A read-modify-write sweep (load + store per element) — the trace shape
/// of `a[i]++`, exercising dirty lines and write-backs.
pub fn rmw_trace(base: u64, count: usize, stride: u64) -> Vec<TraceEvent> {
    let mut t = Vec::with_capacity(count * 2);
    for i in 0..count {
        let addr = base + i as u64 * stride;
        t.push(TraceEvent::load(addr));
        t.push(TraceEvent {
            addr,
            kind: AccessKind::Store,
        });
    }
    t
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cache::{Cache, CacheConfig};

    #[test]
    fn matrix_traces_cover_same_addresses() {
        let row = matrix_sum_trace(0, 8, 8, 4, LoopOrder::RowMajor);
        let col = matrix_sum_trace(0, 8, 8, 4, LoopOrder::ColumnMajor);
        assert_eq!(row.len(), 64);
        let mut ra: Vec<u64> = row.iter().map(|e| e.addr).collect();
        let mut ca: Vec<u64> = col.iter().map(|e| e.addr).collect();
        ra.sort_unstable();
        ca.sort_unstable();
        assert_eq!(ra, ca, "same footprint, different order");
        assert_ne!(
            row.iter().map(|e| e.addr).collect::<Vec<_>>(),
            col.iter().map(|e| e.addr).collect::<Vec<_>>()
        );
    }

    #[test]
    fn row_major_is_unit_stride() {
        let row = matrix_sum_trace(100, 4, 4, 4, LoopOrder::RowMajor);
        for pair in row.windows(2) {
            let delta = pair[1].addr as i64 - pair[0].addr as i64;
            // within a row: +4; row wrap is also +4 in row-major layout
            assert_eq!(delta, 4);
        }
    }

    #[test]
    fn e3_stride_beats_column_order() {
        // The headline E3 shape: a big matrix through a small cache —
        // row-major hit rate ≈ 1 - 1/elems_per_block, column-major ≈ 0.
        let rows = 64;
        let cols = 64;
        let mk = || Cache::new(CacheConfig::direct_mapped(64, 64)).unwrap(); // 4 KiB
        let mut c_row = mk();
        c_row.run_trace(&matrix_sum_trace(0, rows, cols, 4, LoopOrder::RowMajor));
        let mut c_col = mk();
        c_col.run_trace(&matrix_sum_trace(0, rows, cols, 4, LoopOrder::ColumnMajor));
        let hr = c_row.stats().hit_rate();
        let hc = c_col.stats().hit_rate();
        assert!(hr > 0.9, "row-major hit rate {hr}");
        assert!(hc < 0.1, "column-major hit rate {hc}");
    }

    #[test]
    fn matmul_orders_rank_as_taught() {
        // 64x64 doubles (32 KiB per matrix) through a 4 KiB cache, so no
        // matrix fits: kij > ijk > jki hit rates, the textbook ranking.
        let n = 64;
        let rate = |order| {
            let mut c = Cache::new(CacheConfig::set_associative(32, 2, 64)).unwrap();
            c.run_trace(&matmul_trace(n, 8, 0, 0x10000, 0x20000, order));
            c.stats().hit_rate()
        };
        let ijk = rate(MatMulOrder::Ijk);
        let kij = rate(MatMulOrder::Kij);
        let jki = rate(MatMulOrder::Jki);
        assert!(kij > ijk, "kij {kij:.3} beats ijk {ijk:.3}");
        assert!(ijk > jki, "ijk {ijk:.3} beats jki {jki:.3}");
    }

    #[test]
    fn matmul_footprint_identical_across_orders() {
        let collect = |o| {
            let mut v: Vec<u64> = matmul_trace(6, 8, 0, 0x1000, 0x2000, o)
                .iter()
                .map(|e| e.addr)
                .collect();
            v.sort_unstable();
            v.dedup();
            v
        };
        assert_eq!(collect(MatMulOrder::Ijk), collect(MatMulOrder::Kij));
        assert_eq!(collect(MatMulOrder::Ijk), collect(MatMulOrder::Jki));
    }

    #[test]
    fn strided_and_random() {
        let s = strided_trace(0, 10, 64);
        assert_eq!(s[9].addr, 9 * 64);
        let r1 = random_trace(0, 4096, 50, 7);
        let r2 = random_trace(0, 4096, 50, 7);
        assert_eq!(r1, r2, "seeded determinism");
        assert!(r1.iter().all(|e| e.addr < 4096));
    }

    #[test]
    fn working_set_gets_temporal_hits() {
        let trace = working_set_trace(0, 256, 4, 10);
        let mut c = Cache::new(CacheConfig::direct_mapped(64, 64)).unwrap();
        c.run_trace(&trace);
        // 256B set in a 4KiB cache: only the first sweep misses.
        let s = c.stats();
        assert_eq!(s.misses, 4, "4 blocks of 64B cover 256B");
        assert_eq!(s.hits, s.accesses - 4);
    }

    #[test]
    fn rmw_alternates_and_dirties() {
        let trace = rmw_trace(0, 4, 64);
        assert_eq!(trace.len(), 8);
        assert_eq!(trace[0].kind, AccessKind::Load);
        assert_eq!(trace[1].kind, AccessKind::Store);
        let mut c = Cache::new(CacheConfig::direct_mapped(2, 64)).unwrap();
        c.run_trace(&trace);
        // Every store hits the line its load just brought in.
        assert_eq!(c.stats().hits, 4);
        // Cache has 2 sets * 64B: 4 distinct blocks → 2 dirty evictions.
        assert_eq!(c.stats().writebacks, 2);
    }
}
