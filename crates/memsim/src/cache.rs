//! The trace-driven cache simulator.
//!
//! Supports the whole design space the course explores: direct-mapped
//! through fully associative, LRU (the policy the class "primarily
//! concentrates on"), FIFO and Random for the brainstorming exercise,
//! and the write-policy matrix (write-through/write-back × write-allocate/
//! no-allocate). Every access returns a full [`AccessOutcome`] so homework
//! tables fall straight out.

use crate::addr::AddressLayout;
use crate::trace::{AccessKind, AccessOutcome, TraceEvent};
use crate::MemSimError;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Replacement policies the course discusses.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum ReplacementPolicy {
    /// Least recently used — "connects to the locality intuition".
    Lru,
    /// First-in first-out (insertion order).
    Fifo,
    /// Uniform random (seeded; deterministic per cache instance).
    Random,
}

/// What stores do on a hit.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum WritePolicy {
    /// Every store goes to memory immediately.
    WriteThrough,
    /// Stores dirty the line; memory is updated on eviction.
    WriteBack,
}

/// What stores do on a miss.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum WriteAllocate {
    /// Fetch the block into the cache, then write.
    Allocate,
    /// Write straight to memory; the cache is unchanged.
    NoAllocate,
}

/// Cache geometry and policies.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CacheConfig {
    /// Number of sets (power of two).
    pub num_sets: u64,
    /// Lines per set (associativity; 1 = direct-mapped).
    pub ways: u64,
    /// Block (line) size in bytes (power of two).
    pub block_size: u64,
    /// Replacement policy for associative sets.
    pub replacement: ReplacementPolicy,
    /// Store hit behaviour.
    pub write_policy: WritePolicy,
    /// Store miss behaviour.
    pub write_allocate: WriteAllocate,
    /// Hit latency in cycles (for AMAT; default 1).
    pub hit_time: u64,
    /// Miss penalty in cycles (time to reach the next level; default 100).
    pub miss_penalty: u64,
    /// Next-line prefetch: on a demand miss, also fetch the following
    /// block (the simplest hardware prefetcher; exploits unit stride).
    pub prefetch_next_line: bool,
}

impl CacheConfig {
    /// A direct-mapped, write-back/allocate, LRU-irrelevant config — the
    /// first design the course teaches.
    pub fn direct_mapped(num_sets: u64, block_size: u64) -> CacheConfig {
        CacheConfig {
            num_sets,
            ways: 1,
            block_size,
            replacement: ReplacementPolicy::Lru,
            write_policy: WritePolicy::WriteBack,
            write_allocate: WriteAllocate::Allocate,
            hit_time: 1,
            miss_penalty: 100,
            prefetch_next_line: false,
        }
    }

    /// An n-way set-associative LRU config ("primarily two-way" in class).
    pub fn set_associative(num_sets: u64, ways: u64, block_size: u64) -> CacheConfig {
        CacheConfig {
            num_sets,
            ways,
            ..CacheConfig::direct_mapped(num_sets, block_size)
        }
    }

    /// A fully associative config (one set holding `ways` lines).
    pub fn fully_associative(ways: u64, block_size: u64) -> CacheConfig {
        CacheConfig::set_associative(1, ways, block_size)
    }

    /// Total capacity in bytes.
    pub fn capacity(&self) -> u64 {
        self.num_sets * self.ways * self.block_size
    }
}

#[derive(Debug, Clone, Copy, Default)]
struct Line {
    valid: bool,
    dirty: bool,
    tag: u64,
    /// LRU timestamp or FIFO insertion stamp.
    stamp: u64,
    /// Brought in by the prefetcher and not yet demanded.
    prefetched: bool,
}

/// Aggregate statistics.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct CacheStats {
    /// Total accesses.
    pub accesses: u64,
    /// Hits.
    pub hits: u64,
    /// Misses.
    pub misses: u64,
    /// Evictions of valid lines.
    pub evictions: u64,
    /// Dirty write-backs to memory.
    pub writebacks: u64,
    /// Accesses that reached memory (miss fills + write-through stores +
    /// no-allocate store misses).
    pub memory_accesses: u64,
    /// Blocks fetched speculatively by the next-line prefetcher.
    pub prefetches: u64,
    /// Prefetched blocks that were later demanded (useful prefetches).
    pub prefetch_hits: u64,
}

impl CacheStats {
    /// Hit rate in [0, 1].
    pub fn hit_rate(&self) -> f64 {
        if self.accesses == 0 {
            0.0
        } else {
            self.hits as f64 / self.accesses as f64
        }
    }

    /// Miss rate in [0, 1].
    pub fn miss_rate(&self) -> f64 {
        if self.accesses == 0 {
            0.0
        } else {
            self.misses as f64 / self.accesses as f64
        }
    }
}

/// The cache simulator.
#[derive(Debug, Clone)]
pub struct Cache {
    /// Configuration (geometry + policies).
    pub config: CacheConfig,
    layout: AddressLayout,
    sets: Vec<Vec<Line>>,
    clock: u64,
    stats: CacheStats,
    rng: StdRng,
}

impl Cache {
    /// Builds a cache, validating the geometry.
    pub fn new(config: CacheConfig) -> Result<Cache, MemSimError> {
        if config.ways == 0 {
            return Err(MemSimError::Zero("ways"));
        }
        let layout = AddressLayout::new(config.num_sets, config.block_size)?;
        Ok(Cache {
            config,
            layout,
            sets: vec![vec![Line::default(); config.ways as usize]; config.num_sets as usize],
            clock: 0,
            stats: CacheStats::default(),
            rng: StdRng::seed_from_u64(0x5CA1_AB1E),
        })
    }

    /// The address layout this cache implies.
    pub fn layout(&self) -> AddressLayout {
        self.layout
    }

    /// Accumulated statistics.
    pub fn stats(&self) -> CacheStats {
        self.stats
    }

    /// Average memory access time under the config's latency model.
    pub fn amat(&self) -> f64 {
        self.config.hit_time as f64 + self.stats.miss_rate() * self.config.miss_penalty as f64
    }

    /// Total simulated cycles for the accesses so far.
    pub fn total_cycles(&self) -> u64 {
        self.stats.accesses * self.config.hit_time + self.stats.misses * self.config.miss_penalty
    }

    /// Resets statistics (not contents).
    pub fn reset_stats(&mut self) {
        self.stats = CacheStats::default();
    }

    /// Performs one access, updating state and stats.
    pub fn access(&mut self, addr: u64, kind: AccessKind) -> AccessOutcome {
        self.clock += 1;
        self.stats.accesses += 1;
        let split = self.layout.split(addr);
        let set_idx = split.index as usize;
        let replacement = self.config.replacement;
        let write_policy = self.config.write_policy;
        let write_allocate = self.config.write_allocate;

        let mut outcome = AccessOutcome {
            addr,
            kind,
            hit: false,
            set: split.index,
            tag: split.tag,
            evicted: None,
            wrote_back: false,
            touched_memory: false,
        };

        // Hit path.
        if let Some(way) = self.sets[set_idx]
            .iter()
            .position(|l| l.valid && l.tag == split.tag)
        {
            let clock = self.clock;
            let line = &mut self.sets[set_idx][way];
            outcome.hit = true;
            self.stats.hits += 1;
            if line.prefetched {
                line.prefetched = false;
                self.stats.prefetch_hits += 1;
            }
            if replacement == ReplacementPolicy::Lru {
                line.stamp = clock;
            }
            if kind == AccessKind::Store {
                match write_policy {
                    WritePolicy::WriteBack => line.dirty = true,
                    WritePolicy::WriteThrough => {
                        outcome.touched_memory = true;
                        self.stats.memory_accesses += 1;
                    }
                }
            }
            return outcome;
        }

        // Miss path.
        self.stats.misses += 1;
        let allocate = kind == AccessKind::Load || write_allocate == WriteAllocate::Allocate;
        outcome.touched_memory = true;
        self.stats.memory_accesses += 1;

        if !allocate {
            // Store miss, no-allocate: write straight through to memory.
            return outcome;
        }

        // Choose a victim: an invalid way if any, else per policy.
        let victim_way = if let Some(w) = self.sets[set_idx].iter().position(|l| !l.valid) {
            w
        } else {
            match replacement {
                ReplacementPolicy::Lru | ReplacementPolicy::Fifo => {
                    // Both evict the smallest stamp; they differ in when the
                    // stamp is refreshed (LRU on every touch, FIFO never).
                    self.sets[set_idx]
                        .iter()
                        .enumerate()
                        .min_by_key(|(_, l)| l.stamp)
                        .map(|(w, _)| w)
                        .expect("sets are nonempty")
                }
                ReplacementPolicy::Random => self.rng.gen_range(0..self.sets[set_idx].len()),
            }
        };

        let clock = self.clock;
        let victim = &mut self.sets[set_idx][victim_way];
        if victim.valid {
            self.stats.evictions += 1;
            outcome.evicted = Some(victim.tag);
            if victim.dirty {
                self.stats.writebacks += 1;
                self.stats.memory_accesses += 1;
                outcome.wrote_back = true;
            }
        }
        *victim = Line {
            valid: true,
            dirty: kind == AccessKind::Store && write_policy == WritePolicy::WriteBack,
            tag: split.tag,
            stamp: clock,
            prefetched: false,
        };
        if kind == AccessKind::Store && write_policy == WritePolicy::WriteThrough {
            // Allocate + write-through: the store also goes to memory
            // (already counted above as the miss fill; count the store too).
            self.stats.memory_accesses += 1;
        }
        if self.config.prefetch_next_line {
            self.prefetch_block(self.layout.block_base(addr) + self.config.block_size);
        }
        outcome
    }

    /// Speculatively fetches the block containing `addr` (no demand-access
    /// accounting; evicts per policy like any fill).
    fn prefetch_block(&mut self, addr: u64) {
        let split = self.layout.split(addr);
        let set_idx = split.index as usize;
        if self.sets[set_idx]
            .iter()
            .any(|l| l.valid && l.tag == split.tag)
        {
            return; // already resident
        }
        self.stats.prefetches += 1;
        self.stats.memory_accesses += 1;
        let victim_way = if let Some(w) = self.sets[set_idx].iter().position(|l| !l.valid) {
            w
        } else {
            match self.config.replacement {
                ReplacementPolicy::Lru | ReplacementPolicy::Fifo => self.sets[set_idx]
                    .iter()
                    .enumerate()
                    .min_by_key(|(_, l)| l.stamp)
                    .map(|(w, _)| w)
                    .expect("sets are nonempty"),
                ReplacementPolicy::Random => self.rng.gen_range(0..self.sets[set_idx].len()),
            }
        };
        let clock = self.clock;
        let victim = &mut self.sets[set_idx][victim_way];
        if victim.valid {
            self.stats.evictions += 1;
            if victim.dirty {
                self.stats.writebacks += 1;
                self.stats.memory_accesses += 1;
            }
        }
        *victim = Line {
            valid: true,
            dirty: false,
            tag: split.tag,
            stamp: clock,
            prefetched: true,
        };
    }

    /// Renders the cache contents as the homework's state diagram:
    /// one row per set, `V D tag` per way (`-` for invalid ways).
    pub fn render_contents(&self) -> String {
        let mut out = format!(
            "cache state ({} sets x {} way(s), {}B blocks):\n",
            self.config.num_sets, self.config.ways, self.config.block_size
        );
        for (i, set) in self.sets.iter().enumerate() {
            out.push_str(&format!("  set {i:>3}:"));
            for line in set {
                if line.valid {
                    out.push_str(&format!(
                        "  [V{} tag {:#x}]",
                        if line.dirty { " D" } else { "  " },
                        line.tag
                    ));
                } else {
                    out.push_str("  [------]");
                }
            }
            out.push('\n');
        }
        out
    }

    /// Runs a whole trace, returning per-access outcomes.
    pub fn run_trace(&mut self, trace: &[TraceEvent]) -> Vec<AccessOutcome> {
        trace.iter().map(|e| self.access(e.addr, e.kind)).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    fn dm_cache() -> Cache {
        // 4 sets × 16-byte blocks, direct-mapped: the whiteboard example.
        Cache::new(CacheConfig::direct_mapped(4, 16)).unwrap()
    }

    #[test]
    fn cold_miss_then_hit_then_spatial_hit() {
        let mut c = dm_cache();
        assert!(!c.access(0x100, AccessKind::Load).hit);
        assert!(c.access(0x100, AccessKind::Load).hit);
        assert!(c.access(0x10F, AccessKind::Load).hit, "same 16-byte block");
        assert!(!c.access(0x110, AccessKind::Load).hit, "next block");
        assert_eq!(c.stats().hits, 2);
        assert_eq!(c.stats().misses, 2);
    }

    #[test]
    fn direct_mapped_conflict_thrashing() {
        // Two addresses with the same index but different tags evict each
        // other forever — the classic direct-mapped pathology.
        let mut c = dm_cache();
        let a = 0x000; // set 0
        let b = 0x040; // 4 sets * 16B = 64 bytes apart: same set 0
        for _ in 0..10 {
            assert!(!c.access(a, AccessKind::Load).hit);
            assert!(!c.access(b, AccessKind::Load).hit);
        }
        assert_eq!(c.stats().hits, 0);
        // 20 accesses: the first fills an invalid line, the rest all evict.
        assert_eq!(c.stats().evictions, 19);
    }

    #[test]
    fn two_way_fixes_the_conflict() {
        // Same trace, 2-way: both lines fit in set 0.
        let mut c = Cache::new(CacheConfig::set_associative(2, 2, 16)).unwrap();
        let a = 0x000;
        let b = 0x040; // 2 sets * 16B = 32B stride... recompute: same set ⇔
                       // (addr/16) % 2 equal: 0x000→set0, 0x040→set0. Yes.
        c.access(a, AccessKind::Load);
        c.access(b, AccessKind::Load);
        for _ in 0..10 {
            assert!(c.access(a, AccessKind::Load).hit);
            assert!(c.access(b, AccessKind::Load).hit);
        }
        assert_eq!(c.stats().misses, 2);
    }

    #[test]
    fn lru_evicts_least_recently_used() {
        // 1 set, 2 ways, 16B blocks. Touch A, B, A, then C: B must go.
        let mut c = Cache::new(CacheConfig::fully_associative(2, 16)).unwrap();
        let (a, b, cc) = (0x00, 0x10, 0x20);
        c.access(a, AccessKind::Load);
        c.access(b, AccessKind::Load);
        c.access(a, AccessKind::Load); // refresh A
        let out = c.access(cc, AccessKind::Load);
        assert_eq!(out.evicted, Some(c.layout().split(b).tag));
        assert!(c.access(a, AccessKind::Load).hit, "A survived");
        assert!(!c.access(b, AccessKind::Load).hit, "B was evicted");
    }

    #[test]
    fn fifo_ignores_recency() {
        // Same sequence under FIFO: A is oldest, so A goes despite refresh.
        let mut cfg = CacheConfig::fully_associative(2, 16);
        cfg.replacement = ReplacementPolicy::Fifo;
        let mut c = Cache::new(cfg).unwrap();
        let (a, b, cc) = (0x00, 0x10, 0x20);
        c.access(a, AccessKind::Load);
        c.access(b, AccessKind::Load);
        c.access(a, AccessKind::Load);
        let out = c.access(cc, AccessKind::Load);
        assert_eq!(out.evicted, Some(c.layout().split(a).tag));
    }

    #[test]
    fn random_replacement_is_deterministic_per_instance() {
        let mut cfg = CacheConfig::fully_associative(4, 16);
        cfg.replacement = ReplacementPolicy::Random;
        let trace: Vec<TraceEvent> = (0..200).map(|i| TraceEvent::load(i * 16)).collect();
        let mut c1 = Cache::new(cfg).unwrap();
        let mut c2 = Cache::new(cfg).unwrap();
        let o1 = c1.run_trace(&trace);
        let o2 = c2.run_trace(&trace);
        assert_eq!(o1, o2, "seeded RNG ⇒ reproducible runs");
    }

    #[test]
    fn write_back_defers_memory_traffic() {
        let mut c = dm_cache(); // write-back, allocate
        c.access(0x100, AccessKind::Store); // miss, fill, dirty
        c.access(0x100, AccessKind::Store); // hit, dirty (no memory)
        assert_eq!(c.stats().memory_accesses, 1, "only the fill");
        // Evict the dirty line: +1 writeback +1 fill.
        let out = c.access(0x140, AccessKind::Load);
        assert!(out.wrote_back);
        assert_eq!(c.stats().writebacks, 1);
        assert_eq!(c.stats().memory_accesses, 3);
    }

    #[test]
    fn write_through_always_touches_memory() {
        let mut cfg = CacheConfig::direct_mapped(4, 16);
        cfg.write_policy = WritePolicy::WriteThrough;
        let mut c = Cache::new(cfg).unwrap();
        c.access(0x100, AccessKind::Store); // miss: fill + store = 2
        c.access(0x100, AccessKind::Store); // hit: store = 1
        c.access(0x100, AccessKind::Store);
        assert_eq!(c.stats().memory_accesses, 4);
        assert_eq!(c.stats().writebacks, 0, "write-through has no dirty lines");
    }

    #[test]
    fn no_allocate_store_miss_bypasses() {
        let mut cfg = CacheConfig::direct_mapped(4, 16);
        cfg.write_allocate = WriteAllocate::NoAllocate;
        let mut c = Cache::new(cfg).unwrap();
        let out = c.access(0x100, AccessKind::Store);
        assert!(!out.hit && out.touched_memory);
        // The block was NOT brought in.
        assert!(!c.access(0x100, AccessKind::Load).hit);
    }

    #[test]
    fn amat_formula() {
        let mut c = dm_cache(); // hit 1, penalty 100
        c.access(0x0, AccessKind::Load); // miss
        c.access(0x0, AccessKind::Load); // hit
                                         // miss rate 0.5 → AMAT = 1 + 0.5*100 = 51
        assert!((c.amat() - 51.0).abs() < 1e-9);
        assert_eq!(c.total_cycles(), 2 + 100);
    }

    #[test]
    fn capacity_and_validation() {
        assert_eq!(CacheConfig::set_associative(64, 4, 64).capacity(), 16384);
        assert!(Cache::new(CacheConfig::direct_mapped(3, 16)).is_err());
        let mut cfg = CacheConfig::direct_mapped(4, 16);
        cfg.ways = 0;
        assert!(matches!(Cache::new(cfg), Err(MemSimError::Zero("ways"))));
    }

    #[test]
    fn prefetcher_halves_sequential_misses() {
        let trace: Vec<TraceEvent> = (0..128u64).map(|i| TraceEvent::load(i * 64)).collect();
        let mut plain = Cache::new(CacheConfig::direct_mapped(64, 64)).unwrap();
        plain.run_trace(&trace);
        let mut cfg = CacheConfig::direct_mapped(64, 64);
        cfg.prefetch_next_line = true;
        let mut pf = Cache::new(cfg).unwrap();
        pf.run_trace(&trace);
        assert_eq!(plain.stats().misses, 128, "cold sequential: all miss");
        assert_eq!(pf.stats().misses, 64, "next-line hides every other miss");
        assert!(pf.stats().prefetch_hits >= 63, "{:?}", pf.stats());
    }

    #[test]
    fn prefetcher_useless_on_random_far_strides() {
        // Stride of 3 blocks: the prefetched next line is never demanded.
        let trace: Vec<TraceEvent> = (0..64u64).map(|i| TraceEvent::load(i * 192)).collect();
        let mut cfg = CacheConfig::set_associative(16, 4, 64);
        cfg.prefetch_next_line = true;
        let mut c = Cache::new(cfg).unwrap();
        c.run_trace(&trace);
        assert_eq!(c.stats().prefetch_hits, 0, "nothing useful");
        assert_eq!(c.stats().prefetches, 64, "but plenty of wasted traffic");
    }

    #[test]
    fn prefetch_does_not_perturb_demand_accounting() {
        let mut cfg = CacheConfig::direct_mapped(8, 64);
        cfg.prefetch_next_line = true;
        let mut c = Cache::new(cfg).unwrap();
        c.access(0, AccessKind::Load);
        let s = c.stats();
        assert_eq!(s.accesses, 1);
        assert_eq!(s.misses, 1);
        assert_eq!(s.prefetches, 1);
        assert_eq!(s.memory_accesses, 2, "demand fill + prefetch fill");
    }

    #[test]
    fn contents_diagram_shows_valid_and_dirty() {
        let mut c = Cache::new(CacheConfig::direct_mapped(4, 16)).unwrap();
        c.access(0x00, AccessKind::Load);
        c.access(0x10, AccessKind::Store);
        let d = c.render_contents();
        assert!(d.contains("set   0:  [V   tag 0x0]"), "{d}");
        assert!(d.contains("set   1:  [V D tag 0x0]"), "{d}");
        assert!(d.contains("set   2:  [------]"), "{d}");
    }

    proptest! {
        #[test]
        fn prop_stats_consistent(addrs in proptest::collection::vec(0u64..0x4000, 1..200)) {
            let mut c = Cache::new(CacheConfig::set_associative(8, 2, 16)).unwrap();
            for a in &addrs {
                let kind = if a % 3 == 0 { AccessKind::Store } else { AccessKind::Load };
                c.access(*a, kind);
            }
            let s = c.stats();
            prop_assert_eq!(s.hits + s.misses, s.accesses);
            prop_assert!(s.evictions <= s.misses);
            prop_assert!(s.writebacks <= s.evictions);
        }

        #[test]
        fn prop_repeat_access_always_hits(addr in 0u64..0x10000) {
            let mut c = Cache::new(CacheConfig::set_associative(16, 2, 32)).unwrap();
            c.access(addr, AccessKind::Load);
            prop_assert!(c.access(addr, AccessKind::Load).hit);
        }

        #[test]
        fn prop_bigger_cache_never_worse_on_loads(
            addrs in proptest::collection::vec(0u64..0x2000, 1..300)
        ) {
            // LRU caches have the inclusion property: more ways at the same
            // sets never lose hits on a load-only trace.
            let mut small = Cache::new(CacheConfig::set_associative(1, 2, 16)).unwrap();
            let mut big = Cache::new(CacheConfig::set_associative(1, 8, 16)).unwrap();
            for a in &addrs {
                small.access(*a, AccessKind::Load);
                big.access(*a, AccessKind::Load);
            }
            prop_assert!(big.stats().hits >= small.stats().hits);
        }
    }
}
