//! Memory access traces and homework-style trace tables.

/// Load or store — the course's traces are "a mix of loads and stores".
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum AccessKind {
    /// A read (CPU load).
    Load,
    /// A write (CPU store).
    Store,
}

/// One address reference in a trace.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TraceEvent {
    /// Byte address.
    pub addr: u64,
    /// Load or store.
    pub kind: AccessKind,
}

impl TraceEvent {
    /// A load event.
    pub fn load(addr: u64) -> TraceEvent {
        TraceEvent {
            addr,
            kind: AccessKind::Load,
        }
    }

    /// A store event.
    pub fn store(addr: u64) -> TraceEvent {
        TraceEvent {
            addr,
            kind: AccessKind::Store,
        }
    }
}

/// What one cache access did — a row of the homework trace table.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct AccessOutcome {
    /// The address referenced.
    pub addr: u64,
    /// The access kind.
    pub kind: AccessKind,
    /// Whether it hit.
    pub hit: bool,
    /// Set index the access mapped to.
    pub set: u64,
    /// Tag of the access.
    pub tag: u64,
    /// A valid line was evicted to make room.
    pub evicted: Option<u64>,
    /// The eviction wrote back a dirty block.
    pub wrote_back: bool,
    /// The access went to (or through to) main memory.
    pub touched_memory: bool,
}

/// Renders outcomes as the table students fill in for HW 7/8.
pub fn trace_table(outcomes: &[AccessOutcome]) -> String {
    let mut out = format!(
        "{:<4} {:<10} {:<6} {:>4} {:>8} {:<6} {:<10}\n",
        "#", "address", "kind", "set", "tag", "h/m", "evict"
    );
    for (i, o) in outcomes.iter().enumerate() {
        let kind = match o.kind {
            AccessKind::Load => "load",
            AccessKind::Store => "store",
        };
        let hm = if o.hit { "hit" } else { "MISS" };
        let ev = match o.evicted {
            Some(tag) if o.wrote_back => format!("tag {tag:#x} (dirty)"),
            Some(tag) => format!("tag {tag:#x}"),
            None => String::new(),
        };
        out.push_str(&format!(
            "{:<4} {:<10} {:<6} {:>4} {:>8} {:<6} {:<10}\n",
            i,
            format!("{:#x}", o.addr),
            kind,
            o.set,
            format!("{:#x}", o.tag),
            hm,
            ev
        ));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn event_constructors() {
        assert_eq!(TraceEvent::load(4).kind, AccessKind::Load);
        assert_eq!(TraceEvent::store(4).kind, AccessKind::Store);
    }

    #[test]
    fn table_renders() {
        let rows = vec![
            AccessOutcome {
                addr: 0x10,
                kind: AccessKind::Load,
                hit: false,
                set: 1,
                tag: 0,
                evicted: None,
                wrote_back: false,
                touched_memory: true,
            },
            AccessOutcome {
                addr: 0x10,
                kind: AccessKind::Store,
                hit: true,
                set: 1,
                tag: 0,
                evicted: Some(7),
                wrote_back: true,
                touched_memory: false,
            },
        ];
        let t = trace_table(&rows);
        assert!(t.contains("MISS"));
        assert!(t.contains("hit"));
        assert!(t.contains("(dirty)"));
        assert_eq!(t.lines().count(), 3);
    }
}
