//! Storage device models and the memory-hierarchy table.
//!
//! The course "motivate\[s\] our analysis of the memory hierarchy by
//! describing the wide variety in performance characteristics (e.g.,
//! access latency, storage density, and cost) across storage devices"
//! and has students classify devices as primary or secondary (§III-A).

/// Primary (CPU-addressable) vs secondary (OS-mediated) storage.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum StorageClass {
    /// Accessed directly by CPU instructions over the memory bus.
    Primary,
    /// Accessed through operating system calls.
    Secondary,
}

/// A storage technology with course-scale characteristic numbers.
#[derive(Debug, Clone, PartialEq)]
pub struct Device {
    /// Human name ("DRAM", "SSD", …).
    pub name: &'static str,
    /// Typical access latency in nanoseconds.
    pub latency_ns: f64,
    /// Typical capacity in bytes.
    pub capacity_bytes: u64,
    /// Rough cost in dollars per gigabyte.
    pub dollars_per_gb: f64,
    /// Primary or secondary.
    pub class: StorageClass,
}

impl Device {
    /// Bytes per dollar — the density/cost tradeoff in one number.
    pub fn bytes_per_dollar(&self) -> f64 {
        if self.dollars_per_gb == 0.0 {
            f64::INFINITY
        } else {
            (1u64 << 30) as f64 / self.dollars_per_gb
        }
    }
}

/// The hierarchy from fast/small/expensive to slow/big/cheap — the
/// triangle diagram every systems course draws.
pub fn hierarchy() -> Vec<Device> {
    vec![
        Device {
            name: "registers",
            latency_ns: 0.3,
            capacity_bytes: 8 * 4,
            dollars_per_gb: f64::INFINITY,
            class: StorageClass::Primary,
        },
        Device {
            name: "L1 cache (SRAM)",
            latency_ns: 1.0,
            capacity_bytes: 64 << 10,
            dollars_per_gb: 5000.0,
            class: StorageClass::Primary,
        },
        Device {
            name: "L2 cache (SRAM)",
            latency_ns: 4.0,
            capacity_bytes: 1 << 20,
            dollars_per_gb: 2000.0,
            class: StorageClass::Primary,
        },
        Device {
            name: "main memory (DRAM)",
            latency_ns: 100.0,
            capacity_bytes: 16u64 << 30,
            dollars_per_gb: 5.0,
            class: StorageClass::Primary,
        },
        Device {
            name: "SSD (flash)",
            latency_ns: 100_000.0,
            capacity_bytes: 1u64 << 40,
            dollars_per_gb: 0.1,
            class: StorageClass::Secondary,
        },
        Device {
            name: "hard disk",
            latency_ns: 10_000_000.0,
            capacity_bytes: 8u64 << 40,
            dollars_per_gb: 0.02,
            class: StorageClass::Secondary,
        },
    ]
}

/// Renders the hierarchy as the lecture's comparison table.
pub fn hierarchy_table() -> String {
    let mut out = format!(
        "{:<20} {:>14} {:>14} {:>10} {:<10}\n",
        "device", "latency (ns)", "capacity", "$/GB", "class"
    );
    for d in hierarchy() {
        let class = match d.class {
            StorageClass::Primary => "primary",
            StorageClass::Secondary => "secondary",
        };
        out.push_str(&format!(
            "{:<20} {:>14} {:>14} {:>10} {:<10}\n",
            d.name,
            format_sig(d.latency_ns),
            human_bytes(d.capacity_bytes),
            if d.dollars_per_gb.is_infinite() {
                "-".to_string()
            } else {
                format!("{:.2}", d.dollars_per_gb)
            },
            class
        ));
    }
    out
}

fn format_sig(v: f64) -> String {
    if v >= 1000.0 {
        format!("{:.0}", v)
    } else {
        format!("{v}")
    }
}

/// Renders byte counts with binary units (KiB/MiB/GiB/TiB).
pub fn human_bytes(b: u64) -> String {
    const UNITS: [(&str, u64); 4] = [
        ("TiB", 1 << 40),
        ("GiB", 1 << 30),
        ("MiB", 1 << 20),
        ("KiB", 1 << 10),
    ];
    for (unit, size) in UNITS {
        if b >= size {
            return format!("{} {unit}", b / size);
        }
    }
    format!("{b} B")
}

/// The "latency if a register access took one second" scaling exercise —
/// the analogy the course uses to make the gulf visceral.
pub fn humanized_latency_seconds(device: &Device) -> f64 {
    let register_ns = 0.3;
    device.latency_ns / register_ns
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn hierarchy_is_ordered() {
        let h = hierarchy();
        assert!(h.len() >= 5);
        for pair in h.windows(2) {
            assert!(
                pair[0].latency_ns < pair[1].latency_ns,
                "latency must increase down the hierarchy"
            );
            assert!(
                pair[0].capacity_bytes <= pair[1].capacity_bytes,
                "capacity must grow down the hierarchy"
            );
        }
    }

    #[test]
    fn classification_matches_course() {
        let h = hierarchy();
        let dram = h.iter().find(|d| d.name.contains("DRAM")).unwrap();
        assert_eq!(dram.class, StorageClass::Primary);
        let ssd = h.iter().find(|d| d.name.contains("SSD")).unwrap();
        assert_eq!(ssd.class, StorageClass::Secondary);
    }

    #[test]
    fn table_renders_all_rows() {
        let t = hierarchy_table();
        assert_eq!(t.lines().count(), hierarchy().len() + 1);
        assert!(t.contains("hard disk"));
        assert!(t.contains("secondary"));
    }

    #[test]
    fn human_bytes_units() {
        assert_eq!(human_bytes(512), "512 B");
        assert_eq!(human_bytes(64 << 10), "64 KiB");
        assert_eq!(human_bytes(16u64 << 30), "16 GiB");
        assert_eq!(human_bytes(8u64 << 40), "8 TiB");
    }

    #[test]
    fn disk_is_tens_of_millions_of_register_times() {
        let h = hierarchy();
        let disk = h.last().unwrap();
        let ratio = humanized_latency_seconds(disk);
        assert!(ratio > 1e7, "the gulf the course dramatizes: {ratio}");
    }

    #[test]
    fn bytes_per_dollar_monotone_down_hierarchy() {
        let h = hierarchy();
        let dram = h.iter().find(|d| d.name.contains("DRAM")).unwrap();
        let disk = h.last().unwrap();
        assert!(disk.bytes_per_dollar() > dram.bytes_per_dollar());
    }
}
