//! Address division: tag / index / offset.
//!
//! "We pay particular attention to how various cache parameters like the
//! block size and number of lines affect address division into the tag,
//! index, and offset" (§III-A *Caching*). [`AddressLayout`] is that
//! division as a first-class value, with pretty-printing for homework
//! solutions.

use crate::MemSimError;

/// How a cache geometry divides an address.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct AddressLayout {
    /// Bits of block offset (log2 of block size).
    pub offset_bits: u32,
    /// Bits of set index (log2 of the number of sets).
    pub index_bits: u32,
    /// Address width in bits (default 32 in course materials).
    pub addr_bits: u32,
}

/// The three fields extracted from one address.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SplitAddress {
    /// Tag bits (the high bits).
    pub tag: u64,
    /// Set index.
    pub index: u64,
    /// Byte offset within the block.
    pub offset: u64,
}

impl AddressLayout {
    /// Builds a layout from cache geometry. Both parameters must be
    /// nonzero powers of two.
    pub fn new(num_sets: u64, block_size: u64) -> Result<AddressLayout, MemSimError> {
        AddressLayout::with_addr_bits(num_sets, block_size, 32)
    }

    /// As [`AddressLayout::new`] with an explicit address width.
    pub fn with_addr_bits(
        num_sets: u64,
        block_size: u64,
        addr_bits: u32,
    ) -> Result<AddressLayout, MemSimError> {
        for (what, v) in [("num_sets", num_sets), ("block_size", block_size)] {
            if v == 0 {
                return Err(MemSimError::Zero(what));
            }
            if !v.is_power_of_two() {
                return Err(MemSimError::NotPowerOfTwo { what, value: v });
            }
        }
        Ok(AddressLayout {
            offset_bits: block_size.trailing_zeros(),
            index_bits: num_sets.trailing_zeros(),
            addr_bits,
        })
    }

    /// Tag width in bits.
    pub fn tag_bits(&self) -> u32 {
        self.addr_bits - self.index_bits - self.offset_bits
    }

    /// Splits an address into (tag, index, offset).
    pub fn split(&self, addr: u64) -> SplitAddress {
        let offset = addr & ((1u64 << self.offset_bits) - 1);
        let index = (addr >> self.offset_bits) & ((1u64 << self.index_bits) - 1);
        let index = if self.index_bits == 0 { 0 } else { index };
        let tag = addr >> (self.offset_bits + self.index_bits);
        SplitAddress { tag, index, offset }
    }

    /// Reassembles an address from fields (inverse of [`AddressLayout::split`]).
    pub fn join(&self, s: SplitAddress) -> u64 {
        (s.tag << (self.offset_bits + self.index_bits)) | (s.index << self.offset_bits) | s.offset
    }

    /// The block-aligned base address containing `addr`.
    pub fn block_base(&self, addr: u64) -> u64 {
        addr & !((1u64 << self.offset_bits) - 1)
    }

    /// Homework-style rendering: `tag[31:10] index[9:4] offset[3:0]`.
    pub fn describe(&self) -> String {
        let hi = self.addr_bits - 1;
        let idx_hi = self.offset_bits + self.index_bits;
        if self.index_bits == 0 {
            format!(
                "tag[{hi}:{idx_hi}] (no index: fully associative) offset[{}:0]",
                self.offset_bits.saturating_sub(1)
            )
        } else {
            format!(
                "tag[{hi}:{idx_hi}] index[{}:{}] offset[{}:0]",
                idx_hi - 1,
                self.offset_bits,
                self.offset_bits.saturating_sub(1)
            )
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn classic_homework_layout() {
        // 64 sets, 16-byte blocks, 32-bit addresses: offset 4, index 6, tag 22.
        let l = AddressLayout::new(64, 16).unwrap();
        assert_eq!(l.offset_bits, 4);
        assert_eq!(l.index_bits, 6);
        assert_eq!(l.tag_bits(), 22);
        let s = l.split(0x1234);
        // 0x1234 = 0b1_0010_0011_0100: offset 0x4, index 0b100011=35, tag 4.
        assert_eq!(s.offset, 0x4);
        assert_eq!(s.index, 35);
        assert_eq!(s.tag, 4);
    }

    #[test]
    fn fully_associative_has_no_index() {
        let l = AddressLayout::new(1, 64).unwrap();
        assert_eq!(l.index_bits, 0);
        assert_eq!(l.split(0xFFFF).index, 0);
        assert!(l.describe().contains("fully associative"));
    }

    #[test]
    fn describe_format() {
        let l = AddressLayout::new(64, 16).unwrap();
        assert_eq!(l.describe(), "tag[31:10] index[9:4] offset[3:0]");
    }

    #[test]
    fn rejects_bad_geometry() {
        assert!(matches!(
            AddressLayout::new(0, 16),
            Err(MemSimError::Zero("num_sets"))
        ));
        assert!(matches!(
            AddressLayout::new(48, 16),
            Err(MemSimError::NotPowerOfTwo {
                what: "num_sets",
                value: 48
            })
        ));
        assert!(AddressLayout::new(64, 24).is_err());
    }

    #[test]
    fn block_base_alignment() {
        let l = AddressLayout::new(4, 16).unwrap();
        assert_eq!(l.block_base(0x1234), 0x1230);
        assert_eq!(l.block_base(0x1230), 0x1230);
        assert_eq!(l.block_base(0x123F), 0x1230);
    }

    proptest! {
        #[test]
        fn prop_split_join_roundtrip(
            sets_pow in 0u32..10, block_pow in 0u32..8, addr in any::<u32>()
        ) {
            let l = AddressLayout::new(1 << sets_pow, 1 << block_pow).unwrap();
            let s = l.split(addr as u64);
            prop_assert_eq!(l.join(s), addr as u64);
        }

        #[test]
        fn prop_same_block_same_index_tag(
            sets_pow in 1u32..10, block_pow in 2u32..8, addr in any::<u32>()
        ) {
            let l = AddressLayout::new(1 << sets_pow, 1 << block_pow).unwrap();
            let base = l.block_base(addr as u64);
            let a = l.split(addr as u64);
            let b = l.split(base);
            prop_assert_eq!(a.tag, b.tag);
            prop_assert_eq!(a.index, b.index);
        }
    }
}
