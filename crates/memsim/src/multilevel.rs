//! Multi-level cache hierarchies and average memory access time.
//!
//! The course wraps caching by "linking back to our initial introduction
//! for the memory hierarchy and the ways in which data storage locations
//! impact system performance" (§III-A). This module stacks two simulated
//! caches in front of a fixed-latency memory and reports per-level stats
//! and the end-to-end AMAT.

use crate::cache::{Cache, CacheConfig, CacheStats};
use crate::trace::{AccessKind, TraceEvent};
use crate::MemSimError;

/// A two-level cache hierarchy over main memory.
#[derive(Debug, Clone)]
pub struct Hierarchy {
    /// Level-1 cache.
    pub l1: Cache,
    /// Level-2 cache.
    pub l2: Cache,
    /// Main-memory latency in cycles.
    pub memory_latency: u64,
    cycles: u64,
    accesses: u64,
}

impl Hierarchy {
    /// Builds an L1/L2 stack. Conventionally `l1` is small and fast,
    /// `l2` larger and slower (their `hit_time`s encode that).
    pub fn new(
        l1: CacheConfig,
        l2: CacheConfig,
        memory_latency: u64,
    ) -> Result<Hierarchy, MemSimError> {
        Ok(Hierarchy {
            l1: Cache::new(l1)?,
            l2: Cache::new(l2)?,
            memory_latency,
            cycles: 0,
            accesses: 0,
        })
    }

    /// One access through the stack; returns the cycles it cost.
    ///
    /// L2 is only consulted on an L1 miss; memory only on an L2 miss —
    /// the "where is the data *now*" question the course keeps asking.
    pub fn access(&mut self, addr: u64, kind: AccessKind) -> u64 {
        self.accesses += 1;
        let mut cost = self.l1.config.hit_time;
        let l1_out = self.l1.access(addr, kind);
        if !l1_out.hit {
            cost += self.l2.config.hit_time;
            let l2_out = self.l2.access(addr, kind);
            if !l2_out.hit {
                cost += self.memory_latency;
            }
        }
        self.cycles += cost;
        cost
    }

    /// Runs a trace; returns total cycles.
    pub fn run_trace(&mut self, trace: &[TraceEvent]) -> u64 {
        trace.iter().map(|e| self.access(e.addr, e.kind)).sum()
    }

    /// Measured average memory access time (cycles per access).
    pub fn measured_amat(&self) -> f64 {
        if self.accesses == 0 {
            0.0
        } else {
            self.cycles as f64 / self.accesses as f64
        }
    }

    /// The analytic AMAT from the standard recurrence:
    /// `t1 + m1*(t2 + m2*tmem)` using measured miss rates.
    pub fn analytic_amat(&self) -> f64 {
        let m1 = self.l1.stats().miss_rate();
        let m2 = self.l2.stats().miss_rate();
        self.l1.config.hit_time as f64
            + m1 * (self.l2.config.hit_time as f64 + m2 * self.memory_latency as f64)
    }

    /// Per-level stats `(l1, l2)`.
    pub fn stats(&self) -> (CacheStats, CacheStats) {
        (self.l1.stats(), self.l2.stats())
    }
}

/// A convenient course-scale default: 4 KiB 2-way L1 (1 cycle),
/// 64 KiB 8-way L2 (10 cycles), 100-cycle memory.
pub fn classroom_hierarchy() -> Hierarchy {
    let mut l1 = CacheConfig::set_associative(32, 2, 64);
    l1.hit_time = 1;
    let mut l2 = CacheConfig::set_associative(128, 8, 64);
    l2.hit_time = 10;
    Hierarchy::new(l1, l2, 100).expect("classroom geometry is valid")
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::patterns;

    #[test]
    fn l2_catches_l1_capacity_misses() {
        let mut h = classroom_hierarchy();
        // Working set: 16 KiB — too big for the 4 KiB L1, fits the 64 KiB L2.
        let trace = patterns::working_set_trace(0, 16 << 10, 64, 5);
        h.run_trace(&trace);
        let (l1, l2) = h.stats();
        assert!(l1.miss_rate() > 0.9, "L1 thrashes: {}", l1.miss_rate());
        // After the cold sweep, L2 serves everything.
        assert!(l2.hit_rate() > 0.7, "L2 rescues: {}", l2.hit_rate());
    }

    #[test]
    fn small_working_set_stays_in_l1() {
        let mut h = classroom_hierarchy();
        let trace = patterns::working_set_trace(0, 2 << 10, 64, 100);
        h.run_trace(&trace);
        let (l1, _) = h.stats();
        assert!(l1.hit_rate() > 0.9);
        // AMAT close to the L1 hit time.
        assert!(h.measured_amat() < 3.0, "{}", h.measured_amat());
    }

    #[test]
    fn measured_close_to_analytic() {
        let mut h = classroom_hierarchy();
        let trace = patterns::random_trace(0, 128 << 10, 5000, 42);
        h.run_trace(&trace);
        let measured = h.measured_amat();
        let analytic = h.analytic_amat();
        let rel = (measured - analytic).abs() / analytic;
        assert!(rel < 0.05, "measured {measured} vs analytic {analytic}");
    }

    #[test]
    fn cost_per_access_levels() {
        let mut h = classroom_hierarchy();
        let c1 = h.access(0x0, AccessKind::Load); // cold: L1+L2+mem
        assert_eq!(c1, 1 + 10 + 100);
        let c2 = h.access(0x0, AccessKind::Load); // L1 hit
        assert_eq!(c2, 1);
        // Evict from L1 only (64 sets apart... use L1-conflicting address):
        // L1 has 32 sets * 64B: stride 2048 conflicts in L1.
        h.access(2048, AccessKind::Load);
        h.access(4096, AccessKind::Load);
        let c3 = h.access(0x0, AccessKind::Load); // L1 miss (2-way lost it), L2 hit
        assert_eq!(c3, 1 + 10);
    }

    #[test]
    fn empty_hierarchy_amat_zero() {
        let h = classroom_hierarchy();
        assert_eq!(h.measured_amat(), 0.0);
    }
}
