//! # rcache — read-mostly lock-free compute-once cache
//!
//! A concurrent map from keys to **promise slots** with the cs431
//! `hello_server` cache contract — for any resident key, the compute
//! closure runs **exactly once** no matter how many threads race the
//! miss — and a hit path that takes **no exclusive lock**:
//!
//! 1. **Split-ordered-style bucket table** (incremental recursive-split
//!    growth, no stop-the-world rehash) of per-key promise slots
//!    (`Computing → Ready(Arc<V>) | Poisoned`), so concurrent readers
//!    of *distinct* keys never contend.
//! 2. **Seqlock-validated lock-free reads**: a hit loads the bucket's
//!    even sequence, walks the chain, clones the `Arc` out of the
//!    slot, and only a *miss* needs the sequence re-check (value
//!    publication is monotone per node). Torn windows retry (counted
//!    in [`Stats::retries`], yielding every few failures) — the read
//!    itself **never** takes a lock (the read-only probe
//!    [`Cache::get`] cannot lock at all). The only way a lookup
//!    resolves under a bucket lock is losing an absent→insert race,
//!    counted in [`Stats::locked_hits`] — the structural counter
//!    experiment E19 pins to **zero** under eviction churn.
//! 3. **CLOCK second-chance eviction** instead of strict LRU: a hit
//!    records recency with one relaxed bit store; capacity enforcement
//!    is a hand-sweep run by *inserting* threads that gives referenced
//!    entries a second chance and **never evicts `Computing` slots**
//!    (the PR 3 invariant).
//!
//! The unsafe parts — raw chain traversal, epoch/pin-slot reclamation,
//! the seqlock — are confined to the [`table`] module (this crate root
//! is `deny(unsafe_code)`, mirroring `serve::deque`). The full
//! ordering/reclamation argument is DESIGN.md §14.
//!
//! ```
//! use rcache::Cache;
//!
//! let cache: Cache<String, usize> = Cache::new(64);
//! let v = cache.get_or_insert_with("hw3".to_string(), |k| k.len());
//! assert_eq!(*v, 3);
//! let again = cache.get_or_insert_with("hw3".to_string(), |_| unreachable!());
//! assert_eq!(*again, 3);
//! assert_eq!(cache.stats().hits, 1);
//! ```

// `deny`, not `forbid`: the `table` module opts back in (scoped
// `allow`) for the lock-free core.
#![deny(unsafe_code)]
#![deny(missing_docs)]

pub mod table;

use std::collections::hash_map::RandomState;
use std::hash::{BuildHasher, Hash};
use std::panic::{catch_unwind, resume_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicU64, Ordering::Relaxed};
use std::sync::Arc;

use table::{FindOrInsert, Peeked, Read, Table, Waited};

/// What to do with the notification that wakes waiters parked on a
/// freshly published slot. Produced by [`Hooks::before_wake`]; the
/// default everywhere is [`WakeFate::Deliver`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum WakeFate {
    /// Notify waiters normally.
    Deliver,
    /// Swallow the notification (fault injection: waiters must still
    /// complete off their timed waits — `serve::fault`'s
    /// `CachePromiseWake` drop schedule rides this).
    Drop,
}

/// Test/fault-injection seams invoked on the owner's publish path.
/// Production configs leave both `None`; `serve` wires its
/// [`FaultPlan`](../serve/fault) schedules through them.
#[derive(Clone, Default)]
pub struct Hooks {
    /// Runs after the compute closure succeeds, *before* the value is
    /// published — while the owner's slot is still `Computing`. The
    /// cache follows it with a forced eviction sweep, so a hook that
    /// fires `CacheEvictDuringCompute` reproduces the adversarial
    /// evict-during-compute schedule on this implementation.
    pub before_publish: Option<Arc<dyn Fn() + Send + Sync>>,
    /// Runs after publication, deciding the waiters' wakeup fate.
    pub before_wake: Option<Arc<dyn Fn() -> WakeFate + Send + Sync>>,
}

impl std::fmt::Debug for Hooks {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Hooks")
            .field("before_publish", &self.before_publish.is_some())
            .field("before_wake", &self.before_wake.is_some())
            .finish()
    }
}

/// Construction parameters for [`Cache::with_config`].
#[derive(Debug, Clone)]
pub struct Config {
    /// Resident-entry bound enforced by the CLOCK sweep. `Computing`
    /// slots never count as victims, so transiently the table may hold
    /// `capacity` ready entries plus every in-flight compute.
    pub capacity: usize,
    /// Starting bucket count (rounded up to a power of two). The table
    /// doubles incrementally as occupancy grows; this only tunes how
    /// soon the first splits happen.
    pub initial_buckets: usize,
    /// Metrics sink; counters/gauges are mirrored under `rcache.*`.
    /// Defaults to the disabled registry (recording collapses to
    /// no-ops).
    pub registry: obs::Registry,
    /// Fault-injection seams; see [`Hooks`].
    pub hooks: Hooks,
}

impl Default for Config {
    fn default() -> Self {
        Config {
            capacity: 1024,
            initial_buckets: 8,
            registry: obs::Registry::disabled(),
            hooks: Hooks::default(),
        }
    }
}

/// Point-in-time counter snapshot; see [`Cache::stats`].
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct Stats {
    /// Lookups that found the key resident (ready or in flight).
    pub hits: u64,
    /// Lookups that inserted a fresh slot and ran the closure — by the
    /// compute-once contract, also the number of closure invocations.
    pub misses: u64,
    /// Lookups that parked on another thread's `Computing` slot.
    pub waits: u64,
    /// Torn seqlock windows retried on the lock-free read path.
    pub retries: u64,
    /// Entries removed by the CLOCK sweep.
    pub evictions: u64,
    /// Lookups that resolved under a bucket lock — possible only by
    /// losing an absent→insert race — the hit path's exclusive-lock
    /// counter. E19's structural assertion is that churn alone keeps
    /// this at 0 (the lock-free read never falls back to a lock).
    pub locked_hits: u64,
    /// Resident entries right now (ready + computing).
    pub occupancy: usize,
    /// Current bucket count (grows by incremental splitting).
    pub buckets: usize,
}

/// Handles for the `rcache.*` obs mirrors.
struct Mirrors {
    hits: obs::Counter,
    misses: obs::Counter,
    waits: obs::Counter,
    retries: obs::Counter,
    evictions: obs::Counter,
    locked_hits: obs::Counter,
    occupancy: obs::Gauge,
}

/// A concurrent compute-once cache whose hit path is lock-free. See
/// the crate docs for the design and DESIGN.md §14 for the proofs.
///
/// Values are returned as `Arc<V>`: hits hand back a clone of the
/// published pointer, so readers share one allocation and eviction
/// never invalidates a value a caller already holds.
pub struct Cache<K, V> {
    table: Table<K, V>,
    hasher: RandomState,
    capacity: usize,
    hooks: Hooks,
    hits: AtomicU64,
    misses: AtomicU64,
    waits: AtomicU64,
    retries: AtomicU64,
    evictions: AtomicU64,
    locked_hits: AtomicU64,
    mirrors: Mirrors,
}

impl<K, V> std::fmt::Debug for Cache<K, V> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Cache")
            .field("capacity", &self.capacity)
            .field("occupancy", &self.table.len())
            .field("hits", &self.hits.load(Relaxed))
            .field("misses", &self.misses.load(Relaxed))
            .finish()
    }
}

impl<K, V> Cache<K, V>
where
    K: Hash + Eq + Clone + Send + Sync,
    V: Send + Sync,
{
    /// A cache bounded to `capacity` resident entries, with default
    /// bucket sizing, no metrics, and no fault hooks.
    pub fn new(capacity: usize) -> Self {
        Cache::with_config(Config {
            capacity,
            ..Config::default()
        })
    }

    /// A cache with explicit [`Config`].
    pub fn with_config(config: Config) -> Self {
        let reg = &config.registry;
        Cache {
            table: Table::new(config.initial_buckets, config.capacity.max(1)),
            hasher: RandomState::new(),
            capacity: config.capacity.max(1),
            hooks: config.hooks,
            hits: AtomicU64::new(0),
            misses: AtomicU64::new(0),
            waits: AtomicU64::new(0),
            retries: AtomicU64::new(0),
            evictions: AtomicU64::new(0),
            locked_hits: AtomicU64::new(0),
            mirrors: Mirrors {
                hits: reg.counter("rcache.hits"),
                misses: reg.counter("rcache.misses"),
                waits: reg.counter("rcache.waits"),
                retries: reg.counter("rcache.retries"),
                evictions: reg.counter("rcache.evictions"),
                locked_hits: reg.counter("rcache.locked_hits"),
                occupancy: reg.gauge("rcache.occupancy"),
            },
        }
    }

    /// Returns the cached value for `key`, running `compute` to fill it
    /// on a miss. For a resident key the closure runs **exactly once**
    /// across all racing threads: losers either return the published
    /// `Arc` lock-free or park on the owner's promise slot.
    ///
    /// # Panics
    ///
    /// If `compute` panics, the panic propagates to the owner, waiters
    /// panic with a "panicked in another thread" message, and the slot
    /// is removed so a later independent call retries — the same
    /// contract as `serve::cache`.
    pub fn get_or_insert_with<F>(&self, key: K, compute: F) -> Arc<V>
    where
        F: FnOnce(&K) -> V,
    {
        let hash = self.hasher.hash_one(&key);
        match self.table.read(hash, &key) {
            Read::Ready(v, retries) => {
                self.note_retries(retries);
                self.record_hit();
                return v;
            }
            Read::InFlight(node, retries) => {
                self.note_retries(retries);
                self.record_hit();
                return self.wait_on(node);
            }
            Read::Absent { retries } => self.note_retries(retries),
        }
        match self.table.find_or_insert(hash, &key) {
            FindOrInsert::Found(node) => {
                // The key was validated-absent a moment ago but a
                // racing insert beat us to the slot under the bucket
                // lock — the one resolution that counts as a
                // `locked_hit`.
                self.record_hit();
                self.locked_hits.fetch_add(1, Relaxed);
                self.mirrors.locked_hits.inc();
                node.touch();
                match node.peek() {
                    Peeked::Ready(v) => v,
                    Peeked::Computing => self.wait_on(node),
                    Peeked::Poisoned => poisoned_panic(),
                }
            }
            FindOrInsert::Inserted(node) => {
                self.misses.fetch_add(1, Relaxed);
                self.mirrors.misses.inc();
                self.mirrors.occupancy.set(self.table.len() as i64);
                match catch_unwind(AssertUnwindSafe(|| compute(&key))) {
                    Ok(value) => {
                        let value = Arc::new(value);
                        if let Some(hook) = &self.hooks.before_publish {
                            // Adversarial schedule: our slot is still
                            // `Computing`; a forced sweep now must
                            // leave it resident or waiters would hang
                            // or recompute.
                            hook();
                            self.force_sweep();
                        }
                        node.publish(Arc::clone(&value));
                        let fate = match &self.hooks.before_wake {
                            Some(hook) => hook(),
                            None => WakeFate::Deliver,
                        };
                        node.wake(fate == WakeFate::Deliver);
                        self.force_sweep();
                        value
                    }
                    Err(panic) => {
                        node.poison();
                        node.wake(true);
                        // Remove the slot so the key can be retried by
                        // a later, independent call.
                        self.table.unlink(hash, &node);
                        self.mirrors.occupancy.set(self.table.len() as i64);
                        resume_unwind(panic);
                    }
                }
            }
        }
    }

    /// Read-only probe: returns the cached value for `key`, or `None`
    /// without inserting anything on a miss. The found path is the
    /// *same* optimistic read as [`Cache::get_or_insert_with`]'s hit
    /// path — same seqlock walk, same recency touch, same promise wait
    /// if the slot is still `Computing` — it just lacks the insert
    /// fallback, so a probe cannot take a bucket lock under any
    /// schedule. E19 times hot-key hits through this entry point for
    /// exactly that reason (see `bench::rcache_exp`).
    ///
    /// # Panics
    ///
    /// If the resident slot is poisoned — the same contract as a waiter
    /// in [`Cache::get_or_insert_with`].
    pub fn get(&self, key: &K) -> Option<Arc<V>> {
        let hash = self.hasher.hash_one(key);
        match self.table.read(hash, key) {
            Read::Ready(v, retries) => {
                self.note_retries(retries);
                self.record_hit();
                Some(v)
            }
            Read::InFlight(node, retries) => {
                self.note_retries(retries);
                self.record_hit();
                Some(self.wait_on(node))
            }
            Read::Absent { retries } => {
                self.note_retries(retries);
                self.misses.fetch_add(1, Relaxed);
                self.mirrors.misses.inc();
                None
            }
        }
    }

    /// Runs the CLOCK sweep until occupancy is back within capacity
    /// (public so fault schedules can force an eviction pass at a
    /// chosen instant). Never evicts `Computing` slots.
    pub fn force_sweep(&self) {
        let evicted = self.table.sweep(self.capacity);
        if evicted > 0 {
            self.evictions.fetch_add(evicted, Relaxed);
            self.mirrors.evictions.add(evicted);
            self.mirrors.occupancy.set(self.table.len() as i64);
        }
    }

    /// Resident-entry count (ready + computing).
    pub fn len(&self) -> usize {
        self.table.len()
    }

    /// True when no entries are resident.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Counter snapshot.
    pub fn stats(&self) -> Stats {
        Stats {
            hits: self.hits.load(Relaxed),
            misses: self.misses.load(Relaxed),
            waits: self.waits.load(Relaxed),
            retries: self.retries.load(Relaxed),
            evictions: self.evictions.load(Relaxed),
            locked_hits: self.locked_hits.load(Relaxed),
            occupancy: self.table.len(),
            buckets: self.table.buckets(),
        }
    }

    fn record_hit(&self) {
        self.hits.fetch_add(1, Relaxed);
        self.mirrors.hits.inc();
    }

    fn note_retries(&self, retries: u32) {
        if retries > 0 {
            self.retries.fetch_add(u64::from(retries), Relaxed);
            self.mirrors.retries.add(u64::from(retries));
        }
    }

    fn wait_on(&self, node: table::NodeRef<K, V>) -> Arc<V> {
        self.waits.fetch_add(1, Relaxed);
        self.mirrors.waits.inc();
        match node.wait() {
            Waited::Ready(v) => v,
            Waited::Poisoned => poisoned_panic(),
        }
    }
}

fn poisoned_panic() -> ! {
    // Same message as `serve::cache` so callers (and tests) treat both
    // implementations identically.
    panic!("cache compute for this key panicked in another thread")
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::AtomicUsize;
    use std::sync::Barrier;

    #[test]
    fn caches_and_counts() {
        let cache: Cache<u64, u64> = Cache::new(16);
        let computes = AtomicUsize::new(0);
        let v = cache.get_or_insert_with(7, |k| {
            computes.fetch_add(1, Relaxed);
            k * 3
        });
        assert_eq!(*v, 21);
        let v2 = cache.get_or_insert_with(7, |_| unreachable!("must be cached"));
        assert_eq!(*v2, 21);
        assert_eq!(computes.load(Relaxed), 1);
        let s = cache.stats();
        assert_eq!((s.hits, s.misses, s.locked_hits), (1, 1, 0));
        assert_eq!(s.occupancy, 1);
    }

    #[test]
    fn probe_reads_without_inserting() {
        let cache: Cache<u64, u64> = Cache::new(16);
        assert!(cache.get(&9).is_none());
        assert!(cache.is_empty(), "a probe miss must not insert");
        let v = cache.get_or_insert_with(9, |k| k * 2);
        assert_eq!(*v, 18);
        assert_eq!(cache.get(&9).as_deref(), Some(&18));
        let s = cache.stats();
        assert_eq!((s.hits, s.misses, s.locked_hits), (1, 2, 0));
        assert_eq!(s.occupancy, 1);
    }

    #[test]
    fn exactly_once_under_contention() {
        let cache: Arc<Cache<u64, u64>> = Arc::new(Cache::new(64));
        let computes = Arc::new(AtomicUsize::new(0));
        let barrier = Arc::new(Barrier::new(8));
        let mut handles = Vec::new();
        for _ in 0..8 {
            let cache = Arc::clone(&cache);
            let computes = Arc::clone(&computes);
            let barrier = Arc::clone(&barrier);
            handles.push(std::thread::spawn(move || {
                barrier.wait();
                let v = cache.get_or_insert_with(42, |k| {
                    computes.fetch_add(1, Relaxed);
                    std::thread::sleep(std::time::Duration::from_millis(5));
                    k + 1
                });
                assert_eq!(*v, 43);
            }));
        }
        for h in handles {
            h.join().unwrap();
        }
        assert_eq!(computes.load(Relaxed), 1, "compute-once violated");
        assert_eq!(cache.stats().misses, 1);
    }

    #[test]
    fn distinct_keys_do_not_serialize() {
        let cache: Arc<Cache<u64, u64>> = Arc::new(Cache::new(1024));
        let mut handles = Vec::new();
        for t in 0..8u64 {
            let cache = Arc::clone(&cache);
            handles.push(std::thread::spawn(move || {
                for k in 0..64u64 {
                    let key = t * 1000 + k;
                    let v = cache.get_or_insert_with(key, |k| k * 2);
                    assert_eq!(*v, key * 2);
                    let v = cache.get_or_insert_with(key, |k| k * 2);
                    assert_eq!(*v, key * 2);
                }
            }));
        }
        for h in handles {
            h.join().unwrap();
        }
        assert_eq!(cache.stats().misses, 8 * 64);
    }

    #[test]
    fn clock_gives_referenced_entries_a_second_chance() {
        let cache: Cache<u64, u64> = Cache::new(2);
        cache.get_or_insert_with(1, |_| 10);
        cache.get_or_insert_with(2, |_| 20);
        // Touch key 1 so its referenced bit is set; key 2 stays cold.
        assert_eq!(*cache.get_or_insert_with(1, |_| unreachable!()), 10);
        // Inserting key 3 pushes occupancy to 3 > 2: the sweep must
        // evict the unreferenced key 2 and spare key 1.
        cache.get_or_insert_with(3, |_| 30);
        assert!(cache.len() <= 2);
        assert_eq!(cache.stats().evictions, 1);
        let before = cache.stats().misses;
        assert_eq!(*cache.get_or_insert_with(1, |_| 99), 10, "hot key evicted");
        assert_eq!(cache.stats().misses, before, "hot key should still hit");
    }

    #[test]
    fn grows_incrementally_and_keeps_all_entries() {
        let cache: Cache<u64, u64> = Cache::with_config(Config {
            capacity: 4096,
            initial_buckets: 1,
            ..Config::default()
        });
        for k in 0..512u64 {
            cache.get_or_insert_with(k, |k| k ^ 0xABCD);
        }
        let s = cache.stats();
        assert!(s.buckets > 1, "table never grew: {s:?}");
        for k in 0..512u64 {
            let v = cache.get_or_insert_with(k, |_| unreachable!("lost key {k}"));
            assert_eq!(*v, k ^ 0xABCD);
        }
        assert_eq!(cache.stats().misses, 512);
    }

    #[test]
    fn panic_poisons_only_its_key_and_allows_retry() {
        let cache: Arc<Cache<u64, u64>> = Arc::new(Cache::new(16));
        let result = std::panic::catch_unwind(AssertUnwindSafe(|| {
            cache.get_or_insert_with(5, |_| panic!("boom"));
        }));
        assert!(result.is_err());
        // Other keys unaffected.
        assert_eq!(*cache.get_or_insert_with(6, |_| 60), 60);
        // The poisoned key was removed: a later call retries.
        assert_eq!(*cache.get_or_insert_with(5, |_| 50), 50);
    }

    #[test]
    fn dropped_wakeup_still_completes_waiters() {
        let hooks = Hooks {
            before_publish: None,
            before_wake: Some(Arc::new(|| WakeFate::Drop)),
        };
        let cache: Arc<Cache<u64, u64>> = Arc::new(Cache::with_config(Config {
            capacity: 16,
            hooks,
            ..Config::default()
        }));
        let barrier = Arc::new(Barrier::new(4));
        let computes = Arc::new(AtomicUsize::new(0));
        let mut handles = Vec::new();
        for _ in 0..4 {
            let cache = Arc::clone(&cache);
            let barrier = Arc::clone(&barrier);
            let computes = Arc::clone(&computes);
            handles.push(std::thread::spawn(move || {
                barrier.wait();
                let v = cache.get_or_insert_with(9, |_| {
                    computes.fetch_add(1, Relaxed);
                    std::thread::sleep(std::time::Duration::from_millis(10));
                    90
                });
                assert_eq!(*v, 90);
            }));
        }
        for h in handles {
            h.join().unwrap();
        }
        assert_eq!(computes.load(Relaxed), 1);
    }

    #[test]
    fn eviction_never_removes_computing_entries() {
        // The before_publish hook forces a sweep while the owner's slot
        // is still Computing, with capacity 1 so the sweep is hungry.
        let hooks = Hooks {
            before_publish: Some(Arc::new(|| {})),
            before_wake: None,
        };
        let cache: Arc<Cache<u64, u64>> = Arc::new(Cache::with_config(Config {
            capacity: 1,
            hooks,
            ..Config::default()
        }));
        for k in 0..8u64 {
            let v = cache.get_or_insert_with(k, |k| k + 100);
            assert_eq!(*v, k + 100);
        }
        // Every compute survived its own adversarial sweep (the value
        // came back correct), and capacity is enforced after publish.
        assert!(cache.len() <= 1 + 1, "sweep failed to bound occupancy");
        assert_eq!(cache.stats().misses, 8);
    }
}
