//! The unsafe core of the promise cache: a split-ordered-style bucket
//! table of intrusively linked promise nodes, seqlock-validated
//! lock-free reads, and epoch/pin-slot quiescence reclamation.
//!
//! This is the crate's **one** module allowed to use `unsafe` (the
//! crate root carries `deny(unsafe_code)`, mirroring the discipline
//! `serve::deque` established in DESIGN.md §12). Every `unsafe` block
//! states the invariant it relies on; the full ordering and
//! reclamation argument lives in DESIGN.md §14.
//!
//! # Shape
//!
//! Buckets live in power-of-two *segments* that are allocated once and
//! never move (segment `s ≥ 1` holds bucket indices `[2^(s-1), 2^s)`),
//! so growing the table is one `size` CAS — no stop-the-world rehash
//! and no relocation of bucket memory a reader might hold a reference
//! into. A bucket starts `FRESH` (its keys still live in the nearest
//! initialized ancestor — the index with the top bit cleared,
//! recursively) and is *split* from that parent on first locked touch.
//!
//! Each bucket heads a singly linked list of [`Node`]s — per-key
//! promise slots (`Computing → Ready | Poisoned`). Nodes are allocated
//! as `Arc<Node>` and the list holds one strong count as a raw pointer
//! (`Arc::into_raw`), so waiter handles and the list share the usual
//! refcount lifecycle; what the epoch scheme defers is only the *list's*
//! decrement, keeping raw traversal sound.
//!
//! # Synchronization inventory (all TSan-visible)
//!
//! Cross-thread edges go through atomics declared in this module — the
//! bucket spinlocks, seqlocks, `head`/`next` pointers, the node `state`
//! byte, the pin slots and the retired-list spinlock. The only `std`
//! primitives used are each node's `Mutex<()>`/`Condvar` pair, which
//! carry **no data** (waiters re-check the atomic `state` after every
//! wake and use timed waits, so even a dropped notification — see
//! `FaultPoint::CachePromiseWake` — only costs latency). This is what
//! lets `scripts/tsan.sh` run the stress suite meaningfully despite the
//! uninstrumented standard library.

#![allow(unsafe_code)]

use std::cell::UnsafeCell;
use std::sync::atomic::Ordering::{Relaxed, SeqCst};
use std::sync::atomic::{AtomicBool, AtomicPtr, AtomicU32, AtomicU64, AtomicU8, AtomicUsize};
use std::sync::{Arc, Condvar, Mutex};

/// Promise-slot states (the `state` byte of a [`Node`]).
const COMPUTING: u8 = 0;
const READY: u8 = 1;
const POISONED: u8 = 2;

/// Bucket split states: `FRESH` buckets hold no list yet (their keys
/// resolve to an ancestor); `SPLIT` buckets own their key range.
const FRESH: u8 = 0;
const SPLIT: u8 = 1;

/// Pin-slot value meaning "no reader pinned here".
const IDLE: u64 = u64::MAX;
/// Number of reader pin slots. Readers probe from a per-thread hint, so
/// this bounds concurrent *pinned* readers, not threads overall.
const PIN_SLOTS: usize = 64;
/// Segment directory size: bucket indices fit in `usize`; 33 segments
/// cover sizes up to 2^32 buckets, far past any realistic capacity.
const MAX_SEGMENTS: usize = 33;
/// Traversal step bound per optimistic read attempt. A torn traversal
/// can walk a cycle through relinked nodes; bounding the walk converts
/// that into a seq-validated retry. Sized far above any legitimate
/// chain (load factor is ≤ 2 once the table is grown).
const STEP_LIMIT: usize = 512;
/// Consecutive torn-window read attempts before the reader yields the
/// CPU. The optimistic read never falls back to a lock — a resident
/// key's found-fast-path returns without seq validation, so retrying
/// always terminates once the interfering writer drains; the yield
/// just stops a spinning reader from starving that writer of a core.
const YIELD_INTERVAL: u32 = 16;

/// A per-key promise slot, intrusively linked into its bucket's chain.
struct Node<K, V> {
    /// Full hash of `key`, cached so traversal compares cheaply and so
    /// unlink/split never re-hash.
    hash: u64,
    key: K,
    /// Next node in the bucket chain. Written under the bucket lock;
    /// read by lock-free traversals.
    next: AtomicPtr<Node<K, V>>,
    /// `COMPUTING → READY | POISONED`. The `READY` store (SeqCst, which
    /// includes release semantics) publishes `value`; readers load with
    /// at-least-acquire before touching the cell.
    state: AtomicU8,
    /// Written exactly once, by the inserting owner, before the `READY`
    /// state store. Never written again: `READY` is terminal.
    value: UnsafeCell<Option<Arc<V>>>,
    /// CLOCK second-chance bit: one relaxed store per hit, cleared (one
    /// sweep pass of grace) before eviction.
    referenced: AtomicBool,
    /// Parking lot for waiters on a `COMPUTING` slot. Carries no data —
    /// see the module docs' synchronization inventory.
    gate: Mutex<()>,
    ready: Condvar,
}

// SAFETY: a `Node` is shared across threads via `Arc` handles and via
// raw bucket pointers. `key` and `hash` are written before publication
// (the SeqCst `head`/`next` store that links the node) and immutable
// after; `value` is guarded by the `state` acquire/release protocol
// documented on the fields; everything else is atomics or std sync
// types. `K: Send + Sync` / `V: Send + Sync` make the payloads safe to
// drop and read from any thread.
unsafe impl<K: Send + Sync, V: Send + Sync> Send for Node<K, V> {}
// SAFETY: see the `Send` argument above.
unsafe impl<K: Send + Sync, V: Send + Sync> Sync for Node<K, V> {}

/// A counted handle to a promise slot, handed out by lookups so callers
/// can wait on (or, for the owner, resolve) the slot without any table
/// lock held. Wraps the same `Arc` the bucket list holds raw.
pub(crate) struct NodeRef<K, V>(Arc<Node<K, V>>);

/// What a waiter found when the slot left `COMPUTING`.
pub(crate) enum Waited<V> {
    /// The owner published a value.
    Ready(Arc<V>),
    /// The owner's closure panicked.
    Poisoned,
}

/// Non-blocking view of a slot's current state.
pub(crate) enum Peeked<V> {
    /// Published: the cloned value.
    Ready(Arc<V>),
    /// Still computing; call [`NodeRef::wait`].
    Computing,
    /// The owner's closure panicked.
    Poisoned,
}

impl<K, V> NodeRef<K, V> {
    /// Records a CLOCK reference (one relaxed store — the entirety of
    /// the hit path's recency bookkeeping).
    pub(crate) fn touch(&self) {
        self.0.referenced.store(true, Relaxed);
    }

    /// Non-blocking state read.
    pub(crate) fn peek(&self) -> Peeked<V> {
        match self.0.state.load(SeqCst) {
            READY => {
                // SAFETY: `READY` was stored after the owner's write to
                // `value` (release/acquire on `state`), and `value` is
                // never written again, so a shared read cannot race.
                let v = unsafe { (*self.0.value.get()).clone() };
                Peeked::Ready(v.expect("READY slot always holds a value"))
            }
            POISONED => Peeked::Poisoned,
            _ => Peeked::Computing,
        }
    }

    /// Blocks until the slot leaves `COMPUTING`. Uses a timed condvar
    /// wait and re-checks the atomic state each lap, so a dropped
    /// wakeup (fault injection or a racing eviction of the waker) costs
    /// one timeout, never a hang.
    pub(crate) fn wait(&self) -> Waited<V> {
        loop {
            match self.peek() {
                Peeked::Ready(v) => return Waited::Ready(v),
                Peeked::Poisoned => return Waited::Poisoned,
                Peeked::Computing => {}
            }
            let guard = self.0.gate.lock().unwrap_or_else(|e| e.into_inner());
            // Re-check with the gate held: the owner takes the gate
            // before notifying, so a state change after this check
            // cannot have already fired its notification.
            if self.0.state.load(SeqCst) != COMPUTING {
                continue;
            }
            let _ = self
                .0
                .ready
                .wait_timeout(guard, std::time::Duration::from_millis(2));
        }
    }

    /// Publishes the computed value and flips the slot to `READY`.
    ///
    /// Only the inserting owner may call this, exactly once; that
    /// exclusivity is what makes the `value` write race-free.
    pub(crate) fn publish(&self, v: Arc<V>) {
        // SAFETY: sole writer (the owner that `Inserted` this node) and
        // no reader dereferences the cell until it observes the `READY`
        // store below.
        unsafe {
            *self.0.value.get() = Some(v);
        }
        self.0.state.store(READY, SeqCst);
    }

    /// Marks the slot poisoned (owner's closure panicked). `value`
    /// stays `None`; waiters observe `POISONED` and re-panic.
    pub(crate) fn poison(&self) {
        self.0.state.store(POISONED, SeqCst);
    }

    /// Wakes waiters parked on this slot. With `deliver == false` the
    /// notification is swallowed (the `CachePromiseWake` drop fault);
    /// waiters still make progress off their timed waits.
    pub(crate) fn wake(&self, deliver: bool) {
        if deliver {
            // Take and drop the gate so a waiter between its state
            // re-check and its `wait_timeout` cannot miss this signal.
            drop(self.0.gate.lock().unwrap_or_else(|e| e.into_inner()));
            self.0.ready.notify_all();
        }
    }

    fn as_ptr(&self) -> *const Node<K, V> {
        Arc::as_ptr(&self.0)
    }
}

/// One bucket: a spinlock serializing writers, a seqlock generation for
/// lock-free readers, the chain head, and the split state.
struct Bucket<K, V> {
    /// Writer spinlock (0 free / 1 held). A raw atomic rather than
    /// `std::sync::Mutex` so the edge is visible to ThreadSanitizer.
    lock: AtomicU32,
    /// Seqlock generation: even = stable, odd = a writer is mutating
    /// the chain. Bumped around every structural change (insert,
    /// unlink, split migration) — never for value publication, which
    /// rides the node's own `state` protocol.
    seq: AtomicU64,
    head: AtomicPtr<Node<K, V>>,
    /// `FRESH` until split from the parent bucket.
    state: AtomicU8,
}

impl<K, V> Bucket<K, V> {
    fn new() -> Self {
        Bucket {
            lock: AtomicU32::new(0),
            seq: AtomicU64::new(0),
            head: AtomicPtr::new(std::ptr::null_mut()),
            state: AtomicU8::new(FRESH),
        }
    }

    fn lock(&self) {
        let mut spins = 0u32;
        while self
            .lock
            .compare_exchange_weak(0, 1, SeqCst, Relaxed)
            .is_err()
        {
            spins += 1;
            if spins.is_multiple_of(64) {
                std::thread::yield_now();
            } else {
                std::hint::spin_loop();
            }
        }
    }

    fn unlock(&self) {
        self.lock.store(0, SeqCst);
    }

    /// Enters the seqlock write window (seq becomes odd). Caller holds
    /// the bucket lock.
    fn begin_write(&self) {
        self.seq.fetch_add(1, SeqCst);
    }

    /// Leaves the write window (seq becomes even again).
    fn end_write(&self) {
        self.seq.fetch_add(1, SeqCst);
    }
}

/// A cache-line-padded pin slot, so concurrent readers pinning from
/// different slots never false-share.
#[repr(align(64))]
struct PinSlot(AtomicU64);

/// RAII pin: while alive, no node retired at `tag >= epoch-at-pin` is
/// freed, so raw traversal pointers stay dereferenceable.
struct Pin<'a> {
    slot: &'a PinSlot,
}

impl Drop for Pin<'_> {
    fn drop(&mut self) {
        self.slot.0.store(IDLE, SeqCst);
    }
}

std::thread_local! {
    /// Per-thread starting slot for the pin probe, assigned round-robin
    /// so unrelated readers land on distinct cache lines.
    static PIN_HINT: std::cell::Cell<usize> = const { std::cell::Cell::new(usize::MAX) };
}

static NEXT_PIN_HINT: AtomicUsize = AtomicUsize::new(0);

/// Result of a lock-free lookup.
pub(crate) enum Read<K, V> {
    /// Found, published: the value, plus retries spent getting it.
    Ready(Arc<V>, u32),
    /// Found, still computing (or poisoned): a handle to wait on.
    InFlight(NodeRef<K, V>, u32),
    /// Definitively absent in a validated window.
    Absent {
        /// Torn-window retries consumed before validation succeeded.
        retries: u32,
    },
}

/// Result of the locked find-or-insert slow path.
pub(crate) enum FindOrInsert<K, V> {
    /// Another thread owns the key's slot.
    Found(NodeRef<K, V>),
    /// The caller inserted a fresh `COMPUTING` slot and is now the
    /// owner: it must `publish`/`poison` and `wake`.
    Inserted(NodeRef<K, V>),
}

/// The bucket table. See the module docs for the overall shape and
/// DESIGN.md §14 for the full correctness argument.
pub(crate) struct Table<K, V> {
    /// Segment directory. Entry `s` points at `seg_len(s)` buckets,
    /// published by a null→ptr CAS (losers free their allocation).
    segments: [AtomicPtr<Bucket<K, V>>; MAX_SEGMENTS],
    /// Current bucket count (power of two). Grows by CAS-doubling;
    /// never shrinks. Buckets split lazily afterwards.
    size: AtomicUsize,
    /// Growth ceiling (power of two derived from capacity).
    max_size: usize,
    /// Resident nodes (both `COMPUTING` and `READY`).
    count: AtomicUsize,
    /// CLOCK hand: a monotone bucket cursor shared by all sweepers.
    hand: AtomicUsize,
    /// Global retirement epoch (see DESIGN.md §14).
    epoch: AtomicU64,
    pins: [PinSlot; PIN_SLOTS],
    /// Spinlock over `retired` — a raw atomic for TSan visibility.
    retired_lock: AtomicU32,
    /// Unlinked nodes awaiting quiescence: `(tag, list strong count)`.
    retired: UnsafeCell<Vec<(u64, *const Node<K, V>)>>,
}

// SAFETY: all shared mutable state inside `Table` is either atomic or
// guarded by the atomic spinlocks above (`retired` by `retired_lock`,
// bucket chains by each bucket's `lock` for writers and the pin/seq
// protocol for readers). Raw node pointers are only dereferenced under
// a pin or the owning bucket's lock.
unsafe impl<K: Send + Sync, V: Send + Sync> Send for Table<K, V> {}
// SAFETY: see the `Send` argument above.
unsafe impl<K: Send + Sync, V: Send + Sync> Sync for Table<K, V> {}

/// Buckets held by segment `s`.
fn seg_len(s: usize) -> usize {
    if s == 0 {
        1
    } else {
        1 << (s - 1)
    }
}

/// Maps a bucket index to its `(segment, offset)` coordinates.
fn seg_coords(b: usize) -> (usize, usize) {
    if b == 0 {
        (0, 0)
    } else {
        let s = (b.ilog2() + 1) as usize;
        (s, b - seg_len(s))
    }
}

/// The parent a `FRESH` bucket splits from: the index with its top bit
/// cleared (recursive-split hashing).
fn parent_of(b: usize) -> usize {
    debug_assert!(b > 0);
    b & !(1usize << b.ilog2())
}

impl<K, V> Table<K, V> {
    /// Current resident-node count.
    pub(crate) fn len(&self) -> usize {
        self.count.load(SeqCst)
    }

    /// Current bucket count (for stats/tests).
    pub(crate) fn buckets(&self) -> usize {
        self.size.load(SeqCst)
    }
}

impl<K, V> Table<K, V>
where
    K: Eq + Clone,
{
    pub(crate) fn new(initial_buckets: usize, capacity: usize) -> Self {
        let initial = initial_buckets.max(1).next_power_of_two();
        let max_size = capacity.max(initial).next_power_of_two();
        let table = Table {
            segments: std::array::from_fn(|_| AtomicPtr::new(std::ptr::null_mut())),
            size: AtomicUsize::new(initial),
            max_size,
            count: AtomicUsize::new(0),
            hand: AtomicUsize::new(0),
            epoch: AtomicU64::new(0),
            pins: std::array::from_fn(|_| PinSlot(AtomicU64::new(IDLE))),
            retired_lock: AtomicU32::new(0),
            retired: UnsafeCell::new(Vec::new()),
        };
        // Construction is single-threaded: allocate the initial
        // segments and mark their buckets pre-split so lookups never
        // chase ancestors below the initial size.
        for b in 0..initial {
            let bucket = table.ensure_segment(b);
            bucket.state.store(SPLIT, SeqCst);
        }
        table
    }

    /// Returns the bucket at `b`, allocating its segment if needed.
    fn ensure_segment(&self, b: usize) -> &Bucket<K, V> {
        let (s, off) = seg_coords(b);
        let mut ptr = self.segments[s].load(SeqCst);
        if ptr.is_null() {
            let len = seg_len(s);
            let fresh: Box<[Bucket<K, V>]> = (0..len).map(|_| Bucket::new()).collect();
            let raw = Box::into_raw(fresh) as *mut Bucket<K, V>;
            match self.segments[s].compare_exchange(std::ptr::null_mut(), raw, SeqCst, SeqCst) {
                Ok(_) => ptr = raw,
                Err(winner) => {
                    // SAFETY: we just created `raw` from a boxed slice
                    // of exactly `len` buckets and lost the publication
                    // race, so nobody else has seen it.
                    unsafe {
                        drop(Box::from_raw(std::ptr::slice_from_raw_parts_mut(raw, len)));
                    }
                    ptr = winner;
                }
            }
        }
        // SAFETY: `ptr` came from a published (or just-installed)
        // segment of `seg_len(s)` buckets that is never freed before
        // the table drops, and `off < seg_len(s)` by `seg_coords`.
        unsafe { &*ptr.add(off) }
    }

    /// Returns the bucket at `b` only if its segment is allocated —
    /// the allocation-free read-path variant of [`ensure_segment`].
    fn try_bucket(&self, b: usize) -> Option<&Bucket<K, V>> {
        let (s, off) = seg_coords(b);
        let ptr = self.segments[s].load(SeqCst);
        if ptr.is_null() {
            None
        } else {
            // SAFETY: published segments are immutable arrays of
            // `seg_len(s)` buckets, live until the table drops.
            Some(unsafe { &*ptr.add(off) })
        }
    }

    /// Walks from the home index down to the nearest `SPLIT` bucket —
    /// where the key's chain actually lives right now. Allocation-free.
    fn resolve(&self, mut b: usize) -> &Bucket<K, V> {
        loop {
            if b == 0 {
                // Bucket 0 is allocated and pre-split in `new`.
                return self.try_bucket(0).expect("bucket 0 always exists");
            }
            if let Some(bucket) = self.try_bucket(b) {
                if bucket.state.load(SeqCst) == SPLIT {
                    return bucket;
                }
            }
            b = parent_of(b);
        }
    }

    /// Acquires a reader pin: claims a slot with the current epoch,
    /// then re-validates against the global epoch (re-publishing and
    /// re-checking until stable) so a concurrent retirement cannot
    /// miss this reader. Mirrors `serve::deque`'s pin loop (§12).
    fn pin(&self) -> Pin<'_> {
        let start = PIN_HINT.with(|h| {
            if h.get() == usize::MAX {
                h.set(NEXT_PIN_HINT.fetch_add(1, Relaxed));
            }
            h.get()
        });
        let mut e = self.epoch.load(SeqCst);
        loop {
            for i in 0..PIN_SLOTS {
                let slot = &self.pins[(start + i) % PIN_SLOTS];
                if slot.0.load(Relaxed) != IDLE {
                    continue;
                }
                if slot.0.compare_exchange(IDLE, e, SeqCst, Relaxed).is_err() {
                    continue;
                }
                // Validation loop: if the epoch moved between reading
                // it and publishing our pin, a reclaimer may have
                // scanned past us — re-publish at the new epoch.
                loop {
                    let now = self.epoch.load(SeqCst);
                    if now == e {
                        return Pin { slot };
                    }
                    e = now;
                    slot.0.store(e, SeqCst);
                }
            }
            // All slots busy (more than PIN_SLOTS concurrent pinned
            // readers): yield and retry.
            std::thread::yield_now();
            e = self.epoch.load(SeqCst);
        }
    }

    /// Lock-free lookup. See [`Read`] for the outcome space; `retries`
    /// counts torn-window restarts for the `rcache.retries` mirror.
    /// The loop is unbounded by design: a resident key's found path
    /// returns without validation, so only an *absent* key under
    /// concurrent bucket writes keeps retrying — and every
    /// [`YIELD_INTERVAL`] failures the reader yields so the writer it
    /// is waiting out can finish (standard seqlock reader discipline).
    pub(crate) fn read(&self, hash: u64, key: &K) -> Read<K, V> {
        let _pin = self.pin();
        let mut retries = 0u32;
        loop {
            if retries > 0 && retries.is_multiple_of(YIELD_INTERVAL) {
                std::thread::yield_now();
            }
            let size = self.size.load(SeqCst);
            let bucket = self.resolve((hash as usize) & (size - 1));
            // An odd `s1` means a writer is inside its window right
            // now. We walk anyway: traversal is pin-safe regardless,
            // and a *found* node is returned without any validation
            // (its publication is monotone), so a resident key's hit
            // never waits out the writer. Only the absence verdict
            // below demands a stable even generation.
            let s1 = bucket.seq.load(SeqCst);
            let mut steps = 0usize;
            let mut p = bucket.head.load(SeqCst);
            let mut torn = false;
            while !p.is_null() {
                steps += 1;
                if steps > STEP_LIMIT {
                    // Possibly walking a cycle through relinked nodes;
                    // treat as a torn window.
                    torn = true;
                    break;
                }
                // SAFETY: `p` was reachable from a bucket head after
                // our pin was published. Any node retired at a tag
                // lower than our pin epoch was unlinked before that
                // epoch existed, and the SeqCst order of unlink →
                // epoch-advance → pin-validate → traversal loads means
                // we cannot reach it (DESIGN.md §14); nodes retired at
                // our epoch or later are not freed while we are pinned.
                let n = unsafe { &*p };
                if n.hash == hash && n.key == *key {
                    n.referenced.store(true, Relaxed);
                    if n.state.load(SeqCst) == READY {
                        // SAFETY: `READY` publication protocol — see
                        // `NodeRef::peek`.
                        let v = unsafe { (*n.value.get()).clone() };
                        return Read::Ready(v.expect("READY slot always holds a value"), retries);
                    }
                    // COMPUTING or POISONED: take a counted handle and
                    // let the caller wait (or observe the poison).
                    // SAFETY: `p` came from `Arc::into_raw`, and the
                    // strong count it represents is still unreleased —
                    // either the node is linked (the list holds it) or
                    // it is retired at `tag >= our pin epoch`, whose
                    // `from_raw` happens only after we unpin.
                    let arc = unsafe {
                        Arc::increment_strong_count(p);
                        Arc::from_raw(p as *const Node<K, V>)
                    };
                    return Read::InFlight(NodeRef(arc), retries);
                }
                p = n.next.load(SeqCst);
            }
            if !torn {
                let s2 = bucket.seq.load(SeqCst);
                // Same even generation across the whole walk and the
                // table did not grow under us: the absence is real.
                if s1 & 1 == 0 && s1 == s2 && self.size.load(SeqCst) == size {
                    return Read::Absent { retries };
                }
            }
            retries = retries.wrapping_add(1);
        }
    }

    /// Splits bucket `b` from its ancestors so it owns its key range.
    /// Idempotent; callers race freely. Writers only — the read path
    /// never splits.
    fn ensure_split(&self, b: usize) {
        if b == 0 {
            return;
        }
        let bucket = self.ensure_segment(b);
        if bucket.state.load(SeqCst) == SPLIT {
            return;
        }
        let parent_idx = parent_of(b);
        self.ensure_split(parent_idx);
        let parent = self.ensure_segment(parent_idx);
        parent.lock();
        if bucket.state.load(SeqCst) == SPLIT {
            // Lost the race while taking the parent lock.
            parent.unlock();
            return;
        }
        // Before `SPLIT`, `b`'s lock is only ever taken here, under the
        // parent's lock — so this nested acquire cannot deadlock.
        bucket.lock();
        parent.begin_write();
        bucket.begin_write();
        // Move every node whose low bits select `b` at the size that
        // made `b` addressable (one bit above `b`'s top bit).
        let mask = (1usize << (b.ilog2() + 1)) - 1;
        let mut moved_head: *mut Node<K, V> = std::ptr::null_mut();
        let mut pred: *const Node<K, V> = std::ptr::null();
        let mut p = parent.head.load(SeqCst);
        while !p.is_null() {
            // SAFETY: traversal under the parent's bucket lock — no
            // concurrent structural writer; nodes are live while
            // linked.
            let n = unsafe { &*p };
            let next = n.next.load(SeqCst);
            if (n.hash as usize) & mask == b {
                // Unlink from the parent chain…
                if pred.is_null() {
                    parent.head.store(next, SeqCst);
                } else {
                    // SAFETY: `pred` is the still-linked predecessor,
                    // protected by the same bucket lock.
                    unsafe { (*pred).next.store(next, SeqCst) };
                }
                // …and push onto the child chain (order is irrelevant;
                // chains are unordered).
                n.next.store(moved_head, SeqCst);
                moved_head = p;
            } else {
                pred = p;
            }
            p = next;
        }
        bucket.head.store(moved_head, SeqCst);
        bucket.end_write();
        parent.end_write();
        bucket.state.store(SPLIT, SeqCst);
        bucket.unlock();
        parent.unlock();
    }

    /// Locked slow path: find the key's slot or insert a fresh
    /// `COMPUTING` one. Splits and (possibly) grows the table on the
    /// way.
    pub(crate) fn find_or_insert(&self, hash: u64, key: &K) -> FindOrInsert<K, V> {
        loop {
            let size = self.size.load(SeqCst);
            let b = (hash as usize) & (size - 1);
            self.ensure_split(b);
            let bucket = self.ensure_segment(b);
            bucket.lock();
            if self.size.load(SeqCst) != size {
                // The table grew while we were locking; our home bucket
                // may have changed. Start over.
                bucket.unlock();
                continue;
            }
            // With the lock held and the size re-validated, `b` is the
            // definitive home: splitting any child of `b` requires this
            // very lock, so no node can migrate out from under us.
            let mut p = bucket.head.load(SeqCst);
            while !p.is_null() {
                // SAFETY: traversal under the bucket lock; see
                // `ensure_split`.
                let n = unsafe { &*p };
                if n.hash == hash && n.key == *key {
                    // SAFETY: the node is linked, so the list's strong
                    // count is live; add one for the handle.
                    let arc = unsafe {
                        Arc::increment_strong_count(p as *const Node<K, V>);
                        Arc::from_raw(p as *const Node<K, V>)
                    };
                    bucket.unlock();
                    return FindOrInsert::Found(NodeRef(arc));
                }
                p = n.next.load(SeqCst);
            }
            let node = Arc::new(Node {
                hash,
                key: key.clone(),
                next: AtomicPtr::new(bucket.head.load(SeqCst)),
                state: AtomicU8::new(COMPUTING),
                value: UnsafeCell::new(None),
                referenced: AtomicBool::new(false),
                gate: Mutex::new(()),
                ready: Condvar::new(),
            });
            let raw = Arc::into_raw(Arc::clone(&node)) as *mut Node<K, V>;
            bucket.begin_write();
            bucket.head.store(raw, SeqCst);
            bucket.end_write();
            bucket.unlock();
            self.count.fetch_add(1, SeqCst);
            self.maybe_grow();
            return FindOrInsert::Inserted(NodeRef(node));
        }
    }

    /// CAS-doubles `size` when the load factor passes 2. Buckets split
    /// lazily on their next locked touch — growth itself is O(1).
    fn maybe_grow(&self) {
        let size = self.size.load(SeqCst);
        if size < self.max_size && self.count.load(SeqCst) > size * 2 {
            // A failed CAS means someone else grew it — fine either way.
            let _ = self.size.compare_exchange(size, size * 2, SeqCst, SeqCst);
        }
    }

    /// Removes the owner's own (poisoned) node so the key can be
    /// retried by a later call. No-op if the node is already gone.
    pub(crate) fn unlink(&self, hash: u64, node: &NodeRef<K, V>) {
        let target = node.as_ptr();
        loop {
            let size = self.size.load(SeqCst);
            let b = (hash as usize) & (size - 1);
            self.ensure_split(b);
            let bucket = self.ensure_segment(b);
            bucket.lock();
            if self.size.load(SeqCst) != size {
                bucket.unlock();
                continue;
            }
            let mut pred: *const Node<K, V> = std::ptr::null();
            let mut p = bucket.head.load(SeqCst);
            while !p.is_null() {
                // SAFETY: traversal under the bucket lock.
                let n = unsafe { &*p };
                let next = n.next.load(SeqCst);
                if std::ptr::eq(p, target) {
                    bucket.begin_write();
                    if pred.is_null() {
                        bucket.head.store(next, SeqCst);
                    } else {
                        // SAFETY: linked predecessor under the lock.
                        unsafe { (*pred).next.store(next, SeqCst) };
                    }
                    bucket.end_write();
                    bucket.unlock();
                    self.count.fetch_sub(1, SeqCst);
                    self.retire(&[p]);
                    self.reclaim();
                    return;
                }
                pred = p;
                p = next;
            }
            bucket.unlock();
            return;
        }
    }

    /// CLOCK second-chance sweep: advances the shared hand over the
    /// bucket array, clearing `referenced` bits and evicting
    /// unreferenced `READY` nodes until the table is back under
    /// `target` (or a two-full-revolution scan bound is hit).
    /// `COMPUTING` slots are never evicted — waiters hold the promise,
    /// and the PR 3 invariant (exactly one compute per resident key)
    /// depends on it. Returns the number of evictions.
    pub(crate) fn sweep(&self, target: usize) -> u64 {
        let mut evicted = 0u64;
        let size = self.size.load(SeqCst);
        let mut scanned = 0usize;
        let mut victims: Vec<*const Node<K, V>> = Vec::new();
        while self.count.load(SeqCst) > target && scanned < 2 * size {
            let b = self.hand.fetch_add(1, SeqCst) & (size - 1);
            scanned += 1;
            let Some(bucket) = self.try_bucket(b) else {
                continue;
            };
            if bucket.state.load(SeqCst) != SPLIT {
                continue;
            }
            bucket.lock();
            let mut pred: *const Node<K, V> = std::ptr::null();
            let mut p = bucket.head.load(SeqCst);
            let mut mutated = false;
            while !p.is_null() {
                // SAFETY: traversal under the bucket lock.
                let n = unsafe { &*p };
                let next = n.next.load(SeqCst);
                let evictable = n.state.load(SeqCst) == READY
                    && !n.referenced.swap(false, Relaxed)
                    && self.count.load(SeqCst) > target;
                if evictable {
                    if !mutated {
                        bucket.begin_write();
                        mutated = true;
                    }
                    if pred.is_null() {
                        bucket.head.store(next, SeqCst);
                    } else {
                        // SAFETY: linked predecessor under the lock.
                        unsafe { (*pred).next.store(next, SeqCst) };
                    }
                    self.count.fetch_sub(1, SeqCst);
                    evicted += 1;
                    victims.push(p);
                } else {
                    pred = p;
                }
                p = next;
            }
            if mutated {
                bucket.end_write();
            }
            bucket.unlock();
        }
        if !victims.is_empty() {
            self.retire(&victims);
        }
        self.reclaim();
        evicted
    }

    fn lock_retired(&self) {
        while self
            .retired_lock
            .compare_exchange_weak(0, 1, SeqCst, Relaxed)
            .is_err()
        {
            std::hint::spin_loop();
        }
    }

    fn unlock_retired(&self) {
        self.retired_lock.store(0, SeqCst);
    }

    /// Retires unlinked nodes: tags them with the pre-advance epoch and
    /// advances the epoch, exactly the `serve::deque` protocol — any
    /// reader pinned from now on carries a larger epoch and can no
    /// longer reach them.
    fn retire(&self, ptrs: &[*const Node<K, V>]) {
        let tag = self.epoch.fetch_add(1, SeqCst);
        self.lock_retired();
        // SAFETY: `retired` is only touched with `retired_lock` held.
        let retired = unsafe { &mut *self.retired.get() };
        for &p in ptrs {
            retired.push((tag, p));
        }
        self.unlock_retired();
    }

    /// Frees retired nodes no pinned reader can still reach
    /// (`tag < min(pinned epochs)`). Dropping happens outside the
    /// spinlock so arbitrary `K`/`V` drop code never runs under it.
    fn reclaim(&self) {
        let mut min_pinned = self.epoch.load(SeqCst);
        for slot in &self.pins {
            let e = slot.0.load(SeqCst);
            if e < min_pinned {
                min_pinned = e;
            }
        }
        let mut free: Vec<*const Node<K, V>> = Vec::new();
        self.lock_retired();
        // SAFETY: `retired` is only touched with `retired_lock` held.
        let retired = unsafe { &mut *self.retired.get() };
        retired.retain(|&(tag, p)| {
            if tag < min_pinned {
                free.push(p);
                false
            } else {
                true
            }
        });
        self.unlock_retired();
        for p in free {
            // SAFETY: `p` is the list's strong count from
            // `Arc::into_raw`; quiescence (`tag < min_pinned`) means no
            // raw traversal can still reach it, so releasing the count
            // (and possibly freeing the node, if no waiter handle
            // remains) cannot race a reader.
            unsafe { drop(Arc::from_raw(p)) };
        }
    }
}

impl<K, V> Drop for Table<K, V> {
    fn drop(&mut self) {
        // `&mut self`: no concurrent readers or writers remain.
        for (s, seg) in self.segments.iter().enumerate() {
            let ptr = seg.load(SeqCst);
            if ptr.is_null() {
                continue;
            }
            let len = seg_len(s);
            for off in 0..len {
                // SAFETY: published segment of `len` buckets.
                let bucket = unsafe { &*ptr.add(off) };
                let mut p = bucket.head.load(SeqCst);
                while !p.is_null() {
                    // SAFETY: exclusive access; each linked node holds
                    // one list strong count from `Arc::into_raw`.
                    let next = unsafe { (*p).next.load(SeqCst) };
                    unsafe { drop(Arc::from_raw(p as *const Node<K, V>)) };
                    p = next;
                }
            }
            // SAFETY: reconstructing the boxed slice allocated in
            // `ensure_segment` with its exact length.
            unsafe {
                drop(Box::from_raw(std::ptr::slice_from_raw_parts_mut(ptr, len)));
            }
        }
        // SAFETY: exclusive access to `retired`.
        let retired = unsafe { &mut *self.retired.get() };
        for (_, p) in retired.drain(..) {
            // SAFETY: each retired entry still owns the list's strong
            // count.
            unsafe { drop(Arc::from_raw(p)) };
        }
    }
}
