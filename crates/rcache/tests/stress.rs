//! Adversarial stress for the lock-free cache, sized by
//! `RCACHE_STRESS_ITERS` so `scripts/tsan.sh` can run the same suite
//! under ThreadSanitizer with a trimmed iteration budget. Every
//! cross-thread edge these tests exercise goes through the crate's own
//! atomics (see `rcache::table`'s synchronization inventory), so a
//! TSan pass here is meaningful despite the uninstrumented std.

use rcache::{Cache, Config, Hooks, WakeFate};
use std::sync::atomic::{AtomicUsize, Ordering::Relaxed};
use std::sync::{Arc, Barrier};

fn iters(default: usize) -> usize {
    std::env::var("RCACHE_STRESS_ITERS")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(default)
}

/// A cheap deterministic PRNG (SplitMix64), one per thread.
fn mix(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9e37_79b9_7f4a_7c15);
    x = (x ^ (x >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    x ^ (x >> 31)
}

/// Mixed readers and inserters over a key space larger than capacity:
/// values must always be correct, occupancy must stay bounded, and the
/// reclamation machinery must survive constant unlink/retire traffic.
#[test]
fn stress_churn_with_eviction() {
    const THREADS: usize = 8;
    const KEYS: u64 = 512;
    let iters = iters(40_000);
    let cache: Arc<Cache<u64, u64>> = Arc::new(Cache::with_config(Config {
        capacity: 128,
        initial_buckets: 2,
        ..Config::default()
    }));
    let barrier = Arc::new(Barrier::new(THREADS));
    let mut handles = Vec::new();
    for t in 0..THREADS {
        let cache = Arc::clone(&cache);
        let barrier = Arc::clone(&barrier);
        handles.push(std::thread::spawn(move || {
            barrier.wait();
            let mut rng = t as u64 + 1;
            for i in 0..iters {
                rng = mix(rng);
                // Readers hammer a hot subset; inserters roam the
                // whole space and keep eviction churning.
                let key = if t < THREADS / 2 {
                    rng % 64
                } else {
                    rng % KEYS
                };
                let v = cache.get_or_insert_with(key, |k| k.wrapping_mul(0x5bd1_e995));
                assert_eq!(*v, key.wrapping_mul(0x5bd1_e995), "iter {i}");
            }
        }));
    }
    for h in handles {
        h.join().unwrap();
    }
    let stats = cache.stats();
    // Capacity plus transient in-flight computes bounds occupancy.
    assert!(
        stats.occupancy <= 128 + THREADS,
        "occupancy unbounded: {stats:?}"
    );
    assert!(stats.evictions > 0, "churn never evicted: {stats:?}");
}

/// With capacity comfortably above the key space, the compute-once
/// contract is exact: every closure runs exactly once per key no
/// matter how many threads race the same misses.
#[test]
fn stress_exactly_one_compute_per_key() {
    const THREADS: usize = 8;
    const KEYS: usize = 64;
    let rounds = iters(20_000) / 1_000;
    for round in 0..rounds.max(4) {
        let cache: Arc<Cache<u64, u64>> = Arc::new(Cache::new(4 * KEYS));
        let computes: Arc<Vec<AtomicUsize>> =
            Arc::new((0..KEYS).map(|_| AtomicUsize::new(0)).collect());
        let barrier = Arc::new(Barrier::new(THREADS));
        let mut handles = Vec::new();
        for t in 0..THREADS {
            let cache = Arc::clone(&cache);
            let computes = Arc::clone(&computes);
            let barrier = Arc::clone(&barrier);
            handles.push(std::thread::spawn(move || {
                barrier.wait();
                let mut rng = (round * THREADS + t) as u64 + 1;
                for _ in 0..KEYS * 4 {
                    rng = mix(rng);
                    let key = rng % KEYS as u64;
                    let v = cache.get_or_insert_with(key, |k| {
                        computes[*k as usize].fetch_add(1, Relaxed);
                        std::hint::spin_loop();
                        k + 7
                    });
                    assert_eq!(*v, key + 7);
                }
            }));
        }
        for h in handles {
            h.join().unwrap();
        }
        let total: usize = computes.iter().map(|c| c.load(Relaxed)).sum();
        let touched = computes.iter().filter(|c| c.load(Relaxed) > 0).count();
        assert_eq!(
            total, touched,
            "some key computed more than once (round {round})"
        );
        assert_eq!(cache.stats().misses as usize, touched);
    }
}

/// Waiter pile-up on slow computes while every wakeup is dropped:
/// progress must come from the timed re-check, and each key still
/// computes exactly once.
#[test]
fn stress_waiters_with_dropped_wakeups() {
    const THREADS: usize = 8;
    let rounds = (iters(20_000) / 4_000).max(2);
    for round in 0..rounds {
        let computes = Arc::new(AtomicUsize::new(0));
        let cache: Arc<Cache<u64, u64>> = Arc::new(Cache::with_config(Config {
            capacity: 16,
            hooks: Hooks {
                before_publish: None,
                before_wake: Some(Arc::new(|| WakeFate::Drop)),
            },
            ..Config::default()
        }));
        let barrier = Arc::new(Barrier::new(THREADS));
        let mut handles = Vec::new();
        for _ in 0..THREADS {
            let cache = Arc::clone(&cache);
            let computes = Arc::clone(&computes);
            let barrier = Arc::clone(&barrier);
            handles.push(std::thread::spawn(move || {
                barrier.wait();
                let v = cache.get_or_insert_with(round as u64, |k| {
                    computes.fetch_add(1, Relaxed);
                    std::thread::sleep(std::time::Duration::from_millis(3));
                    k * 11
                });
                assert_eq!(*v, round as u64 * 11);
            }));
        }
        for h in handles {
            h.join().unwrap();
        }
        assert_eq!(computes.load(Relaxed), 1, "round {round}");
    }
}

/// Eviction sweeps forced while computes are in flight (the
/// evict-during-compute adversarial schedule) must never evict a
/// `Computing` slot: the owner's published value always comes back to
/// every waiter, exactly once per key.
#[test]
fn stress_evict_during_compute_never_hits_computing() {
    const THREADS: usize = 6;
    let iters = iters(40_000) / 40;
    let cache: Arc<Cache<u64, u64>> = Arc::new(Cache::with_config(Config {
        capacity: 8,
        hooks: Hooks {
            // Forced sweep between compute and publish, every publish.
            before_publish: Some(Arc::new(|| {})),
            before_wake: None,
        },
        ..Config::default()
    }));
    let barrier = Arc::new(Barrier::new(THREADS));
    let mut handles = Vec::new();
    for t in 0..THREADS {
        let cache = Arc::clone(&cache);
        let barrier = Arc::clone(&barrier);
        handles.push(std::thread::spawn(move || {
            barrier.wait();
            let mut rng = t as u64 + 99;
            for i in 0..iters {
                rng = mix(rng);
                let key = rng % 32;
                let v = cache.get_or_insert_with(key, |k| k + 1);
                assert_eq!(*v, key + 1, "iter {i}");
            }
        }));
    }
    for h in handles {
        h.join().unwrap();
    }
}
