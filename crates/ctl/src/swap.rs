//! [`ViewCell`]: lock-free publication of immutable views.
//!
//! A `ViewCell<T>` holds the *current* `Arc<T>`. Writers publish a new
//! view with [`ViewCell::publish`]; readers fetch the current one with
//! [`ViewCell::load`] — one `Acquire` pointer load plus one atomic
//! refcount increment, never a lock, never a retry loop.
//!
//! The classic hazard of an unguarded `Arc` swap is the reader that
//! loads the raw pointer just as the writer swaps and drops the last
//! strong count — the reader would then bump a refcount inside freed
//! memory. The usual cures (hazard pointers, epoch reclamation) buy
//! prompt reclamation at the price of a validation protocol on every
//! read. Membership views don't need prompt reclamation: they are tiny
//! (an epoch number and a handful of backend specs) and a new one is
//! published only on an **admin operation** — a handful per process
//! lifetime, not per request. So the cell simply **retains every view
//! it has ever published** until the cell itself drops. That single
//! decision makes the read path trivially sound: the pointer in
//! `current` always aims at an allocation the cell itself holds a
//! strong count on, so it is live for as long as any `&ViewCell`
//! borrow — which every `load` holds.
//!
//! Ordering: `publish` pushes the retaining `Arc` under the writer
//! lock *before* the `Release` pointer store; `load`'s `Acquire` load
//! therefore observes a pointer whose retainer is already in place.

use std::sync::atomic::{AtomicPtr, Ordering};
use std::sync::{Arc, Mutex};

/// A cell holding the current `Arc<T>` view, readable lock-free.
/// Memory cost is one retained `Arc<T>` per [`ViewCell::publish`] —
/// bounded by the number of admin operations, by design.
pub struct ViewCell<T> {
    /// Raw pointer into the most recently published view. Always equal
    /// to `Arc::as_ptr` of some element of `retained`.
    current: AtomicPtr<T>,
    /// Every view ever published, retained so `current` can never
    /// dangle. Doubles as the writer-side publication lock.
    retained: Mutex<Vec<Arc<T>>>,
}

impl<T> ViewCell<T> {
    /// A cell whose current view is `initial`.
    pub fn new(initial: Arc<T>) -> ViewCell<T> {
        let ptr = Arc::as_ptr(&initial) as *mut T;
        ViewCell {
            current: AtomicPtr::new(ptr),
            retained: Mutex::new(vec![initial]),
        }
    }

    /// The current view. Lock-free: one `Acquire` load and one atomic
    /// refcount increment.
    #[allow(unsafe_code)]
    pub fn load(&self) -> Arc<T> {
        let ptr = self.current.load(Ordering::Acquire);
        // SAFETY: `ptr` was produced by `Arc::as_ptr` on an `Arc`
        // pushed into `retained` before the `Release` store that made
        // it visible, and `retained` never shrinks while `self` is
        // alive — our `&self` borrow guarantees that. The allocation
        // is therefore live with a strong count ≥ 1, so incrementing
        // the count and reconstructing an owned `Arc` is sound.
        unsafe {
            Arc::increment_strong_count(ptr);
            Arc::from_raw(ptr)
        }
    }

    /// Publishes `view` as the new current view. Writers serialize on
    /// the internal lock; readers are never blocked.
    pub fn publish(&self, view: Arc<T>) {
        let ptr = Arc::as_ptr(&view) as *mut T;
        let mut retained = self.retained.lock().expect("view cell poisoned");
        retained.push(view);
        // Release: the retaining Arc (and the view's contents) happen
        // before any Acquire load that observes this pointer.
        self.current.store(ptr, Ordering::Release);
    }

    /// How many views have been published over this cell's lifetime
    /// (including the initial one) — i.e. how many it retains.
    pub fn published(&self) -> usize {
        self.retained.lock().expect("view cell poisoned").len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::AtomicBool;

    #[test]
    fn load_returns_the_latest_publish() {
        let cell = ViewCell::new(Arc::new(1u64));
        assert_eq!(*cell.load(), 1);
        cell.publish(Arc::new(2));
        cell.publish(Arc::new(3));
        assert_eq!(*cell.load(), 3);
        assert_eq!(cell.published(), 3);
    }

    #[test]
    fn readers_race_publishes_and_only_see_published_values() {
        let cell = Arc::new(ViewCell::new(Arc::new(0u64)));
        let stop = Arc::new(AtomicBool::new(false));
        let readers: Vec<_> = (0..4)
            .map(|_| {
                let cell = Arc::clone(&cell);
                let stop = Arc::clone(&stop);
                std::thread::spawn(move || {
                    let mut last = 0u64;
                    while !stop.load(Ordering::Relaxed) {
                        let v = *cell.load();
                        assert!(v >= last, "views must be observed in publish order");
                        last = v;
                    }
                    last
                })
            })
            .collect();
        for i in 1..=1000u64 {
            cell.publish(Arc::new(i));
        }
        stop.store(true, Ordering::Relaxed);
        for r in readers {
            let last = r.join().expect("reader");
            assert!(last <= 1000);
        }
        assert_eq!(*cell.load(), 1000);
    }

    #[test]
    fn loaded_arcs_outlive_later_publishes() {
        let cell = ViewCell::new(Arc::new(vec![1u8, 2, 3]));
        let old = cell.load();
        cell.publish(Arc::new(vec![9]));
        assert_eq!(*old, vec![1, 2, 3], "old views stay valid after a swap");
        assert_eq!(*cell.load(), vec![9]);
    }
}
