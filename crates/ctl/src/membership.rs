//! The fleet-membership state machine and its epoch-versioned views.
//!
//! A [`Membership`] publishes immutable [`MembershipEpoch`] views
//! through a [`ViewCell`], so data-path threads (the router's forward
//! and fail-over paths) read the current fleet with one atomic load.
//! Writers — the admin ops [`Membership::join`], [`Membership::drain`],
//! [`Membership::remove`] — serialize on an internal lock, build the
//! successor view, and publish it with the epoch advanced by one.
//!
//! The **epoch numbers administered membership revisions**: exactly the
//! changes an operator asked for. The probe-driven admission
//! ([`Membership::mark_live`], `Joining → Live`) republishes under the
//! *same* epoch — it is a health event, not a reconfiguration, and the
//! router's ring (built over `Joining ∪ Live` members, gated by
//! per-backend health) does not change shape when it fires. That is
//! what lets an experiment assert "one join + one drain advanced the
//! epoch exactly twice" regardless of when the prober got around to
//! admitting the newcomer.
//!
//! State machine (per backend):
//!
//! ```text
//!            join                    probe ok
//!   (absent) ────▶ Joining ────────────────────▶ Live
//!                     │                            │
//!                     │ drain                      │ drain
//!                     ▼                            ▼
//!                  Draining ◀──────────────────────┘
//!                     │ remove
//!                     ▼
//!                  Removed   (tombstone; id never reused)
//! ```
//!
//! `remove` is also legal straight from `Joining`/`Live` — the
//! force-remove of a host that is already gone — the router fails its
//! in-flight entries over instead of waiting for a drain.

use crate::swap::ViewCell;
use std::net::SocketAddr;
use std::sync::{Arc, Mutex};

/// Where a backend is in its membership lifecycle.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BackendState {
    /// Announced via `join`, not yet admitted: in the ring, but the
    /// router's health gate keeps traffic off it until the probe
    /// loop's stats-ping succeeds.
    Joining,
    /// Admitted and taking traffic.
    Live,
    /// Excluded from new assignment; in-flight/pending work drains.
    Draining,
    /// Tombstone: gone from the ring and the router's slot table. The
    /// id is never reused.
    Removed,
}

impl BackendState {
    /// Stable lowercase name, used by the wire encoding.
    pub fn as_str(self) -> &'static str {
        match self {
            BackendState::Joining => "joining",
            BackendState::Live => "live",
            BackendState::Draining => "draining",
            BackendState::Removed => "removed",
        }
    }

    /// Inverse of [`BackendState::as_str`].
    pub fn parse(s: &str) -> Option<BackendState> {
        Some(match s {
            "joining" => BackendState::Joining,
            "live" => BackendState::Live,
            "draining" => BackendState::Draining,
            "removed" => BackendState::Removed,
            _ => return None,
        })
    }

    /// Whether this backend contributes ring points: `Joining ∪ Live`.
    /// Joining members are placed on the ring *before* admission so
    /// the later health flip moves no other backend's keys.
    pub fn in_ring(self) -> bool {
        matches!(self, BackendState::Joining | BackendState::Live)
    }

    /// Whether the router should keep a connected slot (links, pending
    /// entries) for this backend: everything but a tombstone.
    pub fn has_slot(self) -> bool {
        !matches!(self, BackendState::Removed)
    }
}

impl std::fmt::Display for BackendState {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.as_str())
    }
}

/// One backend's membership record.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct BackendSpec {
    /// Stable id: assigned at join, never reused, survives state
    /// changes. Ring points and ledgers key on it.
    pub id: u32,
    /// Where the backend listens.
    pub addr: SocketAddr,
    /// Lifecycle state.
    pub state: BackendState,
}

/// An immutable snapshot of the fleet at one membership revision.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct MembershipEpoch {
    /// Revision counter: starts at 1 for the boot membership and
    /// advances by exactly one per admin op (join/drain/remove).
    pub epoch: u64,
    /// Every backend ever joined, tombstones included, in id order.
    pub backends: Vec<BackendSpec>,
}

impl MembershipEpoch {
    /// The record for backend `id`, tombstones included.
    pub fn get(&self, id: u32) -> Option<&BackendSpec> {
        self.backends.iter().find(|b| b.id == id)
    }

    /// Ids contributing ring points (`Joining ∪ Live`), in id order.
    pub fn ring_members(&self) -> Vec<u32> {
        self.backends
            .iter()
            .filter(|b| b.state.in_ring())
            .map(|b| b.id)
            .collect()
    }

    /// The wire encoding `CtlView` returns: line-oriented text, one
    /// `backend` row per non-tombstone record.
    ///
    /// ```text
    /// epoch 3
    /// backend 0 127.0.0.1:7401 live
    /// backend 2 127.0.0.1:7411 draining
    /// ```
    pub fn encode_text(&self) -> String {
        let mut out = format!("epoch {}\n", self.epoch);
        for b in &self.backends {
            if b.state != BackendState::Removed {
                out.push_str(&format!("backend {} {} {}\n", b.id, b.addr, b.state));
            }
        }
        out
    }

    /// Inverse of [`MembershipEpoch::encode_text`] for polling clients.
    /// Tolerates trailing columns on `backend` rows (the router
    /// appends health/outstanding diagnostics).
    pub fn parse_text(s: &str) -> Result<MembershipEpoch, String> {
        let mut epoch = None;
        let mut backends = Vec::new();
        for line in s.lines() {
            let mut parts = line.split_whitespace();
            match parts.next() {
                Some("epoch") => {
                    let v = parts.next().ok_or("epoch line missing value")?;
                    epoch = Some(v.parse::<u64>().map_err(|e| format!("bad epoch: {e}"))?);
                }
                Some("backend") => {
                    let id = parts
                        .next()
                        .ok_or("backend line missing id")?
                        .parse::<u32>()
                        .map_err(|e| format!("bad backend id: {e}"))?;
                    let addr = parts
                        .next()
                        .ok_or("backend line missing addr")?
                        .parse::<SocketAddr>()
                        .map_err(|e| format!("bad backend addr: {e}"))?;
                    let state = parts
                        .next()
                        .and_then(BackendState::parse)
                        .ok_or("backend line missing/bad state")?;
                    backends.push(BackendSpec { id, addr, state });
                }
                Some(_) | None => {} // ignore blank/diagnostic lines
            }
        }
        Ok(MembershipEpoch {
            epoch: epoch.ok_or("no epoch line")?,
            backends,
        })
    }
}

/// Why an admin op was rejected. Every rejection is typed; the wire
/// layer renders these into `Error` response bodies.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum CtlError {
    /// No backend (live or tombstoned) has this id.
    UnknownBackend(u32),
    /// A non-tombstone backend already listens on this address.
    DuplicateAddr(SocketAddr),
    /// The backend exists but the op is not legal from its state
    /// (drain a tombstone, admit a non-Joining backend, …).
    BadTransition {
        /// The backend the op named.
        id: u32,
        /// Its current state.
        from: BackendState,
        /// The op that was attempted.
        op: &'static str,
    },
}

impl std::fmt::Display for CtlError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            CtlError::UnknownBackend(id) => write!(f, "unknown backend {id}"),
            CtlError::DuplicateAddr(addr) => write!(f, "backend already present at {addr}"),
            CtlError::BadTransition { id, from, op } => {
                write!(f, "cannot {op} backend {id} in state {from}")
            }
        }
    }
}

impl std::error::Error for CtlError {}

/// The membership state machine: serialized writers, lock-free readers.
pub struct Membership {
    cell: ViewCell<MembershipEpoch>,
    /// Serializes read-modify-write admin ops (the [`ViewCell`]'s own
    /// lock only orders the final publish).
    writer: Mutex<()>,
}

impl Membership {
    /// Boot membership: every listed backend `Live`, epoch 1.
    ///
    /// # Panics
    /// If two backends share an id or an address.
    pub fn new(initial: &[(u32, SocketAddr)]) -> Membership {
        let mut backends: Vec<BackendSpec> = Vec::with_capacity(initial.len());
        for &(id, addr) in initial {
            assert!(
                backends.iter().all(|b| b.id != id),
                "duplicate backend id {id}"
            );
            assert!(
                backends.iter().all(|b| b.addr != addr),
                "duplicate backend addr {addr}"
            );
            backends.push(BackendSpec {
                id,
                addr,
                state: BackendState::Live,
            });
        }
        backends.sort_by_key(|b| b.id);
        Membership {
            cell: ViewCell::new(Arc::new(MembershipEpoch { epoch: 1, backends })),
            writer: Mutex::new(()),
        }
    }

    /// The current view. Lock-free; safe from any data-path thread.
    pub fn view(&self) -> Arc<MembershipEpoch> {
        self.cell.load()
    }

    /// Admin op: announce a new backend at `addr`. It enters `Joining`
    /// with a fresh id (max ever + 1) and joins the ring immediately,
    /// but the router's health gate holds traffic until the probe
    /// loop admits it. Advances the epoch.
    pub fn join(&self, addr: SocketAddr) -> Result<(u32, Arc<MembershipEpoch>), CtlError> {
        let _g = self.writer.lock().expect("membership writer poisoned");
        let cur = self.cell.load();
        if let Some(b) = cur
            .backends
            .iter()
            .find(|b| b.addr == addr && b.state != BackendState::Removed)
        {
            return Err(CtlError::DuplicateAddr(b.addr));
        }
        let id = cur.backends.iter().map(|b| b.id + 1).max().unwrap_or(0);
        let mut backends = cur.backends.clone();
        backends.push(BackendSpec {
            id,
            addr,
            state: BackendState::Joining,
        });
        let next = Arc::new(MembershipEpoch {
            epoch: cur.epoch + 1,
            backends,
        });
        self.cell.publish(Arc::clone(&next));
        Ok((id, next))
    }

    /// Health event: the probe loop admitted backend `id`
    /// (`Joining → Live`). Republishes under the **same** epoch — the
    /// ring does not change shape, so this is not a revision.
    pub fn mark_live(&self, id: u32) -> Result<Arc<MembershipEpoch>, CtlError> {
        self.transition(id, "admit", false, |state| match state {
            BackendState::Joining => Some(BackendState::Live),
            _ => None,
        })
    }

    /// Admin op: stop assigning new keys to backend `id`; in-flight
    /// work keeps draining. Legal from `Joining` or `Live`. Advances
    /// the epoch.
    pub fn drain(&self, id: u32) -> Result<Arc<MembershipEpoch>, CtlError> {
        self.transition(id, "drain", true, |state| match state {
            BackendState::Joining | BackendState::Live => Some(BackendState::Draining),
            _ => None,
        })
    }

    /// Admin op: tombstone backend `id`. Normally follows a drain, but
    /// is legal from any live state (force-remove of a dead host).
    /// Advances the epoch.
    pub fn remove(&self, id: u32) -> Result<Arc<MembershipEpoch>, CtlError> {
        self.transition(id, "remove", true, |state| match state {
            BackendState::Removed => None,
            _ => Some(BackendState::Removed),
        })
    }

    fn transition(
        &self,
        id: u32,
        op: &'static str,
        advance: bool,
        next_state: impl Fn(BackendState) -> Option<BackendState>,
    ) -> Result<Arc<MembershipEpoch>, CtlError> {
        let _g = self.writer.lock().expect("membership writer poisoned");
        let cur = self.cell.load();
        let Some(pos) = cur.backends.iter().position(|b| b.id == id) else {
            return Err(CtlError::UnknownBackend(id));
        };
        let from = cur.backends[pos].state;
        let Some(to) = next_state(from) else {
            return Err(CtlError::BadTransition { id, from, op });
        };
        let mut backends = cur.backends.clone();
        backends[pos].state = to;
        let next = Arc::new(MembershipEpoch {
            epoch: cur.epoch + u64::from(advance),
            backends,
        });
        self.cell.publish(Arc::clone(&next));
        Ok(next)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn addr(port: u16) -> SocketAddr {
        format!("127.0.0.1:{port}").parse().unwrap()
    }

    fn boot(n: u16) -> Membership {
        let initial: Vec<(u32, SocketAddr)> =
            (0..n).map(|i| (u32::from(i), addr(7400 + i))).collect();
        Membership::new(&initial)
    }

    #[test]
    fn boot_membership_is_all_live_at_epoch_one() {
        let m = boot(3);
        let v = m.view();
        assert_eq!(v.epoch, 1);
        assert_eq!(v.backends.len(), 3);
        assert!(v.backends.iter().all(|b| b.state == BackendState::Live));
        assert_eq!(v.ring_members(), vec![0, 1, 2]);
    }

    #[test]
    fn join_assigns_a_fresh_id_and_advances_the_epoch() {
        let m = boot(2);
        let (id, v) = m.join(addr(7500)).unwrap();
        assert_eq!(id, 2);
        assert_eq!(v.epoch, 2);
        assert_eq!(v.get(2).unwrap().state, BackendState::Joining);
        assert_eq!(
            v.ring_members(),
            vec![0, 1, 2],
            "joining members hold ring points before admission"
        );
        // Same address again: rejected while the first is not removed.
        assert_eq!(m.join(addr(7500)), Err(CtlError::DuplicateAddr(addr(7500))));
    }

    #[test]
    fn admission_flips_state_without_advancing_the_epoch() {
        let m = boot(1);
        let (id, joined) = m.join(addr(7501)).unwrap();
        let admitted = m.mark_live(id).unwrap();
        assert_eq!(
            admitted.epoch, joined.epoch,
            "health events are not revisions"
        );
        assert_eq!(admitted.get(id).unwrap().state, BackendState::Live);
        assert_eq!(
            m.mark_live(id).unwrap_err(),
            CtlError::BadTransition {
                id,
                from: BackendState::Live,
                op: "admit"
            }
        );
    }

    #[test]
    fn drain_then_remove_walks_the_lifecycle() {
        let m = boot(3);
        let v = m.drain(1).unwrap();
        assert_eq!(v.epoch, 2);
        assert_eq!(v.get(1).unwrap().state, BackendState::Draining);
        assert_eq!(v.ring_members(), vec![0, 2], "draining leaves the ring");
        // Draining again is a bad transition, not a silent no-op.
        assert!(matches!(m.drain(1), Err(CtlError::BadTransition { .. })));
        let v = m.remove(1).unwrap();
        assert_eq!(v.epoch, 3);
        assert_eq!(v.get(1).unwrap().state, BackendState::Removed);
        assert!(matches!(m.remove(1), Err(CtlError::BadTransition { .. })));
        assert_eq!(m.drain(9), Err(CtlError::UnknownBackend(9)));
    }

    #[test]
    fn removed_ids_are_never_reused() {
        let m = boot(2);
        m.drain(1).unwrap();
        m.remove(1).unwrap();
        let (id, v) = m.join(addr(7600)).unwrap();
        assert_eq!(id, 2, "tombstoned id 1 is not handed out again");
        assert_eq!(v.epoch, 4);
        // The tombstone's address is free for a newcomer.
        let (id2, _) = m.join(addr(7401)).unwrap();
        assert_eq!(id2, 3);
    }

    #[test]
    fn epochs_are_monotonic_across_any_op_sequence() {
        let m = boot(2);
        let mut last = m.view().epoch;
        let (id, _) = m.join(addr(7700)).unwrap();
        for view in [
            m.mark_live(id).unwrap(),
            m.drain(id).unwrap(),
            m.remove(id).unwrap(),
        ] {
            assert!(view.epoch >= last);
            last = view.epoch;
        }
        assert_eq!(last, 4, "join + drain + remove = three revisions past boot");
    }

    #[test]
    fn encode_parse_round_trips_and_tolerates_diagnostics() {
        let m = boot(2);
        let (id, _) = m.join(addr(7800)).unwrap();
        m.drain(0).unwrap();
        let v = m.view();
        let parsed = MembershipEpoch::parse_text(&v.encode_text()).unwrap();
        assert_eq!(parsed, *v);
        // Router-appended diagnostic columns and blank lines parse too.
        let decorated = format!(
            "epoch {}\nbackend {} {} joining health=down outstanding=0\n\n",
            v.epoch,
            id,
            addr(7800)
        );
        let parsed = MembershipEpoch::parse_text(&decorated).unwrap();
        assert_eq!(parsed.epoch, v.epoch);
        assert_eq!(parsed.get(id).unwrap().state, BackendState::Joining);
        assert!(MembershipEpoch::parse_text("backend 0 nope live\n").is_err());
        assert!(MembershipEpoch::parse_text("").is_err(), "no epoch line");
    }

    #[test]
    fn concurrent_readers_see_monotonic_epochs_during_churn() {
        let m = Arc::new(boot(1));
        let stop = Arc::new(std::sync::atomic::AtomicBool::new(false));
        let readers: Vec<_> = (0..3)
            .map(|_| {
                let m = Arc::clone(&m);
                let stop = Arc::clone(&stop);
                std::thread::spawn(move || {
                    let mut last = 0;
                    while !stop.load(std::sync::atomic::Ordering::Relaxed) {
                        let v = m.view();
                        assert!(v.epoch >= last);
                        // A view is internally consistent: ring members
                        // are always a subset of its backends.
                        for id in v.ring_members() {
                            assert!(v.get(id).is_some());
                        }
                        last = v.epoch;
                    }
                })
            })
            .collect();
        for port in 0..100u16 {
            let (id, _) = m.join(addr(8000 + port)).unwrap();
            m.mark_live(id).unwrap();
            m.drain(id).unwrap();
            m.remove(id).unwrap();
        }
        stop.store(true, std::sync::atomic::Ordering::Relaxed);
        for r in readers {
            r.join().unwrap();
        }
        assert_eq!(m.view().epoch, 1 + 3 * 100);
    }
}
