//! `ctl` — the control plane for live fleet membership.
//!
//! The router's backend set used to be a constructor argument: scaling
//! out, rolling a backend, or retiring a bad host meant restarting the
//! proxy tier. This crate makes membership a first-class runtime
//! object, versioned by a monotonically increasing **epoch**:
//!
//! - [`membership`]: the [`Membership`] state machine. Each backend is
//!   a [`BackendSpec`] in one of three live states —
//!   [`BackendState::Joining`] (announced, not yet admitted by the
//!   health prober), [`BackendState::Live`] (taking traffic),
//!   [`BackendState::Draining`] (excluded from new assignment, still
//!   finishing in-flight work) — or the terminal
//!   [`BackendState::Removed`] tombstone. Admin ops (`join`, `drain`,
//!   `remove`) each advance the epoch; the probe-driven
//!   `Joining → Live` admission republishes under the *same* epoch,
//!   because the epoch numbers administered membership revisions, not
//!   health flaps.
//! - [`swap`]: [`ViewCell`], the publication primitive. Writers swap
//!   in a new `Arc` view; data-path readers get the current view with
//!   one atomic load and one refcount increment — no lock, no wait —
//!   the same publish-then-read discipline as `obs::trace`, but with
//!   every published view retained so the read side needs no
//!   validation loop at all.
//!
//! The crate has no dependencies; the router layers rings, health, and
//! obs mirrors on top (DESIGN.md §15 carries the ordering argument).

#![deny(unsafe_code)]
#![deny(missing_docs)]

pub mod membership;
pub mod swap;

pub use membership::{BackendSpec, BackendState, CtlError, Membership, MembershipEpoch};
pub use swap::ViewCell;
