//! An autograder for assembly lab submissions.
//!
//! The course's labs are graded by running student code against test
//! inputs; this module is that harness for the `asm` substrate: a
//! submission is AT&T source with an agreed register/memory calling
//! convention, graded against a rubric of test vectors on the emulator,
//! with per-case diagnostics (including faults — a segfaulting submission
//! gets a *useful* report, not a zero and a shrug).

use asm::{assemble, Machine, MachineError, Reg};

/// One test vector: initial registers/memory → expected registers/memory.
#[derive(Debug, Clone, Default)]
pub struct TestCase {
    /// Human-readable name ("sorts a reversed array").
    pub name: String,
    /// Initial register values.
    pub set_regs: Vec<(Reg, u32)>,
    /// Initial memory words `(addr, value)`.
    pub set_mem: Vec<(u32, u32)>,
    /// Expected final register values.
    pub expect_regs: Vec<(Reg, u32)>,
    /// Expected final memory words.
    pub expect_mem: Vec<(u32, u32)>,
    /// Points this case is worth.
    pub points: u32,
}

/// Outcome of one test case.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum CaseOutcome {
    /// All expectations met.
    Pass,
    /// Ran to completion but some value was wrong.
    Wrong(String),
    /// The submission crashed.
    Fault(String),
    /// It never halted within the fuel budget.
    TimedOut,
}

/// One graded case.
#[derive(Debug, Clone)]
pub struct CaseResult {
    /// The case name.
    pub name: String,
    /// What happened.
    pub outcome: CaseOutcome,
    /// Points earned.
    pub earned: u32,
    /// Points possible.
    pub possible: u32,
}

/// The full grade report.
#[derive(Debug, Clone)]
pub struct GradeReport {
    /// Per-case results.
    pub cases: Vec<CaseResult>,
    /// Points earned.
    pub earned: u32,
    /// Points possible.
    pub possible: u32,
}

impl GradeReport {
    /// Fraction earned in \[0,1\].
    pub fn fraction(&self) -> f64 {
        if self.possible == 0 {
            0.0
        } else {
            self.earned as f64 / self.possible as f64
        }
    }

    /// Renders the report the student sees.
    pub fn render(&self) -> String {
        let mut out = format!(
            "grade: {}/{} ({:.0}%)\n",
            self.earned,
            self.possible,
            self.fraction() * 100.0
        );
        for c in &self.cases {
            let mark = match &c.outcome {
                CaseOutcome::Pass => "PASS".to_string(),
                CaseOutcome::Wrong(d) => format!("WRONG: {d}"),
                CaseOutcome::Fault(d) => format!("FAULT: {d}"),
                CaseOutcome::TimedOut => "TIMEOUT".to_string(),
            };
            out.push_str(&format!(
                "  [{:>2}/{:>2}] {}: {mark}\n",
                c.earned, c.possible, c.name
            ));
        }
        out
    }
}

/// Grades `source` against `rubric`. Assembly errors fail every case
/// (with the assembler's message), like a submission that doesn't build.
pub fn grade(source: &str, rubric: &[TestCase], fuel: u64) -> GradeReport {
    let program = match assemble(source) {
        Ok(p) => p,
        Err(e) => {
            let cases = rubric
                .iter()
                .map(|t| CaseResult {
                    name: t.name.clone(),
                    outcome: CaseOutcome::Fault(format!("does not assemble: {e}")),
                    earned: 0,
                    possible: t.points,
                })
                .collect();
            return GradeReport {
                cases,
                earned: 0,
                possible: rubric.iter().map(|t| t.points).sum(),
            };
        }
    };

    let mut cases = Vec::with_capacity(rubric.len());
    for t in rubric {
        let mut m = Machine::new();
        let outcome = (|| -> Result<CaseOutcome, MachineError> {
            m.load(&program)?;
            for &(r, v) in &t.set_regs {
                m.set_reg(r, v);
            }
            for &(a, v) in &t.set_mem {
                m.write_u32(a, v)?;
            }
            match m.run(fuel) {
                Ok(()) => {}
                Err(MachineError::OutOfFuel) => return Ok(CaseOutcome::TimedOut),
                Err(e) => return Ok(CaseOutcome::Fault(e.to_string())),
            }
            for &(r, want) in &t.expect_regs {
                let got = m.reg(r);
                if got != want {
                    return Ok(CaseOutcome::Wrong(format!(
                        "{} = {} ({}), expected {} ({})",
                        r.att_name(),
                        got,
                        got as i32,
                        want,
                        want as i32
                    )));
                }
            }
            for &(a, want) in &t.expect_mem {
                let got = m.read_u32(a)?;
                if got != want {
                    return Ok(CaseOutcome::Wrong(format!(
                        "mem[{a:#x}] = {got}, expected {want}"
                    )));
                }
            }
            Ok(CaseOutcome::Pass)
        })()
        .unwrap_or_else(|e| CaseOutcome::Fault(e.to_string()));

        let earned = if outcome == CaseOutcome::Pass {
            t.points
        } else {
            0
        };
        cases.push(CaseResult {
            name: t.name.clone(),
            outcome,
            earned,
            possible: t.points,
        });
    }
    GradeReport {
        earned: cases.iter().map(|c| c.earned).sum(),
        possible: cases.iter().map(|c| c.possible).sum(),
        cases,
    }
}

/// The Lab 4 "sum an array" rubric: array base in `%esi`, length in
/// `%ecx`, result expected in `%eax`.
pub fn sum_array_rubric() -> Vec<TestCase> {
    let build = |name: &str, values: &[i32]| -> TestCase {
        let base = 0x3000u32;
        TestCase {
            name: name.to_string(),
            set_regs: vec![(Reg::Esi, base), (Reg::Ecx, values.len() as u32)],
            set_mem: values
                .iter()
                .enumerate()
                .map(|(i, v)| (base + 4 * i as u32, *v as u32))
                .collect(),
            expect_regs: vec![(Reg::Eax, values.iter().sum::<i32>() as u32)],
            expect_mem: vec![],
            points: 5,
        }
    };
    vec![
        build("small positives", &[1, 2, 3]),
        build("with negatives", &[10, -4, 7, -13]),
        build("single element", &[42]),
        build("larger array", &[3; 20]),
    ]
}

#[cfg(test)]
mod tests {
    use super::*;

    const GOOD: &str = r#"
        main:
            movl $0, %eax
            movl $0, %edi
            cmpl $0, %ecx
            je done
        loop:
            addl (%esi,%edi,4), %eax
            addl $1, %edi
            cmpl %ecx, %edi
            jne loop
        done:
            hlt
    "#;

    // Off-by-one: loops length-1 times.
    const BUGGY: &str = r#"
        main:
            movl $0, %eax
            movl $0, %edi
            subl $1, %ecx
            cmpl $0, %ecx
            je done
        loop:
            addl (%esi,%edi,4), %eax
            addl $1, %edi
            cmpl %ecx, %edi
            jne loop
        done:
            hlt
    "#;

    #[test]
    fn correct_submission_gets_full_marks() {
        let r = grade(GOOD, &sum_array_rubric(), 100_000);
        assert_eq!(r.earned, r.possible, "{}", r.render());
        assert!(r.render().contains("100%"));
    }

    #[test]
    fn off_by_one_loses_points_with_diagnostics() {
        let r = grade(BUGGY, &sum_array_rubric(), 100_000);
        assert!(r.earned < r.possible);
        assert!(r.fraction() < 1.0);
        let text = r.render();
        assert!(text.contains("WRONG"), "{text}");
        assert!(text.contains("expected"), "{text}");
    }

    #[test]
    fn non_assembling_submission_reports_build_error() {
        let r = grade("this is not assembly", &sum_array_rubric(), 1000);
        assert_eq!(r.earned, 0);
        assert!(r.render().contains("does not assemble"));
    }

    #[test]
    fn infinite_loop_times_out() {
        let r = grade("spin: jmp spin\n", &sum_array_rubric(), 1000);
        assert!(r.cases.iter().all(|c| c.outcome == CaseOutcome::TimedOut));
    }

    #[test]
    fn segfault_reported_per_case() {
        let r = grade(
            "movl $0xFFFFFFF0, %eax\nmovl (%eax), %ebx\nhlt\n",
            &sum_array_rubric(),
            1000,
        );
        assert!(matches!(r.cases[0].outcome, CaseOutcome::Fault(_)));
        assert!(r.render().contains("segmentation fault"));
    }
}
