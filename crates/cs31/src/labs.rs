//! Labs 0–10 (§III-B) as runnable artifacts.
//!
//! Each [`Lab`] carries a `demonstrate` function that *executes* the lab
//! against the subsystem crates and returns a transcript. The
//! demonstrations double as cross-crate integration checks: Lab 10
//! literally re-runs Lab 6's serial engine to verify its parallel output,
//! exactly as the assignment tells students to.

use std::error::Error;

/// Identifies a lab.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
#[allow(missing_docs)]
pub enum LabId {
    Lab0,
    Lab1,
    Lab2,
    Lab3,
    Lab4,
    Lab5,
    Lab6,
    Lab7,
    Lab8,
    Lab9,
    Lab10,
}

/// A lab assignment descriptor.
pub struct Lab {
    /// Which lab.
    pub id: LabId,
    /// Title from §III-B.
    pub title: &'static str,
    /// One-line description from the paper.
    pub description: &'static str,
    /// Runs the lab's core exercise; returns a transcript.
    pub demonstrate: fn() -> Result<String, Box<dyn Error>>,
}

impl std::fmt::Debug for Lab {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Lab")
            .field("id", &self.id)
            .field("title", &self.title)
            .finish_non_exhaustive()
    }
}

/// All eleven labs in order.
pub fn all_labs() -> Vec<Lab> {
    vec![
        Lab {
            id: LabId::Lab0,
            title: "Tools for CS 31",
            description: "basic Unix shell navigation warm-up",
            demonstrate: lab0,
        },
        Lab {
            id: LabId::Lab1,
            title: "Data Representation and Arithmetic",
            description: "binary/hex conversion and properties of C variables",
            demonstrate: lab1,
        },
        Lab {
            id: LabId::Lab2,
            title: "C Programming Warm-up",
            description: "implement a basic O(N^2) sorting algorithm",
            demonstrate: lab2,
        },
        Lab {
            id: LabId::Lab3,
            title: "Building an ALU Circuit",
            description: "sign extender + one-bit adder combined into an 8-op, 5-flag ALU",
            demonstrate: lab3,
        },
        Lab {
            id: LabId::Lab4,
            title: "C Pointers and Assembly Code",
            description: "array statistics with dynamic memory; short assembly functions",
            demonstrate: lab4,
        },
        Lab {
            id: LabId::Lab5,
            title: "Binary Maze",
            description: "decipher assembly floors with the debugger to find the inputs",
            demonstrate: lab5,
        },
        Lab {
            id: LabId::Lab6,
            title: "Game of Life",
            description: "serial simulation with grid file input and visualization",
            demonstrate: lab6,
        },
        Lab {
            id: LabId::Lab7,
            title: "C String Library",
            description: "implement and test common C string functions",
            demonstrate: lab7,
        },
        Lab {
            id: LabId::Lab8,
            title: "Command Parser Library",
            description: "tokenize command strings and detect background '&'",
            demonstrate: lab8,
        },
        Lab {
            id: LabId::Lab9,
            title: "Unix Shell",
            description: "foreground/background execution with history",
            demonstrate: lab9,
        },
        Lab {
            id: LabId::Lab10,
            title: "Parallel Game of Life",
            description: "pthreads-style parallelization with barriers and a stats mutex",
            demonstrate: lab10,
        },
    ]
}

fn lab0() -> Result<String, Box<dyn Error>> {
    // Unix-navigation warm-up: drive the simulated shell's parser the way
    // the lab drives a real terminal.
    let mut out = String::from("Lab 0: command-line warm-up\n");
    for line in ["ls -l", "cat notes.txt", "top &"] {
        let p = os::shell::parse_command(line)?;
        out.push_str(&format!(
            "{line:?} -> tokens {:?} bg={}\n",
            p.tokens, p.background
        ));
    }
    Ok(out)
}

fn lab1() -> Result<String, Box<dyn Error>> {
    use bits::ctypes::{CInt, CType};
    use bits::{format_radix, Radix, Twos};
    let mut out = String::from("Lab 1: data representation\n");
    // Part 1: conversions.
    let t = Twos::new(8)?;
    let raw = t.encode_signed(-42)?;
    out.push_str(&format!(
        "-42 at width 8 = {} = {}\n",
        format_radix(8, raw, Radix::Binary)?,
        format_radix(8, raw, Radix::Hex)?
    ));
    // Part 2: properties of C variables (the max-int probe).
    let int = CType::signed(CInt::Int);
    out.push_str(&format!("INT_MAX probe: {}\n", int.max()));
    out.push_str(&format!(
        "INT_MAX + 1 wraps to {}\n",
        int.value_of(int.store_wrapping(int.max() + 1))
    ));
    if int.value_of(int.store_wrapping(int.max() + 1)) != int.min() as i128 {
        return Err("overflow should wrap to INT_MIN".into());
    }
    Ok(out)
}

fn lab2() -> Result<String, Box<dyn Error>> {
    // The O(N^2) sort, written in our IA-32 subset and run on the
    // emulator: bubble sort over an array at 0x2000.
    let n = 8u32;
    let values: [i32; 8] = [42, -7, 19, 0, 99, -31, 5, 5];
    let src = r#"
        # bubble sort: array base in %esi, length in %ecx
        main:
            movl $0x2000, %esi
            movl $8, %ecx
        outer:
            cmpl $1, %ecx
            jle done
            movl $0, %edi          # i = 0
        inner:
            movl %ecx, %edx
            subl $1, %edx
            cmpl %edx, %edi        # i < len-1 ?
            jge outer_next
            movl (%esi,%edi,4), %eax
            leal 1(%edi), %ebx
            movl (%esi,%ebx,4), %edx
            cmpl %edx, %eax
            jle no_swap            # a[i] <= a[i+1]
            movl %edx, (%esi,%edi,4)
            movl %eax, (%esi,%ebx,4)
        no_swap:
            addl $1, %edi
            jmp inner
        outer_next:
            subl $1, %ecx
            jmp outer
        done:
            hlt
    "#;
    let prog = asm::assemble(src)?;
    let mut m = asm::Machine::new();
    m.load(&prog)?;
    for (i, v) in values.iter().enumerate() {
        m.write_u32(0x2000 + 4 * i as u32, *v as u32)?;
    }
    m.run(1_000_000)?;
    let mut sorted = Vec::new();
    for i in 0..n {
        sorted.push(m.read_u32(0x2000 + 4 * i)? as i32);
    }
    let mut expect = values.to_vec();
    expect.sort_unstable();
    if sorted != expect {
        return Err(format!("sort failed: {sorted:?}").into());
    }
    Ok(format!(
        "Lab 2: bubble sort on the emulator\ninput  {values:?}\nsorted {sorted:?}\n({} instructions executed)\n",
        m.executed
    ))
}

fn lab3() -> Result<String, Box<dyn Error>> {
    use circuits::alu::{build_alu, run_alu, AluOp};
    let mut c = circuits::Circuit::new();
    let pins = build_alu(&mut c, 8);
    let mut out = format!("Lab 3: structural ALU, {} gates, width 8\n", c.gate_count());
    for (op, a, b) in [
        (AluOp::Add, 0x7Fu64, 0x01u64),
        (AluOp::Sub, 5, 5),
        (AluOp::And, 0xF0, 0x3C),
        (AluOp::Shl, 0x81, 0),
    ] {
        let (v, f) = run_alu(&mut c, &pins, op, a, b);
        out.push_str(&format!(
            "{op:?} {a:#04x},{b:#04x} = {v:#04x}  zf={} sf={} cf={} of={} pf={}\n",
            f.zf as u8, f.sf as u8, f.cf as u8, f.of as u8, f.pf as u8
        ));
        let (bv, bf) = circuits::alu::eval(op, 8, a, b);
        if (v, f) != (bv, bf) {
            return Err("structural ALU disagrees with behavioral model".into());
        }
    }
    Ok(out)
}

fn lab4() -> Result<String, Box<dyn Error>> {
    // Part 1: array statistics with dynamic allocation (simulated heap).
    let data = [3i32, 17, -4, 8, 12];
    let mut heap = cheap::SimHeap::new(4096);
    let arr = heap.malloc(4 * data.len() as u32, "stats_array")?;
    for (i, v) in data.iter().enumerate() {
        let bytes = v.to_le_bytes();
        heap.write_bytes(arr + 4 * i as u32, &bytes);
    }
    let mut vals = Vec::new();
    for i in 0..data.len() {
        let b = heap.read_bytes(arr + 4 * i as u32, 4);
        vals.push(i32::from_le_bytes([b[0], b[1], b[2], b[3]]));
    }
    let mean = vals.iter().sum::<i32>() as f64 / vals.len() as f64;
    let max = *vals.iter().max().expect("nonempty");
    heap.free(arr)?;
    if !heap.errors().is_empty() {
        return Err(format!("memcheck found errors: {:?}", heap.errors()).into());
    }

    // Part 2: a short assembly function (sum all values in an array).
    let src = r#"
        main:
            movl $0x3000, %esi
            movl $5, %ecx
            movl $0, %eax
            movl $0, %edi
        loop:
            addl (%esi,%edi,4), %eax
            addl $1, %edi
            cmpl %ecx, %edi
            jne loop
            hlt
    "#;
    let prog = asm::assemble(src)?;
    let mut m = asm::Machine::new();
    m.load(&prog)?;
    for (i, v) in data.iter().enumerate() {
        m.write_u32(0x3000 + 4 * i as u32, *v as u32)?;
    }
    m.run(10_000)?;
    let asm_sum = m.reg(asm::Reg::Eax) as i32;
    if asm_sum != vals.iter().sum::<i32>() {
        return Err("assembly sum mismatch".into());
    }
    Ok(format!(
        "Lab 4: stats over heap array: mean={mean:.1} max={max}; asm sum={asm_sum}; memcheck clean\n"
    ))
}

fn lab5() -> Result<String, Box<dyn Error>> {
    use asm::maze::{attempt, generate};
    let maze = generate(2022, 5);
    let mut wrong = maze.solution.clone();
    wrong[0] ^= 1;
    let exploded = !attempt(&maze, &wrong)?;
    let escaped = attempt(&maze, &maze.solution)?;
    if !exploded || !escaped {
        return Err("maze semantics broken".into());
    }
    // A debugger session transcript, as a student would drive it.
    let mut d = asm::debugger::Debugger::new(maze.program.clone())?;
    let mut out = String::from("Lab 5: binary maze (5 floors)\n");
    out.push_str(&d.command("disas 6"));
    out.push_str(&format!("wrong input exploded: {exploded}\n"));
    out.push_str(&format!("solution escaped: {escaped}\n"));
    Ok(out)
}

fn lab6() -> Result<String, Box<dyn Error>> {
    use life::{serial, Boundary, Grid};
    let file =
        "8 8 12\n........\n..#.....\n...#....\n.###....\n........\n........\n........\n........\n";
    let (grid, rounds) = Grid::from_file_format(file, Boundary::Toroidal)?;
    let (after, history) = serial::run(grid, rounds);
    let mut out = format!(
        "Lab 6: Game of Life, {rounds} rounds from file; final population {}\n",
        after.population()
    );
    out.push_str(&life::vis::ascii(&after));
    if history.len() != rounds || after.population() != 5 {
        return Err("glider should survive intact".into());
    }
    Ok(out)
}

fn lab7() -> Result<String, Box<dyn Error>> {
    use cstring::{strcat, strcmp, strcpy, strlen};
    let mut buf = [0u8; 32];
    strcpy(&mut buf, b"systems\0")?;
    strcat(&mut buf, b" rock\0")?;
    let len = strlen(&buf)?;
    if &buf[..len] != b"systems rock" || strcmp(&buf, b"systems rock\0")? != 0 {
        return Err("string library misbehaved".into());
    }
    Ok(format!(
        "Lab 7: strcpy+strcat produced {:?} (len {len})\n",
        String::from_utf8_lossy(&buf[..len])
    ))
}

fn lab8() -> Result<String, Box<dyn Error>> {
    let mut out = String::from("Lab 8: command parser\n");
    for line in ["ls -l /tmp", "make test &", "sleep 10&"] {
        let p = os::shell::parse_command(line)?;
        out.push_str(&format!("{line:?} -> {:?} bg={}\n", p.tokens, p.background));
    }
    if !os::shell::parse_command("sleep 10&")?.background {
        return Err("glued ampersand must mean background".into());
    }
    Ok(out)
}

fn lab9() -> Result<String, Box<dyn Error>> {
    use os::proc::{program, Op};
    use os::shell::{Shell, ShellEvent};
    let mut k = os::Kernel::new(2);
    k.register_program(
        "ls",
        program(vec![Op::Print("a.txt b.txt".into()), Op::Exit(0)]),
    );
    k.register_program(
        "spin",
        program(vec![
            Op::Compute(15),
            Op::Print("spin done".into()),
            Op::Exit(0),
        ]),
    );
    let mut sh = Shell::new(k);
    let mut out = String::from("Lab 9: shell session\n");
    match sh.run_line("spin &") {
        ShellEvent::Launched(pid) => out.push_str(&format!("[bg] started pid {pid}\n")),
        other => return Err(format!("expected launch, got {other:?}").into()),
    }
    match sh.run_line("ls") {
        ShellEvent::Finished(_, 0) => out.push_str("ls finished\n"),
        other => return Err(format!("expected ls to finish, got {other:?}").into()),
    }
    // Prompt until the background job reaps.
    for _ in 0..20 {
        if sh.jobs().is_empty() {
            break;
        }
        sh.run_line("ls");
    }
    if !sh.jobs().is_empty() {
        return Err("background job never reaped".into());
    }
    out.push_str("background job reaped via SIGCHLD discipline\n");
    match sh.run_line("history") {
        ShellEvent::Builtin(h) => out.push_str(&format!("{h}\n")),
        other => return Err(format!("expected history, got {other:?}").into()),
    }
    Ok(out)
}

fn lab10() -> Result<String, Box<dyn Error>> {
    use life::machsim::speedup_table;
    use life::{grid::GLIDER, parallel, serial, Boundary, Grid, Partition};
    let mut g = Grid::new(32, 32, Boundary::Toroidal)?;
    g.stamp(4, 4, GLIDER);
    g.stamp(20, 10, GLIDER);
    let rounds = 16;
    let (expect, _) = serial::run(g.clone(), rounds);
    let got = parallel::run(g, rounds, 4, Partition::Rows);
    if got.grid != expect {
        return Err("parallel output diverged from serial".into());
    }
    let mut out = String::from("Lab 10: parallel Game of Life — matches serial output\n");
    let machine = ::parallel::machine::MachineConfig {
        cores: 16,
        barrier_cost: 50,
        lock_overhead: 10,
        contention: 0.0,
    };
    out.push_str("modeled 16-core speedup (512x512, 100 rounds):\n");
    for (t, s) in speedup_table(512, 512, 100, &[1, 2, 4, 8, 16], machine) {
        out.push_str(&format!("  {t:>2} threads: {s:>5.2}x\n"));
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn eleven_labs_in_order() {
        let labs = all_labs();
        assert_eq!(labs.len(), 11);
        for w in labs.windows(2) {
            assert!(w[0].id < w[1].id);
        }
    }

    #[test]
    fn every_lab_demonstrates_successfully() {
        for lab in all_labs() {
            let transcript = (lab.demonstrate)()
                .unwrap_or_else(|e| panic!("{:?} ({}) failed: {e}", lab.id, lab.title));
            assert!(!transcript.is_empty(), "{:?} empty transcript", lab.id);
        }
    }

    #[test]
    fn lab2_sorts_on_the_emulator() {
        let t = lab2().unwrap();
        assert!(t.contains("sorted [-31, -7, 0, 5, 5, 19, 42, 99]"), "{t}");
    }

    #[test]
    fn lab10_reports_near_linear_model() {
        let t = lab10().unwrap();
        assert!(t.contains("matches serial"));
        assert!(t.contains("16 threads:"), "{t}");
    }

    #[test]
    fn lab5_transcript_shows_disassembly() {
        let t = lab5().unwrap();
        assert!(t.contains("movl"), "{t}");
        assert!(t.contains("escaped: true"));
    }
}
