//! Exam assembly (§II: "two course exams"). A midterm covers the first
//! half of the vertical slice (binary → C → circuits → assembly); a
//! final adds memory, OS, and parallelism. Exams are composed from the
//! homework generators plus clicker questions, so every answer key is
//! simulator-computed.

use crate::clicker::{question_bank, ClickerQuestion};
use crate::homework::{self, Problem};

/// Which exam.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ExamKind {
    /// Covers weeks 1–8: binary, C, circuits, assembly.
    Midterm,
    /// Cumulative, weighted toward weeks 9–14: memory, OS, parallelism.
    Final,
}

/// A generated exam.
#[derive(Debug, Clone)]
pub struct Exam {
    /// Which exam this is.
    pub kind: ExamKind,
    /// Free-response problems (with solutions).
    pub problems: Vec<Problem>,
    /// Multiple-choice section.
    pub multiple_choice: Vec<ClickerQuestion>,
}

/// Generates an exam for a seed. Deterministic; different seeds give
/// different-but-isomorphic exams (the make-up exam property).
pub fn generate(kind: ExamKind, seed: u64) -> Exam {
    let problems: Vec<Problem> = match kind {
        ExamKind::Midterm => vec![
            homework::binary_arithmetic(seed),
            homework::binary_arithmetic(seed ^ 0x1111),
            homework::direct_mapped_trace(seed), // caching is introduced pre-midterm in some offerings
        ],
        ExamKind::Final => vec![
            homework::binary_arithmetic(seed),
            homework::direct_mapped_trace(seed),
            homework::set_associative_trace(seed),
            homework::vm_trace(seed),
            homework::fork_puzzle(seed),
            homework::threads_producer_consumer(seed),
        ],
    };
    let modules: &[&str] = match kind {
        ExamKind::Midterm => &["binary representation", "architecture"],
        ExamKind::Final => &["caching", "processes", "virtual memory", "parallelism"],
    };
    let multiple_choice = question_bank()
        .into_iter()
        .filter(|q| modules.contains(&q.module))
        .collect();
    Exam {
        kind,
        problems,
        multiple_choice,
    }
}

impl Exam {
    /// Renders the exam paper (without solutions).
    pub fn paper(&self) -> String {
        let mut out = format!("CS 31 {:?} (generated)\n\n", self.kind);
        for (i, p) in self.problems.iter().enumerate() {
            out.push_str(&format!("Problem {} [{}]\n{}\n\n", i + 1, p.set, p.prompt));
        }
        for (i, q) in self.multiple_choice.iter().enumerate() {
            out.push_str(&format!("MC {} [{}]\n{}\n", i + 1, q.module, q.prompt));
            for (j, c) in q.choices.iter().enumerate() {
                out.push_str(&format!("  ({}) {c}\n", (b'a' + j as u8) as char));
            }
            out.push('\n');
        }
        out
    }

    /// Renders the answer key.
    pub fn key(&self) -> String {
        let mut out = format!("CS 31 {:?} — answer key\n\n", self.kind);
        for (i, p) in self.problems.iter().enumerate() {
            out.push_str(&format!("Problem {}:\n{}\n\n", i + 1, p.solution));
        }
        for (i, q) in self.multiple_choice.iter().enumerate() {
            out.push_str(&format!(
                "MC {}: ({})  {}\n",
                i + 1,
                (b'a' + q.correct as u8) as char,
                q.explanation
            ));
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn both_exams_generate() {
        let mid = generate(ExamKind::Midterm, 1);
        let fin = generate(ExamKind::Final, 1);
        assert!(mid.problems.len() >= 3);
        assert!(fin.problems.len() >= 5, "the final is cumulative");
        assert!(!mid.multiple_choice.is_empty());
        assert!(!fin.multiple_choice.is_empty());
    }

    #[test]
    fn final_covers_parallelism_midterm_does_not() {
        let mid = generate(ExamKind::Midterm, 2);
        let fin = generate(ExamKind::Final, 2);
        assert!(fin
            .multiple_choice
            .iter()
            .any(|q| q.module == "parallelism"));
        assert!(mid
            .multiple_choice
            .iter()
            .all(|q| q.module != "parallelism"));
    }

    #[test]
    fn paper_hides_solutions_key_shows_them() {
        let e = generate(ExamKind::Final, 3);
        let paper = e.paper();
        let key = e.key();
        assert!(paper.contains("Problem 1"));
        assert!(!paper.contains("answer key"));
        assert!(key.contains("answer key"));
        // The VM trace solution's FAULT markers appear only in the key.
        assert!(key.contains("FAULT"));
        assert!(!paper.contains("FAULT"));
    }

    #[test]
    fn seeded_makeup_exams_differ() {
        let a = generate(ExamKind::Final, 10);
        let b = generate(ExamKind::Final, 11);
        assert_ne!(a.paper(), b.paper(), "make-up exam must differ");
        let a2 = generate(ExamKind::Final, 10);
        assert_eq!(a.paper(), a2.paper(), "same seed, same exam");
    }
}
