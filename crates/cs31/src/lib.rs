//! # cs31 — the course as a library
//!
//! The paper's primary contribution is a *course design*: CS 31,
//! "Introduction to Computer Systems", a second course that introduces
//! parallel computing on a CS1-only background (§II). This crate encodes
//! that design on top of the subsystem crates:
//!
//! * [`course`] — the three curricular themes, the week-by-week module
//!   schedule of §III, and the course structure (peer instruction,
//!   weekly labs, written homeworks);
//! * [`labs`] — Labs 0–10 as typed, *runnable* artifacts: each lab's
//!   `demonstrate()` drives the real subsystem (the Lab 3 ALU is built
//!   gate by gate, the Lab 5 maze is solved through the debugger, the
//!   Lab 10 Life run checks itself against Lab 6's serial output);
//! * [`homework`] — seeded generators for the weekly written homework
//!   problems *with solutions computed by the simulators* (cache traces
//!   solved by `memsim`, VM traces by `vmem`, fork puzzles by `os`);
//! * [`exam`] — the two course exams composed from the generators
//!   (midterm: the first half of the slice; final: cumulative);
//! * [`clicker`] — a peer-instruction question bank whose answer keys
//!   are computed, not transcribed.
//!
//! ```
//! use cs31::labs::{all_labs, LabId};
//!
//! let labs = all_labs();
//! assert_eq!(labs.len(), 11); // Lab 0 through Lab 10
//! let lab10 = labs.iter().find(|l| l.id == LabId::Lab10).unwrap();
//! let transcript = (lab10.demonstrate)().unwrap();
//! assert!(transcript.contains("matches serial"));
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod autograde;
pub mod clicker;
pub mod course;
pub mod exam;
pub mod groups;
pub mod homework;
pub mod labs;
pub mod readings;

pub use course::{themes, week_schedule, CourseTheme, Week};
pub use labs::{all_labs, Lab, LabId};
