//! The peer-instruction clicker bank (§II: "We present a carefully
//! crafted question and first ask the students to answer it
//! individually … then respond again … as a group").
//!
//! Every answer key is **computed by the simulators** at construction
//! time, so the bank cannot drift out of sync with the library it
//! teaches.

/// A multiple-choice clicker question.
#[derive(Debug, Clone)]
pub struct ClickerQuestion {
    /// Course module it belongs to.
    pub module: &'static str,
    /// The question text.
    pub prompt: String,
    /// The candidate answers.
    pub choices: Vec<String>,
    /// Index of the correct choice.
    pub correct: usize,
    /// The follow-up explanation for the full-class discussion.
    pub explanation: String,
}

/// Builds the question bank (deterministic: all keys computed).
pub fn question_bank() -> Vec<ClickerQuestion> {
    let mut bank = Vec::new();

    // Binary: what is 0xFF as a signed char?
    {
        let t = bits::Twos::new(8).expect("width 8");
        let v = t.decode_signed(0xFF);
        bank.push(ClickerQuestion {
            module: "binary representation",
            prompt: "A signed char holds the bits 0xFF. What value is it?".into(),
            choices: vec!["255".into(), "-1".into(), "-127".into(), "undefined".into()],
            correct: 1,
            explanation: format!("two's complement: 0xFF at width 8 decodes to {v}"),
        });
        assert_eq!(v, -1);
    }

    // Binary: does 127 + 1 overflow?
    {
        let r = bits::arith::add(8, 127, 1).expect("width 8");
        bank.push(ClickerQuestion {
            module: "binary representation",
            prompt: "At 8 bits, 127 + 1 sets which overflow indicator(s)?".into(),
            choices: vec![
                "carry (unsigned) only".into(),
                "overflow (signed) only".into(),
                "both".into(),
                "neither".into(),
            ],
            correct: if r.flags.of && !r.flags.cf { 1 } else { 99 },
            explanation: format!("computed flags: {}", r.flags.pretty()),
        });
    }

    // Architecture: pipeline speedup on independent instructions.
    {
        let stream = circuits::pipeline::independent_stream(1000);
        let (_, _, speedup) = circuits::pipeline::compare(&stream);
        let rounded = speedup.round() as i64;
        bank.push(ClickerQuestion {
            module: "architecture",
            prompt: "Relative to a 5-cycle multi-cycle design, an ideal 5-stage \
                     pipeline on 1000 independent instructions speeds execution by about:"
                .into(),
            choices: vec!["2x".into(), "5x".into(), "10x".into(), "1000x".into()],
            correct: if rounded == 5 { 1 } else { 99 },
            explanation: format!("measured on the model: {speedup:.2}x"),
        });
    }

    // Caching: which loop order wins?
    {
        use memsim::cache::{Cache, CacheConfig};
        use memsim::patterns::{matrix_sum_trace, LoopOrder};
        let mut row = Cache::new(CacheConfig::direct_mapped(64, 64)).expect("geometry");
        row.run_trace(&matrix_sum_trace(0, 64, 64, 4, LoopOrder::RowMajor));
        let mut col = Cache::new(CacheConfig::direct_mapped(64, 64)).expect("geometry");
        col.run_trace(&matrix_sum_trace(0, 64, 64, 4, LoopOrder::ColumnMajor));
        bank.push(ClickerQuestion {
            module: "caching",
            prompt: "Summing a large 2-D C array: which loop nest is faster?".into(),
            choices: vec![
                "for i { for j { a[i][j] } }".into(),
                "for j { for i { a[i][j] } }".into(),
                "identical".into(),
            ],
            correct: if row.stats().hit_rate() > col.stats().hit_rate() {
                0
            } else {
                99
            },
            explanation: format!(
                "hit rates: row-major {:.0}% vs column-major {:.0}%",
                row.stats().hit_rate() * 100.0,
                col.stats().hit_rate() * 100.0
            ),
        });
    }

    // OS: fork count.
    {
        use os::proc::{program, Op};
        let mut k = os::Kernel::new(2);
        k.register_program(
            "q",
            program(vec![
                Op::Fork,
                Op::Fork,
                Op::Print("hi".into()),
                Op::Exit(0),
            ]),
        );
        k.spawn("q").expect("registered");
        assert!(k.run_until_idle(10_000));
        let n = k.output().len();
        bank.push(ClickerQuestion {
            module: "processes",
            prompt: "fork(); fork(); printf(\"hi\\n\"); — how many lines print?".into(),
            choices: vec!["1".into(), "2".into(), "3".into(), "4".into()],
            correct: if n == 4 { 3 } else { 99 },
            explanation: format!("the kernel simulator printed {n} lines"),
        });
    }

    // Parallelism: Amdahl.
    {
        let s = parallel::laws::amdahl(0.5, 1_000_000);
        bank.push(ClickerQuestion {
            module: "parallelism",
            prompt: "Half of a program is inherently serial. With infinitely many \
                     cores, the best possible overall speedup is:"
                .into(),
            choices: vec![
                "2x".into(),
                "10x".into(),
                "half the cores".into(),
                "unbounded".into(),
            ],
            correct: if (s - 2.0).abs() < 0.01 { 0 } else { 99 },
            explanation: format!("Amdahl at f=0.5, p=10^6: {s:.3}x (limit 1/f = 2)"),
        });
    }

    // Parallelism: lost updates direction.
    {
        let r = parallel::counter::run_racy(2, 2_000);
        bank.push(ClickerQuestion {
            module: "parallelism",
            prompt: "Two threads each do `counter = counter + 1` 2000 times without \
                     synchronization. The final value is:"
                .into(),
            choices: vec![
                "always 4000".into(),
                "at most 4000 (updates can be lost)".into(),
                "more than 4000 (updates can duplicate)".into(),
            ],
            correct: if r.observed <= r.expected { 1 } else { 99 },
            explanation: format!("this run observed {} of {}", r.observed, r.expected),
        });
    }

    // VM: TLB benefit.
    {
        use vmem::eat::{analytic_eat, no_tlb_eat, EatParams};
        let p = EatParams::default();
        let with = analytic_eat(p, 0.98, 0.0);
        let without = no_tlb_eat(p, 0.0);
        bank.push(ClickerQuestion {
            module: "virtual memory",
            prompt: "With a 98%-hit TLB (1ns) over 100ns memory and a one-level page \
                     table, effective access time is roughly:"
                .into(),
            choices: vec![
                "100 ns".into(),
                "103 ns".into(),
                "200 ns".into(),
                "2 ns".into(),
            ],
            correct: if (with - 103.0).abs() < 1.0 { 1 } else { 99 },
            explanation: format!("EAT with TLB ≈ {with:.0}ns; without: {without:.0}ns"),
        });
    }

    bank
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bank_is_substantial_and_keys_resolved() {
        let bank = question_bank();
        assert!(bank.len() >= 8);
        for q in &bank {
            assert!(
                q.correct < q.choices.len(),
                "{}: computed key failed (sentinel 99 leaked): {}",
                q.module,
                q.prompt
            );
            assert!(!q.explanation.is_empty());
            assert!(q.choices.len() >= 3);
        }
    }

    #[test]
    fn covers_all_major_modules() {
        let bank = question_bank();
        for module in [
            "binary representation",
            "architecture",
            "caching",
            "processes",
            "parallelism",
            "virtual memory",
        ] {
            assert!(bank.iter().any(|q| q.module == module), "missing {module}");
        }
    }
}
