//! Readings: the course uses the free online *Dive into Systems* textbook
//! "written by two of the co-authors and a collaborator from West Point"
//! (§II), with graded reading quizzes before class. This module maps each
//! week of the schedule to its DiS chapter and the quiz it gates.

use crate::course::{week_schedule, Week};

/// A reading assignment: textbook chapter + the clicker-quiz module that
/// checks it.
#[derive(Debug, Clone)]
pub struct Reading {
    /// Week it is due.
    pub week: u32,
    /// Dive into Systems chapter (number, title).
    pub dis_chapter: (u32, &'static str),
    /// The clicker module that supplies the reading-quiz questions.
    pub quiz_module: &'static str,
}

/// The week → chapter map (Dive into Systems chapter numbering).
pub fn reading_schedule() -> Vec<Reading> {
    let chapter_for = |w: &Week| -> ((u32, &'static str), &'static str) {
        match w.crate_name {
            "bits" => (
                (4, "Binary and Data Representation"),
                "binary representation",
            ),
            "cstring" => ((2, "A Deeper Dive into C"), "binary representation"),
            "cheap" => (
                (3, "C Debugging Tools (GDB and Valgrind)"),
                "binary representation",
            ),
            "circuits" => (
                (5, "What von Neumann Knew: Computer Architecture"),
                "architecture",
            ),
            "asm" => ((8, "32-bit x86 Assembly (IA32)"), "architecture"),
            "memsim" => ((11, "Storage and the Memory Hierarchy"), "caching"),
            "os" => ((13, "The Operating System"), "processes"),
            "vmem" => ((13, "The Operating System"), "virtual memory"),
            "parallel" | "life" => (
                (14, "Leveraging Shared Memory in the Multicore Era"),
                "parallelism",
            ),
            _ => (
                (1, "By the C, by the C, by the Beautiful C"),
                "binary representation",
            ),
        }
    };
    week_schedule()
        .iter()
        .map(|w| {
            let (dis_chapter, quiz_module) = chapter_for(w);
            Reading {
                week: w.number,
                dis_chapter,
                quiz_module,
            }
        })
        .collect()
}

/// Builds a reading quiz for a week from the clicker bank (the "answerable
/// by students who did the reading" design of §II).
pub fn reading_quiz(week: u32) -> Vec<crate::clicker::ClickerQuestion> {
    let Some(reading) = reading_schedule().into_iter().find(|r| r.week == week) else {
        return Vec::new();
    };
    crate::clicker::question_bank()
        .into_iter()
        .filter(|q| q.module == reading.quiz_module)
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn every_week_has_a_reading() {
        let rs = reading_schedule();
        assert_eq!(rs.len(), 14);
        for (i, r) in rs.iter().enumerate() {
            assert_eq!(r.week as usize, i + 1);
            assert!(r.dis_chapter.0 >= 1);
        }
    }

    #[test]
    fn chapters_follow_the_course_arc() {
        let rs = reading_schedule();
        // Binary first, parallelism (ch. 14) last.
        assert_eq!(rs[0].dis_chapter.0, 4);
        assert_eq!(rs.last().unwrap().dis_chapter.0, 14);
        assert!(rs.last().unwrap().dis_chapter.1.contains("Multicore"));
    }

    #[test]
    fn quizzes_exist_for_key_weeks() {
        // Week 1 (binary) and week 14 (parallelism) both have quiz pools.
        assert!(!reading_quiz(1).is_empty());
        assert!(!reading_quiz(14).is_empty());
        assert!(reading_quiz(99).is_empty());
    }
}
