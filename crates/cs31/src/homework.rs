//! The weekly written homeworks (§III-B "Written Homeworks") as seeded
//! problem generators whose **solutions are computed by the simulators**
//! — a caching homework's answer table comes from `memsim`, a VM trace's
//! from `vmem`, a fork puzzle's from `os`. Instructors get endless
//! variants; tests get self-checking pedagogy.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// A generated problem with its computed solution.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Problem {
    /// Homework set it belongs to.
    pub set: &'static str,
    /// The question text.
    pub prompt: String,
    /// The full worked solution.
    pub solution: String,
}

/// HW "Binary and arithmetic": convert between bases; add at width 8
/// reporting flags.
pub fn binary_arithmetic(seed: u64) -> Problem {
    let mut rng = StdRng::seed_from_u64(seed);
    let a = rng.gen_range(0..=255u64);
    let b = rng.gen_range(0..=255u64);
    let t = bits::Twos::new(8).expect("width 8");
    let r = bits::arith::add(8, a, b).expect("width 8");
    let prompt = format!(
        "Let x = {} and y = {} be 8-bit values.\n\
         (a) Write x in binary and hexadecimal.\n\
         (b) Compute x + y at 8 bits; give the result in hex.\n\
         (c) Does the addition overflow unsigned? signed?\n\
         (d) What is x interpreted as a signed char?",
        a, b
    );
    let solution = format!(
        "(a) x = {} = {}\n(b) x + y = {}\n(c) unsigned (CF): {}; signed (OF): {}\n(d) {}",
        bits::format_radix(8, a, bits::Radix::Binary).expect("width 8"),
        bits::format_radix(8, a, bits::Radix::Hex).expect("width 8"),
        bits::format_radix(8, r.value, bits::Radix::Hex).expect("width 8"),
        r.flags.cf,
        r.flags.of,
        t.decode_signed(a),
    );
    Problem {
        set: "Binary and arithmetic",
        prompt,
        solution,
    }
}

/// HW "Circuits": trace a random three-gate circuit to its truth table.
pub fn circuit_table(seed: u64) -> Problem {
    use circuits::netlist::{Circuit, GateKind};
    let mut rng = StdRng::seed_from_u64(seed);
    let kinds = [
        GateKind::And,
        GateKind::Or,
        GateKind::Xor,
        GateKind::Nand,
        GateKind::Nor,
    ];
    let g1k = kinds[rng.gen_range(0..kinds.len())];
    let g2k = kinds[rng.gen_range(0..kinds.len())];
    let g3k = kinds[rng.gen_range(0..kinds.len())];

    let mut c = Circuit::new();
    let a = c.add_input("a");
    let b = c.add_input("b");
    let x = c.add_input("x");
    let g1 = c.add_gate(g1k, &[a, b]);
    let g2 = c.add_gate(g2k, &[g1, x]);
    let g3 = c.add_gate(g3k, &[g1, g2]);
    let rows = c
        .truth_table(&[a, b, x], &[g3])
        .expect("combinational circuit settles");

    let prompt = format!(
        "A circuit computes OUT = {g3k:?}(G1, G2) where G1 = {g1k:?}(A, B)\n\
         and G2 = {g2k:?}(G1, X). Complete the truth table for OUT over\n\
         all eight input combinations (A B X)."
    );
    let mut solution = String::from("A B X | OUT\n");
    for (assignment, outs) in rows {
        solution.push_str(&format!(
            "{} {} {} |  {}\n",
            assignment & 1,
            (assignment >> 1) & 1,
            (assignment >> 2) & 1,
            outs[0] as u8
        ));
    }
    Problem {
        set: "Circuits",
        prompt,
        solution,
    }
}

/// HW "Simple assembly": trace a short snippet; show final registers.
pub fn assembly_trace(seed: u64) -> Problem {
    let mut rng = StdRng::seed_from_u64(seed);
    let a = rng.gen_range(1..50);
    let b = rng.gen_range(1..50);
    let shift = rng.gen_range(1..4);
    let src = format!(
        "movl ${a}, %eax\nmovl ${b}, %ebx\naddl %ebx, %eax\nshll ${shift}, %eax\nsubl %ebx, %eax\ncmpl $100, %eax\nhlt\n"
    );
    let prog = asm::assemble(&src).expect("generated snippet assembles");
    let mut m = asm::Machine::new();
    m.load(&prog).expect("loads");
    m.run(100).expect("halts");
    let prompt = format!(
        "Trace this IA-32 snippet; give the final %eax and the ZF/SF flags\n\
         after the cmpl:\n{src}"
    );
    let solution = format!(
        "%eax = {} ; flags after cmpl $100: {}\n\nfull register state:\n{}",
        m.reg(asm::Reg::Eax) as i32,
        m.flags.pretty(),
        m.dump_registers()
    );
    Problem {
        set: "Simple assembly",
        prompt,
        solution,
    }
}

/// HW "Direct mapped caching": trace a short access sequence.
pub fn direct_mapped_trace(seed: u64) -> Problem {
    use memsim::cache::{Cache, CacheConfig};
    use memsim::trace::{trace_table, TraceEvent};
    let mut rng = StdRng::seed_from_u64(seed);
    let mut cache = Cache::new(CacheConfig::direct_mapped(4, 16)).expect("valid geometry");
    // 8 accesses over a small footprint so conflicts happen.
    let trace: Vec<TraceEvent> = (0..8)
        .map(|_| {
            let addr = rng.gen_range(0..8u64) * 16 + rng.gen_range(0..16u64);
            if rng.gen_bool(0.3) {
                TraceEvent::store(addr)
            } else {
                TraceEvent::load(addr)
            }
        })
        .collect();
    let layout = cache.layout();
    let outcomes = cache.run_trace(&trace);
    let prompt = format!(
        "A direct-mapped cache has 4 sets and 16-byte blocks ({}).\n\
         For each access below, give the set, tag, and hit/miss:\n{}",
        layout.describe(),
        trace
            .iter()
            .enumerate()
            .map(|(i, e)| format!("  {i}: {:?} {:#x}", e.kind, e.addr))
            .collect::<Vec<_>>()
            .join("\n")
    );
    Problem {
        set: "Direct mapped caching",
        prompt,
        solution: trace_table(&outcomes),
    }
}

/// HW "Set associative caching": the same with 2-way LRU.
pub fn set_associative_trace(seed: u64) -> Problem {
    use memsim::cache::{Cache, CacheConfig};
    use memsim::trace::{trace_table, AccessKind, TraceEvent};
    let mut rng = StdRng::seed_from_u64(seed ^ 0xABCD);
    let mut cache = Cache::new(CacheConfig::set_associative(2, 2, 16)).expect("valid geometry");
    let trace: Vec<TraceEvent> = (0..10)
        .map(|_| TraceEvent {
            addr: rng.gen_range(0..6u64) * 16,
            kind: AccessKind::Load,
        })
        .collect();
    let outcomes = cache.run_trace(&trace);
    let prompt = format!(
        "A 2-way set-associative cache has 2 sets, 16-byte blocks, LRU.\n\
         Trace these loads, showing evictions: {:?}",
        trace.iter().map(|e| e.addr).collect::<Vec<_>>()
    );
    Problem {
        set: "Set associative caching",
        prompt,
        solution: trace_table(&outcomes),
    }
}

/// HW "Virtual memory 1": a single process's accesses through a page
/// table (page faults, LRU evictions, final table).
pub fn vm_trace(seed: u64) -> Problem {
    use vmem::replace::PagePolicy;
    use vmem::sim::{VmConfig, VmSystem};
    use vmem::AccessKind;
    let mut rng = StdRng::seed_from_u64(seed);
    let mut vm = VmSystem::new(VmConfig {
        page_size: 256,
        num_frames: 3,
        pages_per_process: 8,
        policy: PagePolicy::Lru,
        local_replacement: false,
    });
    let pid = vm.spawn();
    let accesses: Vec<(u64, AccessKind)> = (0..8)
        .map(|_| {
            let vaddr = rng.gen_range(0..6u64) * 256 + rng.gen_range(0..256u64);
            let kind = if rng.gen_bool(0.25) {
                AccessKind::Store
            } else {
                AccessKind::Load
            };
            (vaddr, kind)
        })
        .collect();
    let mut solution = String::new();
    for (vaddr, kind) in &accesses {
        let t = vm.access(pid, *vaddr, *kind).expect("valid trace");
        solution.push_str(&format!(
            "{kind:?} {vaddr:#05x}: vpn {} -> paddr {:#05x}{}{}\n",
            t.vpn,
            t.paddr,
            if t.fault { " FAULT" } else { "" },
            match t.evicted {
                Some((_, v)) => format!(" (evicted vp{v})"),
                None => String::new(),
            }
        ));
    }
    solution.push_str(&vm.snapshot(pid).expect("live process"));
    let prompt = format!(
        "A system has 256-byte pages and 3 physical frames (LRU).\n\
         Trace these accesses, marking page faults and evictions, and\n\
         draw the final page table: {:?}",
        accesses
            .iter()
            .map(|(a, _)| format!("{a:#x}"))
            .collect::<Vec<_>>()
    );
    Problem {
        set: "Virtual memory 1",
        prompt,
        solution,
    }
}

/// HW "Processes": a fork puzzle — how many lines does this print?
pub fn fork_puzzle(seed: u64) -> Problem {
    use os::proc::{program, Op};
    let mut rng = StdRng::seed_from_u64(seed);
    let forks = rng.gen_range(1..=3u32);
    let mut ops = Vec::new();
    for _ in 0..forks {
        ops.push(Op::Fork);
    }
    ops.push(Op::Print("hello".into()));
    ops.push(Op::Exit(0));
    let mut k = os::Kernel::new(2);
    k.register_program("puzzle", program(ops));
    k.spawn("puzzle").expect("registered");
    assert!(k.run_until_idle(10_000));
    let printed = k.output().len();
    let prompt = format!(
        "A program calls fork() {forks} time(s) in a row, then prints\n\
         \"hello\" once and exits. How many lines are printed in total?"
    );
    let solution = format!(
        "2^{forks} = {printed} lines (each fork doubles the set of processes\n\
         that will reach the print; verified by the kernel simulator)"
    );
    Problem {
        set: "Processes",
        prompt,
        solution,
    }
}

/// HW "Threads": producer/consumer sizing — where is synchronization
/// required?
pub fn threads_producer_consumer(seed: u64) -> Problem {
    let mut rng = StdRng::seed_from_u64(seed);
    let producers = rng.gen_range(1..=3usize);
    let consumers = rng.gen_range(1..=3usize);
    let cap = 1usize << rng.gen_range(0..4u32);
    let r = parallel::bounded::run_producer_consumer(producers, consumers, cap, 200);
    let prompt = format!(
        "{producers} producer(s) and {consumers} consumer(s) share a bounded\n\
         buffer of capacity {cap}. Identify every point that requires\n\
         synchronization and the condition each waits on."
    );
    let solution = format!(
        "put() must wait while full (condition: not_full), take() while empty\n\
         (condition: not_empty); both protect the queue with one mutex.\n\
         Simulator run: {} items moved, exactly-once = {} (throughput is a\n\
         hardware artifact; correctness is the point).",
        r.items, r.exactly_once
    );
    Problem {
        set: "Threads",
        prompt,
        solution,
    }
}

/// A named homework generator.
pub type Generator = (&'static str, fn(u64) -> Problem);

/// All homework generators, in the §III-B assignment order that each
/// represents.
pub fn generators() -> Vec<Generator> {
    vec![
        ("binary_arithmetic", binary_arithmetic as fn(u64) -> Problem),
        ("circuit_table", circuit_table),
        ("assembly_trace", assembly_trace),
        ("direct_mapped_trace", direct_mapped_trace),
        ("set_associative_trace", set_associative_trace),
        ("vm_trace", vm_trace),
        ("fork_puzzle", fork_puzzle),
        ("threads_producer_consumer", threads_producer_consumer),
    ]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_per_seed() {
        for (name, g) in generators() {
            assert_eq!(g(7), g(7), "{name} not deterministic");
            // Different seed should (almost surely) differ somewhere.
            let differs = generators().iter().any(|(_, g2)| g2(7) != g2(8));
            assert!(differs);
        }
    }

    #[test]
    fn binary_solution_is_consistent() {
        let p = binary_arithmetic(3);
        assert!(p.prompt.contains("8-bit"));
        assert!(p.solution.contains("0b"));
        assert!(p.solution.contains("0x"));
    }

    #[test]
    fn circuit_table_has_eight_rows() {
        let p = circuit_table(4);
        assert_eq!(p.solution.lines().count(), 9, "{}", p.solution);
        assert!(p.prompt.contains("truth table"));
    }

    #[test]
    fn assembly_trace_solution_computed() {
        let p = assembly_trace(4);
        assert!(p.solution.contains("%eax ="), "{}", p.solution);
        assert!(p.solution.contains("zf") || p.solution.contains("ZF"));
    }

    #[test]
    fn cache_traces_render_tables() {
        let p = direct_mapped_trace(5);
        assert!(p.solution.contains("h/m"));
        assert!(p.prompt.contains("tag[31:"));
        let p2 = set_associative_trace(5);
        assert!(p2.solution.lines().count() >= 11);
    }

    #[test]
    fn vm_trace_shows_faults_and_table() {
        let p = vm_trace(9);
        assert!(
            p.solution.contains("FAULT"),
            "first touches fault:\n{}",
            p.solution
        );
        assert!(p.solution.contains("page table"));
    }

    #[test]
    fn fork_puzzle_counts_are_powers_of_two() {
        for seed in 0..10 {
            let p = fork_puzzle(seed);
            assert!(
                p.solution.contains("2 lines")
                    || p.solution.contains("4 lines")
                    || p.solution.contains("8 lines"),
                "{}",
                p.solution
            );
        }
    }

    #[test]
    fn producer_consumer_exactly_once() {
        let p = threads_producer_consumer(1);
        assert!(p.solution.contains("exactly-once = true"), "{}", p.solution);
    }
}
