//! The course design of §II–§III: themes, schedule, and structure.

/// The three curricular themes of §II.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CourseTheme {
    /// "How a computer runs a program": the vertical slice from C through
    /// binary, circuits, the CPU, and the OS.
    HowAProgramRuns,
    /// "Evaluating systems costs associated with running a program":
    /// memory hierarchy, scheduling, synchronization overheads.
    SystemsCosts,
    /// "Taking advantage of the power of parallel computing": shared
    /// memory parallelism, thinking in parallel.
    ParallelComputing,
}

/// All three themes with their paper descriptions.
pub fn themes() -> Vec<(CourseTheme, &'static str)> {
    vec![
        (
            CourseTheme::HowAProgramRuns,
            "a vertical slice through the computer: how high-level C is compiled to binary \
             instructions executed on CPU circuitry, and the OS's role in running programs",
        ),
        (
            CourseTheme::SystemsCosts,
            "the performance effects of the memory hierarchy, OS scheduling for efficiency, \
             and synchronization and parallelization overheads",
        ),
        (
            CourseTheme::ParallelComputing,
            "shared memory parallelism on multicore: race conditions, synchronization, \
             deadlock, speed-up, producer-consumer, and pthreads programming",
        ),
    ]
}

/// A week of the typical schedule (§III-A order).
#[derive(Debug, Clone)]
pub struct Week {
    /// Week number, 1-based.
    pub number: u32,
    /// Module title.
    pub module: &'static str,
    /// Which theme it mainly serves.
    pub theme: CourseTheme,
    /// The workspace crate exercised.
    pub crate_name: &'static str,
    /// Lab due around this week (by lab number), if any.
    pub lab: Option<u32>,
}

/// The typical 14-week schedule: "CS 31 starts with binary data
/// representation and then introduces C programming. Next, we introduce
/// computer architecture and assembly. We then provide an overview of the
/// memory hierarchy and the operating system. Finally, we cover shared
/// memory parallelism, pthreads, and synchronization primitives."
pub fn week_schedule() -> Vec<Week> {
    use CourseTheme::*;
    vec![
        Week {
            number: 1,
            module: "intro + tools; binary data representation",
            theme: HowAProgramRuns,
            crate_name: "bits",
            lab: Some(0),
        },
        Week {
            number: 2,
            module: "binary arithmetic; C programming basics",
            theme: HowAProgramRuns,
            crate_name: "bits",
            lab: Some(1),
        },
        Week {
            number: 3,
            module: "C functions, arrays, strings, I/O",
            theme: HowAProgramRuns,
            crate_name: "cstring",
            lab: Some(2),
        },
        Week {
            number: 4,
            module: "logic gates and circuits",
            theme: HowAProgramRuns,
            crate_name: "circuits",
            lab: None,
        },
        Week {
            number: 5,
            module: "ALU, register file, a simple CPU; pipelining",
            theme: HowAProgramRuns,
            crate_name: "circuits",
            lab: Some(3),
        },
        Week {
            number: 6,
            module: "program memory, pointers, dynamic allocation",
            theme: HowAProgramRuns,
            crate_name: "cheap",
            lab: Some(4),
        },
        Week {
            number: 7,
            module: "IA-32 assembly: arithmetic, control flow",
            theme: HowAProgramRuns,
            crate_name: "asm",
            lab: None,
        },
        Week {
            number: 8,
            module: "assembly: function call/return, the stack",
            theme: HowAProgramRuns,
            crate_name: "asm",
            lab: Some(5),
        },
        Week {
            number: 9,
            module: "storage devices and the memory hierarchy",
            theme: SystemsCosts,
            crate_name: "memsim",
            lab: Some(6),
        },
        Week {
            number: 10,
            module: "caching: direct-mapped and set-associative",
            theme: SystemsCosts,
            crate_name: "memsim",
            lab: Some(7),
        },
        Week {
            number: 11,
            module: "the OS: processes, fork/exec/wait, signals",
            theme: HowAProgramRuns,
            crate_name: "os",
            lab: Some(8),
        },
        Week {
            number: 12,
            module: "virtual memory: page tables, TLB",
            theme: SystemsCosts,
            crate_name: "vmem",
            lab: Some(9),
        },
        Week {
            number: 13,
            module: "threads, races, synchronization primitives",
            theme: ParallelComputing,
            crate_name: "parallel",
            lab: None,
        },
        Week {
            number: 14,
            module: "parallel performance; producer/consumer",
            theme: ParallelComputing,
            crate_name: "life",
            lab: Some(10),
        },
    ]
}

/// Course structure facts (§II "Course Structure").
#[derive(Debug, Clone)]
pub struct CourseStructure {
    /// Graded weekly components.
    pub weekly_lab_minutes: u32,
    /// Count of course exams.
    pub exams: u32,
    /// Peer-instruction clicker rounds per class: individual then group.
    pub clicker_rounds: u32,
    /// Minutes of small-group discussion between clicker rounds.
    pub discussion_minutes: u32,
}

/// The paper's stated structure.
pub fn structure() -> CourseStructure {
    CourseStructure {
        weekly_lab_minutes: 90,
        exams: 2,
        clicker_rounds: 2,
        discussion_minutes: 3,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn schedule_has_14_ordered_weeks() {
        let s = week_schedule();
        assert_eq!(s.len(), 14);
        for (i, w) in s.iter().enumerate() {
            assert_eq!(w.number as usize, i + 1);
        }
    }

    #[test]
    fn parallelism_comes_last_binary_first() {
        // The paper's pedagogical ordering claim: parallelism "follows
        // naturally" at the end; binary representation opens.
        let s = week_schedule();
        assert!(s[0].module.contains("binary"));
        assert_eq!(s.last().unwrap().theme, CourseTheme::ParallelComputing);
        let first_parallel = s
            .iter()
            .position(|w| w.theme == CourseTheme::ParallelComputing)
            .unwrap();
        assert!(first_parallel >= 12, "parallelism is the final module");
    }

    #[test]
    fn all_eleven_labs_scheduled() {
        let s = week_schedule();
        let mut labs: Vec<u32> = s.iter().filter_map(|w| w.lab).collect();
        labs.sort_unstable();
        assert_eq!(labs, vec![0, 1, 2, 3, 4, 5, 6, 7, 8, 9, 10]);
    }

    #[test]
    fn all_themes_represented() {
        let s = week_schedule();
        for (theme, _) in themes() {
            assert!(s.iter().any(|w| w.theme == theme), "{theme:?} uncovered");
        }
    }

    #[test]
    fn structure_matches_paper() {
        let st = structure();
        assert_eq!(st.weekly_lab_minutes, 90);
        assert_eq!(st.exams, 2);
        assert_eq!(st.clicker_rounds, 2);
        assert!(st.discussion_minutes >= 2 && st.discussion_minutes <= 3);
    }
}
