//! Study-group assignment (§III-B *Written Homeworks*): "Assigning all
//! students to small study groups was designed to foster more group
//! interaction … their being assigned and required ensured that every
//! student had at least one small group with which to collaborate."
//!
//! A seeded partitioner with the properties the paper's deployment
//! needed: every student in exactly one group, group sizes within the
//! target band (3–4 by default), deterministic per (roster, seed) so a
//! semester's groups are stable, and reshuffleable by seed for the next
//! homework cycle.

use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::SeedableRng;

/// A group assignment: groups of student indices into the roster.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct GroupAssignment {
    /// Groups, each a list of roster indices.
    pub groups: Vec<Vec<usize>>,
}

/// Errors from group formation.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum GroupError {
    /// Fewer students than one minimal group.
    TooFewStudents {
        /// Students available.
        students: usize,
        /// Minimum group size requested.
        min_size: usize,
    },
    /// Impossible size band (min 0 or min > max).
    BadSizeBand,
}

impl std::fmt::Display for GroupError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            GroupError::TooFewStudents { students, min_size } => {
                write!(f, "{students} student(s) cannot form a group of {min_size}")
            }
            GroupError::BadSizeBand => write!(f, "invalid group size band"),
        }
    }
}

impl std::error::Error for GroupError {}

/// Partitions `n_students` into groups of `min_size..=max_size`,
/// shuffled by `seed`.
///
/// Strategy: as many `min_size` groups as possible, then distribute the
/// remainder one-per-group (so sizes never exceed `min_size + 1`; with
/// the default 3..=4 band that is exactly the paper's 3-or-4 shape).
pub fn assign_groups(
    n_students: usize,
    min_size: usize,
    max_size: usize,
    seed: u64,
) -> Result<GroupAssignment, GroupError> {
    if min_size == 0 || min_size > max_size {
        return Err(GroupError::BadSizeBand);
    }
    if n_students < min_size {
        return Err(GroupError::TooFewStudents {
            students: n_students,
            min_size,
        });
    }
    let mut order: Vec<usize> = (0..n_students).collect();
    let mut rng = StdRng::seed_from_u64(seed);
    order.shuffle(&mut rng);

    let n_groups = n_students / min_size;
    let remainder = n_students % min_size;
    // The remainder spreads one student to each of the first `remainder`
    // groups; that requires remainder <= n_groups * (max_size - min_size).
    if remainder > n_groups * (max_size - min_size) {
        return Err(GroupError::TooFewStudents {
            students: n_students,
            min_size,
        });
    }

    let mut groups: Vec<Vec<usize>> = vec![Vec::with_capacity(max_size); n_groups];
    let mut it = order.into_iter();
    for g in groups.iter_mut() {
        for _ in 0..min_size {
            g.push(it.next().expect("counted"));
        }
    }
    // Distribute the remainder round-robin within the max bound.
    let mut gi = 0;
    for s in it {
        while groups[gi].len() >= max_size {
            gi = (gi + 1) % groups.len();
        }
        groups[gi].push(s);
        gi = (gi + 1) % groups.len();
    }
    Ok(GroupAssignment { groups })
}

impl GroupAssignment {
    /// Which group a student is in.
    pub fn group_of(&self, student: usize) -> Option<usize> {
        self.groups.iter().position(|g| g.contains(&student))
    }

    /// True if `a` and `b` share a group.
    pub fn together(&self, a: usize, b: usize) -> bool {
        self.group_of(a).is_some() && self.group_of(a) == self.group_of(b)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn sixty_students_in_threes_and_fours() {
        // The course's scale: ~60 students per semester.
        let a = assign_groups(60, 3, 4, 2022).unwrap();
        assert_eq!(a.groups.len(), 20);
        assert!(a.groups.iter().all(|g| g.len() == 3));
        let a = assign_groups(62, 3, 4, 2022).unwrap();
        assert!(a.groups.iter().all(|g| (3..=4).contains(&g.len())));
        let total: usize = a.groups.iter().map(Vec::len).sum();
        assert_eq!(total, 62);
    }

    #[test]
    fn deterministic_and_reshuffleable() {
        let a = assign_groups(30, 3, 4, 1).unwrap();
        let b = assign_groups(30, 3, 4, 1).unwrap();
        assert_eq!(a, b);
        let c = assign_groups(30, 3, 4, 2).unwrap();
        assert_ne!(a, c, "new seed, new groups");
    }

    #[test]
    fn membership_queries() {
        let a = assign_groups(12, 3, 4, 7).unwrap();
        for s in 0..12 {
            assert!(a.group_of(s).is_some(), "student {s} homeless");
        }
        let g0 = &a.groups[0];
        assert!(a.together(g0[0], g0[1]));
    }

    #[test]
    fn errors() {
        assert!(matches!(
            assign_groups(2, 3, 4, 0),
            Err(GroupError::TooFewStudents { .. })
        ));
        assert_eq!(assign_groups(10, 0, 4, 0), Err(GroupError::BadSizeBand));
        assert_eq!(assign_groups(10, 5, 4, 0), Err(GroupError::BadSizeBand));
        // 7 students, groups of exactly 3 (max=3): remainder 1 undistributable.
        assert!(assign_groups(7, 3, 3, 0).is_err());
    }

    proptest! {
        #[test]
        fn prop_partition_is_exact_when_feasible(n in 3usize..200, seed in any::<u64>()) {
            // n is partitionable into 3s and 4s iff some k satisfies
            // 3k <= n <= 4k, i.e. ceil(n/4) <= floor(n/3). (Only n=5 fails
            // in this range besides tiny n.)
            let feasible = n.div_ceil(4) <= n / 3;
            match assign_groups(n, 3, 4, seed) {
                Ok(a) => {
                    prop_assert!(feasible, "n={n} should be infeasible");
                    let mut all: Vec<usize> = a.groups.iter().flatten().copied().collect();
                    all.sort_unstable();
                    let expect: Vec<usize> = (0..n).collect();
                    prop_assert_eq!(all, expect, "every student exactly once");
                    prop_assert!(a.groups.iter().all(|g| (3..=4).contains(&g.len())));
                }
                Err(_) => prop_assert!(!feasible, "n={n} should be feasible"),
            }
        }
    }
}
