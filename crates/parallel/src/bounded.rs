//! The producer/consumer bounded buffer — the course's capstone
//! synchronization problem ("We finish the module with the
//! producer/consumer (bounded buffer) problem", §III-A) and experiment
//! **E7**.
//!
//! Built exactly as lecture derives it: one mutex, two condition
//! variables (`not_full`, `not_empty`), wait loops over predicates.

use std::collections::VecDeque;
use std::sync::{Condvar, Mutex};

/// A blocking FIFO of bounded capacity with close semantics.
#[derive(Debug)]
pub struct BoundedBuffer<T> {
    state: Mutex<State<T>>,
    not_full: Condvar,
    not_empty: Condvar,
    capacity: usize,
}

#[derive(Debug)]
struct State<T> {
    queue: VecDeque<T>,
    closed: bool,
}

impl<T> BoundedBuffer<T> {
    /// A buffer holding at most `capacity` items.
    ///
    /// # Panics
    /// If `capacity == 0`.
    pub fn new(capacity: usize) -> BoundedBuffer<T> {
        assert!(capacity > 0, "bounded buffer needs capacity >= 1");
        BoundedBuffer {
            state: Mutex::new(State {
                queue: VecDeque::with_capacity(capacity),
                closed: false,
            }),
            not_full: Condvar::new(),
            not_empty: Condvar::new(),
            capacity,
        }
    }

    /// Capacity.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Inserts, blocking while full. Returns `Err(item)` if closed.
    pub fn put(&self, item: T) -> Result<(), T> {
        let mut st = self.state.lock().expect("buffer mutex poisoned");
        while st.queue.len() == self.capacity && !st.closed {
            st = self.not_full.wait(st).expect("buffer mutex poisoned");
        }
        if st.closed {
            return Err(item);
        }
        st.queue.push_back(item);
        self.not_empty.notify_one();
        Ok(())
    }

    /// Removes, blocking while empty. Returns `None` once closed **and**
    /// drained — the graceful-shutdown contract.
    pub fn take(&self) -> Option<T> {
        let mut st = self.state.lock().expect("buffer mutex poisoned");
        while st.queue.is_empty() && !st.closed {
            st = self.not_empty.wait(st).expect("buffer mutex poisoned");
        }
        match st.queue.pop_front() {
            Some(item) => {
                self.not_full.notify_one();
                Some(item)
            }
            None => None, // closed and drained
        }
    }

    /// Closes the buffer: producers fail fast, consumers drain then stop.
    pub fn close(&self) {
        let mut st = self.state.lock().expect("buffer mutex poisoned");
        st.closed = true;
        self.not_full.notify_all();
        self.not_empty.notify_all();
    }

    /// Items currently queued (teaching snapshot).
    pub fn len(&self) -> usize {
        self.state
            .lock()
            .expect("buffer mutex poisoned")
            .queue
            .len()
    }

    /// True if currently empty.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

/// Result of a producer/consumer run (the E7 measurement).
#[derive(Debug, Clone, PartialEq)]
pub struct ProdConsReport {
    /// Items transferred end to end.
    pub items: u64,
    /// Producers × consumers.
    pub producers: usize,
    /// Consumer thread count.
    pub consumers: usize,
    /// Buffer capacity used.
    pub capacity: usize,
    /// Wall-clock seconds for the run.
    pub seconds: f64,
    /// Items per second.
    pub throughput: f64,
    /// Each item was consumed exactly once (checksum verified).
    pub exactly_once: bool,
}

/// Runs `producers` × `consumers` threads moving `items_per_producer`
/// items each through a buffer of `capacity`, verifying exactly-once
/// delivery and measuring throughput.
pub fn run_producer_consumer(
    producers: usize,
    consumers: usize,
    capacity: usize,
    items_per_producer: u64,
) -> ProdConsReport {
    use std::sync::atomic::{AtomicU64, Ordering};

    let buffer = BoundedBuffer::<u64>::new(capacity);
    let consumed_sum = AtomicU64::new(0);
    let consumed_count = AtomicU64::new(0);
    let start = std::time::Instant::now();

    std::thread::scope(|s| {
        for p in 0..producers {
            let buffer = &buffer;
            s.spawn(move || {
                for i in 0..items_per_producer {
                    let token = (p as u64) * items_per_producer + i;
                    buffer.put(token).expect("buffer closed early");
                }
            });
        }
        for _ in 0..consumers {
            let buffer = &buffer;
            let consumed_sum = &consumed_sum;
            let consumed_count = &consumed_count;
            s.spawn(move || {
                while let Some(v) = buffer.take() {
                    consumed_sum.fetch_add(v, Ordering::Relaxed);
                    consumed_count.fetch_add(1, Ordering::Relaxed);
                }
            });
        }
        // Close once all producers finish: a dedicated coordinator pattern
        // isn't needed because scope ordering gives us join points — but
        // producers are inside the scope, so spawn a closer that waits on
        // the count.
        let buffer = &buffer;
        let consumed_count = &consumed_count;
        let total = producers as u64 * items_per_producer;
        s.spawn(move || {
            // Wait until everything produced has been consumed, then close
            // so consumers exit. Polling keeps this free of extra joins.
            while consumed_count.load(Ordering::Relaxed) < total {
                std::thread::yield_now();
            }
            buffer.close();
        });
    });

    let seconds = start.elapsed().as_secs_f64();
    let items = producers as u64 * items_per_producer;
    // Sum of 0..items-1 when tokens are a permutation of that range.
    let expect_sum = if items == 0 {
        0
    } else {
        items * (items - 1) / 2
    };
    ProdConsReport {
        items,
        producers,
        consumers,
        capacity,
        seconds,
        throughput: if seconds > 0.0 {
            items as f64 / seconds
        } else {
            0.0
        },
        exactly_once: consumed_sum.load(std::sync::atomic::Ordering::Relaxed) == expect_sum
            && consumed_count.load(std::sync::atomic::Ordering::Relaxed) == items,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::thread;

    #[test]
    fn fifo_order_single_threaded() {
        let b = BoundedBuffer::new(4);
        b.put(1).unwrap();
        b.put(2).unwrap();
        b.put(3).unwrap();
        assert_eq!(b.len(), 3);
        assert_eq!(b.take(), Some(1));
        assert_eq!(b.take(), Some(2));
        assert_eq!(b.take(), Some(3));
        assert!(b.is_empty());
    }

    #[test]
    fn put_blocks_when_full() {
        let b = BoundedBuffer::new(1);
        b.put(10).unwrap();
        let unblocked = std::sync::atomic::AtomicBool::new(false);
        thread::scope(|s| {
            s.spawn(|| {
                b.put(20).unwrap(); // blocks until the take below
                unblocked.store(true, std::sync::atomic::Ordering::SeqCst);
            });
            thread::sleep(std::time::Duration::from_millis(20));
            assert!(!unblocked.load(std::sync::atomic::Ordering::SeqCst));
            assert_eq!(b.take(), Some(10));
        });
        assert!(unblocked.load(std::sync::atomic::Ordering::SeqCst));
        assert_eq!(b.take(), Some(20));
    }

    #[test]
    fn take_blocks_when_empty() {
        let b = BoundedBuffer::new(1);
        thread::scope(|s| {
            let h = s.spawn(|| b.take());
            thread::sleep(std::time::Duration::from_millis(10));
            b.put(7).unwrap();
            assert_eq!(h.join().unwrap(), Some(7));
        });
    }

    #[test]
    fn close_semantics() {
        let b = BoundedBuffer::new(2);
        b.put(1).unwrap();
        b.close();
        assert_eq!(b.put(2), Err(2), "closed rejects producers");
        assert_eq!(b.take(), Some(1), "drains remaining items");
        assert_eq!(b.take(), None, "then reports end");
    }

    #[test]
    fn close_wakes_blocked_consumer() {
        let b = BoundedBuffer::<i32>::new(1);
        thread::scope(|s| {
            let h = s.spawn(|| b.take());
            thread::sleep(std::time::Duration::from_millis(10));
            b.close();
            assert_eq!(h.join().unwrap(), None);
        });
    }

    #[test]
    fn exactly_once_all_configurations() {
        for (p, c) in [(1, 1), (2, 1), (1, 2), (4, 4)] {
            let r = run_producer_consumer(p, c, 4, 500);
            assert!(r.exactly_once, "{p}x{c} lost or duplicated items");
            assert_eq!(r.items, p as u64 * 500);
        }
    }

    #[test]
    fn tiny_buffer_still_correct() {
        // Capacity 1 forces maximal blocking — the classic starvation trap.
        let r = run_producer_consumer(3, 3, 1, 300);
        assert!(r.exactly_once);
    }

    #[test]
    #[should_panic(expected = "capacity >= 1")]
    fn zero_capacity_rejected() {
        let _ = BoundedBuffer::<u8>::new(0);
    }
}
