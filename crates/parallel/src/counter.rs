//! The shared-counter data race — experiment **E8**.
//!
//! "We use some small examples, such as access to a shared counter, to
//! introduce data races, critical sections, and atomic operations"
//! (§III-A). In C the racy version is undefined behaviour; here the same
//! *logical* race is staged memory-safely: each thread performs a
//! non-atomic read-modify-write (relaxed load → add → relaxed store), so
//! increments interleave and get lost exactly as in the classroom demo,
//! while the program remains well-defined Rust. The fixes are the real
//! ones: `fetch_add` (atomic RMW) and a mutex-guarded critical section.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Mutex;
use std::thread;

/// Which increment strategy a run used.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CounterKind {
    /// load-then-store: the lost-update anomaly.
    Racy,
    /// `fetch_add`: one atomic read-modify-write.
    Atomic,
    /// Mutex-protected critical section.
    Mutexed,
}

/// Result of one counter experiment run.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CounterReport {
    /// Strategy used.
    pub kind: CounterKind,
    /// Threads that incremented.
    pub threads: usize,
    /// Increments attempted per thread.
    pub per_thread: u64,
    /// Final counter value observed.
    pub observed: u64,
    /// `threads * per_thread`.
    pub expected: u64,
    /// Updates lost to the race.
    pub lost: u64,
    /// Wall-clock seconds.
    pub seconds: f64,
}

/// Runs the racy (load-then-store) counter.
///
/// The load–store window is widened with an occasional `yield_now`, the
/// way the lecture demo inserts a `printf` "to make the race reliable":
/// on any host — even a single hardware thread — a peer can then run
/// between the read and the write and its increments get overwritten.
pub fn run_racy(threads: usize, per_thread: u64) -> CounterReport {
    let counter = AtomicU64::new(0);
    let start = std::time::Instant::now();
    thread::scope(|s| {
        for _ in 0..threads {
            s.spawn(|| {
                for i in 0..per_thread {
                    // NOT an atomic increment: two independent atomic ops
                    // with a gap a peer can write into — the lost update.
                    let v = counter.load(Ordering::Relaxed);
                    if i % 97 == 0 {
                        thread::yield_now();
                    }
                    counter.store(v + 1, Ordering::Relaxed);
                }
            });
        }
    });
    report(
        CounterKind::Racy,
        threads,
        per_thread,
        counter.into_inner(),
        start,
    )
}

/// A deterministic lost-update demonstration: two logical "threads"
/// increment once each, but thread B's entire increment lands inside
/// thread A's load→store window (forced with semaphore handshakes).
/// The result is 1, not 2 — always.
pub fn deterministic_lost_update() -> u64 {
    use crate::semaphore::Semaphore;
    let counter = AtomicU64::new(0);
    let a_loaded = Semaphore::new(0);
    let b_stored = Semaphore::new(0);
    thread::scope(|s| {
        // Thread A: load, let B run a whole increment, then store.
        s.spawn(|| {
            let v = counter.load(Ordering::Relaxed);
            a_loaded.release();
            b_stored.acquire();
            counter.store(v + 1, Ordering::Relaxed);
        });
        // Thread B: a full increment inside A's window.
        s.spawn(|| {
            a_loaded.acquire();
            let v = counter.load(Ordering::Relaxed);
            counter.store(v + 1, Ordering::Relaxed);
            b_stored.release();
        });
    });
    counter.into_inner()
}

/// Runs the atomic `fetch_add` counter.
pub fn run_atomic(threads: usize, per_thread: u64) -> CounterReport {
    let counter = AtomicU64::new(0);
    let start = std::time::Instant::now();
    thread::scope(|s| {
        for _ in 0..threads {
            s.spawn(|| {
                for _ in 0..per_thread {
                    counter.fetch_add(1, Ordering::Relaxed);
                }
            });
        }
    });
    report(
        CounterKind::Atomic,
        threads,
        per_thread,
        counter.into_inner(),
        start,
    )
}

/// Runs the mutex-guarded counter.
pub fn run_mutexed(threads: usize, per_thread: u64) -> CounterReport {
    let counter = Mutex::new(0u64);
    let start = std::time::Instant::now();
    thread::scope(|s| {
        for _ in 0..threads {
            s.spawn(|| {
                for _ in 0..per_thread {
                    *counter.lock().expect("counter mutex poisoned") += 1;
                }
            });
        }
    });
    let observed = counter.into_inner().expect("counter mutex poisoned");
    report(CounterKind::Mutexed, threads, per_thread, observed, start)
}

fn report(
    kind: CounterKind,
    threads: usize,
    per_thread: u64,
    observed: u64,
    start: std::time::Instant,
) -> CounterReport {
    let expected = threads as u64 * per_thread;
    CounterReport {
        kind,
        threads,
        per_thread,
        observed,
        expected,
        lost: expected.saturating_sub(observed),
        seconds: start.elapsed().as_secs_f64(),
    }
}

/// The full E8 comparison at one configuration.
pub fn compare(threads: usize, per_thread: u64) -> [CounterReport; 3] {
    [
        run_racy(threads, per_thread),
        run_atomic(threads, per_thread),
        run_mutexed(threads, per_thread),
    ]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn atomic_never_loses() {
        let r = run_atomic(4, 10_000);
        assert_eq!(r.observed, r.expected);
        assert_eq!(r.lost, 0);
    }

    #[test]
    fn mutex_never_loses() {
        let r = run_mutexed(4, 10_000);
        assert_eq!(r.observed, r.expected);
    }

    #[test]
    fn racy_never_exceeds_and_single_thread_exact() {
        let r = run_racy(4, 10_000);
        assert!(r.observed <= r.expected, "can only lose, not invent");
        let r1 = run_racy(1, 10_000);
        assert_eq!(r1.observed, r1.expected, "one thread cannot race itself");
    }

    // NOTE: we deliberately do NOT assert that the statistical racy run
    // *loses* updates — scheduling can get lucky. The deterministic demo
    // below pins the anomaly without flakiness.

    #[test]
    fn lost_update_is_deterministic_with_forced_interleaving() {
        for _ in 0..10 {
            assert_eq!(
                deterministic_lost_update(),
                1,
                "two increments, one survives"
            );
        }
    }

    #[test]
    fn compare_produces_all_three() {
        let rs = compare(2, 1000);
        assert_eq!(rs[0].kind, CounterKind::Racy);
        assert_eq!(rs[1].kind, CounterKind::Atomic);
        assert_eq!(rs[2].kind, CounterKind::Mutexed);
        assert!(rs.iter().all(|r| r.expected == 2000));
    }
}
