//! # parallel — the shared-memory parallelism runtime
//!
//! The paper's third theme: "taking advantage of the power of parallel
//! computing … race conditions, synchronization, deadlock, speed-up, the
//! producer-consumer problem, and designing and implementing parallel
//! programs in pthreads" (§II). This crate is the pthreads module of the
//! course rebuilt in Rust, with every primitive implemented from `std`
//! parts (per *Rust Atomics and Locks*) rather than imported:
//!
//! * [`barrier`] — a Condvar barrier with generation counts, plus a
//!   sense-reversing spin barrier — the synchronization Lab 10 requires;
//! * [`semaphore`] — a counting semaphore from `Mutex` + `Condvar`;
//! * [`bounded`] — the producer/consumer bounded buffer (experiment
//!   **E7**), the course's culminating synchronization exercise;
//! * [`deadlock`] — the dining-philosophers structure under both lock
//!   disciplines, plus a wait-for-graph cycle detector ("the potential
//!   for deadlock", §III-A);
//! * [`counter`] — the shared-counter data-race demonstration
//!   (experiment **E8**): a *memory-safe* lost-update anomaly via
//!   non-atomic read-modify-write over relaxed atomics, against
//!   `fetch_add` and mutex versions;
//! * [`laws`] — speedup, efficiency, Amdahl, Gustafson (experiment **E6**);
//! * [`par`] — data-parallel `par_for`/`par_map`/`par_reduce` over scoped
//!   threads with static and dynamic (work-stealing-lite) chunking;
//! * [`machine`] — the deterministic multicore **machine model** used to
//!   reproduce the paper's speedup claims on any host (this container has
//!   one CPU; see DESIGN.md §2 for why the model preserves the paper's
//!   measured shapes).
//!
//! ```
//! // Amdahl's law: 5% serial caps speedup at 20x.
//! let s = parallel::laws::amdahl(0.05, 1_000_000);
//! assert!(s < 20.0 && s > 19.0);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod barrier;
pub mod bounded;
pub mod counter;
pub mod deadlock;
pub mod laws;
pub mod machine;
pub mod par;
pub mod rwlock;
pub mod semaphore;

pub use barrier::{Barrier, SpinBarrier};
pub use bounded::BoundedBuffer;
pub use rwlock::RwLock;
pub use semaphore::Semaphore;
