//! A counting semaphore from `Mutex` + `Condvar` — the primitive the
//! producer/consumer discussion derives before showing the bounded buffer.

use std::sync::{Condvar, Mutex};

/// A counting semaphore.
#[derive(Debug)]
pub struct Semaphore {
    permits: Mutex<usize>,
    cvar: Condvar,
}

impl Semaphore {
    /// A semaphore with `initial` permits.
    pub fn new(initial: usize) -> Semaphore {
        Semaphore {
            permits: Mutex::new(initial),
            cvar: Condvar::new(),
        }
    }

    /// P / `sem_wait`: blocks until a permit is available, then takes it.
    pub fn acquire(&self) {
        let mut p = self.permits.lock().expect("semaphore mutex poisoned");
        while *p == 0 {
            p = self.cvar.wait(p).expect("semaphore mutex poisoned");
        }
        *p -= 1;
    }

    /// Non-blocking acquire; returns whether a permit was taken.
    pub fn try_acquire(&self) -> bool {
        let mut p = self.permits.lock().expect("semaphore mutex poisoned");
        if *p > 0 {
            *p -= 1;
            true
        } else {
            false
        }
    }

    /// V / `sem_post`: returns a permit and wakes one waiter.
    pub fn release(&self) {
        let mut p = self.permits.lock().expect("semaphore mutex poisoned");
        *p += 1;
        self.cvar.notify_one();
    }

    /// Current permit count (racy snapshot, for tests/teaching).
    pub fn available(&self) -> usize {
        *self.permits.lock().expect("semaphore mutex poisoned")
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicUsize, Ordering};
    use std::thread;

    #[test]
    fn counts_permits() {
        let s = Semaphore::new(2);
        assert!(s.try_acquire());
        assert!(s.try_acquire());
        assert!(!s.try_acquire());
        s.release();
        assert!(s.try_acquire());
        assert_eq!(s.available(), 0);
    }

    #[test]
    fn acquire_blocks_until_release() {
        let s = Semaphore::new(0);
        let progressed = AtomicUsize::new(0);
        thread::scope(|scope| {
            scope.spawn(|| {
                s.acquire();
                progressed.store(1, Ordering::SeqCst);
            });
            // Give the waiter time to block, then release.
            thread::sleep(std::time::Duration::from_millis(20));
            assert_eq!(progressed.load(Ordering::SeqCst), 0, "still blocked");
            s.release();
        });
        assert_eq!(progressed.load(Ordering::SeqCst), 1);
    }

    #[test]
    fn semaphore_as_mutex_protects_critical_section() {
        // A binary semaphore serializes increments: no lost updates.
        let s = Semaphore::new(1);
        let counter = std::cell::Cell::new(0u64);
        // Cell is !Sync; use a Mutex-free protected region via semaphore +
        // an atomic to verify mutual exclusion depth instead.
        let in_cs = AtomicUsize::new(0);
        let max_seen = AtomicUsize::new(0);
        let _ = counter;
        thread::scope(|scope| {
            for _ in 0..4 {
                scope.spawn(|| {
                    for _ in 0..200 {
                        s.acquire();
                        let d = in_cs.fetch_add(1, Ordering::SeqCst) + 1;
                        max_seen.fetch_max(d, Ordering::SeqCst);
                        in_cs.fetch_sub(1, Ordering::SeqCst);
                        s.release();
                    }
                });
            }
        });
        assert_eq!(max_seen.load(Ordering::SeqCst), 1, "mutual exclusion held");
    }

    #[test]
    fn rendezvous_with_two_semaphores() {
        // The classic two-thread rendezvous exercise.
        let a_done = Semaphore::new(0);
        let b_done = Semaphore::new(0);
        let log = Mutex::new(Vec::<&str>::new());
        thread::scope(|scope| {
            scope.spawn(|| {
                log.lock().unwrap().push("a1");
                a_done.release();
                b_done.acquire();
                log.lock().unwrap().push("a2");
            });
            scope.spawn(|| {
                log.lock().unwrap().push("b1");
                b_done.release();
                a_done.acquire();
                log.lock().unwrap().push("b2");
            });
        });
        let l = log.lock().unwrap();
        let pos = |s: &str| l.iter().position(|x| *x == s).unwrap();
        assert!(pos("a1") < pos("b2"), "b2 happens after a1");
        assert!(pos("b1") < pos("a2"), "a2 happens after b1");
    }
}
