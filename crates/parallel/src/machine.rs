//! The deterministic multicore machine model — the substrate behind
//! experiment **E1**'s speedup curves.
//!
//! The paper's Lab 10 has students "measure near linear speedup up to 16
//! threads on multicore machines". This container exposes **one** CPU, so
//! wall-clock speedup is physically capped; per the substitution rule
//! (DESIGN.md §2) we reproduce the *measured shape* with a discrete model
//! that executes the same program structure: per-thread work segments,
//! mutex-serialized critical sections, and barrier rounds on `P` cores,
//! with an optional memory-contention inflation.
//!
//! The model is deliberately simple enough to reason about in an intro
//! course: per barrier-delimited phase,
//!
//! ```text
//! phase_time = max( makespan(per-thread demand over cores),
//!                   Σ critical-section time )            + barrier_cost
//! ```
//!
//! where demand inflates by `1 + contention·(active_cores − 1)`. Near-
//! linear speedup, the saturation knee at `threads > cores`, and the
//! synchronization bend all fall out of those three terms.

/// One step of a simulated thread's execution.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Segment {
    /// Pure compute for this many work units.
    Work(u64),
    /// A critical section of this many units (serialized machine-wide).
    Critical(u64),
    /// A barrier crossing (all threads must line up on barrier counts).
    Barrier,
}

/// Machine parameters.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct MachineConfig {
    /// Number of cores.
    pub cores: usize,
    /// Cost charged per barrier crossing.
    pub barrier_cost: u64,
    /// Overhead per critical-section entry (lock acquire/release).
    pub lock_overhead: u64,
    /// Work inflation per additional active core (memory contention):
    /// effective work = work × (1 + contention × (active − 1)).
    pub contention: f64,
}

impl Default for MachineConfig {
    fn default() -> Self {
        MachineConfig {
            cores: 16,
            barrier_cost: 50,
            lock_overhead: 10,
            contention: 0.0,
        }
    }
}

/// Errors from malformed workloads.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum MachineModelError {
    /// Threads disagree on the number of barrier crossings.
    BarrierMismatch {
        /// Barrier count of thread 0.
        expected: usize,
        /// The offending thread index.
        thread: usize,
        /// Its barrier count.
        got: usize,
    },
    /// No threads supplied.
    Empty,
    /// Zero cores configured.
    NoCores,
}

impl std::fmt::Display for MachineModelError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            MachineModelError::BarrierMismatch {
                expected,
                thread,
                got,
            } => write!(
                f,
                "thread {thread} crosses {got} barriers; thread 0 crosses {expected}"
            ),
            MachineModelError::Empty => write!(f, "no threads in workload"),
            MachineModelError::NoCores => write!(f, "machine has no cores"),
        }
    }
}

impl std::error::Error for MachineModelError {}

/// Per-phase accounting.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PhaseReport {
    /// Makespan of compute demand over the cores.
    pub compute_time: f64,
    /// Total serialized critical time (the lock floor).
    pub critical_floor: f64,
    /// The phase's contribution to total time (incl. barrier cost).
    pub phase_time: f64,
}

/// The simulation result.
#[derive(Debug, Clone, PartialEq)]
pub struct MachineReport {
    /// Modeled parallel execution time.
    pub parallel_time: f64,
    /// Modeled one-thread serial time of the same total work
    /// (no barriers, no lock overhead, no contention).
    pub serial_time: f64,
    /// Threads simulated.
    pub threads: usize,
    /// Per-phase breakdown.
    pub phases: Vec<PhaseReport>,
}

impl MachineReport {
    /// Modeled speedup: serial time over parallel time.
    pub fn speedup(&self) -> f64 {
        self.serial_time / self.parallel_time
    }

    /// Modeled efficiency: speedup / threads.
    pub fn efficiency(&self) -> f64 {
        self.speedup() / self.threads as f64
    }
}

/// Longest-processing-time greedy makespan of `demands` over `cores`.
fn lpt_makespan(demands: &[f64], cores: usize) -> f64 {
    let mut sorted: Vec<f64> = demands.to_vec();
    sorted.sort_by(|a, b| b.partial_cmp(a).expect("finite demands"));
    let mut loads = vec![0.0f64; cores.min(demands.len()).max(1)];
    for d in sorted {
        let min = loads
            .iter_mut()
            .min_by(|a, b| a.partial_cmp(b).expect("finite loads"))
            .expect("nonempty loads");
        *min += d;
    }
    loads.into_iter().fold(0.0, f64::max)
}

/// Simulates a workload on the machine.
pub fn simulate(
    cfg: MachineConfig,
    threads: &[Vec<Segment>],
) -> Result<MachineReport, MachineModelError> {
    if cfg.cores == 0 {
        return Err(MachineModelError::NoCores);
    }
    if threads.is_empty() {
        return Err(MachineModelError::Empty);
    }

    // Split every thread's segments into barrier-delimited phases.
    let split = |segs: &[Segment]| -> Vec<(u64, u64, usize)> {
        // (work, critical_units, critical_entries) per phase
        let mut phases = vec![(0u64, 0u64, 0usize)];
        for s in segs {
            match s {
                Segment::Work(w) => phases.last_mut().expect("nonempty").0 += w,
                Segment::Critical(c) => {
                    let last = phases.last_mut().expect("nonempty");
                    last.1 += c;
                    last.2 += 1;
                }
                Segment::Barrier => phases.push((0, 0, 0)),
            }
        }
        phases
    };

    let per_thread: Vec<Vec<(u64, u64, usize)>> = threads.iter().map(|t| split(t)).collect();
    let nphases = per_thread[0].len();
    for (i, t) in per_thread.iter().enumerate() {
        if t.len() != nphases {
            return Err(MachineModelError::BarrierMismatch {
                expected: nphases - 1,
                thread: i,
                got: t.len() - 1,
            });
        }
    }

    let active = threads.len().min(cfg.cores);
    let inflation = 1.0 + cfg.contention * (active.saturating_sub(1)) as f64;

    let mut phases = Vec::with_capacity(nphases);
    let mut total = 0.0;
    for k in 0..nphases {
        let demands: Vec<f64> = per_thread
            .iter()
            .map(|t| {
                let (w, c, entries) = t[k];
                w as f64 * inflation + c as f64 + (entries as u64 * cfg.lock_overhead) as f64
            })
            .collect();
        let compute_time = lpt_makespan(&demands, cfg.cores);
        let critical_floor: f64 = per_thread
            .iter()
            .map(|t| t[k].1 as f64 + (t[k].2 as u64 * cfg.lock_overhead) as f64)
            .sum();
        let barrier = if k + 1 < nphases {
            cfg.barrier_cost as f64
        } else {
            0.0
        };
        let phase_time = compute_time.max(critical_floor) + barrier;
        total += phase_time;
        phases.push(PhaseReport {
            compute_time,
            critical_floor,
            phase_time,
        });
    }

    // Serial reference: all work and critical units on one core, no
    // overheads (the sequential Lab 6 program has no locks or barriers).
    let serial_time: f64 = threads
        .iter()
        .flatten()
        .map(|s| match s {
            Segment::Work(w) => *w as f64,
            Segment::Critical(c) => *c as f64,
            Segment::Barrier => 0.0,
        })
        .sum();

    Ok(MachineReport {
        parallel_time: total,
        serial_time,
        threads: threads.len(),
        phases,
    })
}

/// Builds the Lab 10 workload shape: `total_work` units split evenly over
/// `threads`, in `rounds` barrier-separated rounds, each thread also
/// entering one `crit_per_round`-unit critical section per round (the
/// mutex-guarded shared statistics update).
pub fn life_like_workload(
    total_work: u64,
    threads: usize,
    rounds: usize,
    crit_per_round: u64,
) -> Vec<Vec<Segment>> {
    assert!(threads > 0 && rounds > 0);
    let per_thread_round = total_work / threads as u64 / rounds as u64;
    (0..threads)
        .map(|_| {
            let mut segs = Vec::with_capacity(rounds * 3);
            for r in 0..rounds {
                segs.push(Segment::Work(per_thread_round));
                if crit_per_round > 0 {
                    segs.push(Segment::Critical(crit_per_round));
                }
                if r + 1 < rounds {
                    segs.push(Segment::Barrier);
                }
            }
            segs
        })
        .collect()
}

/// The E1 sweep: modeled speedup for each thread count in `threads`.
pub fn speedup_sweep(
    cfg: MachineConfig,
    total_work: u64,
    rounds: usize,
    crit_per_round: u64,
    threads: &[usize],
) -> Vec<(usize, f64)> {
    threads
        .iter()
        .map(|&t| {
            let wl = life_like_workload(total_work, t, rounds, crit_per_round);
            let r = simulate(cfg, &wl).expect("uniform workload is well-formed");
            (t, r.speedup())
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::laws::{classify, SpeedupClass};

    fn paper_machine() -> MachineConfig {
        MachineConfig {
            cores: 16,
            barrier_cost: 50,
            lock_overhead: 10,
            contention: 0.0,
        }
    }

    #[test]
    fn near_linear_speedup_to_16_threads() {
        // The paper's headline classroom observation.
        let sweep = speedup_sweep(paper_machine(), 16_000_000, 100, 5, &[1, 2, 4, 8, 16]);
        for &(t, s) in &sweep {
            assert_eq!(
                classify(s, t),
                if t == 1 {
                    SpeedupClass::None
                } else {
                    SpeedupClass::NearLinear
                },
                "threads={t} speedup={s}"
            );
        }
        let s16 = sweep.last().unwrap().1;
        assert!(s16 > 14.4 && s16 <= 16.0, "16-thread speedup {s16}");
    }

    #[test]
    fn saturates_beyond_core_count() {
        let sweep = speedup_sweep(paper_machine(), 16_000_000, 50, 0, &[16, 32, 64]);
        let s16 = sweep[0].1;
        for &(t, s) in &sweep[1..] {
            assert!(s <= s16 * 1.01, "threads={t}: no speedup beyond 16 cores");
        }
    }

    #[test]
    fn critical_sections_bend_the_curve() {
        // Growing the per-round critical share must cut 16-thread speedup.
        let mut prev = f64::INFINITY;
        for crit in [0u64, 1_000, 10_000, 40_000] {
            let wl = life_like_workload(16_000_000, 16, 10, crit);
            let s = simulate(paper_machine(), &wl).unwrap().speedup();
            assert!(s < prev, "crit={crit}: {s} !< {prev}");
            prev = s;
        }
        // At extreme contention the lock floor dominates: sublinear.
        assert!(classify(prev, 16) == SpeedupClass::Sublinear);
    }

    #[test]
    fn memory_contention_degrades_speedup() {
        let wl = life_like_workload(16_000_000, 16, 10, 0);
        let free = simulate(paper_machine(), &wl).unwrap().speedup();
        let contended = simulate(
            MachineConfig {
                contention: 0.02,
                ..paper_machine()
            },
            &wl,
        )
        .unwrap()
        .speedup();
        assert!(contended < free * 0.9, "{contended} vs {free}");
    }

    #[test]
    fn barrier_cost_matters_more_with_more_rounds() {
        let few = life_like_workload(1_000_000, 16, 2, 0);
        let many = life_like_workload(1_000_000, 16, 200, 0);
        let s_few = simulate(paper_machine(), &few).unwrap().speedup();
        let s_many = simulate(paper_machine(), &many).unwrap().speedup();
        assert!(s_many < s_few, "more barriers, more overhead");
    }

    #[test]
    fn imbalance_hurts() {
        // One thread gets 4x the work of the others.
        let mut wl = life_like_workload(1_600_000, 16, 1, 0);
        wl[0] = vec![Segment::Work(400_000)];
        let s = simulate(paper_machine(), &wl).unwrap().speedup();
        let balanced = simulate(paper_machine(), &life_like_workload(1_600_000, 16, 1, 0))
            .unwrap()
            .speedup();
        assert!(s < balanced * 0.6, "imbalanced {s} vs balanced {balanced}");
    }

    #[test]
    fn serial_reference_is_total_work() {
        let wl = life_like_workload(1000, 4, 1, 0);
        let r = simulate(paper_machine(), &wl).unwrap();
        assert!((r.serial_time - 1000.0).abs() < 1.0);
        assert_eq!(r.threads, 4);
        assert_eq!(r.phases.len(), 1);
    }

    #[test]
    fn errors() {
        assert_eq!(
            simulate(paper_machine(), &[]).unwrap_err(),
            MachineModelError::Empty
        );
        assert_eq!(
            simulate(
                MachineConfig {
                    cores: 0,
                    ..paper_machine()
                },
                &[vec![]]
            )
            .unwrap_err(),
            MachineModelError::NoCores
        );
        let ragged = vec![
            vec![Segment::Work(1), Segment::Barrier, Segment::Work(1)],
            vec![Segment::Work(1)],
        ];
        assert!(matches!(
            simulate(paper_machine(), &ragged).unwrap_err(),
            MachineModelError::BarrierMismatch { thread: 1, .. }
        ));
    }

    #[test]
    fn lpt_makespan_basics() {
        assert_eq!(lpt_makespan(&[4.0, 3.0, 2.0, 1.0], 2), 5.0);
        assert_eq!(lpt_makespan(&[10.0], 8), 10.0);
        assert_eq!(lpt_makespan(&[1.0, 1.0, 1.0, 1.0], 4), 1.0);
    }
}
