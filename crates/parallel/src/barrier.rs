//! Barriers, built two ways.
//!
//! Lab 10's parallel Game of Life "use\[s\] barriers to synchronize threads
//! between rounds". We implement the primitive rather than import it:
//!
//! * [`Barrier`] — the classic `Mutex` + `Condvar` barrier with a
//!   **generation counter**, the construction *Rust Atomics and Locks*
//!   recommends to avoid the wrap-around wake bug;
//! * [`SpinBarrier`] — a sense-reversing atomic barrier, the version a
//!   parallel-architecture course shows for core-count-scale spinning.

use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::{Condvar, Mutex};

/// A reusable Condvar barrier for a fixed party count.
#[derive(Debug)]
pub struct Barrier {
    state: Mutex<BarrierState>,
    cvar: Condvar,
    parties: usize,
}

#[derive(Debug)]
struct BarrierState {
    waiting: usize,
    generation: u64,
}

impl Barrier {
    /// A barrier for `parties` threads.
    ///
    /// # Panics
    /// If `parties == 0`.
    pub fn new(parties: usize) -> Barrier {
        assert!(parties > 0, "barrier needs at least one party");
        Barrier {
            state: Mutex::new(BarrierState {
                waiting: 0,
                generation: 0,
            }),
            cvar: Condvar::new(),
            parties,
        }
    }

    /// Number of parties that must arrive.
    pub fn parties(&self) -> usize {
        self.parties
    }

    /// Blocks until all parties arrive. Returns `true` for exactly one
    /// "leader" thread per round (like pthreads' SERIAL_THREAD return).
    pub fn wait(&self) -> bool {
        let mut st = self.state.lock().expect("barrier mutex poisoned");
        let gen = st.generation;
        st.waiting += 1;
        if st.waiting == self.parties {
            // Last arrival: open the next generation and wake everyone.
            st.waiting = 0;
            st.generation = st.generation.wrapping_add(1);
            self.cvar.notify_all();
            true
        } else {
            // Wait for the generation to advance (spurious-wakeup safe).
            while st.generation == gen {
                st = self.cvar.wait(st).expect("barrier mutex poisoned");
            }
            false
        }
    }
}

/// A sense-reversing spin barrier.
#[derive(Debug)]
pub struct SpinBarrier {
    count: AtomicUsize,
    sense: AtomicBool,
    parties: usize,
}

impl SpinBarrier {
    /// A spin barrier for `parties` threads.
    pub fn new(parties: usize) -> SpinBarrier {
        assert!(parties > 0, "barrier needs at least one party");
        SpinBarrier {
            count: AtomicUsize::new(parties),
            sense: AtomicBool::new(false),
            parties,
        }
    }

    /// Spins until all parties arrive. Returns `true` for the leader.
    pub fn wait(&self) -> bool {
        let my_sense = !self.sense.load(Ordering::Acquire);
        if self.count.fetch_sub(1, Ordering::AcqRel) == 1 {
            // Last arrival resets and flips the sense, releasing spinners.
            self.count.store(self.parties, Ordering::Release);
            self.sense.store(my_sense, Ordering::Release);
            true
        } else {
            while self.sense.load(Ordering::Acquire) != my_sense {
                std::hint::spin_loop();
            }
            false
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::AtomicU64;
    use std::thread;

    /// Drives N threads through R rounds, asserting no thread enters round
    /// r+1 before every thread finished round r.
    fn exercise_rounds(wait: impl Fn() -> bool + Sync, parties: usize, rounds: usize) {
        let arrived: Vec<AtomicU64> = (0..rounds).map(|_| AtomicU64::new(0)).collect();
        thread::scope(|s| {
            for _ in 0..parties {
                s.spawn(|| {
                    for (r, slot) in arrived.iter().enumerate() {
                        slot.fetch_add(1, Ordering::SeqCst);
                        wait();
                        // After the barrier, every party must have arrived.
                        assert_eq!(
                            slot.load(Ordering::SeqCst),
                            parties as u64,
                            "round {r} barrier leaked"
                        );
                    }
                });
            }
        });
    }

    #[test]
    fn condvar_barrier_synchronizes_rounds() {
        let b = Barrier::new(4);
        exercise_rounds(|| b.wait(), 4, 25);
    }

    #[test]
    fn spin_barrier_synchronizes_rounds() {
        let b = SpinBarrier::new(4);
        exercise_rounds(|| b.wait(), 4, 25);
    }

    #[test]
    fn exactly_one_leader_per_round() {
        let b = Barrier::new(3);
        let leaders = AtomicU64::new(0);
        thread::scope(|s| {
            for _ in 0..3 {
                s.spawn(|| {
                    for _ in 0..10 {
                        if b.wait() {
                            leaders.fetch_add(1, Ordering::SeqCst);
                        }
                    }
                });
            }
        });
        assert_eq!(leaders.load(Ordering::SeqCst), 10);
    }

    #[test]
    fn single_party_barrier_never_blocks() {
        let b = Barrier::new(1);
        for _ in 0..100 {
            assert!(b.wait(), "sole thread is always the leader");
        }
        let sb = SpinBarrier::new(1);
        for _ in 0..100 {
            assert!(sb.wait());
        }
    }

    #[test]
    #[should_panic(expected = "at least one party")]
    fn zero_parties_rejected() {
        let _ = Barrier::new(0);
    }

    #[test]
    fn reusable_many_generations() {
        // Regression guard for the generation counter: far more rounds
        // than parties.
        let b = Barrier::new(2);
        exercise_rounds(|| b.wait(), 2, 500);
    }
}
