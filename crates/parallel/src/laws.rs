//! Speedup, efficiency, Amdahl's law, Gustafson's law — experiment **E6**.
//!
//! "We introduce speedup and mention how resource contention can reduce
//! observed speedup from theoretical ideal linear speedup … We introduce
//! the concept of Amdahl's law, but defer a deeper dive" (§III-A).

/// Speedup: `t_serial / t_parallel`.
pub fn speedup(t_serial: f64, t_parallel: f64) -> f64 {
    assert!(t_serial > 0.0 && t_parallel > 0.0, "times must be positive");
    t_serial / t_parallel
}

/// Efficiency: speedup divided by processor count.
pub fn efficiency(t_serial: f64, t_parallel: f64, p: usize) -> f64 {
    assert!(p > 0);
    speedup(t_serial, t_parallel) / p as f64
}

/// Amdahl's law: with serial fraction `f` on `p` processors,
/// `S(p) = 1 / (f + (1-f)/p)`.
pub fn amdahl(serial_fraction: f64, p: usize) -> f64 {
    assert!((0.0..=1.0).contains(&serial_fraction), "fraction in [0,1]");
    assert!(p > 0);
    1.0 / (serial_fraction + (1.0 - serial_fraction) / p as f64)
}

/// Amdahl's asymptote: `1/f` as `p → ∞` (infinite for `f = 0`).
pub fn amdahl_limit(serial_fraction: f64) -> f64 {
    assert!((0.0..=1.0).contains(&serial_fraction));
    if serial_fraction == 0.0 {
        f64::INFINITY
    } else {
        1.0 / serial_fraction
    }
}

/// Gustafson's law (scaled speedup): `S(p) = p - f·(p-1)`.
pub fn gustafson(serial_fraction: f64, p: usize) -> f64 {
    assert!((0.0..=1.0).contains(&serial_fraction));
    assert!(p > 0);
    p as f64 - serial_fraction * (p as f64 - 1.0)
}

/// An Amdahl sweep over processor counts (the E6 curve data).
pub fn amdahl_curve(serial_fraction: f64, procs: &[usize]) -> Vec<(usize, f64)> {
    procs
        .iter()
        .map(|&p| (p, amdahl(serial_fraction, p)))
        .collect()
}

/// Classifies an observed speedup the way the course discusses results:
/// near-linear, sublinear, or the suspicious superlinear.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SpeedupClass {
    /// Within 90% of ideal linear.
    NearLinear,
    /// Positive but clearly below linear.
    Sublinear,
    /// Above linear (cache effects or a measurement bug).
    Superlinear,
    /// At or below 1: parallelism did not help.
    None,
}

/// Classifies `observed` speedup on `p` processors.
pub fn classify(observed: f64, p: usize) -> SpeedupClass {
    let p = p as f64;
    if observed <= 1.0 {
        SpeedupClass::None
    } else if observed > p + 1e-9 {
        SpeedupClass::Superlinear
    } else if observed >= 0.9 * p {
        SpeedupClass::NearLinear
    } else {
        SpeedupClass::Sublinear
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn amdahl_classic_numbers() {
        // f=0.05, p=20: S = 1/(0.05 + 0.95/20) ≈ 10.26
        let s = amdahl(0.05, 20);
        assert!((s - 10.256).abs() < 0.01, "{s}");
        // Fully parallel: exactly linear.
        assert!((amdahl(0.0, 16) - 16.0).abs() < 1e-12);
        // Fully serial: no speedup ever.
        assert!((amdahl(1.0, 1024) - 1.0).abs() < 1e-12);
        assert!((amdahl_limit(0.05) - 20.0).abs() < 1e-12);
        assert!(amdahl_limit(0.0).is_infinite());
    }

    #[test]
    fn gustafson_beats_amdahl_for_scaled_work() {
        for p in [2usize, 8, 64] {
            assert!(gustafson(0.1, p) > amdahl(0.1, p), "p={p}");
        }
        assert!((gustafson(0.0, 32) - 32.0).abs() < 1e-12);
    }

    #[test]
    fn speedup_and_efficiency() {
        assert!((speedup(10.0, 2.5) - 4.0).abs() < 1e-12);
        assert!((efficiency(10.0, 2.5, 8) - 0.5).abs() < 1e-12);
    }

    #[test]
    fn classification() {
        assert_eq!(classify(15.5, 16), SpeedupClass::NearLinear);
        assert_eq!(classify(8.0, 16), SpeedupClass::Sublinear);
        assert_eq!(classify(17.0, 16), SpeedupClass::Superlinear);
        assert_eq!(classify(0.9, 16), SpeedupClass::None);
    }

    #[test]
    fn curve_shape() {
        let c = amdahl_curve(0.1, &[1, 2, 4, 8, 16, 32]);
        assert_eq!(c[0], (1, 1.0));
        for w in c.windows(2) {
            assert!(w[1].1 > w[0].1, "monotone increasing");
        }
        assert!(c.last().unwrap().1 < amdahl_limit(0.1));
    }

    proptest! {
        #[test]
        fn prop_amdahl_bounded(f in 0.0f64..=1.0, p in 1usize..1000) {
            let s = amdahl(f, p);
            prop_assert!(s >= 1.0 - 1e-12);
            prop_assert!(s <= p as f64 + 1e-9);
            if f > 0.0 {
                prop_assert!(s <= amdahl_limit(f) + 1e-9);
            }
        }

        #[test]
        fn prop_amdahl_monotone_in_p(f in 0.01f64..=0.99, p in 1usize..500) {
            prop_assert!(amdahl(f, p + 1) >= amdahl(f, p) - 1e-12);
        }
    }
}
