//! Deadlock: creating it, detecting it, and the fix the course teaches.
//!
//! "Once we introduce synchronization, we discuss the potential for
//! deadlock" (§III-A). This module makes the discussion executable:
//!
//! * [`DiningTable`] — the two-lock (and N-lock dining-philosophers)
//!   structure with **both** acquisition disciplines: the deadlock-prone
//!   "grab your left fork, then your right" and the global-lock-ordering
//!   fix;
//! * a **wait-for-graph** model ([`WaitForGraph`]) with cycle detection —
//!   how a kernel (or a student on a whiteboard) proves a state is
//!   deadlocked;
//! * [`run_philosophers`] — a real-thread run that avoids *actually*
//!   hanging the test suite by using `try_lock` + backoff when asked to
//!   demonstrate the unsafe discipline, while counting how often the
//!   circular-wait condition was entered.

use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Mutex;

/// A wait-for graph: edge `a → b` means "thread a waits for a resource
/// held by thread b".
#[derive(Debug, Default, Clone)]
pub struct WaitForGraph {
    edges: HashMap<usize, Vec<usize>>,
}

impl WaitForGraph {
    /// An empty graph.
    pub fn new() -> WaitForGraph {
        WaitForGraph::default()
    }

    /// Adds a wait edge.
    pub fn add_wait(&mut self, waiter: usize, holder: usize) {
        self.edges.entry(waiter).or_default().push(holder);
    }

    /// Removes all wait edges from `waiter` (it acquired or gave up).
    pub fn clear_waits(&mut self, waiter: usize) {
        self.edges.remove(&waiter);
    }

    /// Detects a cycle (deadlock); returns one cycle's nodes if present.
    ///
    /// The four Coffman conditions are taught as theory; the cycle in the
    /// wait-for graph is the *observable* one.
    pub fn find_cycle(&self) -> Option<Vec<usize>> {
        #[derive(Clone, Copy, PartialEq)]
        enum Mark {
            White,
            Grey,
            Black,
        }
        let mut marks: HashMap<usize, Mark> = HashMap::new();
        let nodes: Vec<usize> = self.edges.keys().copied().collect();

        fn dfs(
            g: &HashMap<usize, Vec<usize>>,
            marks: &mut HashMap<usize, Mark>,
            stack: &mut Vec<usize>,
            node: usize,
        ) -> Option<Vec<usize>> {
            marks.insert(node, Mark::Grey);
            stack.push(node);
            for &next in g.get(&node).into_iter().flatten() {
                match marks.get(&next).copied().unwrap_or(Mark::White) {
                    Mark::Grey => {
                        // Found the cycle: slice the stack from `next`.
                        let start = stack.iter().position(|&n| n == next).expect("on stack");
                        return Some(stack[start..].to_vec());
                    }
                    Mark::White => {
                        if let Some(c) = dfs(g, marks, stack, next) {
                            return Some(c);
                        }
                    }
                    Mark::Black => {}
                }
            }
            stack.pop();
            marks.insert(node, Mark::Black);
            None
        }

        for n in nodes {
            if marks.get(&n).copied().unwrap_or(Mark::White) == Mark::White {
                let mut stack = Vec::new();
                if let Some(c) = dfs(&self.edges, &mut marks, &mut stack, n) {
                    return Some(c);
                }
            }
        }
        None
    }
}

/// Fork-acquisition discipline.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Discipline {
    /// Everyone grabs left then right — circular wait is possible.
    LeftThenRight,
    /// Global lock ordering (always lower-numbered fork first) — the fix.
    OrderedByIndex,
}

/// The dining table: N philosophers, N forks.
#[derive(Debug)]
pub struct DiningTable {
    forks: Vec<Mutex<()>>,
}

impl DiningTable {
    /// A table for `n` philosophers (n ≥ 2).
    pub fn new(n: usize) -> DiningTable {
        assert!(n >= 2, "need at least two philosophers");
        DiningTable {
            forks: (0..n).map(|_| Mutex::new(())).collect(),
        }
    }

    /// Which forks philosopher `p` needs, in the order the discipline
    /// dictates.
    pub fn fork_order(&self, p: usize, discipline: Discipline) -> (usize, usize) {
        let n = self.forks.len();
        let left = p;
        let right = (p + 1) % n;
        match discipline {
            Discipline::LeftThenRight => (left, right),
            Discipline::OrderedByIndex => (left.min(right), left.max(right)),
        }
    }
}

/// Result of a philosophers run.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PhilosopherReport {
    /// Total meals eaten across all philosophers.
    pub meals: u64,
    /// Times a philosopher held one fork and found the other taken —
    /// the circular-wait condition knocking.
    pub contention_events: u64,
    /// Whether every philosopher ate every meal it attempted.
    pub completed: bool,
}

/// Runs `n` philosophers for `meals_each` meals under a discipline.
///
/// Under [`Discipline::OrderedByIndex`] plain blocking locks are used:
/// deadlock is impossible (no circular wait), so the run always
/// completes. Under [`Discipline::LeftThenRight`] the second fork is
/// taken with `try_lock` + release-and-retry so the *demonstration*
/// cannot hang the test suite — every failed `try_lock` while holding
/// the first fork is counted as a contention (would-block) event, which
/// is exactly the state that deadlocks with blocking locks.
pub fn run_philosophers(n: usize, meals_each: u64, discipline: Discipline) -> PhilosopherReport {
    let table = DiningTable::new(n);
    let meals = AtomicU64::new(0);
    let contention = AtomicU64::new(0);

    std::thread::scope(|s| {
        for p in 0..n {
            let table = &table;
            let meals = &meals;
            let contention = &contention;
            s.spawn(move || {
                let (first, second) = table.fork_order(p, discipline);
                for _ in 0..meals_each {
                    match discipline {
                        Discipline::OrderedByIndex => {
                            let _f1 = table.forks[first].lock().expect("fork poisoned");
                            let _f2 = table.forks[second].lock().expect("fork poisoned");
                            meals.fetch_add(1, Ordering::Relaxed);
                        }
                        Discipline::LeftThenRight => loop {
                            let f1 = table.forks[first].lock().expect("fork poisoned");
                            match table.forks[second].try_lock() {
                                Ok(_f2) => {
                                    meals.fetch_add(1, Ordering::Relaxed);
                                    break;
                                }
                                Err(_) => {
                                    // Holding one, wanting another: the
                                    // deadlock ingredient. Back off.
                                    contention.fetch_add(1, Ordering::Relaxed);
                                    drop(f1);
                                    std::thread::yield_now();
                                }
                            }
                        },
                    }
                }
            });
        }
    });

    let eaten = meals.into_inner();
    PhilosopherReport {
        meals: eaten,
        contention_events: contention.into_inner(),
        completed: eaten == n as u64 * meals_each,
    }
}

/// The classic two-thread, two-lock deadlock as a wait-for graph — the
/// whiteboard example, checkable.
pub fn classic_two_lock_deadlock() -> WaitForGraph {
    let mut g = WaitForGraph::new();
    // T0 holds L0 and waits for L1 (held by T1);
    // T1 holds L1 and waits for L0 (held by T0).
    g.add_wait(0, 1);
    g.add_wait(1, 0);
    g
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn two_lock_cycle_detected() {
        let g = classic_two_lock_deadlock();
        let cycle = g.find_cycle().expect("deadlock exists");
        assert_eq!(cycle.len(), 2);
        assert!(cycle.contains(&0) && cycle.contains(&1));
    }

    #[test]
    fn acyclic_graph_is_clean() {
        let mut g = WaitForGraph::new();
        g.add_wait(0, 1);
        g.add_wait(1, 2);
        g.add_wait(3, 2);
        assert!(g.find_cycle().is_none());
        // Adding the back edge closes the loop.
        g.add_wait(2, 0);
        assert!(g.find_cycle().is_some());
        // Releasing the wait breaks it again.
        g.clear_waits(2);
        assert!(g.find_cycle().is_none());
    }

    #[test]
    fn longer_cycle_found() {
        let mut g = WaitForGraph::new();
        for i in 0..5usize {
            g.add_wait(i, (i + 1) % 5);
        }
        let c = g.find_cycle().expect("5-cycle");
        assert_eq!(c.len(), 5);
    }

    #[test]
    fn ordered_discipline_always_completes() {
        let r = run_philosophers(5, 100, Discipline::OrderedByIndex);
        assert!(r.completed);
        assert_eq!(r.meals, 500);
        assert_eq!(r.contention_events, 0, "blocking locks, no retry loop");
    }

    #[test]
    fn unsafe_discipline_completes_only_via_backoff() {
        // With try_lock+backoff the run finishes; the contention counter
        // records how often the circular-wait ingredient occurred.
        let r = run_philosophers(5, 200, Discipline::LeftThenRight);
        assert!(r.completed, "backoff avoids the hang");
        assert_eq!(r.meals, 1000);
        // Not asserting contention > 0: on an unloaded single core the
        // philosophers may serialize cleanly. The *graph* tests prove the
        // deadlock structurally; this run proves liveness of the fix.
    }

    #[test]
    fn fork_orders() {
        let t = DiningTable::new(5);
        // Philosopher 4 wraps: left=4, right=0.
        assert_eq!(t.fork_order(4, Discipline::LeftThenRight), (4, 0));
        assert_eq!(t.fork_order(4, Discipline::OrderedByIndex), (0, 4));
        assert_eq!(t.fork_order(2, Discipline::OrderedByIndex), (2, 3));
    }
}
