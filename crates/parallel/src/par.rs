//! Data-parallel loops over scoped threads: the rayon idiom, implemented
//! from scratch on `std::thread::scope` so the course's "divide the data
//! among threads" lesson is visible in the code rather than hidden in a
//! library.
//!
//! * [`par_for_chunks`] — static partitioning: each thread owns one
//!   contiguous chunk (how Lab 10 partitions the Life grid);
//! * [`par_map`] — map over a slice into a new `Vec`;
//! * [`par_reduce`] — tree-free two-phase reduction (local then combine);
//! * [`par_for_dynamic`] — an atomic work-index loop (dynamic chunking),
//!   the load-balancing upgrade discussed for irregular work.
//!
//! All four entry points guarantee **serial equivalence at
//! `threads == 1`** (see each function's docs) — the property tests
//! lean on it, and it is the course's "same answer, just faster"
//! contract for data parallelism.
//!
//! Each call here spawns and joins scoped threads; when the same data
//! shape is processed repeatedly (a server handling many requests), the
//! pool-backed variants in `serve::par` amortize that cost by reusing
//! long-lived workers.

use std::sync::atomic::{AtomicUsize, Ordering};
use std::thread;

/// Splits `data` into `threads` near-equal contiguous chunks and applies
/// `f(chunk_index, chunk)` to each in parallel, in place.
///
/// With `threads == 1` this degenerates to a plain call — the property
/// tests rely on that equivalence.
pub fn par_for_chunks<T, F>(data: &mut [T], threads: usize, f: F)
where
    T: Send,
    F: Fn(usize, &mut [T]) + Sync,
{
    assert!(threads > 0, "need at least one thread");
    if data.is_empty() {
        return;
    }
    let threads = threads.min(data.len());
    let chunk = data.len().div_ceil(threads);
    thread::scope(|s| {
        for (i, piece) in data.chunks_mut(chunk).enumerate() {
            let f = &f;
            s.spawn(move || f(i, piece));
        }
    });
}

/// Parallel map: applies `f` to each element, preserving order.
///
/// With `threads == 1` this is serially equivalent to
/// `data.iter().map(f).collect()`: one chunk, visited in order by one
/// thread.
pub fn par_map<T, U, F>(data: &[T], threads: usize, f: F) -> Vec<U>
where
    T: Sync,
    U: Send,
    F: Fn(&T) -> U + Sync,
{
    assert!(threads > 0);
    if data.is_empty() {
        return Vec::new();
    }
    let threads = threads.min(data.len());
    let chunk = data.len().div_ceil(threads);
    let mut out: Vec<Option<U>> = (0..data.len()).map(|_| None).collect();
    thread::scope(|s| {
        for (ins, outs) in data.chunks(chunk).zip(out.chunks_mut(chunk)) {
            let f = &f;
            s.spawn(move || {
                for (i, o) in ins.iter().zip(outs.iter_mut()) {
                    *o = Some(f(i));
                }
            });
        }
    });
    // Every slot was written: the chunked output regions partition
    // `out` exactly as the input chunks partition `data`, and the
    // scope joined every writer. One flat unwrap pass keeps the safe
    // Vec<Option<U>> idiom without per-element expect plumbing.
    out.into_iter().map(Option::unwrap).collect()
}

/// Parallel reduction: per-thread local fold, then a serial combine of
/// the partials — the "sum across threads then join" Lab 10 shape.
///
/// With `threads == 1` this is serially equivalent to
/// `combine(identity, data.iter().fold(identity, fold))`, which equals
/// the plain serial fold whenever `identity` is a true identity for
/// `combine` — the law thread-count independence rests on (see
/// `laws::par_reduce` property tests).
pub fn par_reduce<T, A, F, G>(data: &[T], threads: usize, identity: A, fold: F, combine: G) -> A
where
    T: Sync,
    A: Send + Clone,
    F: Fn(A, &T) -> A + Sync,
    G: Fn(A, A) -> A,
{
    assert!(threads > 0);
    if data.is_empty() {
        return identity;
    }
    let threads = threads.min(data.len());
    let chunk = data.len().div_ceil(threads);
    let mut partials: Vec<A> = Vec::with_capacity(threads);
    thread::scope(|s| {
        let handles: Vec<_> = data
            .chunks(chunk)
            .map(|piece| {
                let fold = &fold;
                let id = identity.clone();
                s.spawn(move || piece.iter().fold(id, fold))
            })
            .collect();
        for h in handles {
            partials.push(h.join().expect("reduce worker panicked"));
        }
    });
    partials.into_iter().fold(identity, combine)
}

/// Dynamic scheduling: threads pull `grain`-sized index ranges from a
/// shared atomic counter until the range `0..n` is exhausted, calling
/// `f(start..end)` for each claimed range.
///
/// With `threads == 1` the single worker claims ranges in ascending
/// order, so the call is serially equivalent to
/// `for r in (0..n).step_by(grain) { f(r..min(r + grain, n)) }`.
pub fn par_for_dynamic<F>(n: usize, threads: usize, grain: usize, f: F)
where
    F: Fn(std::ops::Range<usize>) + Sync,
{
    assert!(threads > 0 && grain > 0);
    let next = AtomicUsize::new(0);
    thread::scope(|s| {
        for _ in 0..threads {
            let next = &next;
            let f = &f;
            s.spawn(move || loop {
                let start = next.fetch_add(grain, Ordering::Relaxed);
                if start >= n {
                    break;
                }
                f(start..(start + grain).min(n));
            });
        }
    });
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;
    use std::sync::atomic::AtomicU64;

    #[test]
    fn chunks_cover_everything_once() {
        let mut data = vec![0u32; 103];
        par_for_chunks(&mut data, 4, |_, chunk| {
            for x in chunk {
                *x += 1;
            }
        });
        assert!(data.iter().all(|&x| x == 1));
    }

    #[test]
    fn chunk_indices_are_distinct() {
        let mut data = vec![0usize; 40];
        par_for_chunks(&mut data, 4, |i, chunk| {
            for x in chunk {
                *x = i;
            }
        });
        // 40/4 = 10 per chunk, in order.
        for (pos, &owner) in data.iter().enumerate() {
            assert_eq!(owner, pos / 10);
        }
    }

    #[test]
    fn map_preserves_order() {
        let data: Vec<i64> = (0..1000).collect();
        let sq = par_map(&data, 8, |x| x * x);
        for (i, v) in sq.iter().enumerate() {
            assert_eq!(*v, (i * i) as i64);
        }
    }

    #[test]
    fn reduce_sums() {
        let data: Vec<u64> = (1..=10_000).collect();
        let sum = par_reduce(&data, 8, 0u64, |a, &x| a + x, |a, b| a + b);
        assert_eq!(sum, 10_000 * 10_001 / 2);
    }

    #[test]
    fn dynamic_covers_all_indices_exactly_once() {
        let n = 997; // prime: ragged last chunk
        let hits: Vec<AtomicU64> = (0..n).map(|_| AtomicU64::new(0)).collect();
        par_for_dynamic(n, 4, 16, |range| {
            for i in range {
                hits[i].fetch_add(1, Ordering::SeqCst);
            }
        });
        assert!(hits.iter().all(|h| h.load(Ordering::SeqCst) == 1));
    }

    #[test]
    fn empty_and_degenerate_inputs() {
        let mut empty: Vec<u8> = vec![];
        par_for_chunks(&mut empty, 4, |_, _| panic!("no chunks for empty"));
        assert!(par_map(&empty, 4, |x| *x).is_empty());
        assert_eq!(par_reduce(&empty, 4, 7u8, |a, &x| a + x, |a, b| a + b), 7);
        // More threads than elements.
        let mut tiny = vec![1u8, 2];
        par_for_chunks(&mut tiny, 16, |_, c| {
            for x in c {
                *x *= 10;
            }
        });
        assert_eq!(tiny, vec![10, 20]);
    }

    proptest! {
        #[test]
        fn prop_par_map_equals_serial(data in proptest::collection::vec(any::<i32>(), 0..200),
                                      threads in 1usize..8) {
            let serial: Vec<i64> = data.iter().map(|&x| x as i64 * 3 - 1).collect();
            let par = par_map(&data, threads, |&x| x as i64 * 3 - 1);
            prop_assert_eq!(par, serial);
        }

        #[test]
        fn prop_par_reduce_equals_serial(data in proptest::collection::vec(0u64..1000, 0..200),
                                         threads in 1usize..8) {
            let serial: u64 = data.iter().sum();
            let par = par_reduce(&data, threads, 0u64, |a, &x| a + x, |a, b| a + b);
            prop_assert_eq!(par, serial);
        }

        #[test]
        fn prop_thread_count_does_not_change_result(
            data in proptest::collection::vec(any::<u8>(), 1..100)
        ) {
            let mut a = data.clone();
            let mut b = data.clone();
            par_for_chunks(&mut a, 1, |_, c| c.iter_mut().for_each(|x| *x = x.wrapping_mul(7)));
            par_for_chunks(&mut b, 7, |_, c| c.iter_mut().for_each(|x| *x = x.wrapping_mul(7)));
            prop_assert_eq!(a, b);
        }
    }
}
