//! A reader-writer lock from `Mutex` + `Condvar` — `pthread_rwlock` for
//! the course's primitive set, writer-preferring to show the starvation
//! discussion concretely.
//!
//! Built exactly like the lecture derivation: a state word (reader count
//! plus writer flag plus waiting-writer count) under one mutex, two
//! condition variables, wait loops over predicates.

use std::sync::{Condvar, Mutex};

#[derive(Debug, Default)]
struct RwState {
    readers: usize,
    writer: bool,
    waiting_writers: usize,
}

/// A writer-preferring reader-writer lock (no data payload: this is the
/// *protocol* object, used alongside the data it protects — the C idiom).
#[derive(Debug, Default)]
pub struct RwLock {
    state: Mutex<RwState>,
    readers_ok: Condvar,
    writers_ok: Condvar,
}

impl RwLock {
    /// A fresh unlocked lock.
    pub fn new() -> RwLock {
        RwLock::default()
    }

    /// Acquires shared (read) access. Blocks while a writer holds the
    /// lock **or is waiting** (writer preference).
    pub fn read_lock(&self) {
        let mut st = self.state.lock().expect("rwlock mutex poisoned");
        while st.writer || st.waiting_writers > 0 {
            st = self.readers_ok.wait(st).expect("rwlock mutex poisoned");
        }
        st.readers += 1;
    }

    /// Releases shared access.
    pub fn read_unlock(&self) {
        let mut st = self.state.lock().expect("rwlock mutex poisoned");
        assert!(st.readers > 0, "read_unlock without read_lock");
        st.readers -= 1;
        if st.readers == 0 {
            self.writers_ok.notify_one();
        }
    }

    /// Acquires exclusive (write) access.
    pub fn write_lock(&self) {
        let mut st = self.state.lock().expect("rwlock mutex poisoned");
        st.waiting_writers += 1;
        while st.writer || st.readers > 0 {
            st = self.writers_ok.wait(st).expect("rwlock mutex poisoned");
        }
        st.waiting_writers -= 1;
        st.writer = true;
    }

    /// Releases exclusive access.
    pub fn write_unlock(&self) {
        let mut st = self.state.lock().expect("rwlock mutex poisoned");
        assert!(st.writer, "write_unlock without write_lock");
        st.writer = false;
        if st.waiting_writers > 0 {
            self.writers_ok.notify_one();
        } else {
            self.readers_ok.notify_all();
        }
    }

    /// Current reader count (teaching snapshot).
    pub fn readers(&self) -> usize {
        self.state.lock().expect("rwlock mutex poisoned").readers
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicUsize, Ordering};
    use std::thread;

    #[test]
    fn multiple_readers_coexist() {
        let l = RwLock::new();
        let concurrent = AtomicUsize::new(0);
        let max_seen = AtomicUsize::new(0);
        thread::scope(|s| {
            for _ in 0..4 {
                s.spawn(|| {
                    for _ in 0..50 {
                        l.read_lock();
                        let d = concurrent.fetch_add(1, Ordering::SeqCst) + 1;
                        max_seen.fetch_max(d, Ordering::SeqCst);
                        thread::yield_now();
                        concurrent.fetch_sub(1, Ordering::SeqCst);
                        l.read_unlock();
                    }
                });
            }
        });
        // Not guaranteed on one core, but with yields it's effectively
        // certain; the hard invariant (no writer overlap) is below.
        assert!(max_seen.load(Ordering::SeqCst) >= 1);
    }

    #[test]
    fn writers_are_exclusive_against_everyone() {
        let l = RwLock::new();
        let in_write = AtomicUsize::new(0);
        let in_read = AtomicUsize::new(0);
        thread::scope(|s| {
            for _ in 0..3 {
                s.spawn(|| {
                    for _ in 0..100 {
                        l.write_lock();
                        assert_eq!(in_read.load(Ordering::SeqCst), 0, "readers during write");
                        let d = in_write.fetch_add(1, Ordering::SeqCst);
                        assert_eq!(d, 0, "two writers at once");
                        in_write.fetch_sub(1, Ordering::SeqCst);
                        l.write_unlock();
                    }
                });
            }
            for _ in 0..3 {
                s.spawn(|| {
                    for _ in 0..100 {
                        l.read_lock();
                        assert_eq!(in_write.load(Ordering::SeqCst), 0, "writer during read");
                        in_read.fetch_add(1, Ordering::SeqCst);
                        thread::yield_now();
                        in_read.fetch_sub(1, Ordering::SeqCst);
                        l.read_unlock();
                    }
                });
            }
        });
    }

    #[test]
    fn protects_a_real_structure() {
        // Readers sum, writers push: the sum must always be a prefix-sum
        // state, never a torn one.
        let l = RwLock::new();
        // The C idiom: the lock is a protocol object beside the data.
        let shared = Mutex::new(Vec::<u64>::new());
        thread::scope(|s| {
            for w in 0..2 {
                let l = &l;
                let shared = &shared;
                s.spawn(move || {
                    for i in 0..50 {
                        l.write_lock();
                        shared.lock().unwrap().push(w * 100 + i);
                        l.write_unlock();
                    }
                });
            }
            for _ in 0..2 {
                let l = &l;
                let shared = &shared;
                s.spawn(move || {
                    for _ in 0..100 {
                        l.read_lock();
                        let v = shared.lock().unwrap();
                        // Length only grows; reading under the lock sees a
                        // consistent snapshot.
                        let n = v.len();
                        assert!(n <= 100);
                        drop(v);
                        l.read_unlock();
                    }
                });
            }
        });
        assert_eq!(shared.lock().unwrap().len(), 100);
    }

    #[test]
    #[should_panic(expected = "read_unlock without read_lock")]
    fn misuse_panics() {
        RwLock::new().read_unlock();
    }
}
