//! Per-backend health: EWMA latency plus consecutive-failure tracking.
//!
//! The state machine is deliberately small:
//!
//! ```text
//!            failures >= threshold, or a severed connection
//!      Up ────────────────────────────────────────────────▶ Down
//!      ▲                                                     │
//!      └───────────── probe success (connect + stats ping) ──┘
//! ```
//!
//! Soft failures (a `GoAway` answer for a forwarded request, a write
//! error that might be transient) *count* toward the threshold;
//! hard evidence (the pooled connection severed, a read stall past the
//! timeout with requests outstanding) forces `Down` immediately via
//! [`Health::force_down`]. Success on a forwarded request resets the
//! failure count and feeds the latency EWMA, but never flips `Down` →
//! `Up` on its own — only the prober re-admits, so a backend that
//! answered one straggler mid-outage doesn't flap back into rotation.

use std::sync::atomic::{AtomicU32, AtomicU64, AtomicU8, Ordering};

const UP: u8 = 0;
const DOWN: u8 = 1;

/// EWMA weight: `new = old + (sample - old) / 8`.
const EWMA_SHIFT: u32 = 3;

/// One backend's liveness and latency estimate. All methods are
/// lock-free and callable from any router thread.
#[derive(Debug)]
pub struct Health {
    state: AtomicU8,
    consecutive_failures: AtomicU32,
    /// EWMA of forwarded-request round-trip time in µs; 0 = no sample
    /// yet.
    ewma_us: AtomicU64,
    fail_threshold: u32,
}

impl Health {
    /// A healthy backend that goes down after `fail_threshold`
    /// consecutive soft failures (min 1).
    pub fn new(fail_threshold: u32) -> Health {
        Health {
            state: AtomicU8::new(UP),
            consecutive_failures: AtomicU32::new(0),
            ewma_us: AtomicU64::new(0),
            fail_threshold: fail_threshold.max(1),
        }
    }

    /// Whether the backend is in rotation.
    pub fn is_up(&self) -> bool {
        self.state.load(Ordering::Acquire) == UP
    }

    /// A forwarded request completed in `latency_us`: reset the failure
    /// streak and fold the sample into the EWMA.
    pub fn record_success(&self, latency_us: u64) {
        self.consecutive_failures.store(0, Ordering::Relaxed);
        let mut old = self.ewma_us.load(Ordering::Relaxed);
        loop {
            let new = if old == 0 {
                latency_us
            } else {
                old + (latency_us >> EWMA_SHIFT) - (old >> EWMA_SHIFT)
            };
            match self
                .ewma_us
                .compare_exchange_weak(old, new, Ordering::Relaxed, Ordering::Relaxed)
            {
                Ok(_) => return,
                Err(seen) => old = seen,
            }
        }
    }

    /// A soft failure (backend answered `GoAway`, or a possibly
    /// transient send error). Returns `true` when this failure crossed
    /// the threshold and *this call* transitioned the backend to
    /// `Down`.
    pub fn record_failure(&self) -> bool {
        let n = self.consecutive_failures.fetch_add(1, Ordering::Relaxed) + 1;
        if n >= self.fail_threshold {
            self.force_down()
        } else {
            false
        }
    }

    /// Hard evidence the backend is gone (severed connection, read
    /// stall with requests outstanding). Returns `true` when this call
    /// made the `Up` → `Down` transition (so down events are counted
    /// exactly once).
    pub fn force_down(&self) -> bool {
        self.state.swap(DOWN, Ordering::AcqRel) == UP
    }

    /// Probe success: back into rotation with a clean failure streak.
    /// The stale EWMA is kept — it's the best estimate available until
    /// fresh samples arrive.
    pub fn mark_up(&self) {
        self.consecutive_failures.store(0, Ordering::Relaxed);
        self.state.store(UP, Ordering::Release);
    }

    /// Current latency EWMA in µs (0 until the first success).
    pub fn ewma_us(&self) -> u64 {
        self.ewma_us.load(Ordering::Relaxed)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn threshold_failures_take_a_backend_down_success_resets() {
        let h = Health::new(3);
        assert!(h.is_up());
        assert!(!h.record_failure());
        assert!(!h.record_failure());
        h.record_success(100);
        assert!(!h.record_failure(), "streak reset by success");
        assert!(!h.record_failure());
        assert!(h.record_failure(), "third consecutive crosses");
        assert!(!h.is_up());
        assert!(!h.record_failure(), "down transition reported once");
        h.mark_up();
        assert!(h.is_up());
    }

    #[test]
    fn force_down_reports_the_transition_exactly_once() {
        let h = Health::new(2);
        assert!(h.force_down());
        assert!(!h.force_down());
        h.mark_up();
        assert!(h.force_down());
    }

    #[test]
    fn ewma_tracks_latency_without_whiplash() {
        let h = Health::new(2);
        h.record_success(800);
        assert_eq!(h.ewma_us(), 800, "first sample seeds the EWMA");
        h.record_success(1600);
        let after_spike = h.ewma_us();
        assert!(after_spike > 800 && after_spike < 1600, "one spike nudges");
        for _ in 0..64 {
            h.record_success(100);
        }
        assert!(h.ewma_us() < 200, "sustained shift converges");
    }
}
